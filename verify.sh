#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the build and the full test suite
# must pass before a change lands, followed by hygiene gates (rustfmt,
# clippy across every target) and an observability smoke test that runs a
# chaos workload end-to-end and round-trips each emitted artifact through
# `cloudburst check-json`.
#
# Usage: ./verify.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
    export CARGO_NET_OFFLINE=1
    CARGO_FLAGS+=(--offline)
fi

echo "== tier-1: cargo build --release"
cargo build --release "${CARGO_FLAGS[@]}"

echo "== tier-1: cargo test -q"
cargo test -q "${CARGO_FLAGS[@]}"

echo "== hygiene: cargo fmt --check"
# House style lives in rustfmt.toml; drift fails the run.
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    echo "   (rustfmt not installed — skipped)"
fi

echo "== hygiene: cargo clippy --workspace -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace "${CARGO_FLAGS[@]}" -- -D warnings
else
    echo "   (clippy not installed — skipped)"
fi

echo "== smoke: chaos run emits valid, complete observability artifacts"
BIN=target/release/cloudburst
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
"$BIN" generate wordcount --out "$SMOKE/words.bin" --units 60000 --vocab 500
"$BIN" organize --data "$SMOKE/words.bin" --unit-size 16 --chunk-units 512 \
    --files 8 --out "$SMOKE/org" --local-frac 0.5
# Leases are millisecond-scale: the whole chaos run takes ~10 ms on the
# pooled fetch path, and a lease must be able to expire mid-run.
"$BIN" run wordcount --org "$SMOKE/org" --local-cores 3 --cloud-cores 3 \
    --time-scale 2e-5 \
    --chaos 'seed=5,storage=0.2,slow=cloud:0:0.5,crash=local:1:2,lease=0.004:0.004:0.02:8,hb=0.05:30' \
    --stats-out "$SMOKE/stats.json" --events-out "$SMOKE/events.jsonl" \
    --trace-out "$SMOKE/trace.json"
# Every artifact must parse with the framework's own validator...
"$BIN" check-json "$SMOKE/stats.json"
# ...the events artifact must also pass the delivery-sequence audit (the
# stamped seq numbers form a gapless 1..=max set — nothing was dropped
# between emission and disk)...
"$BIN" check-json "$SMOKE/events.jsonl" >"$SMOKE/seqcheck.txt"
grep -q 'delivery sequence complete' "$SMOKE/seqcheck.txt" \
    || { echo "events.jsonl failed the delivery-sequence audit"; exit 1; }
"$BIN" check-json "$SMOKE/trace.json"
# ...and the causal analysis must reconstruct the run exhaustively: explain
# exits non-zero unless its seven categories account for the whole
# makespan, cross-checks the makespan against the stats document, and the
# machine artifact must carry a verdict.
"$BIN" explain "$SMOKE/events.jsonl" --stats "$SMOKE/stats.json" \
    --json "$SMOKE/explain.json"
"$BIN" check-json "$SMOKE/explain.json"
grep -q '"dominant"' "$SMOKE/explain.json" \
    || { echo "explain artifact is missing a dominant verdict"; exit 1; }
# ...the stats must carry the fault ledger...
grep -q '"faults"' "$SMOKE/stats.json"
# ...and the chaos plan's structural consequences must appear in the trace:
# crashed workers' leases get reaped, the slowed slave triggers speculation,
# and the imbalance it creates drives cross-site steals.
for ev in lease-reap speculate steal; do
    grep -q "\"name\":\"$ev\"" "$SMOKE/trace.json" \
        || { echo "trace.json is missing '$ev' events"; exit 1; }
done
echo "   artifacts valid"

echo "== smoke: coded redundancy (r=2) evacuates an outage without re-fetching"
# Same words, organized with every chunk replicated at both sites. The
# cloud dies mid-run; the survivor must finish from its own replicas:
# zero WAN bytes, and the fault ledger counts the re-fetches saved.
"$BIN" organize --data "$SMOKE/words.bin" --unit-size 16 --chunk-units 512 \
    --files 8 --out "$SMOKE/org2" --local-frac 0.5 --redundancy 2
"$BIN" info --org "$SMOKE/org2" >"$SMOKE/info2.txt"
grep -q 'redundancy' "$SMOKE/info2.txt" \
    || { echo "info does not report the coded factor"; exit 1; }
# Per-job delays stretch the run to ~1 s and the 250 ms detection timeout
# leaves real margin: a scheduler stall on a busy box must not be able to
# outlive the heartbeat window and spuriously kill the surviving site.
"$BIN" run wordcount --org "$SMOKE/org2" --local-cores 3 --cloud-cores 3 \
    --time-scale 2e-5 \
    --chaos 'seed=5,outage=cloud@0.1,slow=local:0:0.02,slow=local:1:0.02,slow=local:2:0.02,slow=cloud:0:0.02,slow=cloud:1:0.02,slow=cloud:2:0.02,hb=0.01:0.25' \
    --stats-out "$SMOKE/cstats.json"
"$BIN" check-json "$SMOKE/cstats.json"
SAVED=$(grep -o '"saved_refetches":[0-9]*' "$SMOKE/cstats.json" | grep -o '[0-9]*$')
[[ -n "$SAVED" && "$SAVED" -gt 0 ]] \
    || { echo "evacuation saved no re-fetches (saved_refetches=${SAVED:-missing})"; exit 1; }
if grep -o '"remote_bytes":[0-9]*' "$SMOKE/cstats.json" | grep -qv ':0$'; then
    echo "coded run fetched chunk bytes over the WAN"; exit 1
fi
echo "   coded evacuation: $SAVED re-fetches saved, zero WAN bytes"

echo "== smoke: live metrics agree with the report, mid-run and at exit"
# A dataset big enough that the run takes a few seconds at --time-scale 2.0,
# so the /metrics endpoint can be scraped while the burst is in flight.
"$BIN" generate wordcount --out "$SMOKE/big.bin" --units 600000 --vocab 500
"$BIN" organize --data "$SMOKE/big.bin" --unit-size 16 --chunk-units 4096 \
    --files 8 --out "$SMOKE/borg" --local-frac 0.4
MPORT=$((20000 + RANDOM % 20000))
"$BIN" run wordcount --org "$SMOKE/borg" --local-cores 3 --cloud-cores 3 \
    --time-scale 2.0 --chaos 'seed=5,storage=0.1' \
    --watch --metrics-addr "127.0.0.1:$MPORT" \
    --metrics-out "$SMOKE/metrics.prom" --stats-out "$SMOKE/mstats.json" \
    2>"$SMOKE/watch.txt" &
RUN_PID=$!
# Mid-run: the exposition must parse strictly and show live core counters.
"$BIN" check-metrics "http://127.0.0.1:$MPORT/metrics" --retries 20 \
    || { kill "$RUN_PID" 2>/dev/null; cat "$SMOKE/watch.txt"; exit 1; }
wait "$RUN_PID" || { cat "$SMOKE/watch.txt"; exit 1; }
# At exit: the final scrape's ledgers must equal the report exactly.
"$BIN" check-metrics "$SMOKE/metrics.prom" --against-stats "$SMOKE/mstats.json"
# The stats must carry the dollar-cost block and --watch must have printed.
grep -q '"cost"' "$SMOKE/mstats.json"
grep -q '^\[watch ' "$SMOKE/watch.txt" \
    || { echo "no --watch lines on stderr"; cat "$SMOKE/watch.txt"; exit 1; }
echo "   metrics valid"

echo "== smoke: health plane trips on chaos, stays quiet clean, and dumps a black box"
# Sick run: cloud slowed 8x with a straggler threshold tight enough that
# the detector must trip. Probe the live introspection plane mid-run.
HPORT=$((20000 + RANDOM % 20000))
"$BIN" run wordcount --org "$SMOKE/borg" --local-cores 3 --cloud-cores 3 \
    --time-scale 2.0 --chaos 'seed=5,slow=cloud:8' --health 'straggler=0.9' \
    --metrics-addr "127.0.0.1:$HPORT" \
    --stats-out "$SMOKE/hstats.json" 2>"$SMOKE/hrun.txt" &
HRUN_PID=$!
# Wait for the listener, then give the detector its two hysteresis ticks.
"$BIN" check-metrics "http://127.0.0.1:$HPORT/metrics" --retries 20 \
    || { kill "$HRUN_PID" 2>/dev/null; cat "$SMOKE/hrun.txt"; exit 1; }
sleep 1
# /healthz must serve the machine verdict and the probe subcommand must
# agree; both shapes are valid JSON documents.
curl -sf "http://127.0.0.1:$HPORT/debug/pool" >"$SMOKE/pool.json" \
    || { kill "$HRUN_PID" 2>/dev/null; echo "/debug/pool unreachable"; exit 1; }
"$BIN" check-json "$SMOKE/pool.json"
grep -q '"queue_depth"' "$SMOKE/pool.json" && grep -q '"shards"' "$SMOKE/pool.json" \
    || { kill "$HRUN_PID" 2>/dev/null; echo "/debug/pool missing fields"; exit 1; }
curl -s "http://127.0.0.1:$HPORT/debug/sites" >"$SMOKE/sites.json"
"$BIN" check-json "$SMOKE/sites.json"
curl -s "http://127.0.0.1:$HPORT/healthz" >"$SMOKE/healthz.json"
"$BIN" check-json "$SMOKE/healthz.json"
wait "$HRUN_PID" || { cat "$SMOKE/hrun.txt"; exit 1; }
# The chaos run must have tripped at least one detector (recorded in the
# stats document's health block), and the clean run below exactly zero.
TRIPS=$(grep -o '"total_trips":[0-9]*' "$SMOKE/hstats.json" | grep -o '[0-9]*$')
[[ -n "$TRIPS" && "$TRIPS" -gt 0 ]] \
    || { echo "chaos run tripped no health detector (total_trips=${TRIPS:-missing})"; exit 1; }
"$BIN" run wordcount --org "$SMOKE/org" --local-cores 2 --cloud-cores 2 \
    --time-scale 2e-5 --stats-out "$SMOKE/cleanstats.json" >/dev/null 2>&1
CLEAN=$(grep -o '"total_trips":[0-9]*' "$SMOKE/cleanstats.json" | grep -o '[0-9]*$')
[[ "$CLEAN" == "0" ]] \
    || { echo "clean run tripped a detector (total_trips=${CLEAN:-missing})"; exit 1; }
echo "   health: chaos trips $TRIPS detector transition(s), clean run 0"
# Fatal chaos: one lease attempt + a crawling cloud abandons jobs, the run
# fails, and the black box must hold the three post-mortem artifacts in
# the shapes the offline tooling consumes. The crash-<ts>/ dump lands in
# the run's cwd, so run from $SMOKE (with $BIN resolved absolute first).
ABSBIN="$PWD/$BIN"
if ( cd "$SMOKE" && "$ABSBIN" run wordcount --org "$SMOKE/org" --local-cores 2 \
    --cloud-cores 2 --time-scale 2e-3 --metrics-addr "127.0.0.1:$HPORT" \
    --chaos 'seed=5,lease=0.0005:0.0005:0.001:1,slow=cloud:40' \
    >/dev/null 2>&1 ); then
    echo "abandoning chaos run unexpectedly passed"; exit 1
fi
BOX=$(ls -d "$SMOKE"/crash-* 2>/dev/null | head -1 || true)
[[ -n "$BOX" ]] || { echo "fatal run left no crash-<ts>/ black box"; exit 1; }
"$BIN" explain "$BOX/events.jsonl" >"$SMOKE/boxexplain.txt"
grep -q 'verdict:' "$SMOKE/boxexplain.txt" \
    || { echo "explain could not read the black-box event window"; exit 1; }
"$BIN" check-metrics "$BOX/metrics.prom"
"$BIN" check-json "$BOX/health.json"
echo "   black box: $(basename "$BOX") readable by explain/check-metrics/check-json"

echo "== bench: pipeline overlap (quick) writes a valid BENCH_runtime.json"
# Stash the committed artifact before the bench rewrites it: the fresh run
# is diffed against this baseline below with a 10% regression gate.
cp BENCH_runtime.json "$SMOKE/bench_base.json"
# The bench itself asserts result-equivalence at every depth; --quick keeps
# Criterion's sampling short while the artifact (written before sampling,
# from a full best-of-7 quantification) stays meaningful.
cargo bench -p cloudburst-bench --bench pipeline_overlap "${CARGO_FLAGS[@]}" -- --quick
"$BIN" check-json BENCH_runtime.json
# Pipelining must never make the S3Sim-heavy scenario slower end to end.
SPEEDUP=$(sed -n 's/.*"speedup":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[[ -n "$SPEEDUP" ]] || { echo "BENCH_runtime.json is missing 'speedup'"; exit 1; }
awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.0) }' \
    || { echo "pipeline overlap regressed: speedup $SPEEDUP < 1.0x"; exit 1; }
echo "   overlap speedup: ${SPEEDUP}x"
# Metrics must stay effectively free: ≤1% on the metered re-run of the
# best pipelined depth.
OVERHEAD=$(sed -n 's/.*"metrics_overhead":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[[ -n "$OVERHEAD" ]] || { echo "BENCH_runtime.json is missing 'metrics_overhead'"; exit 1; }
awk -v o="$OVERHEAD" 'BEGIN { exit !(o <= 1.01) }' \
    || { echo "metrics overhead regressed: ${OVERHEAD}x > 1.01x"; exit 1; }
echo "   metrics overhead: ${OVERHEAD}x"
# The always-on flight recorder must be just as free: full event emission
# teed into the bounded ring, ≤1% on the same interleaved measurement.
FOVERHEAD=$(sed -n 's/.*"flight_recorder_overhead":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[[ -n "$FOVERHEAD" ]] \
    || { echo "BENCH_runtime.json is missing 'flight_recorder_overhead'"; exit 1; }
awk -v o="$FOVERHEAD" 'BEGIN { exit !(o <= 1.01) }' \
    || { echo "flight recorder overhead regressed: ${FOVERHEAD}x > 1.01x"; exit 1; }
echo "   flight recorder overhead: ${FOVERHEAD}x"
# The attribution corridor's verdict flip: the traced serial run must be
# WAN-bound and every pipelined run compute-bound (p < f < 2p by
# construction — pipelining hides p of each fetch, leaving f − p < p).
DOMS=$(grep -o '"dominant":"[a-z_]*"' BENCH_runtime.json \
    | sed 's/.*:"\(.*\)"/\1/' | tr '\n' ' ')
[[ "$DOMS" == "wan_fetch compute compute " ]] \
    || { echo "attribution verdicts did not flip with depth: [$DOMS]"; exit 1; }
echo "   attribution verdicts by depth: $DOMS"
# Cross-run regression gate: the fresh artifact vs the committed baseline.
# Gated leaves are the wall-time/latency/speedup metrics; attribution
# shares are informational by key design.
"$BIN" bench-diff "$SMOKE/bench_base.json" BENCH_runtime.json --threshold 10 \
    || { echo "benchmark regressed vs the committed BENCH_runtime.json"; exit 1; }

echo "== bench: coded ablation (quick) writes a valid BENCH_coded.json"
# The bench itself asserts exact results on the real runtime; the artifact
# (full 25-seed DES sweep, written before sampling) carries the tails.
cargo bench -p cloudburst-bench --bench coded_ablation "${CARGO_FLAGS[@]}" -- --quick
"$BIN" check-json BENCH_coded.json
# Proactive replicas must beat (or tie) reactive speculation on the p99
# completion tail of the straggler scenario — the reason r > 1 exists.
RATIO=$(sed -n 's/.*"p99_ratio_coded_over_speculation":\([0-9.eE+-]*\).*/\1/p' BENCH_coded.json)
[[ -n "$RATIO" ]] \
    || { echo "BENCH_coded.json is missing 'p99_ratio_coded_over_speculation'"; exit 1; }
awk -v r="$RATIO" 'BEGIN { exit !(r <= 1.0) }' \
    || { echo "coded p99 trails speculation p99: ratio $RATIO > 1.0"; exit 1; }
echo "   coded p99 / speculation p99: ${RATIO}"

echo "== bench: grant engine at scale (quick) writes a valid BENCH_scale.json"
# The quick shape (10k jobs, 64 simulated slaves) drains all four modes —
# channel/TCP, single-job/batched — and the bench itself asserts bit-exact
# checksums per mode; here we gate the artifact and the headline claim.
cargo run --release -p cloudburst-bench --bin repro "${CARGO_FLAGS[@]}" -- scale --quick
"$BIN" check-json BENCH_scale.json
# Every mode must have drained its pool exactly once, bit-for-bit.
grep -q '"all_checksums_ok":true' BENCH_scale.json \
    || { echo "a scale mode lost or duplicated grants"; exit 1; }
# Batching must never grant slower than the per-RPC baseline, on either
# control plane (the full-scale target is >=10x on TCP; quick CI boxes only
# gate the direction).
CHAN=$(sed -n 's/.*"channel":\([0-9.eE+-]*\).*/\1/p' BENCH_scale.json)
TCP=$(sed -n 's/.*"tcp":\([0-9.eE+-]*\).*/\1/p' BENCH_scale.json)
[[ -n "$CHAN" && -n "$TCP" ]] \
    || { echo "BENCH_scale.json is missing the speedup block"; exit 1; }
awk -v s="$CHAN" 'BEGIN { exit !(s >= 1.0) }' \
    || { echo "batched channel grants regressed: ${CHAN}x < 1.0x"; exit 1; }
awk -v s="$TCP" 'BEGIN { exit !(s >= 1.0) }' \
    || { echo "batched TCP grants regressed: ${TCP}x < 1.0x"; exit 1; }
echo "   batched/single grants per sec — channel: ${CHAN}x, tcp: ${TCP}x"

echo "OK"
