#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the build and the full test suite
# must pass before a change lands, followed by hygiene gates (rustfmt,
# clippy across every target) and an observability smoke test that runs a
# chaos workload end-to-end and round-trips each emitted artifact through
# `cloudburst check-json`.
#
# Usage: ./verify.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
    export CARGO_NET_OFFLINE=1
    CARGO_FLAGS+=(--offline)
fi

echo "== tier-1: cargo build --release"
cargo build --release "${CARGO_FLAGS[@]}"

echo "== tier-1: cargo test -q"
cargo test -q "${CARGO_FLAGS[@]}"

echo "== hygiene: cargo fmt --check"
# House style lives in rustfmt.toml; drift fails the run.
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    echo "   (rustfmt not installed — skipped)"
fi

echo "== hygiene: cargo clippy --workspace -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace "${CARGO_FLAGS[@]}" -- -D warnings
else
    echo "   (clippy not installed — skipped)"
fi

echo "== smoke: chaos run emits valid, complete observability artifacts"
BIN=target/release/cloudburst
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
"$BIN" generate wordcount --out "$SMOKE/words.bin" --units 60000 --vocab 500
"$BIN" organize --data "$SMOKE/words.bin" --unit-size 16 --chunk-units 512 \
    --files 8 --out "$SMOKE/org" --local-frac 0.5
# Leases are millisecond-scale: the whole chaos run takes ~10 ms on the
# pooled fetch path, and a lease must be able to expire mid-run.
"$BIN" run wordcount --org "$SMOKE/org" --local-cores 3 --cloud-cores 3 \
    --time-scale 2e-5 \
    --chaos 'seed=5,storage=0.2,slow=cloud:0:0.5,crash=local:1:2,lease=0.004:0.004:0.02:8,hb=0.05:30' \
    --stats-out "$SMOKE/stats.json" --events-out "$SMOKE/events.jsonl" \
    --trace-out "$SMOKE/trace.json"
# Every artifact must parse with the framework's own validator...
"$BIN" check-json "$SMOKE/stats.json"
"$BIN" check-json "$SMOKE/events.jsonl"
"$BIN" check-json "$SMOKE/trace.json"
# ...the stats must carry the fault ledger...
grep -q '"faults"' "$SMOKE/stats.json"
# ...and the chaos plan's structural consequences must appear in the trace:
# crashed workers' leases get reaped, the slowed slave triggers speculation,
# and the imbalance it creates drives cross-site steals.
for ev in lease-reap speculate steal; do
    grep -q "\"name\":\"$ev\"" "$SMOKE/trace.json" \
        || { echo "trace.json is missing '$ev' events"; exit 1; }
done
echo "   artifacts valid"

echo "== smoke: live metrics agree with the report, mid-run and at exit"
# A dataset big enough that the run takes a few seconds at --time-scale 2.0,
# so the /metrics endpoint can be scraped while the burst is in flight.
"$BIN" generate wordcount --out "$SMOKE/big.bin" --units 600000 --vocab 500
"$BIN" organize --data "$SMOKE/big.bin" --unit-size 16 --chunk-units 4096 \
    --files 8 --out "$SMOKE/borg" --local-frac 0.4
MPORT=$((20000 + RANDOM % 20000))
"$BIN" run wordcount --org "$SMOKE/borg" --local-cores 3 --cloud-cores 3 \
    --time-scale 2.0 --chaos 'seed=5,storage=0.1' \
    --watch --metrics-addr "127.0.0.1:$MPORT" \
    --metrics-out "$SMOKE/metrics.prom" --stats-out "$SMOKE/mstats.json" \
    2>"$SMOKE/watch.txt" &
RUN_PID=$!
# Mid-run: the exposition must parse strictly and show live core counters.
"$BIN" check-metrics "http://127.0.0.1:$MPORT/metrics" --retries 20 \
    || { kill "$RUN_PID" 2>/dev/null; cat "$SMOKE/watch.txt"; exit 1; }
wait "$RUN_PID" || { cat "$SMOKE/watch.txt"; exit 1; }
# At exit: the final scrape's ledgers must equal the report exactly.
"$BIN" check-metrics "$SMOKE/metrics.prom" --against-stats "$SMOKE/mstats.json"
# The stats must carry the dollar-cost block and --watch must have printed.
grep -q '"cost"' "$SMOKE/mstats.json"
grep -q '^\[watch ' "$SMOKE/watch.txt" \
    || { echo "no --watch lines on stderr"; cat "$SMOKE/watch.txt"; exit 1; }
echo "   metrics valid"

echo "== bench: pipeline overlap (quick) writes a valid BENCH_runtime.json"
# The bench itself asserts result-equivalence at every depth; --quick keeps
# Criterion's sampling short while the artifact (written before sampling,
# from a full best-of-3 quantification) stays meaningful.
cargo bench -p cloudburst-bench --bench pipeline_overlap "${CARGO_FLAGS[@]}" -- --quick
"$BIN" check-json BENCH_runtime.json
# Pipelining must never make the S3Sim-heavy scenario slower end to end.
SPEEDUP=$(sed -n 's/.*"speedup":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[[ -n "$SPEEDUP" ]] || { echo "BENCH_runtime.json is missing 'speedup'"; exit 1; }
awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.0) }' \
    || { echo "pipeline overlap regressed: speedup $SPEEDUP < 1.0x"; exit 1; }
echo "   overlap speedup: ${SPEEDUP}x"
# Metrics must stay effectively free: ≤1% on the metered re-run of the
# best pipelined depth.
OVERHEAD=$(sed -n 's/.*"metrics_overhead":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[[ -n "$OVERHEAD" ]] || { echo "BENCH_runtime.json is missing 'metrics_overhead'"; exit 1; }
awk -v o="$OVERHEAD" 'BEGIN { exit !(o <= 1.01) }' \
    || { echo "metrics overhead regressed: ${OVERHEAD}x > 1.01x"; exit 1; }
echo "   metrics overhead: ${OVERHEAD}x"

echo "OK"
