#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the build and the full test suite
# must pass before a change lands, followed by hygiene gates (rustfmt,
# clippy across every target) and an observability smoke test that runs a
# chaos workload end-to-end and round-trips each emitted artifact through
# `cloudburst check-json`.
#
# Usage: ./verify.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
    export CARGO_NET_OFFLINE=1
    CARGO_FLAGS+=(--offline)
fi

echo "== tier-1: cargo build --release"
cargo build --release "${CARGO_FLAGS[@]}"

echo "== tier-1: cargo test -q"
cargo test -q "${CARGO_FLAGS[@]}"

echo "== hygiene: cargo fmt --check"
# House style lives in rustfmt.toml; drift fails the run.
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check
else
    echo "   (rustfmt not installed — skipped)"
fi

echo "== hygiene: cargo clippy --workspace -D warnings"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace "${CARGO_FLAGS[@]}" -- -D warnings
else
    echo "   (clippy not installed — skipped)"
fi

echo "== smoke: chaos run emits valid, complete observability artifacts"
BIN=target/release/cloudburst
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
"$BIN" generate wordcount --out "$SMOKE/words.bin" --units 60000 --vocab 500
"$BIN" organize --data "$SMOKE/words.bin" --unit-size 16 --chunk-units 512 \
    --files 8 --out "$SMOKE/org" --local-frac 0.5
# Leases are millisecond-scale: the whole chaos run takes ~10 ms on the
# pooled fetch path, and a lease must be able to expire mid-run.
"$BIN" run wordcount --org "$SMOKE/org" --local-cores 3 --cloud-cores 3 \
    --time-scale 2e-5 \
    --chaos 'seed=5,storage=0.2,slow=cloud:0:0.5,crash=local:1:2,lease=0.004:0.004:0.02:8,hb=0.05:30' \
    --stats-out "$SMOKE/stats.json" --events-out "$SMOKE/events.jsonl" \
    --trace-out "$SMOKE/trace.json"
# Every artifact must parse with the framework's own validator...
"$BIN" check-json "$SMOKE/stats.json"
"$BIN" check-json "$SMOKE/events.jsonl"
"$BIN" check-json "$SMOKE/trace.json"
# ...the stats must carry the fault ledger...
grep -q '"faults"' "$SMOKE/stats.json"
# ...and the chaos plan's structural consequences must appear in the trace:
# crashed workers' leases get reaped, the slowed slave triggers speculation,
# and the imbalance it creates drives cross-site steals.
for ev in lease-reap speculate steal; do
    grep -q "\"name\":\"$ev\"" "$SMOKE/trace.json" \
        || { echo "trace.json is missing '$ev' events"; exit 1; }
done
echo "   artifacts valid"

echo "== bench: pipeline overlap (quick) writes a valid BENCH_runtime.json"
# The bench itself asserts result-equivalence at every depth; --quick keeps
# Criterion's sampling short while the artifact (written before sampling,
# from a full best-of-3 quantification) stays meaningful.
cargo bench -p cloudburst-bench --bench pipeline_overlap "${CARGO_FLAGS[@]}" -- --quick
"$BIN" check-json BENCH_runtime.json
# Pipelining must never make the S3Sim-heavy scenario slower end to end.
SPEEDUP=$(sed -n 's/.*"speedup":\([0-9.eE+-]*\).*/\1/p' BENCH_runtime.json)
[[ -n "$SPEEDUP" ]] || { echo "BENCH_runtime.json is missing 'speedup'"; exit 1; }
awk -v s="$SPEEDUP" 'BEGIN { exit !(s >= 1.0) }' \
    || { echo "pipeline overlap regressed: speedup $SPEEDUP < 1.0x"; exit 1; }
echo "   overlap speedup: ${SPEEDUP}x"

echo "OK"
