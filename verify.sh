#!/usr/bin/env bash
# Tier-1 verification (see ROADMAP.md): the build and the full test suite
# must pass before a change lands. Extra hygiene checks (fmt, clippy) run
# when the tools are installed, and are skipped — loudly — when not.
#
# Usage: ./verify.sh [--offline]
set -euo pipefail
cd "$(dirname "$0")"

CARGO_FLAGS=()
if [[ "${1:-}" == "--offline" ]]; then
    export CARGO_NET_OFFLINE=1
    CARGO_FLAGS+=(--offline)
fi

echo "== tier-1: cargo build --release"
cargo build --release "${CARGO_FLAGS[@]}"

echo "== tier-1: cargo test -q"
cargo test -q "${CARGO_FLAGS[@]}"

echo "== hygiene (advisory): cargo fmt --check"
# The codebase is hand-formatted wider than rustfmt defaults, so fmt drift
# is reported but not fatal.
if cargo fmt --version >/dev/null 2>&1; then
    cargo fmt --all -- --check || echo "   (fmt drift — advisory only)"
else
    echo "   (rustfmt not installed — skipped)"
fi

echo "== hygiene: cargo clippy"
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --lib --bins --examples "${CARGO_FLAGS[@]}" -- -D warnings
else
    echo "   (clippy not installed — skipped)"
fi

echo "OK"
