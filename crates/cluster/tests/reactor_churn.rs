//! Slave-churn regression: the reactor head must reclaim per-connection
//! state (sockets, read/write buffers) on every disconnect. A leak here is
//! invisible at the paper's two-master scale and fatal at thousands of
//! simulated slaves, so this cycles 500 connect → hello → bye → drop
//! rounds against one head and asserts the process's open-fd count stays
//! flat and the head's churn accounting balances exactly.

use cloudburst_cluster::net::{serve_head_with, TcpHeadOptions};
use cloudburst_cluster::wire::{
    read_hello_ack, write_hello, write_to_head, MasterToHead, WIRE_VERSION,
};
use cloudburst_core::{BatchPolicy, DataIndex, JobPool, LayoutParams, SiteId};
use std::io::Write;
use std::net::{TcpListener, TcpStream};
use std::thread;

#[cfg(target_os = "linux")]
fn open_fds() -> usize {
    std::fs::read_dir("/proc/self/fd").map(|d| d.count()).unwrap_or(0)
}

#[test]
fn five_hundred_connect_disconnect_cycles_leak_nothing() {
    const CYCLES: usize = 500;
    let idx =
        DataIndex::build(64, LayoutParams { unit_size: 8, units_per_chunk: 4, n_files: 1 }, |_| {
            SiteId::LOCAL
        })
        .unwrap();
    let pool = JobPool::from_index(&idx, BatchPolicy::Fixed(2));
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let head =
        thread::spawn(move || serve_head_with(&listener, pool, CYCLES, &TcpHeadOptions::default()));

    // Let the first few dozen cycles settle allocator/socket warm-up, then
    // demand a flat fd count for the remaining 450.
    #[cfg(target_os = "linux")]
    let mut baseline = 0usize;
    for cycle in 0..CYCLES {
        let mut stream = TcpStream::connect(addr).unwrap();
        write_hello(&mut stream, SiteId::LOCAL, WIRE_VERSION, 8).unwrap();
        stream.flush().unwrap();
        assert_eq!(read_hello_ack(&mut stream).unwrap(), WIRE_VERSION);
        write_to_head(&mut stream, &MasterToHead::Bye).unwrap();
        stream.flush().unwrap();
        drop(stream);

        #[cfg(target_os = "linux")]
        {
            if cycle == 49 {
                baseline = open_fds();
            } else if cycle > 49 && cycle % 100 == 99 {
                // Slack of a few fds: the reactor may not have swept the
                // last EOFs yet, and the fd-dir read itself holds one.
                let now = open_fds();
                assert!(
                    now <= baseline + 8,
                    "fd count grew from {baseline} to {now} by cycle {cycle}: connection leak"
                );
            }
        }
        let _ = cycle;
    }

    let report = head.join().unwrap().unwrap();
    assert_eq!(report.conns_opened, CYCLES as u64, "every connect must be accepted");
    assert_eq!(
        report.conns_reclaimed, CYCLES as u64,
        "every connection's state must be reclaimed on disconnect"
    );
    assert_eq!(report.completions, 0);
}
