//! Frame-decoding robustness: a head node reads frames from remote site
//! masters over the wire, so arbitrary garbage bytes must never panic the
//! decoder, allocate unboundedly, or loop — every malformed input has to
//! come back as a clean `io::Error` (or clean EOF).

use bytes::BytesMut;
use cloudburst_cluster::wire::{
    encode_frame, read_ack, read_batch_reply, read_from_master, read_grant, read_hello_ack,
    try_read_frame, AckEntry, Frame,
};
use cloudburst_core::{ChunkId, SiteId};
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    #[test]
    fn garbage_never_panics_the_master_frame_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut cur = Cursor::new(bytes);
        // Decode as many frames as the buffer yields. Errors and EOF are
        // fine; panics and runaway allocations are not. Every successful
        // decode consumes at least the tag byte, so this terminates.
        while let Ok(Some(_)) = read_from_master(&mut cur) {}
    }

    #[test]
    fn garbage_never_panics_the_grant_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = read_grant(&mut Cursor::new(bytes));
    }

    #[test]
    fn garbage_never_panics_the_ack_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = read_ack(&mut Cursor::new(bytes));
    }

    #[test]
    fn every_tag_with_a_corrupt_body_errors_cleanly(
        tag in any::<u8>(),
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = vec![tag];
        buf.extend(&body);
        let _ = read_from_master(&mut Cursor::new(&buf[..]));
        let _ = read_grant(&mut Cursor::new(&buf[..]));
        let _ = read_ack(&mut Cursor::new(&buf[..]));
        let _ = read_hello_ack(&mut Cursor::new(&buf[..]));
        let _ = read_batch_reply(&mut Cursor::new(&buf[..]));
    }

    // ---- v2: the reactor's incremental decoder and the batched replies ----

    #[test]
    fn garbage_never_panics_the_incremental_frame_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut buf = BytesMut::from(&bytes[..]);
        // Every Ok(Some(_)) consumes at least the tag byte and Ok(None)
        // ends the loop, so this terminates; garbage must surface as a
        // clean Err, never a panic or a runaway allocation.
        while let Ok(Some(_)) = try_read_frame(&mut buf) {
            if buf.is_empty() {
                break;
            }
        }
    }

    #[test]
    fn incremental_decoder_is_prefix_stable(
        site in any::<u16>(),
        want in any::<u16>(),
        jobs in prop::collection::vec((any::<u32>(), any::<bool>()), 0..16),
        cut_seed in any::<u32>(),
    ) {
        // Any prefix of a valid frame decodes to "incomplete", never an
        // error; the full frame round-trips exactly.
        let frame = Frame::AckBatch {
            site: SiteId(site),
            want,
            entries: jobs.iter().map(|&(j, ok)| AckEntry { job: ChunkId(j), ok }).collect(),
        };
        let bytes = encode_frame(&frame);
        let cut = cut_seed as usize % bytes.len();
        let mut partial = BytesMut::from(&bytes[..cut]);
        prop_assert!(matches!(try_read_frame(&mut partial), Ok(None)));
        let mut full = BytesMut::from(&bytes[..]);
        let decoded = try_read_frame(&mut full).unwrap();
        prop_assert_eq!(decoded, Some(frame));
        prop_assert!(full.is_empty());
    }

    #[test]
    fn garbage_never_panics_the_batch_reply_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = read_batch_reply(&mut Cursor::new(bytes));
    }

    #[test]
    fn garbage_never_panics_the_hello_ack_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = read_hello_ack(&mut Cursor::new(bytes));
    }
}
