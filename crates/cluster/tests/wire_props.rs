//! Frame-decoding robustness: a head node reads frames from remote site
//! masters over the wire, so arbitrary garbage bytes must never panic the
//! decoder, allocate unboundedly, or loop — every malformed input has to
//! come back as a clean `io::Error` (or clean EOF).

use cloudburst_cluster::wire::{read_ack, read_from_master, read_grant};
use proptest::prelude::*;
use std::io::Cursor;

proptest! {
    #[test]
    fn garbage_never_panics_the_master_frame_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let mut cur = Cursor::new(bytes);
        // Decode as many frames as the buffer yields. Errors and EOF are
        // fine; panics and runaway allocations are not. Every successful
        // decode consumes at least the tag byte, so this terminates.
        while let Ok(Some(_)) = read_from_master(&mut cur) {}
    }

    #[test]
    fn garbage_never_panics_the_grant_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..512),
    ) {
        let _ = read_grant(&mut Cursor::new(bytes));
    }

    #[test]
    fn garbage_never_panics_the_ack_decoder(
        bytes in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let _ = read_ack(&mut Cursor::new(bytes));
    }

    #[test]
    fn every_tag_with_a_corrupt_body_errors_cleanly(
        tag in any::<u8>(),
        body in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut buf = vec![tag];
        buf.extend(&body);
        let _ = read_from_master(&mut Cursor::new(&buf[..]));
        let _ = read_grant(&mut Cursor::new(&buf[..]));
        let _ = read_ack(&mut Cursor::new(&buf[..]));
    }
}
