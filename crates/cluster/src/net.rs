//! TCP deployment mode: the head ↔ master control plane over real sockets.
//!
//! The in-process runtime wires Fig. 2's node roles with channels; this
//! module runs the same protocol over TCP using the [`crate::wire`] codec,
//! so job assignment, work stealing, completion reporting and the terminal
//! handshake genuinely cross a wire. Slaves still live in their master's
//! process (as in the paper, where slaves and master share a cluster), and
//! the data plane goes through the usual [`StoreRouter`].
//!
//! Fault tolerance maps naturally onto the transport: any frame from a
//! master doubles as its liveness beacon (idle masters send explicit ping
//! frames), the head's per-connection read timeout is the death detector,
//! and an EOF without an orderly `Bye` — a crashed or revoked site — gets
//! the site evacuated and its work re-homed to the survivors.
//!
//! [`run_hybrid_tcp`] is a drop-in alternative to
//! [`run_hybrid`](crate::runtime::run_hybrid) that binds a loopback head
//! server and connects one control socket per site.

use crate::error::RunError;
use crate::protocol::{HeadReport, MasterMsg};
use crate::report::{assemble_report, SiteOutcome};
use crate::router::StoreRouter;
use crate::runtime::{
    collect_global, merge_site_outcome, meter_stores, panic_msg, run_slave, FaultPolicy,
    ReportSink, RunOutcome, RuntimeConfig, SlaveCtx, SlaveMetrics, WireMode,
};
use crate::wire::{
    read_ack, read_batch_reply, read_grant, read_hello_ack, write_ack_batch, write_hello,
    write_to_head, AckEntry, MasterToHead, WIRE_VERSION,
};
use cloudburst_core::{
    ns_since, ChunkId, DataIndex, Event, EventKind, FaultPlan, HeartbeatConfig, JobPool,
    MasterPool, Metrics, Reduction, SiteId, Take, Telemetry,
};
use cloudburst_storage::{ChaosStore, ChunkStore};
use crossbeam::channel::{unbounded, Receiver};
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Fault-tolerance options for the TCP head. [`Default`] reproduces the
/// classic fault-oblivious server.
pub struct TcpHeadOptions {
    /// Per-connection read timeout (`timeout`); a connection silent past it
    /// is declared dead and its site evacuated. Masters beacon at
    /// `interval` with ping frames.
    pub heartbeat: Option<HeartbeatConfig>,
    /// Origin of the head's clock for lease deadlines.
    pub epoch: Instant,
    /// Run the lease reaper and treat connection failures as site deaths
    /// (evacuate) instead of run-fatal errors.
    pub ft_active: bool,
    /// Live-metrics handle for the reactor's connection/backoff gauges
    /// (`cloudburst_head_*`); [`Metrics::off`] publishes nothing.
    pub metrics: Metrics,
}

impl Default for TcpHeadOptions {
    fn default() -> TcpHeadOptions {
        TcpHeadOptions {
            heartbeat: None,
            epoch: Instant::now(),
            ft_active: false,
            metrics: Metrics::off(),
        }
    }
}

/// Serve the head's control protocol to exactly `n_masters` connections,
/// then return the head's report. All connections are served from one
/// poll-reactor thread (see [`crate::reactor`]); grants go through the
/// sharded pool, so v2 peers get lock-free batched grants and v1 peers the
/// legacy policy path.
pub fn serve_head(
    listener: &TcpListener,
    pool: JobPool,
    n_masters: usize,
) -> io::Result<HeadReport> {
    serve_head_with(listener, pool, n_masters, &TcpHeadOptions::default())
}

/// [`serve_head`] with the fault-tolerance machinery of `options`: an
/// inline lease reaper, per-connection death detection, and site
/// evacuation on unclean disconnects.
pub fn serve_head_with(
    listener: &TcpListener,
    pool: JobPool,
    n_masters: usize,
    options: &TcpHeadOptions,
) -> io::Result<HeadReport> {
    let (mut pool, mut report) =
        crate::reactor::serve_head_reactor(listener, pool, n_masters, options)?;
    // A dead site can strand work when every surviving master drained and
    // disconnected before its jobs were re-homed: record it as abandoned so
    // the runtime reports a partial result instead of a silent one.
    if !pool.all_done() && !pool.dead_sites().is_empty() {
        pool.abandon_unfinished();
    }
    report.counts = pool.site_counts().clone();
    report.abandoned = pool.abandoned() as u64;
    report.faults = pool.faults().clone();
    report.dead_sites = pool.dead_sites();
    Ok(report)
}

/// A transport wrapper that severs all I/O once the chaos plan declares the
/// site dead — the TCP-mode analogue of pulling the site's uplink.
struct ChaosTransport<T> {
    inner: T,
    site: SiteId,
    chaos: Option<Arc<FaultPlan>>,
    epoch: Instant,
}

impl<T> ChaosTransport<T> {
    fn new(inner: T, site: SiteId, chaos: Option<Arc<FaultPlan>>, epoch: Instant) -> Self {
        ChaosTransport { inner, site, chaos, epoch }
    }

    fn check(&self) -> io::Result<()> {
        let dead = self
            .chaos
            .as_deref()
            .is_some_and(|p| p.site_dead(self.site, self.epoch.elapsed().as_secs_f64()));
        if dead {
            Err(io::Error::new(io::ErrorKind::ConnectionReset, "chaos: site uplink severed"))
        } else {
            Ok(())
        }
    }
}

impl<T: Read> Read for ChaosTransport<T> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.check()?;
        self.inner.read(buf)
    }
}

impl<T: Write> Write for ChaosTransport<T> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.check()?;
        self.inner.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.check()?;
        self.inner.flush()
    }
}

/// Per-master fault-tolerance context for the TCP deployment mode.
struct TcpMasterFt {
    heartbeat: Option<HeartbeatConfig>,
    chaos: Option<Arc<FaultPlan>>,
    epoch: Instant,
    telemetry: Telemetry,
}

impl TcpMasterFt {
    fn site_dead(&self, site: SiteId) -> bool {
        self.chaos.as_deref().is_some_and(|p| p.site_dead(site, self.epoch.elapsed().as_secs_f64()))
    }
}

/// The master side of the control connection plus the local slave-facing
/// loop: serve slaves from the site pool, refilling over TCP, forwarding
/// completion/failure reports upstream (with the head's merge verdict
/// relayed back when a slave asked for an ack).
///
/// `credit` is the v2 prefetch-credit window in jobs; `0` skips the
/// `Hello` handshake entirely and speaks the v1 single-job protocol. A
/// positive credit still falls back to v1 when the head answers the
/// handshake with version 1.
fn run_tcp_master(
    site: SiteId,
    low_watermark: usize,
    control_latency_real: f64,
    rx: &Receiver<MasterMsg>,
    stream: TcpStream,
    ft: TcpMasterFt,
    credit: usize,
) -> io::Result<MasterPool> {
    let mut pool = MasterPool::new(site, low_watermark);
    let result = tcp_master_loop(site, control_latency_real, rx, stream, &ft, &mut pool, credit);
    match result {
        // A chaos-revoked site dies mid-conversation by design; its broken
        // socket is the failure signal the head is meant to see, not a
        // run-fatal error in this process.
        Err(_) if ft.site_dead(site) => Ok(pool),
        Err(e) => Err(e),
        Ok(()) => Ok(pool),
    }
}

/// Build the (chaos-wrapped, buffered) transports, negotiate the protocol
/// version, and dispatch to the v1 or v2 loop.
fn tcp_master_loop(
    site: SiteId,
    control_latency_real: f64,
    rx: &Receiver<MasterMsg>,
    stream: TcpStream,
    ft: &TcpMasterFt,
    pool: &mut MasterPool,
    credit: usize,
) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader =
        BufReader::new(ChaosTransport::new(stream.try_clone()?, site, ft.chaos.clone(), ft.epoch));
    let mut writer = BufWriter::new(ChaosTransport::new(stream, site, ft.chaos.clone(), ft.epoch));
    let mut version = 1;
    if credit > 0 {
        let window = credit.min(usize::from(u16::MAX)) as u16;
        write_hello(&mut writer, site, WIRE_VERSION, window)?;
        version = read_hello_ack(&mut reader)?;
    }
    if version >= 2 {
        master_loop_v2(site, control_latency_real, rx, ft, pool, credit, &mut reader, &mut writer)
    } else {
        master_loop_v1(site, control_latency_real, rx, ft, pool, &mut reader, &mut writer)
    }
}

/// Polling pace against an empty head: capped exponential backoff instead
/// of a fixed short period.
const POLL_MIN: Duration = Duration::from_micros(100);
const POLL_CAP: Duration = Duration::from_millis(5);

/// The mailbox tick: how long the master sleeps in `recv_timeout` when no
/// slave request is parked (halved heartbeat interval when beaconing).
fn master_tick(ft: &TcpMasterFt) -> Duration {
    ft.heartbeat.map_or(Duration::from_millis(50), |h| {
        Duration::from_secs_f64((h.interval / 2.0).max(1e-4))
    })
}

/// The classic v1 single-job lockstep loop: one `Request`/grant round-trip
/// per refill, one `Complete`/ack round-trip per acked report.
fn master_loop_v1(
    site: SiteId,
    control_latency_real: f64,
    rx: &Receiver<MasterMsg>,
    ft: &TcpMasterFt,
    pool: &mut MasterPool,
    reader: &mut impl Read,
    writer: &mut impl Write,
) -> io::Result<()> {
    fn refill(
        pool: &mut MasterPool,
        site: SiteId,
        latency: f64,
        writer: &mut impl Write,
        reader: &mut impl Read,
    ) -> io::Result<()> {
        sleep_secs(latency);
        write_to_head(writer, &MasterToHead::Request { site })?;
        let batch = read_grant(reader)?;
        sleep_secs(latency);
        pool.refill(batch);
        Ok(())
    }

    // Any frame doubles as a liveness beacon; explicit pings cover idle
    // stretches. `last_sent` tracks the last time anything went upstream.
    let mut last_sent = Instant::now();
    let tick = master_tick(ft);
    let mut idle_wait = POLL_MIN;

    // Slaves blocked on empty non-terminal grants must not stop the master
    // from forwarding its other slaves' completion reports — the head can
    // only mark the pool terminal once it has seen those completions. So
    // the master never blocks while holding unserved requests: it parks
    // them in `waiting` and keeps draining its mailbox.
    let mut waiting: VecDeque<crossbeam::channel::Sender<Take>> = VecDeque::new();
    let mut disconnected = false;
    while !(disconnected && waiting.is_empty()) {
        if ft.site_dead(site) {
            // Simulated spot revocation: vanish without a Bye. The dropped
            // socket is the head's cue to evacuate this site.
            return Ok(());
        }
        if let Some(hb) = ft.heartbeat {
            if last_sent.elapsed().as_secs_f64() >= hb.interval {
                write_to_head(writer, &MasterToHead::Ping { site })?;
                ft.telemetry.emit(Event::at(ns_since(ft.epoch), EventKind::Heartbeat).site(site));
                last_sent = Instant::now();
            }
        }
        let wait = if waiting.is_empty() { tick } else { idle_wait };
        let msg = match rx.recv_timeout(wait) {
            Ok(m) => {
                idle_wait = POLL_MIN;
                Some(m)
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if !waiting.is_empty() {
                    idle_wait = (idle_wait * 2).min(POLL_CAP);
                }
                None
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                disconnected = true;
                None
            }
        };
        match msg {
            Some(MasterMsg::Complete { job, reply }) => {
                let want_ack = reply.is_some();
                write_to_head(writer, &MasterToHead::Complete { job, site, want_ack })?;
                last_sent = Instant::now();
                if let Some(reply) = reply {
                    // Lockstep: the ack frame is the next head→master frame.
                    let merged = read_ack(reader)?;
                    let _ = reply.send(merged);
                }
            }
            Some(MasterMsg::Failed { job }) => {
                write_to_head(writer, &MasterToHead::Failed { job, site })?;
                last_sent = Instant::now();
            }
            Some(MasterMsg::GetJob { reply }) => waiting.push_back(reply),
            None => {}
        }
        // Serve as many parked requests as the pool allows right now.
        while let Some(reply) = waiting.front() {
            match pool.take() {
                Take::Job(j) => {
                    let _ = reply.send(Take::Job(j));
                    waiting.pop_front();
                    idle_wait = POLL_MIN;
                    if pool.needs_refill() {
                        refill(pool, site, control_latency_real, writer, reader)?;
                        last_sent = Instant::now();
                    }
                }
                Take::Drained => {
                    let _ = reply.send(Take::Drained);
                    waiting.pop_front();
                }
                Take::NeedRefill => {
                    refill(pool, site, control_latency_real, writer, reader)?;
                    last_sent = Instant::now();
                    if pool.queued() == 0 && !pool.is_drained() {
                        // Nothing to hand out yet: go back to the mailbox
                        // (the backed-off recv_timeout above paces polling).
                        break;
                    }
                }
            }
        }
    }
    // All slaves hung up. Granted-but-undispatched jobs would stay assigned
    // at the head forever (and without leases nothing reaps them), stalling
    // the surviving sites that poll for the work — hand the queue back as
    // failures so the head requeues it before the orderly goodbye.
    for job in pool.drain_queued() {
        write_to_head(writer, &MasterToHead::Failed { job: job.chunk.id, site })?;
    }
    write_to_head(writer, &MasterToHead::Bye)?;
    Ok(())
}

/// Serve parked slave requests from the local pool until it runs dry.
/// Returns whether any job was handed out.
fn serve_waiting(
    pool: &mut MasterPool,
    waiting: &mut VecDeque<crossbeam::channel::Sender<Take>>,
) -> bool {
    let mut progressed = false;
    while let Some(reply) = waiting.front() {
        match pool.take() {
            Take::Job(j) => {
                let _ = reply.send(Take::Job(j));
                waiting.pop_front();
                progressed = true;
            }
            Take::Drained => {
                let _ = reply.send(Take::Drained);
                waiting.pop_front();
            }
            Take::NeedRefill => break,
        }
    }
    progressed
}

/// The v2 batched loop. Completion/failure reports accumulate locally and
/// go upstream as one `AckBatch` per burst; the lockstep [`BatchReply`]
/// carries the merge verdicts, the head's revoked-lease notices (the
/// master drops those jobs from its queue — whole-batch fencing), and a
/// refill grant sized to the remaining prefetch credit, so a slave never
/// stalls on a grant round-trip while credit remains.
#[allow(clippy::too_many_arguments)] // mirrors master_loop_v1's surface plus the credit window
fn master_loop_v2(
    site: SiteId,
    control_latency_real: f64,
    rx: &Receiver<MasterMsg>,
    ft: &TcpMasterFt,
    pool: &mut MasterPool,
    credit: usize,
    reader: &mut impl Read,
    writer: &mut impl Write,
) -> io::Result<()> {
    /// One lockstep exchange: ship the accumulated reports, apply the
    /// verdicts/revocations, and refill from the piggybacked grant (`want`
    /// = remaining credit; 0 during shutdown, when only verdicts matter).
    fn exchange(
        pool: &mut MasterPool,
        site: SiteId,
        latency: f64,
        want: u16,
        reports: &mut Vec<(ChunkId, bool, Option<crossbeam::channel::Sender<bool>>)>,
        writer: &mut impl Write,
        reader: &mut impl Read,
    ) -> io::Result<()> {
        sleep_secs(latency);
        let entries: Vec<AckEntry> =
            reports.iter().map(|&(job, ok, _)| AckEntry { job, ok }).collect();
        write_ack_batch(writer, site, want, &entries)?;
        let reply = read_batch_reply(reader)?;
        sleep_secs(latency);
        if reply.verdicts.len() != entries.len() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "batch reply verdict count mismatch",
            ));
        }
        for ((_, _, ack), verdict) in reports.drain(..).zip(reply.verdicts) {
            if let Some(ack) = ack {
                let _ = ack.send(verdict);
            }
        }
        // Fencing: every undelivered job the head revoked dies here, before
        // the refill can resurrect a fresh copy of the same chunk.
        pool.drop_revoked(&reply.revoked);
        pool.refill(reply.grant);
        Ok(())
    }

    let mut last_sent = Instant::now();
    let tick = master_tick(ft);
    let mut idle_wait = POLL_MIN;
    let mut waiting: VecDeque<crossbeam::channel::Sender<Take>> = VecDeque::new();
    let mut reports: Vec<(ChunkId, bool, Option<crossbeam::channel::Sender<bool>>)> = Vec::new();
    let mut disconnected = false;
    while !(disconnected && waiting.is_empty() && reports.is_empty()) {
        if ft.site_dead(site) {
            return Ok(());
        }
        if let Some(hb) = ft.heartbeat {
            if last_sent.elapsed().as_secs_f64() >= hb.interval {
                write_to_head(writer, &MasterToHead::Ping { site })?;
                ft.telemetry.emit(Event::at(ns_since(ft.epoch), EventKind::Heartbeat).site(site));
                last_sent = Instant::now();
            }
        }
        let wait = if waiting.is_empty() { tick } else { idle_wait };
        match rx.recv_timeout(wait) {
            Ok(m) => {
                idle_wait = POLL_MIN;
                let mut next = Some(m);
                // Batch the whole burst: drain everything already queued so
                // one exchange carries every report that is ready.
                while let Some(msg) = next {
                    match msg {
                        MasterMsg::Complete { job, reply } => reports.push((job, true, reply)),
                        MasterMsg::Failed { job } => reports.push((job, false, None)),
                        MasterMsg::GetJob { reply } => waiting.push_back(reply),
                    }
                    next = rx.try_recv().ok();
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Timeout) => {
                if !waiting.is_empty() {
                    idle_wait = (idle_wait * 2).min(POLL_CAP);
                }
            }
            Err(crossbeam::channel::RecvTimeoutError::Disconnected) => disconnected = true,
        }
        if serve_waiting(pool, &mut waiting) {
            idle_wait = POLL_MIN;
        }
        // One exchange covers every upstream need of this iteration:
        // shipping reports, feeding starved slaves, and topping the credit
        // window back up before it runs dry.
        let starving = !waiting.is_empty() && pool.queued() == 0 && !pool.is_drained();
        let top_up = !pool.is_drained() && pool.needs_refill() && credit > pool.queued();
        if !reports.is_empty() || starving || top_up {
            let want = credit.saturating_sub(pool.queued()).min(usize::from(u16::MAX)) as u16;
            exchange(pool, site, control_latency_real, want, &mut reports, writer, reader)?;
            last_sent = Instant::now();
            if serve_waiting(pool, &mut waiting) {
                idle_wait = POLL_MIN;
            }
        }
    }
    // All slaves hung up: flush any still-buffered verdictless reports
    // (want 0 — no refill), hand undispatched credit back as failures, and
    // say goodbye. (The loop condition drains `reports` before exit, so
    // this flush only fires when the mailbox disconnected mid-burst.)
    if !reports.is_empty() {
        exchange(pool, site, control_latency_real, 0, &mut reports, writer, reader)?;
    }
    for job in pool.drain_queued() {
        write_to_head(writer, &MasterToHead::Failed { job: job.chunk.id, site })?;
    }
    write_to_head(writer, &MasterToHead::Bye)?;
    Ok(())
}

/// [`run_hybrid`](crate::runtime::run_hybrid) with the head ↔ master control
/// plane over TCP on the loopback interface.
///
/// # Errors
/// Everything [`run_hybrid`](crate::runtime::run_hybrid) can report, plus
/// socket errors surfaced as [`RunError::Io`].
pub fn run_hybrid_tcp<R: Reduction>(
    app: &R,
    index: &DataIndex,
    stores: BTreeMap<SiteId, Arc<dyn ChunkStore>>,
    config: &RuntimeConfig,
) -> Result<RunOutcome<R::RObj>, RunError> {
    let active: Vec<(SiteId, u32)> =
        config.env.active_sites().into_iter().map(|s| (s, config.env.cores_at(s))).collect();
    if active.is_empty() {
        return Err(RunError::NoWorkers);
    }
    for (&site, &n) in index.chunks_per_site().iter() {
        if n > 0 && !stores.contains_key(&site) {
            return Err(RunError::NoStoreForSite(site));
        }
    }
    let head_site = active[0].0;

    let chaos = config.ft.chaos.clone().filter(|p| !p.is_empty());
    let stores = meter_stores(stores, &config.metrics);
    let stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = match &chaos {
        Some(plan) if plan.storage_error_rate > 0.0 => stores
            .into_iter()
            .map(|(s, st)| (s, Arc::new(ChaosStore::new(st, plan.clone())) as Arc<dyn ChunkStore>))
            .collect(),
        _ => stores,
    };
    let mut router = StoreRouter::new(stores, &config.topology, config.fetch, config.time_scale);
    router.set_metrics(&config.metrics);
    router.set_concurrency(active.iter().map(|&(_, c)| c as usize).sum());
    if let Some(retry) = config.ft.retry {
        router.set_retry(retry);
    }
    router.set_replicated(config.redundancy > 1);
    let mut pool = JobPool::from_index(index, config.batch_policy);
    if let FaultPolicy::Retry { max_attempts } = config.fault_policy {
        pool.set_max_attempts(max_attempts);
    }
    if let Some(lease) = config.ft.lease {
        pool.set_lease(lease);
    }
    pool.set_speculation(config.ft.speculate);
    pool.set_redundancy(config.redundancy);
    pool.set_sink(config.telemetry.clone());
    pool.set_metrics(config.metrics.clone());
    let ft_active = config.ft.active();
    // Replica grants can complete a chunk twice even with FT off, so coded
    // runs gate merges on the head's verdict exactly like the FT stack.
    let dedup_active = ft_active || config.redundancy > 1;

    let listener = TcpListener::bind("127.0.0.1:0")?;
    let head_addr: SocketAddr = listener.local_addr()?;
    let n_masters = active.len();
    let epoch = Instant::now();

    let mut site_outcomes: Vec<Result<SiteOutcome<R::RObj>, RunError>> = Vec::new();
    let mut head_result: Option<Result<HeadReport, RunError>> = None;

    std::thread::scope(|scope| {
        let head_options = TcpHeadOptions {
            heartbeat: config.ft.heartbeat,
            epoch,
            ft_active,
            metrics: config.metrics.clone(),
        };
        let head_handle = scope.spawn(move || {
            serve_head_with(&listener, pool, n_masters, &head_options).map_err(RunError::Io)
        });

        let coordinators: Vec<_> = active
            .iter()
            .map(|&(site, cores)| {
                let router = &router;
                let chaos = chaos.clone();
                scope.spawn(move || -> Result<SiteOutcome<R::RObj>, RunError> {
                    let control_latency = config.topology.link(site.0, head_site.0).latency;
                    // The prefetch-credit window generalizes the slave-side
                    // pipeline depth: enough granted-but-unprocessed jobs to
                    // keep every core and prefetcher busy across one grant
                    // round-trip, plus the refill watermark.
                    let credit = match config.wire {
                        WireMode::SingleJob => 0,
                        WireMode::Batched { window: 0 } => {
                            cores as usize * config.pipeline_depth.max(1) + config.low_watermark + 1
                        }
                        WireMode::Batched { window } => window,
                    };
                    let (master_tx, master_rx) = unbounded::<MasterMsg>();
                    let stream = TcpStream::connect(head_addr)?;

                    let mut results: Vec<Result<(R::RObj, crate::runtime::SlaveStats), RunError>> =
                        Vec::new();
                    let mut master_result: Option<io::Result<MasterPool>> = None;
                    std::thread::scope(|site_scope| {
                        let master = site_scope.spawn({
                            let chaos = chaos.clone();
                            || {
                                run_tcp_master(
                                    site,
                                    config.low_watermark,
                                    control_latency * config.time_scale,
                                    &master_rx,
                                    stream,
                                    TcpMasterFt {
                                        heartbeat: config.ft.heartbeat,
                                        chaos,
                                        epoch,
                                        telemetry: config.telemetry.clone(),
                                    },
                                    credit,
                                )
                            }
                        });
                        let handles: Vec<_> = (0..cores)
                            .map(|worker| {
                                let master_tx = master_tx.clone();
                                site_scope.spawn({
                                    let master_tx_for_reports = master_tx.clone();
                                    let ctx = SlaveCtx {
                                        site,
                                        worker,
                                        cancel: None, // TCP mode relies on dedup alone
                                        chaos: chaos.clone(),
                                        ack_gated: dedup_active,
                                        epoch,
                                        telemetry: config.telemetry.clone(),
                                        metrics: SlaveMetrics::new(&config.metrics, site, worker),
                                    };
                                    move || {
                                        run_slave(
                                            app,
                                            ctx,
                                            &master_tx,
                                            &ReportSink::Master(&master_tx_for_reports),
                                            router,
                                            config,
                                        )
                                    }
                                })
                            })
                            .collect();
                        drop(master_tx);
                        results = handles
                            .into_iter()
                            .map(|h| {
                                h.join()
                                    .unwrap_or_else(|p| Err(RunError::WorkerPanic(panic_msg(&p))))
                            })
                            .collect();
                        master_result = Some(
                            master.join().unwrap_or_else(|p| Err(io::Error::other(panic_msg(&p)))),
                        );
                    });
                    master_result.expect("master joined")?;

                    let mut robjs = Vec::with_capacity(results.len());
                    let mut slaves = Vec::with_capacity(results.len());
                    for r in results {
                        let (robj, stats) = r?;
                        robjs.push(robj);
                        slaves.push(stats);
                    }
                    // A chaos-revoked site loses its accumulated results;
                    // the head re-runs its jobs at the survivors.
                    let revoked = chaos
                        .as_deref()
                        .is_some_and(|p| p.site_dead(site, epoch.elapsed().as_secs_f64()));
                    Ok(merge_site_outcome(site, robjs, slaves, revoked, epoch, &config.telemetry))
                })
            })
            .collect();

        site_outcomes = coordinators
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| Err(RunError::WorkerPanic(panic_msg(&p)))))
            .collect();
        head_result =
            Some(head_handle.join().unwrap_or_else(|p| Err(RunError::WorkerPanic(panic_msg(&p)))));
    });

    let head = head_result.expect("head joined in scope")?;
    let mut outcomes = Vec::with_capacity(site_outcomes.len());
    for o in site_outcomes {
        outcomes.push(o?);
    }
    if head.abandoned > 0 {
        return Err(RunError::Incomplete { abandoned: head.faults.abandoned_jobs.clone() });
    }
    // Fencing: a site the head declared dead had all its work requeued, so
    // merging its robj anyway would double-count every re-executed job.
    for o in &mut outcomes {
        if head.dead_sites.contains(&o.site) {
            o.robj = None;
        }
    }

    // Global reduction (same accounting as the in-process runtime, with the
    // same overlapped inter-site transfers).
    let (final_robj, global_reduction, total_time) =
        collect_global(&mut outcomes, head_site, config, epoch);
    let result = final_robj.ok_or(RunError::NothingProcessed)?;

    let report = assemble_report(&config.env.name, &outcomes, &head, global_reduction, total_time);
    Ok(RunOutcome { result, report, head })
}

fn sleep_secs(secs: f64) {
    if secs > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(secs));
    }
}
