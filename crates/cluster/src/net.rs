//! TCP deployment mode: the head ↔ master control plane over real sockets.
//!
//! The in-process runtime wires Fig. 2's node roles with channels; this
//! module runs the same protocol over TCP using the [`crate::wire`] codec,
//! so job assignment, work stealing, completion reporting and the terminal
//! handshake genuinely cross a wire. Slaves still live in their master's
//! process (as in the paper, where slaves and master share a cluster), and
//! the data plane goes through the usual [`StoreRouter`].
//!
//! [`run_hybrid_tcp`] is a drop-in alternative to
//! [`run_hybrid`](crate::runtime::run_hybrid) that binds a loopback head
//! server and connects one control socket per site.

use crate::error::RunError;
use crate::protocol::{HeadReport, MasterMsg};
use crate::router::StoreRouter;
use crate::runtime::{run_slave, panic_msg, ReportSink, RunOutcome, RuntimeConfig, FaultPolicy};
use crate::wire::{read_from_master, read_grant, write_grant, write_to_head, MasterToHead};
use cloudburst_core::{
    global_reduce, Breakdown, DataIndex, JobPool, MasterPool, Merge, Reduction, ReductionObject,
    RunReport, SiteId, SiteStats, Take,
};
use cloudburst_storage::ChunkStore;
use crossbeam::channel::{unbounded, Receiver};
use parking_lot::Mutex;
use std::collections::{BTreeMap, VecDeque};
use std::io::{self, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Serve the head's control protocol to exactly `n_masters` connections,
/// then return the head's report. Each connection gets its own thread; the
/// pool is shared behind a mutex (the head's work per message is microseconds,
/// so the lock is never contended at protocol rates).
pub fn serve_head(
    listener: &TcpListener,
    pool: JobPool,
    n_masters: usize,
) -> io::Result<HeadReport> {
    let shared = Arc::new(Mutex::new((pool, HeadReport::default())));
    let mut handles = Vec::with_capacity(n_masters);
    for _ in 0..n_masters {
        let (stream, _addr) = listener.accept()?;
        let shared = Arc::clone(&shared);
        handles.push(std::thread::spawn(move || serve_one_master(stream, &shared)));
    }
    for h in handles {
        h.join()
            .map_err(|_| io::Error::other("head handler panicked"))??;
    }
    let (pool, mut report) = Arc::try_unwrap(shared)
        .map_err(|_| io::Error::other("head state still shared"))?
        .into_inner();
    report.counts = pool.site_counts().clone();
    report.abandoned = pool.abandoned() as u64;
    Ok(report)
}

type SharedHead = Mutex<(JobPool, HeadReport)>;

fn serve_one_master(stream: TcpStream, shared: &SharedHead) -> io::Result<()> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    while let Some(msg) = read_from_master(&mut reader)? {
        match msg {
            MasterToHead::Request { site } => {
                let batch = {
                    let mut guard = shared.lock();
                    guard.1.requests += 1;
                    guard.0.request_for(site)
                };
                write_grant(&mut writer, &batch)?;
            }
            MasterToHead::Complete { job, site } => {
                let mut guard = shared.lock();
                guard.1.completions += 1;
                guard.0.complete(job, site);
            }
            MasterToHead::Failed { job, site } => {
                let mut guard = shared.lock();
                guard.1.failures += 1;
                guard.0.fail(job, site);
            }
            MasterToHead::Bye => break,
        }
    }
    writer.flush()
}

/// The master side of the control connection plus the local slave-facing
/// loop: serve slaves from the site pool, refilling over TCP, forwarding
/// completion/failure reports upstream.
fn run_tcp_master(
    site: SiteId,
    low_watermark: usize,
    control_latency_real: f64,
    rx: &Receiver<MasterMsg>,
    stream: TcpStream,
) -> io::Result<MasterPool> {
    stream.set_nodelay(true)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = BufWriter::new(stream);
    let mut pool = MasterPool::new(site, low_watermark);

    fn refill(
        pool: &mut MasterPool,
        site: SiteId,
        latency: f64,
        writer: &mut impl Write,
        reader: &mut impl io::Read,
    ) -> io::Result<()> {
        sleep_secs(latency);
        write_to_head(writer, &MasterToHead::Request { site })?;
        let batch = read_grant(reader)?;
        sleep_secs(latency);
        pool.refill(batch);
        Ok(())
    }

    // Slaves blocked on empty non-terminal grants must not stop the master
    // from forwarding its other slaves' completion reports — the head can
    // only mark the pool terminal once it has seen those completions. So
    // the master never blocks while holding unserved requests: it parks
    // them in `waiting` and keeps draining its mailbox.
    let mut waiting: VecDeque<crossbeam::channel::Sender<Take>> = VecDeque::new();
    let mut disconnected = false;
    while !(disconnected && waiting.is_empty()) {
        let msg = if waiting.is_empty() {
            match rx.recv() {
                Ok(m) => Some(m),
                Err(_) => {
                    disconnected = true;
                    None
                }
            }
        } else {
            match rx.recv_timeout(Duration::from_micros(200)) {
                Ok(m) => Some(m),
                Err(crossbeam::channel::RecvTimeoutError::Timeout) => None,
                Err(crossbeam::channel::RecvTimeoutError::Disconnected) => {
                    disconnected = true;
                    None
                }
            }
        };
        match msg {
            Some(MasterMsg::Complete { job }) => {
                write_to_head(&mut writer, &MasterToHead::Complete { job, site })?;
            }
            Some(MasterMsg::Failed { job }) => {
                write_to_head(&mut writer, &MasterToHead::Failed { job, site })?;
            }
            Some(MasterMsg::GetJob { reply }) => waiting.push_back(reply),
            None => {}
        }
        // Serve as many parked requests as the pool allows right now.
        while let Some(reply) = waiting.front() {
            match pool.take() {
                Take::Job(j) => {
                    let _ = reply.send(Take::Job(j));
                    waiting.pop_front();
                    if pool.needs_refill() {
                        refill(&mut pool, site, control_latency_real, &mut writer, &mut reader)?;
                    }
                }
                Take::Drained => {
                    let _ = reply.send(Take::Drained);
                    waiting.pop_front();
                }
                Take::NeedRefill => {
                    refill(&mut pool, site, control_latency_real, &mut writer, &mut reader)?;
                    if pool.queued() == 0 && !pool.is_drained() {
                        // Nothing to hand out yet: go back to the mailbox
                        // (the recv_timeout above paces the polling).
                        break;
                    }
                }
            }
        }
    }
    write_to_head(&mut writer, &MasterToHead::Bye)?;
    Ok(pool)
}

/// [`run_hybrid`](crate::runtime::run_hybrid) with the head ↔ master control
/// plane over TCP on the loopback interface.
///
/// # Errors
/// Everything [`run_hybrid`](crate::runtime::run_hybrid) can report, plus
/// socket errors surfaced as [`RunError::Io`].
pub fn run_hybrid_tcp<R: Reduction>(
    app: &R,
    index: &DataIndex,
    stores: BTreeMap<SiteId, Arc<dyn ChunkStore>>,
    config: &RuntimeConfig,
) -> Result<RunOutcome<R::RObj>, RunError> {
    let active: Vec<(SiteId, u32)> = config
        .env
        .active_sites()
        .into_iter()
        .map(|s| (s, config.env.cores_at(s)))
        .collect();
    if active.is_empty() {
        return Err(RunError::NoWorkers);
    }
    for (&site, &n) in index.chunks_per_site().iter() {
        if n > 0 && !stores.contains_key(&site) {
            return Err(RunError::NoStoreForSite(site));
        }
    }
    let head_site = active[0].0;

    let router = StoreRouter::new(stores, &config.topology, config.fetch, config.time_scale);
    let mut pool = JobPool::from_index(index, config.batch_policy);
    if let FaultPolicy::Retry { max_attempts } = config.fault_policy {
        pool.set_max_attempts(max_attempts);
    }
    let listener = TcpListener::bind("127.0.0.1:0")?;
    let head_addr: SocketAddr = listener.local_addr()?;
    let n_masters = active.len();
    let epoch = Instant::now();

    struct SiteOutcome<O> {
        site: SiteId,
        robj: Option<O>,
        slaves: Vec<crate::runtime::SlaveStats>,
        local_merge: f64,
        finish: f64,
    }

    let mut site_outcomes: Vec<Result<SiteOutcome<R::RObj>, RunError>> = Vec::new();
    let mut head_result: Option<Result<HeadReport, RunError>> = None;

    std::thread::scope(|scope| {
        let head_handle =
            scope.spawn(move || serve_head(&listener, pool, n_masters).map_err(RunError::Io));

        let coordinators: Vec<_> = active
            .iter()
            .map(|&(site, cores)| {
                let router = &router;
                scope.spawn(move || -> Result<SiteOutcome<R::RObj>, RunError> {
                    let control_latency = config.topology.link(site.0, head_site.0).latency;
                    let (master_tx, master_rx) = unbounded::<MasterMsg>();
                    let stream = TcpStream::connect(head_addr)?;

                    let mut results: Vec<Result<(R::RObj, crate::runtime::SlaveStats), RunError>> =
                        Vec::new();
                    let mut master_result: Option<io::Result<MasterPool>> = None;
                    std::thread::scope(|site_scope| {
                        let master = site_scope.spawn(|| {
                            run_tcp_master(
                                site,
                                config.low_watermark,
                                control_latency * config.time_scale,
                                &master_rx,
                                stream,
                            )
                        });
                        let handles: Vec<_> = (0..cores)
                            .map(|_| {
                                let master_tx = master_tx.clone();
                                site_scope.spawn({
                                    let master_tx_for_reports = master_tx.clone();
                                    move || {
                                        run_slave(
                                            app,
                                            site,
                                            &master_tx,
                                            &ReportSink::Master(&master_tx_for_reports),
                                            router,
                                            config,
                                            epoch,
                                        )
                                    }
                                })
                            })
                            .collect();
                        drop(master_tx);
                        results = handles
                            .into_iter()
                            .map(|h| {
                                h.join()
                                    .unwrap_or_else(|p| Err(RunError::WorkerPanic(panic_msg(&p))))
                            })
                            .collect();
                        master_result = Some(
                            master
                                .join()
                                .unwrap_or_else(|p| Err(io::Error::other(
                                    panic_msg(&p),
                                ))),
                        );
                    });
                    master_result.expect("master joined")?;

                    let mut robjs = Vec::with_capacity(results.len());
                    let mut slaves = Vec::with_capacity(results.len());
                    for r in results {
                        let (robj, stats) = r?;
                        robjs.push(robj);
                        slaves.push(stats);
                    }
                    let merge_start = Instant::now();
                    let robj = global_reduce(robjs);
                    let local_merge = merge_start.elapsed().as_secs_f64();
                    let finish = epoch.elapsed().as_secs_f64();
                    Ok(SiteOutcome { site, robj, slaves, local_merge, finish })
                })
            })
            .collect();

        site_outcomes = coordinators
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| Err(RunError::WorkerPanic(panic_msg(&p)))))
            .collect();
        head_result = Some(
            head_handle
                .join()
                .unwrap_or_else(|p| Err(RunError::WorkerPanic(panic_msg(&p)))),
        );
    });

    let head = head_result.expect("head joined in scope")?;
    let mut outcomes = Vec::with_capacity(site_outcomes.len());
    for o in site_outcomes {
        outcomes.push(o?);
    }
    if head.abandoned > 0 {
        return Err(RunError::Incomplete { abandoned: head.abandoned });
    }

    // Global reduction (same accounting as the in-process runtime).
    let compute_finish = outcomes.iter().map(|o| o.finish).fold(0.0_f64, f64::max);
    let gr_start = Instant::now();
    let mut final_robj: Option<R::RObj> = None;
    for o in &mut outcomes {
        let Some(robj) = o.robj.take() else { continue };
        if o.site != head_site {
            let link = config.topology.link(o.site.0, head_site.0);
            let modelled = link.transfer_time(robj.byte_size() as u64);
            std::thread::sleep(Duration::from_secs_f64(modelled * config.time_scale));
        }
        final_robj = Some(match final_robj.take() {
            None => robj,
            Some(mut acc) => {
                acc.merge(robj);
                acc
            }
        });
    }
    let global_reduction = gr_start.elapsed().as_secs_f64();
    let total_time = epoch.elapsed().as_secs_f64();
    let result = final_robj.ok_or(RunError::NothingProcessed)?;

    let mut report = RunReport {
        env: config.env.name.clone(),
        global_reduction,
        total_time,
        ..RunReport::default()
    };
    for o in &outcomes {
        let n = o.slaves.len().max(1) as f64;
        let site_compute_finish = o.slaves.iter().map(|s| s.finish).fold(0.0_f64, f64::max);
        let mean_proc = o.slaves.iter().map(|s| s.processing).sum::<f64>() / n;
        let mean_retr = o.slaves.iter().map(|s| s.retrieval).sum::<f64>() / n;
        let mean_barrier =
            o.slaves.iter().map(|s| site_compute_finish - s.finish).sum::<f64>() / n;
        let idle = compute_finish - o.finish;
        report.sites.insert(
            o.site,
            SiteStats {
                breakdown: Breakdown {
                    processing: mean_proc,
                    retrieval: mean_retr,
                    sync: mean_barrier + o.local_merge + idle,
                },
                finish_time: o.finish,
                idle,
                jobs: head.counts.get(&o.site).copied().unwrap_or_default(),
                remote_bytes: o.slaves.iter().map(|s| s.remote_bytes).sum(),
            },
        );
    }
    Ok(RunOutcome { result, report, head })
}

fn sleep_secs(secs: f64) {
    if secs > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(secs));
    }
}
