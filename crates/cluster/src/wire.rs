//! Binary wire format for the head ↔ master control protocol.
//!
//! The control plane is small and fixed-shape, so the codec is hand-rolled
//! little-endian (the workspace ships no serde format crate): one tag byte,
//! fixed fields, and chunk metadata in the same record layout as the
//! on-disk index. Used by [`crate::net`] to run the protocol over TCP.
//!
//! The decoder is hardened against a malicious or corrupted peer: length
//! prefixes are capped before any allocation, unknown tags are rejected,
//! and truncation surfaces as an error — garbage bytes can never panic or
//! balloon memory.

use bytes::{Buf, BufMut, BytesMut};
use cloudburst_core::{ByteSize, ChunkId, ChunkMeta, FileId, JobBatch, SiteId};
use std::io::{self, ErrorKind, Read, Write};

/// Messages a master sends to the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterToHead {
    /// Request a batch of jobs for `site`.
    Request {
        /// Requesting site.
        site: SiteId,
    },
    /// Report a completed job.
    Complete {
        /// The finished job.
        job: ChunkId,
        /// Processing site.
        site: SiteId,
        /// When set, the head must answer with an ack frame carrying its
        /// merge/discard verdict (fault-tolerant mode).
        want_ack: bool,
    },
    /// Report a failed job.
    Failed {
        /// The failed job.
        job: ChunkId,
        /// Reporting site.
        site: SiteId,
    },
    /// Liveness beacon (fault-tolerant mode): resets the head's
    /// per-connection silence clock without requesting anything.
    Ping {
        /// Beaconing site.
        site: SiteId,
    },
    /// Orderly goodbye: the master is done.
    Bye,
}

const TAG_REQUEST: u8 = 1;
const TAG_COMPLETE: u8 = 2;
const TAG_FAILED: u8 = 3;
const TAG_BYE: u8 = 4;
const TAG_GRANT: u8 = 5;
const TAG_ACK: u8 = 6;
const TAG_PING: u8 = 7;

/// The most jobs a single grant frame may carry. Real grants are tens of
/// jobs; the cap bounds the decode allocation at ~2 MiB so a hostile length
/// prefix cannot balloon memory.
pub const MAX_GRANT_JOBS: usize = 1 << 16;

fn err(msg: &str) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg)
}

/// Encode one master→head message.
#[must_use]
pub fn encode_to_head(msg: &MasterToHead) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(16);
    match *msg {
        MasterToHead::Request { site } => {
            buf.put_u8(TAG_REQUEST);
            buf.put_u16_le(site.0);
        }
        MasterToHead::Complete { job, site, want_ack } => {
            buf.put_u8(TAG_COMPLETE);
            buf.put_u32_le(job.0);
            buf.put_u16_le(site.0);
            buf.put_u8(u8::from(want_ack));
        }
        MasterToHead::Failed { job, site } => {
            buf.put_u8(TAG_FAILED);
            buf.put_u32_le(job.0);
            buf.put_u16_le(site.0);
        }
        MasterToHead::Ping { site } => {
            buf.put_u8(TAG_PING);
            buf.put_u16_le(site.0);
        }
        MasterToHead::Bye => buf.put_u8(TAG_BYE),
    }
    buf.to_vec()
}

/// Read one master→head message from a stream. Returns `None` on a clean
/// EOF before any byte of a message.
pub fn read_from_master(r: &mut impl Read) -> io::Result<Option<MasterToHead>> {
    let mut tag = [0u8; 1];
    match r.read_exact(&mut tag) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let msg = match tag[0] {
        TAG_REQUEST | TAG_PING => {
            let mut b = [0u8; 2];
            r.read_exact(&mut b)?;
            let site = SiteId(u16::from_le_bytes(b));
            if tag[0] == TAG_REQUEST {
                MasterToHead::Request { site }
            } else {
                MasterToHead::Ping { site }
            }
        }
        TAG_COMPLETE => {
            let mut b = [0u8; 7];
            r.read_exact(&mut b)?;
            let job = ChunkId(u32::from_le_bytes(b[0..4].try_into().expect("job id")));
            let site = SiteId(u16::from_le_bytes(b[4..6].try_into().expect("site id")));
            MasterToHead::Complete { job, site, want_ack: b[6] != 0 }
        }
        TAG_FAILED => {
            let mut b = [0u8; 6];
            r.read_exact(&mut b)?;
            let job = ChunkId(u32::from_le_bytes(b[0..4].try_into().expect("job id")));
            let site = SiteId(u16::from_le_bytes(b[4..6].try_into().expect("site id")));
            MasterToHead::Failed { job, site }
        }
        TAG_BYE => MasterToHead::Bye,
        other => return Err(err(&format!("unknown control tag {other}"))),
    };
    Ok(Some(msg))
}

/// Write one master→head message to a stream.
pub fn write_to_head(w: &mut impl Write, msg: &MasterToHead) -> io::Result<()> {
    w.write_all(&encode_to_head(msg))?;
    w.flush()
}

/// Encode a head→master grant (the reply to `Request`). Each job record
/// carries the causal span the head allocated for the execution, so the
/// slave-side telemetry of a TCP-mode run joins the head-side events in one
/// DAG (0 when the batch was built without tracking).
#[must_use]
pub fn encode_grant(batch: &JobBatch) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(8 + batch.jobs.len() * GRANT_RECORD);
    buf.put_u8(TAG_GRANT);
    buf.put_u8(u8::from(batch.stolen));
    buf.put_u8(u8::from(batch.terminal));
    buf.put_u32_le(batch.jobs.len() as u32);
    for (i, c) in batch.jobs.iter().enumerate() {
        buf.put_u32_le(c.id.0);
        buf.put_u32_le(c.file.0);
        buf.put_u64_le(c.offset);
        buf.put_u64_le(c.len);
        buf.put_u64_le(c.n_units);
        buf.put_u16_le(c.site.0);
        buf.put_u64_le(batch.span_of(i));
    }
    buf.to_vec()
}

/// Bytes per job record in a grant frame.
const GRANT_RECORD: usize = 42;

/// Write a grant to a stream.
pub fn write_grant(w: &mut impl Write, batch: &JobBatch) -> io::Result<()> {
    w.write_all(&encode_grant(batch))?;
    w.flush()
}

/// Read a grant from a stream.
pub fn read_grant(r: &mut impl Read) -> io::Result<JobBatch> {
    let mut head = [0u8; 7];
    r.read_exact(&mut head)?;
    if head[0] != TAG_GRANT {
        return Err(err(&format!("expected grant, got tag {}", head[0])));
    }
    let stolen = head[1] != 0;
    let terminal = head[2] != 0;
    let n = u32::from_le_bytes(head[3..7].try_into().expect("count")) as usize;
    if n > MAX_GRANT_JOBS {
        return Err(err("grant length prefix unreasonably large"));
    }
    let mut body = vec![0u8; n * GRANT_RECORD];
    r.read_exact(&mut body)?;
    let mut buf = body.as_slice();
    let mut jobs = Vec::with_capacity(n);
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        jobs.push(ChunkMeta {
            id: ChunkId(buf.get_u32_le()),
            file: FileId(buf.get_u32_le()),
            offset: buf.get_u64_le() as ByteSize,
            len: buf.get_u64_le() as ByteSize,
            n_units: buf.get_u64_le(),
            site: SiteId(buf.get_u16_le()),
        });
        spans.push(buf.get_u64_le());
    }
    Ok(JobBatch { jobs, spans, stolen, terminal })
}

/// Write a completion ack (head → master, fault-tolerant mode): was the
/// reported result merged (`true`) or is it a duplicate to discard?
pub fn write_ack(w: &mut impl Write, merged: bool) -> io::Result<()> {
    w.write_all(&[TAG_ACK, u8::from(merged)])?;
    w.flush()
}

/// Read a completion ack from a stream.
pub fn read_ack(r: &mut impl Read) -> io::Result<bool> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    if b[0] != TAG_ACK {
        return Err(err(&format!("expected ack, got tag {}", b[0])));
    }
    Ok(b[1] != 0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn chunk(id: u32) -> ChunkMeta {
        ChunkMeta {
            id: ChunkId(id),
            file: FileId(id / 3),
            offset: u64::from(id) * 128,
            len: 128,
            n_units: 16,
            site: SiteId::CLOUD,
        }
    }

    #[test]
    fn control_messages_roundtrip() {
        let msgs = [
            MasterToHead::Request { site: SiteId::CLOUD },
            MasterToHead::Complete { job: ChunkId(42), site: SiteId::LOCAL, want_ack: false },
            MasterToHead::Complete { job: ChunkId(43), site: SiteId::LOCAL, want_ack: true },
            MasterToHead::Failed { job: ChunkId(7), site: SiteId(3) },
            MasterToHead::Ping { site: SiteId::CLOUD },
            MasterToHead::Bye,
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_to_head(m));
        }
        let mut cursor = Cursor::new(stream);
        for m in &msgs {
            assert_eq!(read_from_master(&mut cursor).unwrap(), Some(*m));
        }
        assert_eq!(read_from_master(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn grants_roundtrip() {
        for (n, stolen, terminal) in [(0usize, false, true), (1, true, false), (5, false, false)] {
            let batch = JobBatch {
                jobs: (0..n as u32).map(chunk).collect(),
                spans: (0..n as u64).map(|i| 100 + i).collect(),
                stolen,
                terminal,
            };
            let mut cursor = Cursor::new(encode_grant(&batch));
            assert_eq!(read_grant(&mut cursor).unwrap(), batch);
        }
    }

    #[test]
    fn untracked_grants_decode_with_zero_spans() {
        // A batch built without span tracking encodes span 0 per record and
        // decodes back to an explicit all-zero span list.
        let batch =
            JobBatch { jobs: vec![chunk(9)], spans: Vec::new(), stolen: true, terminal: false };
        let decoded = read_grant(&mut Cursor::new(encode_grant(&batch))).unwrap();
        assert_eq!(decoded.jobs, batch.jobs);
        assert_eq!(decoded.spans, vec![0]);
        assert_eq!(decoded.span_of(0), 0);
    }

    #[test]
    fn acks_roundtrip() {
        for merged in [false, true] {
            let mut bytes = Vec::new();
            write_ack(&mut bytes, merged).unwrap();
            assert_eq!(read_ack(&mut Cursor::new(bytes)).unwrap(), merged);
        }
        // A grant where an ack is expected is rejected.
        let grant = encode_grant(&JobBatch::empty(false));
        assert!(read_ack(&mut Cursor::new(grant)).is_err());
    }

    #[test]
    fn truncated_grant_errors() {
        let batch = JobBatch {
            jobs: vec![chunk(1), chunk(2)],
            spans: vec![1, 2],
            stolen: false,
            terminal: false,
        };
        let bytes = encode_grant(&batch);
        for cut in [0, 3, 8, bytes.len() - 1] {
            let mut cursor = Cursor::new(&bytes[..cut]);
            assert!(read_grant(&mut cursor).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn huge_grant_length_prefix_is_rejected_before_allocation() {
        // A hostile frame claiming u32::MAX jobs must error out, not
        // attempt a 100+ GiB allocation.
        let mut bytes = vec![TAG_GRANT, 0, 0];
        bytes.extend(u32::MAX.to_le_bytes());
        assert!(read_grant(&mut Cursor::new(bytes)).is_err());

        let mut just_over = vec![TAG_GRANT, 0, 0];
        just_over.extend(((MAX_GRANT_JOBS + 1) as u32).to_le_bytes());
        assert!(read_grant(&mut Cursor::new(just_over)).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut cursor = Cursor::new(vec![0xFFu8]);
        assert!(read_from_master(&mut cursor).is_err());
        let cursor = Cursor::new(vec![TAG_REQUEST, 0, 0]);
        // A request where a grant is expected:
        let bytes = cursor.get_ref().clone();
        let mut c2 = Cursor::new(bytes);
        assert!(read_grant(&mut c2).is_err());
        let _ = cursor;
    }
}
