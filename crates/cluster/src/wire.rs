//! Binary wire format for the head ↔ master control protocol.
//!
//! The control plane is small and fixed-shape, so the codec is hand-rolled
//! little-endian (the workspace ships no serde format crate): one tag byte,
//! fixed fields, and chunk metadata in the same record layout as the
//! on-disk index. Used by [`crate::net`] to run the protocol over TCP.
//!
//! The decoder is hardened against a malicious or corrupted peer: length
//! prefixes are capped before any allocation, unknown tags are rejected,
//! and truncation surfaces as an error — garbage bytes can never panic or
//! balloon memory.
//!
//! Two protocol versions share the connection. **v1** is the original
//! single-job lockstep RPC (`Request`/grant, `Complete`/ack). **v2** adds
//! the batched frames behind the reactor head: a `Hello`/`HelloAck`
//! version negotiation, `GetJobs{max}` multi-job grant requests, and
//! `AckBatch` frames that carry many completion/failure reports and are
//! answered by one [`BatchReply`] (per-report verdicts + revoked-lease
//! notices + a piggybacked refill grant). A master that never sends
//! `Hello` is a v1 peer; the head answers `Hello` with
//! `min(WIRE_VERSION, theirs)` so either side can fall back. The
//! incremental [`try_read_frame`] decoder accepts any interleaving of v1
//! and v2 frames, which is what lets a v2 master reuse the v1 `Failed`,
//! `Ping` and `Bye` frames unchanged.

use bytes::{Buf, BufMut, BytesMut};
use cloudburst_core::{ByteSize, ChunkId, ChunkMeta, FileId, JobBatch, SiteId};
use std::io::{self, ErrorKind, Read, Write};

/// Messages a master sends to the head.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterToHead {
    /// Request a batch of jobs for `site`.
    Request {
        /// Requesting site.
        site: SiteId,
    },
    /// Report a completed job.
    Complete {
        /// The finished job.
        job: ChunkId,
        /// Processing site.
        site: SiteId,
        /// When set, the head must answer with an ack frame carrying its
        /// merge/discard verdict (fault-tolerant mode).
        want_ack: bool,
    },
    /// Report a failed job.
    Failed {
        /// The failed job.
        job: ChunkId,
        /// Reporting site.
        site: SiteId,
    },
    /// Liveness beacon (fault-tolerant mode): resets the head's
    /// per-connection silence clock without requesting anything.
    Ping {
        /// Beaconing site.
        site: SiteId,
    },
    /// Orderly goodbye: the master is done.
    Bye,
}

const TAG_REQUEST: u8 = 1;
const TAG_COMPLETE: u8 = 2;
const TAG_FAILED: u8 = 3;
const TAG_BYE: u8 = 4;
const TAG_GRANT: u8 = 5;
const TAG_ACK: u8 = 6;
const TAG_PING: u8 = 7;

/// The most jobs a single grant frame may carry. Real grants are tens of
/// jobs; the cap bounds the decode allocation at ~2 MiB so a hostile length
/// prefix cannot balloon memory.
pub const MAX_GRANT_JOBS: usize = 1 << 16;

fn err(msg: &str) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg)
}

/// Encode one master→head message.
#[must_use]
pub fn encode_to_head(msg: &MasterToHead) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(16);
    match *msg {
        MasterToHead::Request { site } => {
            buf.put_u8(TAG_REQUEST);
            buf.put_u16_le(site.0);
        }
        MasterToHead::Complete { job, site, want_ack } => {
            buf.put_u8(TAG_COMPLETE);
            buf.put_u32_le(job.0);
            buf.put_u16_le(site.0);
            buf.put_u8(u8::from(want_ack));
        }
        MasterToHead::Failed { job, site } => {
            buf.put_u8(TAG_FAILED);
            buf.put_u32_le(job.0);
            buf.put_u16_le(site.0);
        }
        MasterToHead::Ping { site } => {
            buf.put_u8(TAG_PING);
            buf.put_u16_le(site.0);
        }
        MasterToHead::Bye => buf.put_u8(TAG_BYE),
    }
    buf.to_vec()
}

/// Read one master→head message from a stream. Returns `None` on a clean
/// EOF before any byte of a message.
pub fn read_from_master(r: &mut impl Read) -> io::Result<Option<MasterToHead>> {
    let mut tag = [0u8; 1];
    match r.read_exact(&mut tag) {
        Ok(()) => {}
        Err(e) if e.kind() == ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let msg = match tag[0] {
        TAG_REQUEST | TAG_PING => {
            let mut b = [0u8; 2];
            r.read_exact(&mut b)?;
            let site = SiteId(u16::from_le_bytes(b));
            if tag[0] == TAG_REQUEST {
                MasterToHead::Request { site }
            } else {
                MasterToHead::Ping { site }
            }
        }
        TAG_COMPLETE => {
            let mut b = [0u8; 7];
            r.read_exact(&mut b)?;
            let job = ChunkId(u32::from_le_bytes(b[0..4].try_into().expect("job id")));
            let site = SiteId(u16::from_le_bytes(b[4..6].try_into().expect("site id")));
            MasterToHead::Complete { job, site, want_ack: b[6] != 0 }
        }
        TAG_FAILED => {
            let mut b = [0u8; 6];
            r.read_exact(&mut b)?;
            let job = ChunkId(u32::from_le_bytes(b[0..4].try_into().expect("job id")));
            let site = SiteId(u16::from_le_bytes(b[4..6].try_into().expect("site id")));
            MasterToHead::Failed { job, site }
        }
        TAG_BYE => MasterToHead::Bye,
        other => return Err(err(&format!("unknown control tag {other}"))),
    };
    Ok(Some(msg))
}

/// Write one master→head message to a stream.
pub fn write_to_head(w: &mut impl Write, msg: &MasterToHead) -> io::Result<()> {
    w.write_all(&encode_to_head(msg))?;
    w.flush()
}

/// Encode a head→master grant (the reply to `Request`). Each job record
/// carries the causal span the head allocated for the execution, so the
/// slave-side telemetry of a TCP-mode run joins the head-side events in one
/// DAG (0 when the batch was built without tracking).
#[must_use]
pub fn encode_grant(batch: &JobBatch) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(8 + batch.jobs.len() * GRANT_RECORD);
    buf.put_u8(TAG_GRANT);
    buf.put_u8(u8::from(batch.stolen));
    buf.put_u8(u8::from(batch.terminal));
    buf.put_u32_le(batch.jobs.len() as u32);
    for (i, c) in batch.jobs.iter().enumerate() {
        buf.put_u32_le(c.id.0);
        buf.put_u32_le(c.file.0);
        buf.put_u64_le(c.offset);
        buf.put_u64_le(c.len);
        buf.put_u64_le(c.n_units);
        buf.put_u16_le(c.site.0);
        buf.put_u64_le(batch.span_of(i));
    }
    buf.to_vec()
}

/// Bytes per job record in a grant frame.
const GRANT_RECORD: usize = 42;

/// Write a grant to a stream.
pub fn write_grant(w: &mut impl Write, batch: &JobBatch) -> io::Result<()> {
    w.write_all(&encode_grant(batch))?;
    w.flush()
}

/// Read a grant from a stream.
pub fn read_grant(r: &mut impl Read) -> io::Result<JobBatch> {
    let mut head = [0u8; 7];
    r.read_exact(&mut head)?;
    if head[0] != TAG_GRANT {
        return Err(err(&format!("expected grant, got tag {}", head[0])));
    }
    let stolen = head[1] != 0;
    let terminal = head[2] != 0;
    let n = u32::from_le_bytes(head[3..7].try_into().expect("count")) as usize;
    if n > MAX_GRANT_JOBS {
        return Err(err("grant length prefix unreasonably large"));
    }
    let mut body = vec![0u8; n * GRANT_RECORD];
    r.read_exact(&mut body)?;
    let mut buf = body.as_slice();
    let mut jobs = Vec::with_capacity(n);
    let mut spans = Vec::with_capacity(n);
    for _ in 0..n {
        jobs.push(ChunkMeta {
            id: ChunkId(buf.get_u32_le()),
            file: FileId(buf.get_u32_le()),
            offset: buf.get_u64_le() as ByteSize,
            len: buf.get_u64_le() as ByteSize,
            n_units: buf.get_u64_le(),
            site: SiteId(buf.get_u16_le()),
        });
        spans.push(buf.get_u64_le());
    }
    Ok(JobBatch { jobs, spans, stolen, terminal })
}

/// Write a completion ack (head → master, fault-tolerant mode): was the
/// reported result merged (`true`) or is it a duplicate to discard?
pub fn write_ack(w: &mut impl Write, merged: bool) -> io::Result<()> {
    w.write_all(&[TAG_ACK, u8::from(merged)])?;
    w.flush()
}

/// Read a completion ack from a stream.
pub fn read_ack(r: &mut impl Read) -> io::Result<bool> {
    let mut b = [0u8; 2];
    r.read_exact(&mut b)?;
    if b[0] != TAG_ACK {
        return Err(err(&format!("expected ack, got tag {}", b[0])));
    }
    Ok(b[1] != 0)
}

// ---------------------------------------------------------------------------
// v2: batched frames (Hello negotiation, GetJobs, AckBatch / BatchReply)
// ---------------------------------------------------------------------------

const TAG_HELLO: u8 = 8;
const TAG_HELLO_ACK: u8 = 9;
const TAG_GET_JOBS: u8 = 10;
const TAG_ACK_BATCH: u8 = 11;
const TAG_BATCH_REPLY: u8 = 12;

/// Bytes per report entry in an `AckBatch` frame (job u32 + ok u8).
const ACK_ENTRY: usize = 5;

/// Highest control-protocol version this build speaks.
pub const WIRE_VERSION: u16 = 2;

/// One completion/failure report inside an `AckBatch` frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckEntry {
    /// The finished (or failed) job.
    pub job: ChunkId,
    /// `true` = completed, `false` = failed.
    pub ok: bool,
}

/// Any frame a master may send, v1 or v2 — what the reactor head decodes.
/// A v2 connection is free to interleave legacy frames (`Failed`, `Ping`,
/// `Bye`) between batched ones.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// A v1 single-job frame.
    Legacy(MasterToHead),
    /// v2 opening handshake: announce the speaker and its prefetch window.
    Hello {
        /// The master's site.
        site: SiteId,
        /// Highest protocol version the master speaks.
        version: u16,
        /// The master's prefetch-credit window (jobs it is willing to hold).
        credit: u16,
    },
    /// Request up to `max` jobs in one grant (reply is a grant frame).
    GetJobs {
        /// Requesting site.
        site: SiteId,
        /// Upper bound on jobs in the reply grant.
        max: u16,
    },
    /// A batch of completion/failure reports; the head answers with one
    /// [`BatchReply`] carrying per-report verdicts, revoked-lease notices
    /// and a piggybacked refill grant of up to `want` jobs.
    AckBatch {
        /// Reporting site.
        site: SiteId,
        /// Refill credit: how many jobs the reply grant may carry (0 = the
        /// master only wants the verdicts, e.g. during shutdown).
        want: u16,
        /// The reports, in the order the verdicts must come back.
        entries: Vec<AckEntry>,
    },
}

/// The head's lockstep reply to an `AckBatch` frame.
#[derive(Debug, Clone, PartialEq)]
pub struct BatchReply {
    /// Per-report merge verdicts, in `entries` order (`true` = merged;
    /// failure reports get `false`). Positional — like v1's ack frame.
    pub verdicts: Vec<bool>,
    /// Jobs whose leases the head revoked (reaped or evacuated) since the
    /// last reply: the master must drop any of these it still has queued.
    pub revoked: Vec<ChunkId>,
    /// Refill grant (empty + terminal once the pool is drained).
    pub grant: JobBatch,
}

/// Try to decode one master→head frame from the front of `buf`, consuming
/// its bytes. `Ok(None)` means the frame is incomplete — leave the bytes in
/// place and read more. Nothing is allocated until a frame's bytes have
/// fully arrived, and a `u16` entry count bounds `AckBatch` at ~320 KiB.
pub fn try_read_frame(buf: &mut BytesMut) -> io::Result<Option<Frame>> {
    let Some(&tag) = buf.first() else { return Ok(None) };
    let need = match tag {
        TAG_REQUEST | TAG_PING => 3,
        TAG_COMPLETE => 8,
        TAG_FAILED => 7,
        TAG_BYE => 1,
        TAG_HELLO => 7,
        TAG_GET_JOBS => 5,
        TAG_ACK_BATCH => {
            if buf.len() < 7 {
                return Ok(None);
            }
            let n = u16::from_le_bytes([buf[5], buf[6]]) as usize;
            7 + n * ACK_ENTRY
        }
        other => return Err(err(&format!("unknown control tag {other}"))),
    };
    if buf.len() < need {
        return Ok(None);
    }
    let mut frame = buf.split_to(need);
    frame.advance(1);
    let decoded = match tag {
        TAG_REQUEST => Frame::Legacy(MasterToHead::Request { site: SiteId(frame.get_u16_le()) }),
        TAG_PING => Frame::Legacy(MasterToHead::Ping { site: SiteId(frame.get_u16_le()) }),
        TAG_COMPLETE => {
            let job = ChunkId(frame.get_u32_le());
            let site = SiteId(frame.get_u16_le());
            let want_ack = frame.get_u8() != 0;
            Frame::Legacy(MasterToHead::Complete { job, site, want_ack })
        }
        TAG_FAILED => {
            let job = ChunkId(frame.get_u32_le());
            let site = SiteId(frame.get_u16_le());
            Frame::Legacy(MasterToHead::Failed { job, site })
        }
        TAG_BYE => Frame::Legacy(MasterToHead::Bye),
        TAG_HELLO => {
            let site = SiteId(frame.get_u16_le());
            let version = frame.get_u16_le();
            let credit = frame.get_u16_le();
            Frame::Hello { site, version, credit }
        }
        TAG_GET_JOBS => {
            let site = SiteId(frame.get_u16_le());
            let max = frame.get_u16_le();
            Frame::GetJobs { site, max }
        }
        TAG_ACK_BATCH => {
            let site = SiteId(frame.get_u16_le());
            let want = frame.get_u16_le();
            let n = frame.get_u16_le() as usize;
            let mut entries = Vec::with_capacity(n);
            for _ in 0..n {
                let job = ChunkId(frame.get_u32_le());
                let ok = frame.get_u8() != 0;
                entries.push(AckEntry { job, ok });
            }
            Frame::AckBatch { site, want, entries }
        }
        _ => unreachable!("tag validated above"),
    };
    Ok(Some(decoded))
}

/// Encode any frame (the inverse of [`try_read_frame`]). Legacy frames
/// encode exactly as [`encode_to_head`] would.
#[must_use]
pub fn encode_frame(frame: &Frame) -> Vec<u8> {
    match frame {
        Frame::Legacy(msg) => encode_to_head(msg),
        Frame::Hello { site, version, credit } => {
            let mut buf = BytesMut::with_capacity(7);
            buf.put_u8(TAG_HELLO);
            buf.put_u16_le(site.0);
            buf.put_u16_le(*version);
            buf.put_u16_le(*credit);
            buf.to_vec()
        }
        Frame::GetJobs { site, max } => {
            let mut buf = BytesMut::with_capacity(5);
            buf.put_u8(TAG_GET_JOBS);
            buf.put_u16_le(site.0);
            buf.put_u16_le(*max);
            buf.to_vec()
        }
        Frame::AckBatch { site, want, entries } => {
            let mut buf = BytesMut::with_capacity(7 + entries.len() * ACK_ENTRY);
            buf.put_u8(TAG_ACK_BATCH);
            buf.put_u16_le(site.0);
            buf.put_u16_le(*want);
            buf.put_u16_le(entries.len() as u16);
            for e in entries {
                buf.put_u32_le(e.job.0);
                buf.put_u8(u8::from(e.ok));
            }
            buf.to_vec()
        }
    }
}

/// Open the v2 handshake: announce `site` and the prefetch-credit window.
/// `version` is normally [`WIRE_VERSION`]; tests pass lower values to
/// exercise the fallback.
pub fn write_hello(w: &mut impl Write, site: SiteId, version: u16, credit: u16) -> io::Result<()> {
    w.write_all(&encode_frame(&Frame::Hello { site, version, credit }))?;
    w.flush()
}

/// Answer a `Hello` with the version the head will speak on this
/// connection (`min(WIRE_VERSION, theirs)`).
pub fn write_hello_ack(w: &mut impl Write, version: u16) -> io::Result<()> {
    let mut buf = [0u8; 3];
    buf[0] = TAG_HELLO_ACK;
    buf[1..3].copy_from_slice(&version.to_le_bytes());
    w.write_all(&buf)?;
    w.flush()
}

/// Read the head's handshake answer: the negotiated protocol version.
pub fn read_hello_ack(r: &mut impl Read) -> io::Result<u16> {
    let mut b = [0u8; 3];
    r.read_exact(&mut b)?;
    if b[0] != TAG_HELLO_ACK {
        return Err(err(&format!("expected hello-ack, got tag {}", b[0])));
    }
    Ok(u16::from_le_bytes([b[1], b[2]]))
}

/// Request up to `max` jobs in one grant (reply is a grant frame).
pub fn write_get_jobs(w: &mut impl Write, site: SiteId, max: u16) -> io::Result<()> {
    w.write_all(&encode_frame(&Frame::GetJobs { site, max }))?;
    w.flush()
}

/// Send a batch of completion/failure reports; the head answers with one
/// [`BatchReply`].
pub fn write_ack_batch(
    w: &mut impl Write,
    site: SiteId,
    want: u16,
    entries: &[AckEntry],
) -> io::Result<()> {
    w.write_all(&encode_frame(&Frame::AckBatch { site, want, entries: entries.to_vec() }))?;
    w.flush()
}

/// Encode a [`BatchReply`] (head → master).
#[must_use]
pub fn encode_batch_reply(reply: &BatchReply) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(6 + reply.verdicts.len() + reply.revoked.len() * 4);
    buf.put_u8(TAG_BATCH_REPLY);
    buf.put_u16_le(reply.verdicts.len() as u16);
    for &v in &reply.verdicts {
        buf.put_u8(u8::from(v));
    }
    buf.put_u16_le(reply.revoked.len() as u16);
    for &job in &reply.revoked {
        buf.put_u32_le(job.0);
    }
    let mut out = buf.to_vec();
    out.extend(encode_grant(&reply.grant));
    out
}

/// Write a [`BatchReply`] to a stream.
pub fn write_batch_reply(w: &mut impl Write, reply: &BatchReply) -> io::Result<()> {
    w.write_all(&encode_batch_reply(reply))?;
    w.flush()
}

/// Read a [`BatchReply`] from a stream. Both length prefixes are `u16`, so
/// the decode allocation is bounded without a separate cap.
pub fn read_batch_reply(r: &mut impl Read) -> io::Result<BatchReply> {
    let mut head = [0u8; 3];
    r.read_exact(&mut head)?;
    if head[0] != TAG_BATCH_REPLY {
        return Err(err(&format!("expected batch reply, got tag {}", head[0])));
    }
    let n = u16::from_le_bytes([head[1], head[2]]) as usize;
    let mut verdict_bytes = vec![0u8; n];
    r.read_exact(&mut verdict_bytes)?;
    let verdicts = verdict_bytes.iter().map(|&b| b != 0).collect();
    let mut rb = [0u8; 2];
    r.read_exact(&mut rb)?;
    let n_revoked = u16::from_le_bytes(rb) as usize;
    let mut revoked_bytes = vec![0u8; n_revoked * 4];
    r.read_exact(&mut revoked_bytes)?;
    let revoked = revoked_bytes
        .chunks_exact(4)
        .map(|c| ChunkId(u32::from_le_bytes(c.try_into().expect("job id"))))
        .collect();
    let grant = read_grant(r)?;
    Ok(BatchReply { verdicts, revoked, grant })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn chunk(id: u32) -> ChunkMeta {
        ChunkMeta {
            id: ChunkId(id),
            file: FileId(id / 3),
            offset: u64::from(id) * 128,
            len: 128,
            n_units: 16,
            site: SiteId::CLOUD,
        }
    }

    #[test]
    fn control_messages_roundtrip() {
        let msgs = [
            MasterToHead::Request { site: SiteId::CLOUD },
            MasterToHead::Complete { job: ChunkId(42), site: SiteId::LOCAL, want_ack: false },
            MasterToHead::Complete { job: ChunkId(43), site: SiteId::LOCAL, want_ack: true },
            MasterToHead::Failed { job: ChunkId(7), site: SiteId(3) },
            MasterToHead::Ping { site: SiteId::CLOUD },
            MasterToHead::Bye,
        ];
        let mut stream = Vec::new();
        for m in &msgs {
            stream.extend(encode_to_head(m));
        }
        let mut cursor = Cursor::new(stream);
        for m in &msgs {
            assert_eq!(read_from_master(&mut cursor).unwrap(), Some(*m));
        }
        assert_eq!(read_from_master(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn grants_roundtrip() {
        for (n, stolen, terminal) in [(0usize, false, true), (1, true, false), (5, false, false)] {
            let batch = JobBatch {
                jobs: (0..n as u32).map(chunk).collect(),
                spans: (0..n as u64).map(|i| 100 + i).collect(),
                stolen,
                terminal,
            };
            let mut cursor = Cursor::new(encode_grant(&batch));
            assert_eq!(read_grant(&mut cursor).unwrap(), batch);
        }
    }

    #[test]
    fn untracked_grants_decode_with_zero_spans() {
        // A batch built without span tracking encodes span 0 per record and
        // decodes back to an explicit all-zero span list.
        let batch =
            JobBatch { jobs: vec![chunk(9)], spans: Vec::new(), stolen: true, terminal: false };
        let decoded = read_grant(&mut Cursor::new(encode_grant(&batch))).unwrap();
        assert_eq!(decoded.jobs, batch.jobs);
        assert_eq!(decoded.spans, vec![0]);
        assert_eq!(decoded.span_of(0), 0);
    }

    #[test]
    fn acks_roundtrip() {
        for merged in [false, true] {
            let mut bytes = Vec::new();
            write_ack(&mut bytes, merged).unwrap();
            assert_eq!(read_ack(&mut Cursor::new(bytes)).unwrap(), merged);
        }
        // A grant where an ack is expected is rejected.
        let grant = encode_grant(&JobBatch::empty(false));
        assert!(read_ack(&mut Cursor::new(grant)).is_err());
    }

    #[test]
    fn truncated_grant_errors() {
        let batch = JobBatch {
            jobs: vec![chunk(1), chunk(2)],
            spans: vec![1, 2],
            stolen: false,
            terminal: false,
        };
        let bytes = encode_grant(&batch);
        for cut in [0, 3, 8, bytes.len() - 1] {
            let mut cursor = Cursor::new(&bytes[..cut]);
            assert!(read_grant(&mut cursor).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn huge_grant_length_prefix_is_rejected_before_allocation() {
        // A hostile frame claiming u32::MAX jobs must error out, not
        // attempt a 100+ GiB allocation.
        let mut bytes = vec![TAG_GRANT, 0, 0];
        bytes.extend(u32::MAX.to_le_bytes());
        assert!(read_grant(&mut Cursor::new(bytes)).is_err());

        let mut just_over = vec![TAG_GRANT, 0, 0];
        just_over.extend(((MAX_GRANT_JOBS + 1) as u32).to_le_bytes());
        assert!(read_grant(&mut Cursor::new(just_over)).is_err());
    }

    #[test]
    fn unknown_tag_is_rejected() {
        let mut cursor = Cursor::new(vec![0xFFu8]);
        assert!(read_from_master(&mut cursor).is_err());
        let cursor = Cursor::new(vec![TAG_REQUEST, 0, 0]);
        // A request where a grant is expected:
        let bytes = cursor.get_ref().clone();
        let mut c2 = Cursor::new(bytes);
        assert!(read_grant(&mut c2).is_err());
        let _ = cursor;
    }

    // ---- v2 ----

    #[test]
    fn v2_frames_roundtrip_through_the_incremental_decoder() {
        let frames = [
            Frame::Hello { site: SiteId(3), version: WIRE_VERSION, credit: 256 },
            Frame::GetJobs { site: SiteId(3), max: 64 },
            Frame::AckBatch {
                site: SiteId(3),
                want: 32,
                entries: vec![
                    AckEntry { job: ChunkId(7), ok: true },
                    AckEntry { job: ChunkId(9), ok: false },
                ],
            },
            Frame::AckBatch { site: SiteId(0), want: 0, entries: Vec::new() },
            Frame::Legacy(MasterToHead::Ping { site: SiteId(3) }),
            Frame::Legacy(MasterToHead::Bye),
        ];
        let mut buf = BytesMut::new();
        for f in &frames {
            buf.extend_from_slice(&encode_frame(f));
        }
        for f in &frames {
            assert_eq!(try_read_frame(&mut buf).unwrap().as_ref(), Some(f));
        }
        assert!(buf.is_empty());
        assert_eq!(try_read_frame(&mut buf).unwrap(), None, "empty buffer");
    }

    #[test]
    fn incremental_decoder_waits_for_whole_frames() {
        let frame = Frame::AckBatch {
            site: SiteId(1),
            want: 8,
            entries: (0..4).map(|i| AckEntry { job: ChunkId(i), ok: i % 2 == 0 }).collect(),
        };
        let bytes = encode_frame(&frame);
        let mut buf = BytesMut::new();
        // Feed one byte at a time: every prefix must yield None, never an
        // error or a partial frame, until the final byte lands.
        for (i, &b) in bytes.iter().enumerate() {
            buf.extend_from_slice(&[b]);
            if i + 1 < bytes.len() {
                assert_eq!(try_read_frame(&mut buf).unwrap(), None, "byte {i}");
            }
        }
        assert_eq!(try_read_frame(&mut buf).unwrap(), Some(frame));
    }

    #[test]
    fn incremental_decoder_decodes_every_v1_frame() {
        let msgs = [
            MasterToHead::Request { site: SiteId::CLOUD },
            MasterToHead::Complete { job: ChunkId(42), site: SiteId::LOCAL, want_ack: true },
            MasterToHead::Failed { job: ChunkId(7), site: SiteId(3) },
            MasterToHead::Ping { site: SiteId::CLOUD },
            MasterToHead::Bye,
        ];
        let mut buf = BytesMut::new();
        for m in &msgs {
            buf.extend_from_slice(&encode_to_head(m));
        }
        for m in &msgs {
            assert_eq!(try_read_frame(&mut buf).unwrap(), Some(Frame::Legacy(*m)));
        }
        assert!(buf.is_empty());
    }

    #[test]
    fn incremental_decoder_rejects_unknown_tags() {
        let mut buf = BytesMut::from(&[0xEEu8, 1, 2, 3][..]);
        assert!(try_read_frame(&mut buf).is_err());
        let mut zero = BytesMut::from(&[0u8][..]);
        assert!(try_read_frame(&mut zero).is_err());
    }

    #[test]
    fn hello_negotiation_roundtrips_and_caps_at_the_lower_version() {
        let mut bytes = Vec::new();
        write_hello(&mut bytes, SiteId(5), WIRE_VERSION, 128).unwrap();
        let mut buf = BytesMut::from(&bytes[..]);
        let hello = try_read_frame(&mut buf).unwrap().unwrap();
        assert_eq!(hello, Frame::Hello { site: SiteId(5), version: WIRE_VERSION, credit: 128 });
        // Head side answers min(ours, theirs); a v1 client gets v1 back.
        for (theirs, negotiated) in [(WIRE_VERSION, WIRE_VERSION), (1, 1), (99, WIRE_VERSION)] {
            let mut reply = Vec::new();
            write_hello_ack(&mut reply, WIRE_VERSION.min(theirs)).unwrap();
            assert_eq!(read_hello_ack(&mut Cursor::new(reply)).unwrap(), negotiated);
        }
        // An ack frame where a hello-ack is expected is rejected.
        let mut ack = Vec::new();
        write_ack(&mut ack, true).unwrap();
        assert!(read_hello_ack(&mut Cursor::new(ack)).is_err());
    }

    #[test]
    fn batch_replies_roundtrip() {
        let replies = [
            BatchReply { verdicts: Vec::new(), revoked: Vec::new(), grant: JobBatch::empty(true) },
            BatchReply {
                verdicts: vec![true, false, true],
                revoked: vec![ChunkId(3), ChunkId(11)],
                grant: JobBatch {
                    jobs: vec![chunk(1), chunk(2)],
                    spans: vec![7, 8],
                    stolen: true,
                    terminal: false,
                },
            },
        ];
        for reply in &replies {
            let mut bytes = Vec::new();
            write_batch_reply(&mut bytes, reply).unwrap();
            assert_eq!(&read_batch_reply(&mut Cursor::new(bytes)).unwrap(), reply);
        }
    }

    #[test]
    fn truncated_batch_reply_errors() {
        let reply = BatchReply {
            verdicts: vec![true, true],
            revoked: vec![ChunkId(5)],
            grant: JobBatch {
                jobs: vec![chunk(4)],
                spans: vec![9],
                stolen: false,
                terminal: false,
            },
        };
        let bytes = encode_batch_reply(&reply);
        for cut in [0, 2, 4, bytes.len() - 1] {
            assert!(read_batch_reply(&mut Cursor::new(&bytes[..cut])).is_err(), "cut {cut}");
        }
    }
}
