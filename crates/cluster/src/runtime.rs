//! The threaded cloud-bursting runtime: one head, one master per site, and
//! one slave thread per core, wired exactly like Fig. 2 of the paper.
//!
//! "Clusters" are thread pools on this machine; the geographic separation is
//! supplied by [`cloudburst_netsim`] throttles on every inter-site
//! interaction: master↔head control RPCs, cross-site chunk retrieval, and
//! the reduction-object exchange during global reduction. The paper-scale
//! numbers come from `cloudburst-sim`; this runtime demonstrates the
//! middleware end to end on real data.
//!
//! Fault tolerance ([`FtConfig`]) layers job leases, heartbeat-driven site
//! evacuation, speculative re-execution, storage retries, and deterministic
//! chaos injection on top without touching the fault-free fast path.

use crate::error::RunError;
use crate::head::{run_head_with, CancelBoard, HeadOptions};
use crate::protocol::{HeadMsg, HeadReport, MasterMsg};
use crate::report::{assemble_report, SiteOutcome};
use crate::router::{Fetched, StoreRouter};
use cloudburst_core::metrics::{Counter, Gauge, Histogram, Metrics};
use cloudburst_core::{
    ns_between, ns_since, secs_to_ns, tree_reduce, BatchPolicy, DataIndex, EnvConfig, Event,
    EventKind, FaultPlan, HeartbeatConfig, JobPool, LeaseConfig, LocalJob, MasterPool, Merge,
    Reduction, ReductionObject, RunReport, Seconds, SiteId, Take, Telemetry,
};
use cloudburst_netsim::Topology;
use cloudburst_storage::{ChaosStore, ChunkStore, FetchConfig, MeteredStore, RetryPolicy};
use crossbeam::channel::{bounded, unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// What to do when a slave fails to retrieve or process a job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultPolicy {
    /// Abort the run on the first failure (the default): correctness over
    /// availability.
    FailFast,
    /// Report the failure to the head, which requeues the job for
    /// reassignment (to any site) up to `max_attempts` times before
    /// abandoning it. A run that ends with abandoned jobs fails with
    /// [`RunError::Incomplete`].
    Retry {
        /// Attempts per job before it is abandoned.
        max_attempts: u8,
    },
}

/// The fault-tolerance subsystem's knobs. [`Default`] turns everything off,
/// which reproduces the classic fault-oblivious runtime exactly.
#[derive(Debug, Clone, Default)]
pub struct FtConfig {
    /// Grant jobs under deadlines sized from observed per-site rates; the
    /// head reaps expired leases and requeues the jobs.
    pub lease: Option<LeaseConfig>,
    /// Hand idle sites speculative copies of tail stragglers (first
    /// completion wins, the loser is cancelled and deduplicated).
    pub speculate: bool,
    /// Masters beacon at `interval`; the head evacuates a site silent past
    /// `timeout`. Both are *real* seconds, independent of `time_scale`.
    pub heartbeat: Option<HeartbeatConfig>,
    /// Retry transient storage failures below the chunk level with capped
    /// exponential backoff.
    pub retry: Option<RetryPolicy>,
    /// Deterministic fault injection: storage errors, worker slowdowns and
    /// crashes, a site outage. The same plan replays the same faults.
    pub chaos: Option<Arc<FaultPlan>>,
}

impl FtConfig {
    /// Leases, speculation, heartbeats, and storage retries all on with
    /// their defaults; no chaos.
    #[must_use]
    pub fn enabled() -> FtConfig {
        FtConfig {
            lease: Some(LeaseConfig::default()),
            speculate: true,
            heartbeat: Some(HeartbeatConfig::default()),
            retry: Some(RetryPolicy::default()),
            chaos: None,
        }
    }

    /// Whether any fault-tolerance machinery (and therefore completion
    /// acking and result dedup) is active.
    #[must_use]
    pub fn active(&self) -> bool {
        self.lease.is_some() || self.speculate || self.heartbeat.is_some() || self.chaos.is_some()
    }
}

/// How the TCP deployment mode speaks to the head. Ignored by the channel
/// runtime, which has no wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireMode {
    /// v2 batched protocol: the master opens with a `Hello`, holds a
    /// prefetch-credit window of granted-but-unprocessed jobs, ships
    /// completions in `AckBatch` frames, and is refilled by each reply's
    /// piggybacked grant — so a slave never stalls on a grant round-trip
    /// while credit remains. Falls back to v1 against an old head.
    Batched {
        /// Prefetch-credit window in jobs. `0` sizes it automatically:
        /// cores × pipeline depth + refill watermark + 1.
        window: usize,
    },
    /// v1 single-job lockstep RPC per grant — the per-RPC baseline the
    /// scale bench compares against.
    SingleJob,
}

impl Default for WireMode {
    fn default() -> WireMode {
        WireMode::Batched { window: 0 }
    }
}

/// Everything configurable about a run.
#[derive(Debug, Clone)]
pub struct RuntimeConfig {
    /// Cores per site and data split.
    pub env: EnvConfig,
    /// Head-node batch granting policy.
    pub batch_policy: BatchPolicy,
    /// Per-slave retrieval parallelism.
    pub fetch: FetchConfig,
    /// Units per cache-sized reduction group.
    pub unit_group: usize,
    /// Master refill watermark (jobs left when the next batch is requested).
    pub low_watermark: usize,
    /// Link/topology model for inter-site charging.
    pub topology: Topology,
    /// Compression of modelled network time into real time.
    pub time_scale: f64,
    /// Jobs in flight per slave. Depth 1 is the classic serial loop:
    /// request, fetch, process, repeat. Depth `d ≥ 2` overlaps retrieval
    /// with computation — while a slave processes chunk *N*, a companion
    /// prefetcher already has the next job granted and its fetch in
    /// flight, keeping up to `d` jobs (one processing, one fetching, and
    /// `d - 2` buffered) in the slave's pipeline.
    pub pipeline_depth: usize,
    /// Coded-redundancy replication factor `r`. With `r ≥ 2` (and an
    /// organizer layout replicated to match) the pool proactively grants
    /// each chunk to up to `r` sites, the first completed copy fences its
    /// siblings, the router serves replicated chunks from the reader's own
    /// store, and evacuations re-execute from local replicas instead of
    /// re-fetching over the WAN. The default of 1 reproduces the classic
    /// single-copy runtime bit for bit.
    pub redundancy: u32,
    /// Failure handling.
    pub fault_policy: FaultPolicy,
    /// Head ↔ master wire protocol for the TCP deployment mode (batched v2
    /// by default; [`WireMode::SingleJob`] forces the v1 per-RPC baseline).
    pub wire: WireMode,
    /// Fault-tolerance subsystem (off by default).
    pub ft: FtConfig,
    /// Event sink for the run (off by default): the pool, the masters, and
    /// every slave emit typed, timestamped events through this handle.
    pub telemetry: Telemetry,
    /// Live-metrics registry handle (off by default). When enabled, the
    /// pool, every slave, every store, and every WAN link publish counters,
    /// gauges, and latency histograms through it — incremented at the same
    /// code points that feed the run-report accumulators, so a mid-run
    /// scrape and the end-of-run report agree exactly.
    pub metrics: Metrics,
}

impl RuntimeConfig {
    /// A configuration for `env` with paper-testbed links compressed by
    /// `time_scale` and sensible defaults elsewhere.
    #[must_use]
    pub fn new(env: EnvConfig, time_scale: f64) -> RuntimeConfig {
        RuntimeConfig {
            env,
            batch_policy: BatchPolicy::default_adaptive(2),
            fetch: FetchConfig::default(),
            unit_group: 1024,
            low_watermark: 1,
            topology: Topology::paper_testbed(),
            time_scale,
            pipeline_depth: 1,
            redundancy: 1,
            fault_policy: FaultPolicy::FailFast,
            wire: WireMode::default(),
            ft: FtConfig::default(),
            telemetry: Telemetry::off(),
            metrics: Metrics::off(),
        }
    }
}

/// Wrap every site store in a [`MeteredStore`] when metrics are on, so each
/// backend publishes request/byte/error counters and read-latency
/// histograms. The decorator sits *below* the chaos layer: it counts
/// physical reads against the real backend, not injected failures.
pub(crate) fn meter_stores(
    stores: BTreeMap<SiteId, Arc<dyn ChunkStore>>,
    metrics: &Metrics,
) -> BTreeMap<SiteId, Arc<dyn ChunkStore>> {
    if !metrics.is_enabled() {
        return stores;
    }
    stores
        .into_iter()
        .map(|(s, st)| {
            let kind = st.kind();
            (s, Arc::new(MeteredStore::new(st, metrics, kind)) as Arc<dyn ChunkStore>)
        })
        .collect()
}

/// The result of a run: the final reduction object plus the paper-shaped
/// statistics record.
#[derive(Debug)]
pub struct RunOutcome<R> {
    /// The globally reduced result.
    pub result: R,
    /// Timing breakdowns, job counts, and overheads (Fig. 3/4, Tables I/II).
    pub report: RunReport,
    /// Head-side accounting (control traffic, authoritative job counts).
    pub head: HeadReport,
}

/// Per-slave measurements gathered during the run.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct SlaveStats {
    pub(crate) processing: Seconds,
    pub(crate) retrieval: Seconds,
    pub(crate) finish: Seconds,
    pub(crate) remote_bytes: u64,
    pub(crate) jobs: u64,
    pub(crate) retries: u64,
}

/// Per-slave live-metrics instruments, resolved once at spawn so the hot
/// loop pays only relaxed atomic adds — or, with metrics off, a single
/// branch inside each no-op instrument.
///
/// Job/byte/retry counters are per-worker (summing a site's workers gives
/// the run report's per-site numbers exactly); latency histograms and the
/// pipeline-occupancy gauge are per-site, shared by all of a site's workers
/// through the registry's get-or-create.
#[derive(Clone, Default)]
pub(crate) struct SlaveMetrics {
    jobs: Counter,
    remote_bytes: Counter,
    retries: Counter,
    fetch_time: Counter,
    proc_time: Counter,
    fetch_hist: Histogram,
    proc_hist: Histogram,
    occupancy: Gauge,
    dropped: Counter,
}

impl SlaveMetrics {
    pub(crate) fn new(metrics: &Metrics, site: SiteId, worker: u32) -> SlaveMetrics {
        if !metrics.is_enabled() {
            return SlaveMetrics::default();
        }
        let site_v = site.to_string();
        let worker_v = worker.to_string();
        let per_worker: &[(&str, &str)] = &[("site", &site_v), ("worker", &worker_v)];
        let per_site: &[(&str, &str)] = &[("site", &site_v)];
        SlaveMetrics {
            jobs: metrics.counter(
                "cloudburst_slave_jobs_total",
                "Jobs a slave fully decoded and reduced.",
                per_worker,
            ),
            remote_bytes: metrics.counter(
                "cloudburst_slave_remote_bytes_total",
                "Bytes a slave fetched across sites (stolen reads).",
                per_worker,
            ),
            retries: metrics.counter(
                "cloudburst_slave_retries_total",
                "Transient storage retries absorbed under a slave's fetches.",
                per_worker,
            ),
            fetch_time: metrics.time_counter(
                "cloudburst_slave_fetch_busy_seconds_total",
                "Wall time a slave (or its prefetcher) spent in chunk retrieval.",
                per_worker,
            ),
            proc_time: metrics.time_counter(
                "cloudburst_slave_process_busy_seconds_total",
                "Wall time a slave spent decoding and reducing.",
                per_worker,
            ),
            fetch_hist: metrics.histogram(
                "cloudburst_fetch_seconds",
                "Per-chunk retrieval latency (ranged reads plus WAN charge).",
                per_site,
            ),
            proc_hist: metrics.histogram(
                "cloudburst_process_seconds",
                "Per-chunk decode-and-reduce latency.",
                per_site,
            ),
            occupancy: metrics.gauge(
                "cloudburst_pipeline_prefetched",
                "Fetched-and-waiting jobs buffered in slave pipelines.",
                per_site,
            ),
            dropped: metrics.counter(
                "cloudburst_prefetch_dropped_total",
                "Prefetched jobs dropped because their execution was revoked \
                 (evacuation or a finished replica) before processing.",
                per_site,
            ),
        }
    }

    /// One chunk retrieval finished (successfully) on this slave's behalf.
    fn fetched(&self, dur: Duration, bytes: u64, remote: bool, retries: u64) {
        self.fetch_time.add(dur.as_nanos() as u64);
        self.fetch_hist.observe(dur.as_nanos() as u64);
        if remote {
            self.remote_bytes.add(bytes);
        }
        if retries > 0 {
            self.retries.add(retries);
        }
    }

    /// One chunk fully decoded and reduced.
    fn processed(&self, dur: Duration) {
        self.proc_time.add(dur.as_nanos() as u64);
        self.proc_hist.observe(dur.as_nanos() as u64);
        self.jobs.inc();
    }

    /// A prefetched job entered (+1) or left (-1) the pipeline buffer.
    fn pipeline(&self, delta: i64) {
        self.occupancy.add(delta);
    }

    /// A granted job was dropped at the prefetch/process handoff because
    /// its execution had been revoked.
    fn prefetch_dropped(&self) {
        self.dropped.inc();
    }
}

/// Per-slave fault-tolerance context threaded through [`run_slave`].
pub(crate) struct SlaveCtx {
    /// The slave's site.
    pub(crate) site: SiteId,
    /// The slave's index within its site (chaos plans target it by this).
    pub(crate) worker: u32,
    /// Revoked executions to abort early (channel mode only).
    pub(crate) cancel: Option<CancelBoard>,
    /// The fault-injection plan, if any.
    pub(crate) chaos: Option<Arc<FaultPlan>>,
    /// When true, a completion must be acked as *merged* by the head before
    /// the scratch object folds into the worker accumulator.
    pub(crate) ack_gated: bool,
    /// Shared run clock origin.
    pub(crate) epoch: Instant,
    /// Event sink for this slave's job/fetch/processing spans.
    pub(crate) telemetry: Telemetry,
    /// Live-metrics instruments for this slave (no-op when metrics are off).
    pub(crate) metrics: SlaveMetrics,
}

impl SlaveCtx {
    fn site_dead(&self) -> bool {
        self.chaos
            .as_deref()
            .is_some_and(|p| p.site_dead(self.site, self.epoch.elapsed().as_secs_f64()))
    }

    fn revoked(&self, chunk: cloudburst_core::ChunkId) -> bool {
        self.cancel.as_ref().is_some_and(|b| b.is_revoked(chunk))
    }

    /// Nanoseconds of run clock at `at` (saturating at the epoch).
    fn ns_at(&self, at: Instant) -> u64 {
        ns_between(self.epoch, at)
    }
}

/// Execute `app` over the dataset described by `index`, with per-site
/// `stores`, under `config`. This is the framework's main entry point.
///
/// # Errors
/// Fails when the environment has no cores, a store is missing for a site
/// that hosts data, retrieval fails, or a worker panics.
pub fn run_hybrid<R: Reduction>(
    app: &R,
    index: &DataIndex,
    stores: BTreeMap<SiteId, Arc<dyn ChunkStore>>,
    config: &RuntimeConfig,
) -> Result<RunOutcome<R::RObj>, RunError> {
    let active: Vec<(SiteId, u32)> =
        config.env.active_sites().into_iter().map(|s| (s, config.env.cores_at(s))).collect();
    if active.is_empty() {
        return Err(RunError::NoWorkers);
    }
    // Verify every data-hosting site has a store before spawning anything.
    for (&site, &n) in index.chunks_per_site().iter() {
        if n > 0 && !stores.contains_key(&site) {
            return Err(RunError::NoStoreForSite(site));
        }
    }
    // The head is co-located with the local cluster when it is active
    // (paper Fig. 2); centralized-cloud baselines host it in the cloud, so
    // the baselines see no inter-cluster control traffic.
    let head_site = active[0].0;

    let chaos = config.ft.chaos.clone().filter(|p| !p.is_empty());
    let stores = meter_stores(stores, &config.metrics);
    let stores = match &chaos {
        // Storage faults are injected between the router and the backends,
        // so every site's reads draw from the same seeded schedule.
        Some(plan) if plan.storage_error_rate > 0.0 => stores
            .into_iter()
            .map(|(s, st)| (s, Arc::new(ChaosStore::new(st, plan.clone())) as Arc<dyn ChunkStore>))
            .collect(),
        _ => stores,
    };
    let mut router = StoreRouter::new(stores, &config.topology, config.fetch, config.time_scale);
    router.set_metrics(&config.metrics);
    // Size the fetcher pools for every worker (and, with pipelining, its
    // companion prefetcher) hitting storage at once.
    router.set_concurrency(active.iter().map(|&(_, c)| c as usize).sum());
    if let Some(retry) = config.ft.retry {
        router.set_retry(retry);
    }
    // Under coded redundancy the organizer replicated the data; let readers
    // serve replicated chunks from their own store instead of the WAN.
    router.set_replicated(config.redundancy > 1);

    let mut pool = JobPool::from_index(index, config.batch_policy);
    if let FaultPolicy::Retry { max_attempts } = config.fault_policy {
        pool.set_max_attempts(max_attempts);
    }
    if let Some(lease) = config.ft.lease {
        pool.set_lease(lease);
    }
    pool.set_speculation(config.ft.speculate);
    pool.set_redundancy(config.redundancy);
    pool.set_sink(config.telemetry.clone());
    pool.set_metrics(config.metrics.clone());
    let ft_active = config.ft.active();
    // Replica grants mean a chunk can complete more than once even with the
    // FT stack off, so coded runs need the same dedup machinery: acked
    // completions (the head's merge/discard verdict) and a cancel board for
    // fencing the losing copies.
    let dedup_active = ft_active || config.redundancy > 1;
    let cancel = dedup_active.then(CancelBoard::new);

    let (head_tx, head_rx) = unbounded::<HeadMsg>();
    let epoch = Instant::now();

    let mut site_outcomes: Vec<Result<SiteOutcome<R::RObj>, RunError>> = Vec::new();
    let mut head_result: Option<Result<HeadReport, RunError>> = None;

    std::thread::scope(|scope| {
        let head_options = HeadOptions {
            heartbeat: config.ft.heartbeat,
            cancel: cancel.clone(),
            epoch,
            tick: config.ft.heartbeat.map_or(0.005, |h| (h.interval / 2.0).min(0.005)),
            n_sites: active.len(),
        };
        let head_handle = scope.spawn(move || run_head_with(pool, head_rx, head_options));

        let coordinators: Vec<_> = active
            .iter()
            .map(|&(site, cores)| {
                let head_tx = head_tx.clone();
                let router = &router;
                let chaos = chaos.clone();
                let cancel = cancel.clone();
                scope.spawn(move || -> Result<SiteOutcome<R::RObj>, RunError> {
                    // Control-plane latency between this site's master and
                    // the head (zero when co-located).
                    let control_latency = config.topology.link(site.0, head_site.0).latency;
                    let (master_tx, master_rx) = unbounded::<MasterMsg>();

                    let mut results: Vec<Result<(R::RObj, SlaveStats), RunError>> = Vec::new();
                    std::thread::scope(|site_scope| {
                        let master = site_scope.spawn({
                            let head_tx = head_tx.clone();
                            let chaos = chaos.clone();
                            let cancel = cancel.clone();
                            move || {
                                run_master(
                                    site,
                                    config.low_watermark,
                                    control_latency * config.time_scale,
                                    &master_rx,
                                    &head_tx,
                                    MasterFt {
                                        heartbeat: config.ft.heartbeat,
                                        chaos,
                                        cancel,
                                        epoch,
                                        telemetry: config.telemetry.clone(),
                                    },
                                )
                            }
                        });
                        let handles: Vec<_> = (0..cores)
                            .map(|worker| {
                                let master_tx = master_tx.clone();
                                let head_tx = head_tx.clone();
                                let ctx = SlaveCtx {
                                    site,
                                    worker,
                                    cancel: cancel.clone(),
                                    chaos: chaos.clone(),
                                    ack_gated: dedup_active,
                                    epoch,
                                    telemetry: config.telemetry.clone(),
                                    metrics: SlaveMetrics::new(&config.metrics, site, worker),
                                };
                                site_scope.spawn(move || {
                                    run_slave(
                                        app,
                                        ctx,
                                        &master_tx,
                                        &ReportSink::Head(&head_tx),
                                        router,
                                        config,
                                    )
                                })
                            })
                            .collect();
                        drop(master_tx);
                        results = handles
                            .into_iter()
                            .map(|h| {
                                h.join()
                                    .unwrap_or_else(|p| Err(RunError::WorkerPanic(panic_msg(&p))))
                            })
                            .collect();
                        // Master exits once all its slaves hung up.
                        let _ = master.join();
                    });

                    let mut robjs = Vec::with_capacity(results.len());
                    let mut slaves = Vec::with_capacity(results.len());
                    for r in results {
                        let (robj, stats) = r?;
                        robjs.push(robj);
                        slaves.push(stats);
                    }
                    // A site taken down by the chaos plan loses everything
                    // it accumulated: its reduction object never reaches
                    // global reduction (the head evacuates and re-runs its
                    // jobs at surviving sites).
                    let revoked = chaos
                        .as_deref()
                        .is_some_and(|p| p.site_dead(site, epoch.elapsed().as_secs_f64()));
                    Ok(merge_site_outcome(site, robjs, slaves, revoked, epoch, &config.telemetry))
                })
            })
            .collect();

        site_outcomes = coordinators
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|p| Err(RunError::WorkerPanic(panic_msg(&p)))))
            .collect();
        // All masters and slaves are done; let the head drain and exit.
        drop(head_tx);
        head_result = Some(head_handle.join().map_err(|p| RunError::WorkerPanic(panic_msg(&p))));
    });

    let head = head_result.expect("head joined in scope")?;

    // Worker-level failures take precedence over the aggregate
    // incompleteness report: they carry the root cause.
    let mut outcomes = Vec::with_capacity(site_outcomes.len());
    for o in site_outcomes {
        outcomes.push(o?);
    }
    if head.abandoned > 0 {
        return Err(RunError::Incomplete { abandoned: head.faults.abandoned_jobs.clone() });
    }
    // Fencing: a site the head declared dead had all its work requeued, so
    // merging its robj anyway (it may be a live site whose heartbeats were
    // merely delayed) would double-count every re-executed job.
    for o in &mut outcomes {
        if head.dead_sites.contains(&o.site) {
            o.robj = None;
        }
    }

    // ---- Global reduction phase (head collects and merges robjs) ----
    let (final_robj, global_reduction, total_time) =
        collect_global(&mut outcomes, head_site, config, epoch);
    let result = final_robj.ok_or(RunError::NothingProcessed)?;

    let report = assemble_report(&config.env.name, &outcomes, &head, global_reduction, total_time);
    Ok(RunOutcome { result, report, head })
}

/// Site-local combination shared by both runtimes: a parallel binary-tree
/// merge of the site's worker objects (a revoked site loses everything it
/// accumulated), with the `SiteMerged`/`SiteFinished` events emitted the
/// same way in channel and TCP mode.
pub(crate) fn merge_site_outcome<O: ReductionObject>(
    site: SiteId,
    robjs: Vec<O>,
    slaves: Vec<SlaveStats>,
    revoked: bool,
    epoch: Instant,
    telemetry: &Telemetry,
) -> SiteOutcome<O> {
    let merge_start = Instant::now();
    let robj = if revoked { None } else { tree_reduce(robjs) };
    let merge_dur = merge_start.elapsed();
    let local_merge = merge_dur.as_secs_f64();
    let finish = epoch.elapsed().as_secs_f64();
    telemetry.emit(
        Event::span(
            ns_between(epoch, merge_start),
            merge_dur.as_nanos() as u64,
            EventKind::SiteMerged,
        )
        .site(site),
    );
    telemetry.emit(Event::at(secs_to_ns(finish), EventKind::SiteFinished).site(site));
    SiteOutcome { site, robj, slaves, local_merge, finish }
}

/// The global-reduction phase shared by both runtimes. Every remote site
/// pushes its reduction object to the head concurrently — the modelled
/// inter-site transfers overlap instead of queueing one after another —
/// and the head merges arrivals in deterministic site order, so the phase
/// costs the *largest* transfer rather than their sum. Returns
/// `(result, global_reduction, total_time)` with the same accounting (and
/// the same `GlobalReduction`/`RunFinished` events) as before.
pub(crate) fn collect_global<O: ReductionObject>(
    outcomes: &mut [SiteOutcome<O>],
    head_site: SiteId,
    config: &RuntimeConfig,
    epoch: Instant,
) -> (Option<O>, Seconds, Seconds) {
    let gr_start = Instant::now();
    let staged: Vec<(SiteId, O)> =
        outcomes.iter_mut().filter_map(|o| o.robj.take().map(|r| (o.site, r))).collect();
    let mut final_robj: Option<O> = None;
    std::thread::scope(|scope| {
        let handles: Vec<_> = staged
            .into_iter()
            .map(|(site, robj)| {
                scope.spawn(move || {
                    if site != head_site {
                        // The reduction object crosses the inter-site link;
                        // its size is what makes pagerank's sync time large
                        // (paper §IV-B).
                        let link = config.topology.link(site.0, head_site.0);
                        let modelled = link.transfer_time(robj.byte_size() as u64);
                        sleep_secs(modelled * config.time_scale);
                    }
                    robj
                })
            })
            .collect();
        // Joining in site order keeps the merge order of the old serial
        // loop, whatever order the transfers actually land in.
        for h in handles {
            let robj = h.join().expect("transfer thread panicked");
            final_robj = Some(match final_robj.take() {
                None => robj,
                Some(mut acc) => {
                    acc.merge(robj);
                    acc
                }
            });
        }
    });
    let gr_dur = gr_start.elapsed();
    let global_reduction = gr_dur.as_secs_f64();
    let total_time = epoch.elapsed().as_secs_f64();
    config.telemetry.emit(Event::span(
        ns_between(epoch, gr_start),
        gr_dur.as_nanos() as u64,
        EventKind::GlobalReduction,
    ));
    config.telemetry.emit(Event::at(secs_to_ns(total_time), EventKind::RunFinished));
    (final_robj, global_reduction, total_time)
}

/// Fault-tolerance context for one site master.
struct MasterFt {
    heartbeat: Option<HeartbeatConfig>,
    chaos: Option<Arc<FaultPlan>>,
    /// Revocations published by the head (replica fencing, evacuation):
    /// queued jobs already fenced are dropped instead of dispatched.
    cancel: Option<CancelBoard>,
    epoch: Instant,
    telemetry: Telemetry,
}

impl MasterFt {
    fn site_dead(&self, site: SiteId) -> bool {
        self.chaos.as_deref().is_some_and(|p| p.site_dead(site, self.epoch.elapsed().as_secs_f64()))
    }

    fn revoked(&self, chunk: cloudburst_core::ChunkId) -> bool {
        self.cancel.as_ref().is_some_and(|b| b.is_revoked(chunk))
    }
}

/// The master loop: serve slaves from the site pool, refilling from the head
/// (paying the control-plane latency) when the pool runs low. With
/// heartbeats on it beacons liveness between requests; with a chaos outage
/// scheduled it vanishes abruptly when the site's hour arrives.
fn run_master(
    site: SiteId,
    low_watermark: usize,
    control_latency_real: f64,
    rx: &Receiver<MasterMsg>,
    head_tx: &Sender<HeadMsg>,
    ft: MasterFt,
) -> MasterPool {
    let mut pool = MasterPool::new(site, low_watermark);
    let refill = |pool: &mut MasterPool| {
        // Request leg.
        sleep_secs(control_latency_real);
        let (btx, brx) = bounded(1);
        if head_tx.send(HeadMsg::RequestJobs { site, reply: btx }).is_err() {
            return false;
        }
        let Ok(batch) = brx.recv() else { return false };
        // Response leg.
        sleep_secs(control_latency_real);
        pool.refill(batch);
        true
    };
    let mut last_beat = Instant::now();
    let beat = |last: &mut Instant| {
        if let Some(hb) = ft.heartbeat {
            if last.elapsed().as_secs_f64() >= hb.interval {
                let _ = head_tx.send(HeadMsg::Heartbeat { site });
                ft.telemetry.emit(Event::at(ns_since(ft.epoch), EventKind::Heartbeat).site(site));
                *last = Instant::now();
            }
        }
    };
    let tick = ft.heartbeat.map_or(Duration::from_millis(50), |h| {
        Duration::from_secs_f64((h.interval / 2.0).max(1e-4))
    });
    // Idle polling against an empty head backs off exponentially from
    // 100 µs to a cap, instead of hammering a fixed short period.
    const POLL_MIN: Duration = Duration::from_micros(100);
    const POLL_CAP: Duration = Duration::from_millis(5);
    let mut idle_wait = POLL_MIN;
    loop {
        if ft.site_dead(site) {
            // Simulated spot revocation: no goodbye, no final report. The
            // head notices via the missed heartbeats (channel mode) or the
            // broken connection (TCP mode).
            break;
        }
        beat(&mut last_beat);
        let msg = match rx.recv_timeout(tick) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        let reply = match msg {
            MasterMsg::GetJob { reply } => reply,
            // Completion reports only flow through masters in the TCP
            // deployment mode; the in-process runtime reports to the head
            // directly.
            MasterMsg::Complete { .. } | MasterMsg::Failed { .. } => continue,
        };
        let take = loop {
            if ft.site_dead(site) {
                break Take::Drained;
            }
            match pool.take() {
                // A copy elsewhere already completed this chunk and the head
                // fenced it (or its site was evacuated): the grant is no
                // longer assigned to us, so drop it instead of dispatching
                // dead work.
                Take::Job(j) if ft.revoked(j.chunk.id) => continue,
                Take::NeedRefill => {
                    if !refill(&mut pool) {
                        break Take::Drained; // head gone: shutting down
                    }
                    if pool.queued() == 0 && !pool.is_drained() {
                        // Nothing pending at the head, but in-flight jobs
                        // may yet fail and be requeued: poll with capped
                        // exponential backoff.
                        beat(&mut last_beat);
                        std::thread::sleep(idle_wait);
                        idle_wait = (idle_wait * 2).min(POLL_CAP);
                    }
                }
                other => {
                    idle_wait = POLL_MIN;
                    break other;
                }
            }
        };
        let served_job = matches!(take, Take::Job(_));
        let _ = reply.send(take);
        // Low-watermark prefetch happens after replying, so the slave is
        // already fetching while the head round-trip is in flight. A gone
        // head means shutdown: skip straight to the drain path instead of
        // rediscovering the broken channel one request at a time.
        if served_job && pool.needs_refill() && !refill(&mut pool) {
            break;
        }
    }
    // All slaves hung up. Any granted-but-undispatched job would stay
    // assigned at the head forever (classic mode has no lease reaper),
    // deadlocking the surviving sites that poll for it — hand the queue
    // back as failures so the head requeues the jobs. A chaos-dead site
    // skips this: vanishing with its grants is the scenario, and the
    // head's evacuation (or lease reaping) recovers them.
    if !ft.site_dead(site) {
        for job in pool.drain_queued() {
            let _ = head_tx.send(HeadMsg::Failed { job: job.chunk.id, site });
        }
        // The orderly goodbye: a site that vanishes without one is treated
        // as crashed and evacuated when liveness tracking is on.
        let _ = head_tx.send(HeadMsg::Bye { site });
    }
    pool
}

/// Where a slave reports job completions and failures: directly to the
/// head (the in-process runtime) or to its master, which forwards over the
/// control connection (the TCP deployment mode).
pub(crate) enum ReportSink<'a> {
    /// Report straight to the head's channel.
    Head(&'a Sender<HeadMsg>),
    /// Report to the site master.
    Master(&'a Sender<MasterMsg>),
}

impl ReportSink<'_> {
    /// Report a completion. With `want_ack` the call blocks for the head's
    /// merge/discard verdict and returns it; without, it is fire-and-forget
    /// and optimistically returns `true`.
    fn complete(&self, job: cloudburst_core::ChunkId, site: SiteId, want_ack: bool) -> bool {
        if !want_ack {
            match self {
                ReportSink::Head(tx) => {
                    let _ = tx.send(HeadMsg::Complete { job, site, reply: None });
                }
                ReportSink::Master(tx) => {
                    let _ = tx.send(MasterMsg::Complete { job, reply: None });
                }
            }
            return true;
        }
        let (ack_tx, ack_rx) = bounded(1);
        let sent = match self {
            ReportSink::Head(tx) => {
                tx.send(HeadMsg::Complete { job, site, reply: Some(ack_tx) }).is_ok()
            }
            ReportSink::Master(tx) => {
                tx.send(MasterMsg::Complete { job, reply: Some(ack_tx) }).is_ok()
            }
        };
        // A torn-down control plane can no longer merge anything: discard.
        sent && ack_rx.recv().unwrap_or(false)
    }

    fn fail(&self, job: cloudburst_core::ChunkId, site: SiteId) {
        match self {
            ReportSink::Head(tx) => {
                let _ = tx.send(HeadMsg::Failed { job, site });
            }
            ReportSink::Master(tx) => {
                let _ = tx.send(MasterMsg::Failed { job });
            }
        }
    }
}

/// The slave loop: pull a job, retrieve its chunk (local stream or remote
/// ranged fetch), split into cache-sized unit groups, and fold into the
/// worker's reduction object. With `pipeline_depth ≥ 2` the pull+fetch
/// half runs on a companion prefetcher so retrieval of chunk *N+1*
/// overlaps processing of chunk *N*; depth 1 is the untouched serial loop.
pub(crate) fn run_slave<R: Reduction>(
    app: &R,
    ctx: SlaveCtx,
    master_tx: &Sender<MasterMsg>,
    reports: &ReportSink<'_>,
    router: &StoreRouter,
    config: &RuntimeConfig,
) -> Result<(R::RObj, SlaveStats), RunError> {
    if config.pipeline_depth >= 2 {
        run_slave_pipelined(app, ctx, master_tx, reports, router, config)
    } else {
        run_slave_serial(app, ctx, master_tx, reports, router, config)
    }
}

/// The classic serial slave loop (`pipeline_depth ≤ 1`): request, fetch,
/// process, repeat — nothing in flight while the worker computes.
fn run_slave_serial<R: Reduction>(
    app: &R,
    ctx: SlaveCtx,
    master_tx: &Sender<MasterMsg>,
    reports: &ReportSink<'_>,
    router: &StoreRouter,
    config: &RuntimeConfig,
) -> Result<(R::RObj, SlaveStats), RunError> {
    let site = ctx.site;
    let mut robj = app.make_robj();
    let mut stats = SlaveStats::default();
    let mut items: Vec<R::Item> = Vec::new();
    let crash_after = ctx.chaos.as_deref().and_then(|p| p.crash_after(site, ctx.worker));
    let slowdown = ctx.chaos.as_deref().map_or(0.0, |p| p.worker_delay(site, ctx.worker));
    let site_factor = ctx.chaos.as_deref().map_or(1.0, |p| p.site_slowdown(site));
    let mut taken: u64 = 0;
    'jobs: loop {
        if ctx.site_dead() {
            // The site just lost power: stop mid-run without reporting. The
            // accumulated robj is discarded by the coordinator; the head
            // re-runs everything this site was credited with.
            break;
        }
        let (rtx, rrx) = bounded(1);
        if master_tx.send(MasterMsg::GetJob { reply: rtx }).is_err() {
            break;
        }
        let Ok(take) = rrx.recv() else { break };
        let job = match take {
            Take::Job(j) => j,
            Take::Drained => break,
            Take::NeedRefill => unreachable!("master resolves refills internally"),
        };
        ctx.telemetry.emit(
            Event::at(ctx.ns_at(Instant::now()), EventKind::JobStarted { stolen: job.stolen })
                .site(site)
                .worker(ctx.worker)
                .chunk(job.chunk.id)
                .span_id(job.span),
        );
        taken += 1;
        if crash_after.is_some_and(|k| taken > k) {
            // Simulated worker crash: the job it just pulled leaks — only
            // the head's lease reaper can recover it. Prior completed work
            // stays valid (it was already merged and acked).
            break;
        }

        // Whatever goes wrong below — retrieval error or a panic inside the
        // application's decode/reduce — the in-flight job must be reported
        // to the head, or its masters would poll for it forever.
        let fail_job = |e: RunError| -> Result<(), RunError> {
            reports.fail(job.chunk.id, site);
            match config.fault_policy {
                FaultPolicy::FailFast => Err(e),
                FaultPolicy::Retry { .. } => Ok(()), // head requeues/abandons
            }
        };

        let fetch_start = Instant::now();
        let fetched = match router.fetch(site, &job.chunk) {
            Ok(f) => f,
            Err(e) => {
                fail_job(e)?;
                continue;
            }
        };
        let fetch_dur = fetch_start.elapsed();
        stats.retrieval += fetch_dur.as_secs_f64();
        stats.retries += fetched.retries;
        if fetched.remote {
            stats.remote_bytes += fetched.bytes.len() as u64;
        }
        ctx.metrics.fetched(fetch_dur, fetched.bytes.len() as u64, fetched.remote, fetched.retries);
        if fetched.retries > 0 {
            ctx.telemetry.emit(
                Event::at(
                    ctx.ns_at(Instant::now()),
                    EventKind::StorageRetry { retries: fetched.retries },
                )
                .site(site)
                .worker(ctx.worker)
                .chunk(job.chunk.id)
                .span_id(job.span),
            );
        }
        ctx.telemetry.emit(
            Event::span(
                ctx.ns_at(fetch_start),
                fetch_dur.as_nanos() as u64,
                EventKind::ChunkFetched {
                    bytes: fetched.bytes.len() as u64,
                    remote: fetched.remote,
                    retries: fetched.retries,
                },
            )
            .site(site)
            .worker(ctx.worker)
            .chunk(job.chunk.id)
            .span_id(job.span),
        );

        let proc_start = Instant::now();
        // Under the retry policy (or any FT machinery), fold the chunk into
        // a scratch object and merge only on success/ack, so a mid-chunk
        // panic cannot leave a partially-applied job in the worker's
        // accumulator and a deduplicated completion is never double-merged.
        let isolate = ctx.ack_gated || matches!(config.fault_policy, FaultPolicy::Retry { .. });
        let processed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            items.clear();
            app.decode(&fetched.bytes, &mut items);
            if isolate {
                let mut scratch = app.make_robj();
                for group in items.chunks(config.unit_group.max(1)) {
                    app.reduce_group(&mut scratch, group);
                }
                Some(scratch)
            } else {
                for group in items.chunks(config.unit_group.max(1)) {
                    app.reduce_group(&mut robj, group);
                }
                None
            }
        }));
        let scratch = match processed {
            Ok(scratch) => scratch,
            Err(p) => {
                // The items buffer may hold garbage from the aborted decode.
                items.clear();
                fail_job(RunError::WorkerPanic(panic_msg(&*p)))?;
                continue;
            }
        };
        let proc_dur = proc_start.elapsed();
        stats.processing += proc_dur.as_secs_f64();
        stats.jobs += 1;
        ctx.metrics.processed(proc_dur);
        ctx.telemetry.emit(
            Event::span(ctx.ns_at(proc_start), proc_dur.as_nanos() as u64, EventKind::JobProcessed)
                .site(site)
                .worker(ctx.worker)
                .chunk(job.chunk.id)
                .span_id(job.span),
        );

        // Injected straggling: a fixed per-worker delay plus a site-wide
        // multiplicative slowdown scaled by this job's real elapsed time.
        let delay =
            slowdown + (site_factor - 1.0) * (fetch_dur.as_secs_f64() + proc_dur.as_secs_f64());
        if delay > 0.0 {
            // Simulated straggler: crawl through the injected delay in
            // small steps so a cancellation (our lease was reaped, or a
            // duplicate copy won) or the site's death aborts the wait.
            let step = Duration::from_micros(500);
            let until = Instant::now() + Duration::from_secs_f64(delay);
            while Instant::now() < until {
                if ctx.site_dead() {
                    break 'jobs;
                }
                if ctx.revoked(job.chunk.id) {
                    continue 'jobs; // lost the race: drop the result silently
                }
                std::thread::sleep(step);
            }
        }
        if ctx.site_dead() {
            break;
        }
        if ctx.revoked(job.chunk.id) {
            continue;
        }

        let merged = reports.complete(job.chunk.id, site, ctx.ack_gated);
        if merged {
            if let Some(scratch) = scratch {
                robj.merge(scratch);
            }
        }
    }
    stats.finish = ctx.epoch.elapsed().as_secs_f64();
    ctx.telemetry.emit(
        Event::at(secs_to_ns(stats.finish), EventKind::SlaveFinished).site(site).worker(ctx.worker),
    );
    Ok((robj, stats))
}

/// A job pulled and fetched by a slave's companion prefetcher, queued for
/// the processing half of the pipeline.
struct PrefetchedJob {
    job: LocalJob,
    fetched: Result<Fetched, RunError>,
    fetch_start: Instant,
    fetch_dur: Duration,
}

/// The pull+fetch half of a pipelined slave: request jobs from the master
/// and retrieve their chunks, handing each [`PrefetchedJob`] to the
/// processing half over a bounded channel whose capacity enforces the
/// pipeline depth. Runs until the pool drains, the site dies, or the
/// processing half hangs up (crash or abort) — grants abandoned that way
/// are recovered by lease reaping or evacuation, exactly like a crashed
/// worker's.
fn prefetch_loop(
    ctx: &SlaveCtx,
    master_tx: &Sender<MasterMsg>,
    router: &StoreRouter,
    ftx: Sender<PrefetchedJob>,
) {
    loop {
        if ctx.site_dead() {
            return;
        }
        let (rtx, rrx) = bounded(1);
        if master_tx.send(MasterMsg::GetJob { reply: rtx }).is_err() {
            return;
        }
        let Ok(take) = rrx.recv() else { return };
        let job = match take {
            Take::Job(j) => j,
            Take::Drained => return,
            Take::NeedRefill => unreachable!("master resolves refills internally"),
        };
        if ctx.revoked(job.chunk.id) {
            // The grant was revoked (evacuation, a reaped lease, or a
            // finished replica) while it sat in the master's queue: skip
            // the fetch entirely instead of retrieving bytes nobody will
            // process. The head has already requeued or fenced the chunk.
            ctx.metrics.prefetch_dropped();
            continue;
        }
        ctx.telemetry.emit(
            Event::at(ns_since(ctx.epoch), EventKind::JobStarted { stolen: job.stolen })
                .site(ctx.site)
                .worker(ctx.worker)
                .chunk(job.chunk.id)
                .span_id(job.span),
        );
        let fetch_start = Instant::now();
        let fetched = router.fetch(ctx.site, &job.chunk);
        let fetch_dur = fetch_start.elapsed();
        if ftx.send(PrefetchedJob { job, fetched, fetch_start, fetch_dur }).is_err() {
            return; // processing half gone: abandon the granted job
        }
        ctx.metrics.pipeline(1);
    }
}

/// The pipelined slave loop (`pipeline_depth ≥ 2`): a companion thread —
/// one per slave for the whole run, not one per chunk — pulls and fetches
/// ahead while this thread decodes and reduces, hiding retrieval behind
/// computation. The processing half is behaviourally identical to the
/// serial loop: same failure reporting, revocation, ack gating, and
/// scratch merging.
fn run_slave_pipelined<R: Reduction>(
    app: &R,
    ctx: SlaveCtx,
    master_tx: &Sender<MasterMsg>,
    reports: &ReportSink<'_>,
    router: &StoreRouter,
    config: &RuntimeConfig,
) -> Result<(R::RObj, SlaveStats), RunError> {
    let site = ctx.site;
    let mut robj = app.make_robj();
    let mut stats = SlaveStats::default();
    let mut items: Vec<R::Item> = Vec::new();
    let crash_after = ctx.chaos.as_deref().and_then(|p| p.crash_after(site, ctx.worker));
    let slowdown = ctx.chaos.as_deref().map_or(0.0, |p| p.worker_delay(site, ctx.worker));
    let site_factor = ctx.chaos.as_deref().map_or(1.0, |p| p.site_slowdown(site));
    let mut taken: u64 = 0;
    let outcome = std::thread::scope(|scope| -> Result<(), RunError> {
        // Depth d keeps one job processing here, one fetching on the
        // companion, and d - 2 fetched-and-waiting in the channel (depth 2
        // is a rendezvous channel: fetch exactly one ahead).
        let (ftx, frx) = bounded::<PrefetchedJob>(config.pipeline_depth - 2);
        let ctx_ref = &ctx;
        scope.spawn(move || prefetch_loop(ctx_ref, master_tx, router, ftx));
        'jobs: for pre in frx.iter() {
            ctx.metrics.pipeline(-1);
            if ctx.site_dead() {
                break;
            }
            taken += 1;
            if crash_after.is_some_and(|k| taken > k) {
                // Simulated worker crash: the prefetched job (and anything
                // still in the pipeline) leaks — only the head's lease
                // reaper can recover them. Prior completed work stays
                // valid (it was already merged and acked).
                break;
            }
            let PrefetchedJob { job, fetched, fetch_start, fetch_dur } = pre;
            if ctx.revoked(job.chunk.id) {
                // The fetch raced a revocation: the chunk was evacuated or
                // fenced while it sat buffered in the pipeline. Drop it at
                // the handoff instead of processing a result the head would
                // discard anyway.
                ctx.metrics.prefetch_dropped();
                continue;
            }
            let fail_job = |e: RunError| -> Result<(), RunError> {
                reports.fail(job.chunk.id, site);
                match config.fault_policy {
                    FaultPolicy::FailFast => Err(e),
                    FaultPolicy::Retry { .. } => Ok(()), // head requeues/abandons
                }
            };
            let fetched = match fetched {
                Ok(f) => f,
                Err(e) => {
                    fail_job(e)?;
                    continue;
                }
            };
            stats.retrieval += fetch_dur.as_secs_f64();
            stats.retries += fetched.retries;
            if fetched.remote {
                stats.remote_bytes += fetched.bytes.len() as u64;
            }
            ctx.metrics.fetched(
                fetch_dur,
                fetched.bytes.len() as u64,
                fetched.remote,
                fetched.retries,
            );
            // Fetch telemetry is emitted here rather than by the companion,
            // so a crashed slave's unprocessed prefetches never show up in
            // the event stream (they never reach SlaveStats either); the
            // span still carries the companion's true fetch timing.
            if fetched.retries > 0 {
                ctx.telemetry.emit(
                    Event::at(
                        ctx.ns_at(Instant::now()),
                        EventKind::StorageRetry { retries: fetched.retries },
                    )
                    .site(site)
                    .worker(ctx.worker)
                    .chunk(job.chunk.id)
                    .span_id(job.span),
                );
            }
            ctx.telemetry.emit(
                Event::span(
                    ctx.ns_at(fetch_start),
                    fetch_dur.as_nanos() as u64,
                    EventKind::ChunkFetched {
                        bytes: fetched.bytes.len() as u64,
                        remote: fetched.remote,
                        retries: fetched.retries,
                    },
                )
                .site(site)
                .worker(ctx.worker)
                .chunk(job.chunk.id)
                .span_id(job.span),
            );

            let proc_start = Instant::now();
            let isolate = ctx.ack_gated || matches!(config.fault_policy, FaultPolicy::Retry { .. });
            let processed = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                items.clear();
                app.decode(&fetched.bytes, &mut items);
                if isolate {
                    let mut scratch = app.make_robj();
                    for group in items.chunks(config.unit_group.max(1)) {
                        app.reduce_group(&mut scratch, group);
                    }
                    Some(scratch)
                } else {
                    for group in items.chunks(config.unit_group.max(1)) {
                        app.reduce_group(&mut robj, group);
                    }
                    None
                }
            }));
            let scratch = match processed {
                Ok(scratch) => scratch,
                Err(p) => {
                    items.clear();
                    fail_job(RunError::WorkerPanic(panic_msg(&*p)))?;
                    continue;
                }
            };
            let proc_dur = proc_start.elapsed();
            stats.processing += proc_dur.as_secs_f64();
            stats.jobs += 1;
            ctx.metrics.processed(proc_dur);
            ctx.telemetry.emit(
                Event::span(
                    ctx.ns_at(proc_start),
                    proc_dur.as_nanos() as u64,
                    EventKind::JobProcessed,
                )
                .site(site)
                .worker(ctx.worker)
                .chunk(job.chunk.id)
                .span_id(job.span),
            );

            // Per-worker fixed delay plus the site-wide multiplicative
            // slowdown, exactly as in the serial loop.
            let delay =
                slowdown + (site_factor - 1.0) * (fetch_dur.as_secs_f64() + proc_dur.as_secs_f64());
            if delay > 0.0 {
                let step = Duration::from_micros(500);
                let until = Instant::now() + Duration::from_secs_f64(delay);
                while Instant::now() < until {
                    if ctx.site_dead() {
                        break 'jobs;
                    }
                    if ctx.revoked(job.chunk.id) {
                        continue 'jobs; // lost the race: drop the result silently
                    }
                    std::thread::sleep(step);
                }
            }
            if ctx.site_dead() {
                break;
            }
            if ctx.revoked(job.chunk.id) {
                continue;
            }

            let merged = reports.complete(job.chunk.id, site, ctx.ack_gated);
            if merged {
                if let Some(scratch) = scratch {
                    robj.merge(scratch);
                }
            }
        }
        // `frx` drops here: a companion parked on a full channel sees the
        // hangup and exits before the scope joins it.
        Ok(())
    });
    outcome?;
    stats.finish = ctx.epoch.elapsed().as_secs_f64();
    ctx.telemetry.emit(
        Event::at(secs_to_ns(stats.finish), EventKind::SlaveFinished).site(site).worker(ctx.worker),
    );
    Ok((robj, stats))
}

fn sleep_secs(secs: f64) {
    if secs > 0.0 {
        std::thread::sleep(Duration::from_secs_f64(secs));
    }
}

pub(crate) fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "unknown panic".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use cloudburst_core::{reduce_serial, LayoutParams};
    use cloudburst_storage::{fraction_placement, organize, organize_redundant};

    /// Units are little-endian u32s; the result is their sum (order-free).
    struct SumApp;

    #[derive(Debug, PartialEq, Eq)]
    struct SumObj(u64);

    impl Merge for SumObj {
        fn merge(&mut self, other: Self) {
            self.0 += other.0;
        }
    }
    impl ReductionObject for SumObj {
        fn byte_size(&self) -> usize {
            8
        }
    }
    impl Reduction for SumApp {
        type Item = u32;
        type RObj = SumObj;
        fn make_robj(&self) -> SumObj {
            SumObj(0)
        }
        fn unit_size(&self) -> usize {
            4
        }
        fn decode(&self, chunk: &[u8], out: &mut Vec<u32>) {
            out.extend(chunk.chunks_exact(4).map(|b| u32::from_le_bytes(b.try_into().unwrap())));
        }
        fn local_reduce(&self, robj: &mut SumObj, item: &u32) {
            robj.0 += u64::from(*item);
        }
    }

    fn dataset(units: u32) -> Bytes {
        Bytes::from((0..units).flat_map(|i| i.to_le_bytes()).collect::<Vec<_>>())
    }

    fn setup(
        units: u32,
        local_frac: f64,
        n_files: u32,
    ) -> (DataIndex, BTreeMap<SiteId, Arc<dyn ChunkStore>>) {
        let data = dataset(units);
        let params = LayoutParams { unit_size: 4, units_per_chunk: 64, n_files };
        let org = organize(&data, params, &mut fraction_placement(local_frac, n_files)).unwrap();
        let stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = org
            .stores
            .iter()
            .map(|(&s, st)| (s, Arc::new(st.clone()) as Arc<dyn ChunkStore>))
            .collect();
        (org.index, stores)
    }

    fn setup_redundant(
        units: u32,
        local_frac: f64,
        n_files: u32,
        r: u32,
    ) -> (DataIndex, BTreeMap<SiteId, Arc<dyn ChunkStore>>) {
        let data = dataset(units);
        let params = LayoutParams { unit_size: 4, units_per_chunk: 64, n_files };
        let org =
            organize_redundant(&data, params, &mut fraction_placement(local_frac, n_files), r)
                .unwrap();
        let stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = org
            .stores
            .iter()
            .map(|(&s, st)| (s, Arc::new(st.clone()) as Arc<dyn ChunkStore>))
            .collect();
        (org.index, stores)
    }

    fn fast_config(env: EnvConfig) -> RuntimeConfig {
        let mut c = RuntimeConfig::new(env, 1e-5);
        c.fetch = FetchConfig { threads: 2, min_range: 64 };
        c
    }

    fn expected_sum(units: u32) -> u64 {
        (0..units).map(u64::from).sum()
    }

    /// Slow every worker a little so jobs take milliseconds, not
    /// microseconds: the crash-injection tests need the to-crash worker to
    /// reliably reach its fatal take before its peers drain the site's
    /// queue, which a scheduler hiccup on a loaded box would otherwise race.
    fn slow_all_workers(plan: &mut FaultPlan, delay: f64) {
        for site in [SiteId::LOCAL, SiteId::CLOUD] {
            for worker in 0..2 {
                plan.slow_workers.push(cloudburst_core::SlowWorker {
                    site,
                    worker,
                    delay_per_job: delay,
                });
            }
        }
    }

    #[test]
    fn hybrid_run_matches_serial_oracle() {
        let units = 4096;
        let (index, stores) = setup(units, 0.5, 4);
        let env = EnvConfig::new("env-50/50", 0.5, 3, 3);
        let out = run_hybrid(&SumApp, &index, stores, &fast_config(env)).unwrap();
        assert_eq!(out.result.0, expected_sum(units));
        assert_eq!(out.report.total_jobs(), index.n_chunks() as u64);
        assert!(out.report.total_time > 0.0);
    }

    #[test]
    fn centralized_local_run_works() {
        let units = 1024;
        let (index, stores) = setup(units, 1.0, 2);
        let env = EnvConfig::new("env-local", 1.0, 4, 0);
        let out = run_hybrid(&SumApp, &index, stores, &fast_config(env)).unwrap();
        assert_eq!(out.result.0, expected_sum(units));
        // Single site, all data local: nothing stolen.
        assert_eq!(out.report.total_stolen(), 0);
        assert_eq!(out.report.sites.len(), 1);
    }

    #[test]
    fn skewed_data_forces_stealing() {
        // All data in the cloud, cores on both sides: the local cluster can
        // only contribute by stealing.
        let units = 8192;
        let (index, stores) = setup(units, 0.0, 4);
        let env = EnvConfig::new("steal", 0.0, 3, 3);
        let out = run_hybrid(&SumApp, &index, stores, &fast_config(env)).unwrap();
        assert_eq!(out.result.0, expected_sum(units));
        let local = &out.report.sites[&SiteId::LOCAL];
        assert_eq!(local.jobs.local, 0);
        assert!(local.jobs.stolen > 0, "local cluster must steal cloud jobs");
        assert!(local.remote_bytes > 0);
    }

    #[test]
    fn result_identical_across_environments() {
        let units = 2048;
        let serial = {
            let data = dataset(units);
            reduce_serial(&SumApp, [data.as_ref()])
        };
        for (frac, lc, cc) in [(1.0, 4, 0), (0.0, 0, 4), (0.5, 2, 2), (0.17, 2, 2)] {
            let (index, stores) = setup(units, frac, 4);
            let env = EnvConfig::new("x", frac, lc, cc);
            let out = run_hybrid(&SumApp, &index, stores, &fast_config(env)).unwrap();
            assert_eq!(out.result, serial, "env ({frac},{lc},{cc}) diverged");
        }
    }

    #[test]
    fn head_accounting_is_consistent() {
        let units = 2048;
        let (index, stores) = setup(units, 0.33, 4);
        let env = EnvConfig::new("x", 0.33, 2, 2);
        let out = run_hybrid(&SumApp, &index, stores, &fast_config(env)).unwrap();
        assert_eq!(out.head.completions, index.n_chunks() as u64);
        let total: u64 = out.head.counts.values().map(|c| c.total()).sum();
        assert_eq!(total, index.n_chunks() as u64);
        assert!(out.head.requests > 0);
    }

    #[test]
    fn missing_store_fails_before_spawning() {
        let (index, mut stores) = setup(512, 0.5, 2);
        stores.remove(&SiteId::CLOUD);
        let env = EnvConfig::new("x", 0.5, 2, 2);
        let err = run_hybrid(&SumApp, &index, stores, &fast_config(env)).unwrap_err();
        assert!(matches!(err, RunError::NoStoreForSite(SiteId::CLOUD)));
    }

    #[test]
    fn report_breakdowns_are_populated() {
        let units = 4096;
        let (index, stores) = setup(units, 0.5, 4);
        let env = EnvConfig::new("x", 0.5, 2, 2);
        let out = run_hybrid(&SumApp, &index, stores, &fast_config(env)).unwrap();
        for (site, s) in &out.report.sites {
            assert!(s.finish_time > 0.0, "{site} finish time");
            assert!(s.breakdown.total() > 0.0, "{site} breakdown");
            assert!(s.idle >= 0.0);
        }
        let b = out.report.overall_breakdown();
        assert!(b.total() >= out.report.global_reduction);
    }

    #[test]
    fn ft_machinery_preserves_results() {
        // Leases, speculation, heartbeats, acked completions, and storage
        // retries all on — with no faults injected, the answer and the job
        // accounting must match the fault-oblivious run exactly.
        let units = 4096;
        let (index, stores) = setup(units, 0.5, 4);
        let env = EnvConfig::new("ft-quiet", 0.5, 3, 3);
        let mut config = fast_config(env);
        config.fault_policy = FaultPolicy::Retry { max_attempts: 4 };
        config.ft = FtConfig {
            lease: Some(LeaseConfig::default()),
            speculate: true,
            // Generous timeout: a loaded test machine must not evacuate a
            // site that is merely slow to schedule threads.
            heartbeat: Some(HeartbeatConfig { interval: 0.02, timeout: 10.0 }),
            retry: Some(RetryPolicy::default()),
            chaos: None,
        };
        let out = run_hybrid(&SumApp, &index, stores, &config).unwrap();
        assert_eq!(out.result.0, expected_sum(units));
        assert!(out.head.dead_sites.is_empty());
        assert_eq!(out.head.abandoned, 0);
        assert_eq!(out.report.total_jobs(), index.n_chunks() as u64);
    }

    #[test]
    fn event_stream_rederives_the_legacy_report() {
        use cloudburst_core::{derive_report, Recorder};

        // A run with the whole FT stack on (leases, speculation, heartbeats,
        // acked completions) so the event stream covers grants, steals,
        // heartbeats, and completions — then the aggregator must rebuild the
        // exact job counts and fault counters, and the time decomposition
        // within float-conversion noise.
        let units = 4096;
        let (index, stores) = setup(units, 0.5, 4);
        let env = EnvConfig::new("telemetry-eq", 0.5, 3, 3);
        let mut config = fast_config(env);
        config.fault_policy = FaultPolicy::Retry { max_attempts: 4 };
        config.ft = FtConfig {
            lease: Some(LeaseConfig::default()),
            speculate: true,
            heartbeat: Some(HeartbeatConfig { interval: 0.02, timeout: 10.0 }),
            retry: Some(RetryPolicy::default()),
            chaos: None,
        };
        let rec = Arc::new(Recorder::new());
        config.telemetry = Telemetry::to(rec.clone());
        let out = run_hybrid(&SumApp, &index, stores, &config).unwrap();
        assert_eq!(out.result.0, expected_sum(units));

        let events = rec.take();
        assert!(!events.is_empty(), "an attached sink must see the run");
        let derived = derive_report(&events, &out.report.env);

        // Discrete facts are exact.
        assert_eq!(derived.faults, out.report.faults);
        assert_eq!(derived.sites.len(), out.report.sites.len());
        for (site, legacy) in &out.report.sites {
            let d = &derived.sites[site];
            assert_eq!(d.jobs, legacy.jobs, "{site} job counts");
            assert_eq!(d.remote_bytes, legacy.remote_bytes, "{site} remote bytes");
            assert_eq!(d.retries, legacy.retries, "{site} retries");
        }

        // Times go through a seconds → integer-nanoseconds → seconds round
        // trip on the event path; everything else about the arithmetic is
        // the same `assemble_sites` call, so the agreement is tight.
        let close = |a: f64, b: f64, what: &str| {
            assert!((a - b).abs() < 1e-6, "{what}: derived {a} vs legacy {b}");
        };
        for (site, legacy) in &out.report.sites {
            let d = &derived.sites[site];
            close(d.breakdown.processing, legacy.breakdown.processing, "processing");
            close(d.breakdown.retrieval, legacy.breakdown.retrieval, "retrieval");
            close(d.breakdown.sync, legacy.breakdown.sync, "sync");
            close(d.finish_time, legacy.finish_time, "finish_time");
            close(d.idle, legacy.idle, "idle");
        }
        close(derived.global_reduction, out.report.global_reduction, "global_reduction");
        close(derived.total_time, out.report.total_time, "total_time");
    }

    #[test]
    fn metrics_scrape_agrees_with_the_report() {
        use cloudburst_core::parse_exposition;
        let units = 4096;
        let (index, stores) = setup(units, 0.5, 4);
        let env = EnvConfig::new("metrics-eq", 0.5, 3, 3);
        let mut config = fast_config(env);
        config.pipeline_depth = 3;
        config.metrics = Metrics::on();
        let out = run_hybrid(&SumApp, &index, stores, &config).unwrap();
        let exp = parse_exposition(&config.metrics.registry().unwrap().render()).unwrap();

        let get = |name: &str, labels: &[(&str, &str)]| exp.get(name, labels).unwrap_or(0.0);
        for (site, s) in &out.report.sites {
            let sv = site.to_string();
            for (kind, want) in [("local", s.jobs.local), ("stolen", s.jobs.stolen)] {
                let merged =
                    get("cloudburst_pool_jobs_merged_total", &[("site", &sv), ("kind", kind)]);
                let lost =
                    get("cloudburst_pool_results_lost_total", &[("site", &sv), ("kind", kind)]);
                assert_eq!((merged - lost) as u64, want, "{site} {kind} jobs");
            }
        }
        // Slave byte/retry counters sum (over workers) to the report's
        // per-site numbers.
        let bytes = exp.by_label("cloudburst_slave_remote_bytes_total", "site");
        for (site, s) in &out.report.sites {
            let got = bytes.get(&site.to_string()).copied().unwrap_or(0.0);
            assert_eq!(got as u64, s.remote_bytes, "{site} remote bytes");
        }
        // Fault-free run: one grant per job, and the WAN pushed exactly the
        // remote bytes.
        assert_eq!(exp.sum_family("cloudburst_pool_grants_total") as u64, out.report.total_jobs());
        assert_eq!(
            exp.sum_family("cloudburst_pool_steals_total") as u64,
            out.report.total_stolen()
        );
        let remote_total: u64 = out.report.sites.values().map(|s| s.remote_bytes).sum();
        assert_eq!(exp.sum_family("cloudburst_net_bytes_total") as u64, remote_total);
        // Every job went through the latency histograms; gauges settled.
        assert_eq!(
            exp.sum_family("cloudburst_process_seconds_count") as u64,
            out.report.total_jobs()
        );
        assert_eq!(exp.sum_family("cloudburst_pool_queue_depth") as i64, 0);
        assert_eq!(exp.sum_family("cloudburst_pool_in_flight") as i64, 0);
        // Store decorators saw real traffic.
        assert!(exp.sum_family("cloudburst_store_requests_total") > 0.0);
        assert!(exp.sum_family("cloudburst_store_bytes_total") > 0.0);
    }

    #[test]
    fn coded_run_is_exact_and_wan_free() {
        // r = 2 on two sites: every chunk has a local copy everywhere, so
        // the replica-aware router never crosses the WAN, and the replica
        // fencing dedups whatever proactive copies the pool hands out.
        let units = 4096;
        let (index, stores) = setup_redundant(units, 0.5, 4, 2);
        let env = EnvConfig::new("coded", 0.5, 3, 3);
        let mut config = fast_config(env);
        config.redundancy = 2;
        let out = run_hybrid(&SumApp, &index, stores, &config).unwrap();
        assert_eq!(out.result.0, expected_sum(units));
        assert_eq!(out.head.abandoned, 0);
        for (site, s) in &out.report.sites {
            assert_eq!(s.remote_bytes, 0, "{site} fetched over the WAN despite replicas");
        }
    }

    #[test]
    fn redundancy_one_matches_classic_run_at_every_depth() {
        // The r = 1 path must stay bit-exact with the pre-coded runtime:
        // same result, same job accounting, serial and pipelined.
        let units = 2048;
        let (index, stores) = setup(units, 0.5, 4);
        let env = EnvConfig::new("r1", 0.5, 2, 2);
        let baseline = run_hybrid(&SumApp, &index, stores, &fast_config(env)).unwrap();
        for depth in [1usize, 3] {
            let (index, stores) = setup(units, 0.5, 4);
            let env = EnvConfig::new("r1", 0.5, 2, 2);
            let mut config = fast_config(env);
            config.pipeline_depth = depth;
            config.redundancy = 1;
            let out = run_hybrid(&SumApp, &index, stores, &config).unwrap();
            assert_eq!(out.result, baseline.result, "depth {depth}");
            assert_eq!(out.report.total_jobs(), baseline.report.total_jobs(), "depth {depth}");
            assert_eq!(out.report.faults.replica_grants, 0, "depth {depth}");
            assert_eq!(out.report.faults.saved_refetches, 0, "depth {depth}");
        }
    }

    #[test]
    fn pipelined_run_matches_serial_loop() {
        let units = 4096;
        let serial = {
            let (index, stores) = setup(units, 0.5, 4);
            let env = EnvConfig::new("pipe-base", 0.5, 3, 3);
            run_hybrid(&SumApp, &index, stores, &fast_config(env)).unwrap()
        };
        for depth in [2usize, 4] {
            let (index, stores) = setup(units, 0.5, 4);
            let env = EnvConfig::new("pipe-base", 0.5, 3, 3);
            let mut config = fast_config(env);
            config.pipeline_depth = depth;
            let out = run_hybrid(&SumApp, &index, stores, &config).unwrap();
            assert_eq!(out.result, serial.result, "depth {depth} diverged");
            assert_eq!(out.report.total_jobs(), serial.report.total_jobs(), "depth {depth}");
            assert_eq!(out.head.completions, serial.head.completions, "depth {depth}");
        }
    }

    #[test]
    fn pipelined_crash_leaks_are_recovered_by_lease_reaping() {
        // A crashing worker abandons not just the job it pulled but its
        // companion's whole prefetched pipeline; the reaper must recover
        // every leaked grant and the run must still be exact.
        let units = 2048;
        let (index, stores) = setup(units, 0.5, 4);
        let env = EnvConfig::new("crashy-pipe", 0.5, 2, 2);
        let mut config = fast_config(env);
        config.pipeline_depth = 3;
        config.fault_policy = FaultPolicy::Retry { max_attempts: 5 };
        let mut plan = FaultPlan {
            worker_crash: vec![cloudburst_core::WorkerCrash {
                site: SiteId::CLOUD,
                worker: 0,
                after_jobs: 2,
            }],
            ..FaultPlan::seeded(11)
        };
        slow_all_workers(&mut plan, 0.004);
        config.ft = FtConfig {
            lease: Some(LeaseConfig { base: 0.05, min: 0.05, max: 0.2, multiplier: 8.0 }),
            speculate: false,
            heartbeat: None,
            retry: None,
            chaos: Some(Arc::new(plan)),
        };
        let out = run_hybrid(&SumApp, &index, stores, &config).unwrap();
        assert_eq!(out.result.0, expected_sum(units));
        assert!(out.head.faults.lease_expiries > 0, "leaked grants must come back via the reaper");
    }

    #[test]
    fn chaos_worker_crash_is_recovered_by_lease_reaping() {
        // One cloud worker crashes after two jobs, leaking its third. Only
        // the lease reaper can recover it; the run must still be exact.
        let units = 2048;
        let (index, stores) = setup(units, 0.5, 4);
        let env = EnvConfig::new("crashy", 0.5, 2, 2);
        let mut config = fast_config(env);
        config.fault_policy = FaultPolicy::Retry { max_attempts: 5 };
        let mut plan = FaultPlan {
            worker_crash: vec![cloudburst_core::WorkerCrash {
                site: SiteId::CLOUD,
                worker: 0,
                after_jobs: 2,
            }],
            ..FaultPlan::seeded(11)
        };
        slow_all_workers(&mut plan, 0.004);
        config.ft = FtConfig {
            lease: Some(LeaseConfig { base: 0.05, min: 0.05, max: 0.2, multiplier: 8.0 }),
            speculate: false,
            heartbeat: None,
            retry: None,
            chaos: Some(Arc::new(plan)),
        };
        let out = run_hybrid(&SumApp, &index, stores, &config).unwrap();
        assert_eq!(out.result.0, expected_sum(units));
        assert!(out.head.faults.lease_expiries > 0, "the leaked job must come back via the reaper");
    }
}
