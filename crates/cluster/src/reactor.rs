//! The head as a single-threaded poll reactor: thousands of master
//! connections without thousands of OS threads.
//!
//! The classic TCP head spawned one thread per connection — fine for the
//! paper's two sites, fatal for a scale bench hosting thousands of
//! simulated slaves. This module serves every connection from one thread:
//! non-blocking sockets, a per-connection read buffer fed into the
//! incremental [`try_read_frame`] decoder, and a write buffer drained on
//! each sweep (partial writes tracked by offset). The house rule is *no
//! async runtime*, so readiness is discovered by the reads themselves —
//! `WouldBlock` means "not ready" — and an adaptive backoff sleep keeps
//! idle sweeps from spinning a core.
//!
//! Job grants go through [`ShardedPool`]: v1 `Request` frames take the
//! legacy policy path, v2 `GetJobs`/`AckBatch` frames take the lock-free
//! sharded batch path. All fault-tolerance semantics of the threaded head
//! hold unchanged — the lease reaper runs inline on a timer tick, a
//! connection silent past the heartbeat timeout (or gone without `Bye`)
//! gets its site evacuated, and every revoked lease is routed back to the
//! owning site's next [`BatchReply`] so the master fences the whole
//! undelivered remainder of its batch.
//!
//! Connection state is reclaimed on every exit path (Bye, EOF, timeout,
//! error): the per-connection buffers drop with the `Conn`, and the head
//! report's `conns_opened`/`conns_reclaimed` counters prove it — a churn
//! test cycles hundreds of connects and asserts the two stay equal.

use crate::net::TcpHeadOptions;
use crate::protocol::HeadReport;
use crate::wire::{
    try_read_frame, write_ack, write_batch_reply, write_grant, write_hello_ack, BatchReply, Frame,
    MasterToHead, WIRE_VERSION,
};
use bytes::BytesMut;
use cloudburst_core::{ChunkId, Completion, JobBatch, JobPool, ShardedPool, SiteId};
use std::collections::BTreeMap;
use std::io::{self, ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Floor of the adaptive idle sleep: short enough that a lockstep v1
/// exchange (request → sweep → grant) stays in the tens of microseconds.
const SLEEP_MIN: Duration = Duration::from_micros(50);
/// Ceiling of the adaptive idle sleep; also bounds how stale the reap tick
/// and heartbeat checks can get.
const SLEEP_CAP: Duration = Duration::from_millis(2);
/// Lease-reap cadence (matches the threaded head's reaper thread).
const REAP_EVERY: Duration = Duration::from_millis(1);

/// One master connection's entire state. Dropping it reclaims everything —
/// there is no side table to leak from.
struct Conn {
    stream: TcpStream,
    /// Bytes read but not yet decoded (partial frames included).
    rbuf: BytesMut,
    /// Encoded replies not yet written; `wpos` marks the flushed prefix.
    wbuf: Vec<u8>,
    wpos: usize,
    /// Learned from the first site-bearing frame; where evacuation goes.
    site: Option<SiteId>,
    /// Negotiated protocol version (1 until a `Hello` raises it).
    version: u16,
    last_heard: Instant,
    said_bye: bool,
    closed: bool,
}

impl Conn {
    fn new(stream: TcpStream) -> Conn {
        Conn {
            stream,
            rbuf: BytesMut::with_capacity(1024),
            wbuf: Vec::new(),
            wpos: 0,
            site: None,
            version: 1,
            last_heard: Instant::now(),
            said_bye: false,
            closed: false,
        }
    }
}

/// Revocation notices not yet delivered, keyed by the site that must drop
/// the jobs. Fed by the lease reaper and by speculative preemptions;
/// drained into each site's next `BatchReply`. Re-granting a job to a site
/// clears its stale notice (same rule as the channel head's cancel board).
type Revocations = BTreeMap<SiteId, Vec<ChunkId>>;

/// Serve the head's control protocol to exactly `n_masters` connections
/// from one thread, then return the head's report (counts, faults and the
/// connection-churn accounting filled in; see
/// [`serve_head_with`](crate::net::serve_head_with) for the wrapper that
/// finishes report assembly).
pub(crate) fn serve_head_reactor(
    listener: &TcpListener,
    pool: JobPool,
    n_masters: usize,
    options: &TcpHeadOptions,
) -> io::Result<(JobPool, HeadReport)> {
    listener.set_nonblocking(true)?;
    let sharded = ShardedPool::new(pool);
    let mut report = HeadReport::default();
    let mut revocations: Revocations = BTreeMap::new();
    let mut conns: Vec<Conn> = Vec::new();
    let mut accepted = 0usize;
    let mut first_err: Option<io::Error> = None;
    let mut last_reap = Instant::now();
    let mut idle_sleep = SLEEP_MIN;

    // Introspection gauges for the /debug/sites plane: connection churn and
    // the adaptive-backoff level, resolved once so the sweep loop pays only
    // relaxed stores (nothing at all with metrics off).
    let g_opened = options.metrics.gauge(
        "cloudburst_head_conns_opened_total",
        "Master connections accepted by the head reactor",
        &[],
    );
    let g_reclaimed = options.metrics.gauge(
        "cloudburst_head_conns_reclaimed_total",
        "Master connection states reclaimed by the head reactor",
        &[],
    );
    let g_backoff = options.metrics.gauge(
        "cloudburst_head_backoff_us",
        "Current adaptive idle-sleep backoff of the head reactor, microseconds",
        &[],
    );
    g_backoff.set(idle_sleep.as_micros() as i64);

    while accepted < n_masters || !conns.is_empty() {
        let mut progressed = false;

        while accepted < n_masters {
            match listener.accept() {
                Ok((stream, _addr)) => {
                    stream.set_nodelay(true)?;
                    stream.set_nonblocking(true)?;
                    conns.push(Conn::new(stream));
                    accepted += 1;
                    report.conns_opened += 1;
                    g_opened.set(report.conns_opened as i64);
                    progressed = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(e) => return Err(e),
            }
        }

        if options.ft_active && last_reap.elapsed() >= REAP_EVERY {
            let now = options.epoch.elapsed().as_secs_f64();
            for (job, site) in sharded.reap_expired(now) {
                revocations.entry(site).or_default().push(job);
            }
            last_reap = Instant::now();
        }

        for conn in &mut conns {
            match pump(conn, &sharded, options, &mut report, &mut revocations) {
                Ok(p) => progressed |= p,
                Err(e) => {
                    conn.closed = true;
                    if options.ft_active {
                        // A broken connection is a site death, not a fatal
                        // run error: evacuate and keep serving survivors.
                        if let Some(site) = conn.site {
                            sharded.evacuate(site);
                        }
                    } else {
                        first_err = first_err.or(Some(e));
                    }
                }
            }
        }

        if let Some(hb) = options.heartbeat {
            for conn in &mut conns {
                if !conn.closed && conn.last_heard.elapsed().as_secs_f64() > hb.timeout {
                    conn.closed = true;
                    if options.ft_active {
                        if let Some(site) = conn.site {
                            sharded.evacuate(site);
                        }
                    } else {
                        first_err = first_err
                            .or_else(|| Some(io::Error::new(ErrorKind::TimedOut, "silent master")));
                    }
                }
            }
        }

        let before = conns.len();
        conns.retain(|c| !c.closed);
        if before != conns.len() {
            report.conns_reclaimed += (before - conns.len()) as u64;
            g_reclaimed.set(report.conns_reclaimed as i64);
        }

        if progressed {
            idle_sleep = SLEEP_MIN;
            g_backoff.set(idle_sleep.as_micros() as i64);
        } else if accepted < n_masters || !conns.is_empty() {
            std::thread::sleep(idle_sleep);
            idle_sleep = (idle_sleep * 2).min(SLEEP_CAP);
            g_backoff.set(idle_sleep.as_micros() as i64);
        }
    }

    let pool = sharded.into_inner();
    if let Some(e) = first_err {
        return Err(e);
    }
    Ok((pool, report))
}

/// One sweep over one connection: flush pending writes, read to
/// `WouldBlock`/EOF, decode and handle every complete frame, flush again.
/// Returns whether any byte moved or frame was handled. Marks the
/// connection closed on Bye-with-drained-writes or EOF (evacuating an
/// unclean exit when fault tolerance is on).
fn pump(
    conn: &mut Conn,
    sharded: &ShardedPool,
    options: &TcpHeadOptions,
    report: &mut HeadReport,
    revocations: &mut Revocations,
) -> io::Result<bool> {
    let mut progressed = flush(conn)?;

    let mut eof = false;
    let mut tmp = [0u8; 16384];
    loop {
        match conn.stream.read(&mut tmp) {
            Ok(0) => {
                eof = true;
                break;
            }
            Ok(n) => {
                conn.rbuf.extend_from_slice(&tmp[..n]);
                conn.last_heard = Instant::now();
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }

    while !conn.said_bye {
        match try_read_frame(&mut conn.rbuf)? {
            Some(frame) => {
                progressed = true;
                handle_frame(conn, frame, sharded, options, report, revocations)?;
            }
            None => break,
        }
    }

    progressed |= flush(conn)?;

    if conn.said_bye && conn.wpos == conn.wbuf.len() {
        conn.closed = true;
    }
    if eof && !conn.closed {
        // Peer hung up. Frames already buffered were handled above, so a
        // `Bye` racing the close is honored; anything less is a crash.
        conn.closed = true;
        if !conn.said_bye && options.ft_active {
            if let Some(site) = conn.site {
                sharded.evacuate(site);
            }
        }
    }
    Ok(progressed)
}

/// Write as much of the pending output as the socket accepts right now.
fn flush(conn: &mut Conn) -> io::Result<bool> {
    let mut progressed = false;
    while conn.wpos < conn.wbuf.len() {
        match conn.stream.write(&conn.wbuf[conn.wpos..]) {
            Ok(0) => return Err(io::Error::new(ErrorKind::WriteZero, "master hung up mid-reply")),
            Ok(n) => {
                conn.wpos += n;
                progressed = true;
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    if conn.wpos == conn.wbuf.len() {
        conn.wbuf.clear();
        conn.wpos = 0;
    }
    Ok(progressed)
}

/// A freshly granted job is live again: drop any stale revocation notice
/// so the new owner's copy is not fenced by its predecessor's death.
fn clear_granted(revocations: &mut Revocations, site: SiteId, batch: &JobBatch) {
    if let Some(list) = revocations.get_mut(&site) {
        list.retain(|id| !batch.jobs.iter().any(|j| j.id == *id));
        if list.is_empty() {
            revocations.remove(&site);
        }
    }
}

fn handle_frame(
    conn: &mut Conn,
    frame: Frame,
    sharded: &ShardedPool,
    options: &TcpHeadOptions,
    report: &mut HeadReport,
    revocations: &mut Revocations,
) -> io::Result<()> {
    let now = options.epoch.elapsed().as_secs_f64();
    match frame {
        Frame::Legacy(MasterToHead::Request { site }) => {
            conn.site = Some(site);
            report.requests += 1;
            let batch = sharded.request_for_at(site, now);
            clear_granted(revocations, site, &batch);
            write_grant(&mut conn.wbuf, &batch)?;
        }
        Frame::Legacy(MasterToHead::Complete { job, site, want_ack }) => {
            conn.site = Some(site);
            let outcome = sharded.complete_at(job, site, now);
            if let Completion::Merged { preempted } = &outcome {
                report.completions += 1;
                for &loser in preempted {
                    revocations.entry(loser).or_default().push(job);
                }
            }
            if want_ack {
                // A Vec writer cannot fail; this only buffers the 2-byte
                // ack frame for the next socket flush.
                write_ack(&mut conn.wbuf, outcome.is_merged())?;
            }
        }
        Frame::Legacy(MasterToHead::Failed { job, site }) => {
            conn.site = Some(site);
            report.failures += 1;
            sharded.fail(job, site);
        }
        Frame::Legacy(MasterToHead::Ping { site }) => {
            conn.site = Some(site);
        }
        Frame::Legacy(MasterToHead::Bye) => {
            conn.said_bye = true;
        }
        Frame::Hello { site, version, credit: _ } => {
            conn.site = Some(site);
            conn.version = WIRE_VERSION.min(version);
            write_hello_ack(&mut conn.wbuf, conn.version)?;
        }
        Frame::GetJobs { site, max } => {
            conn.site = Some(site);
            report.requests += 1;
            let batch = sharded.get_jobs(site, max as usize, now);
            clear_granted(revocations, site, &batch);
            write_grant(&mut conn.wbuf, &batch)?;
        }
        Frame::AckBatch { site, want, entries } => {
            conn.site = Some(site);
            let mut verdicts = Vec::with_capacity(entries.len());
            for e in &entries {
                if e.ok {
                    let outcome = sharded.complete_at(e.job, site, now);
                    if let Completion::Merged { preempted } = &outcome {
                        report.completions += 1;
                        for &loser in preempted {
                            revocations.entry(loser).or_default().push(e.job);
                        }
                    }
                    verdicts.push(outcome.is_merged());
                } else {
                    report.failures += 1;
                    sharded.fail(e.job, site);
                    verdicts.push(false);
                }
            }
            report.requests += 1;
            let grant = sharded.get_jobs(site, want as usize, now);
            clear_granted(revocations, site, &grant);
            let revoked = revocations.remove(&site).unwrap_or_default();
            write_batch_reply(&mut conn.wbuf, &BatchReply { verdicts, revoked, grant })?;
        }
    }
    Ok(())
}
