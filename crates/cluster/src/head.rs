//! The head node (paper §III-B): owns the global job pool, grants batches to
//! requesting masters (local first, then stealing), and records completions.

use crate::protocol::{HeadMsg, HeadReport};
use cloudburst_core::JobPool;
use crossbeam::channel::Receiver;

/// Serve head requests until every sender has hung up, then report.
///
/// The loop is intentionally trivial — the whole assignment policy lives in
/// [`JobPool`], which the simulator replays identically.
pub fn run_head(mut pool: JobPool, rx: Receiver<HeadMsg>) -> HeadReport {
    let mut report = HeadReport::default();
    for msg in rx {
        match msg {
            HeadMsg::RequestJobs { site, reply } => {
                report.requests += 1;
                let batch = pool.request_for(site);
                // A dropped reply means the master died; the pool keeps the
                // jobs assigned, which surfaces as a hang rather than silent
                // data loss — the runtime converts worker panics to errors.
                let _ = reply.send(batch);
            }
            HeadMsg::Complete { job, site } => {
                report.completions += 1;
                pool.complete(job, site);
            }
            HeadMsg::Failed { job, site } => {
                report.failures += 1;
                pool.fail(job, site);
            }
        }
    }
    report.counts = pool.site_counts().clone();
    report.abandoned = pool.abandoned() as u64;
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_core::{BatchPolicy, DataIndex, LayoutParams, SiteId};
    use crossbeam::channel::{bounded, unbounded};

    fn pool(n_chunks: u64) -> JobPool {
        let idx = DataIndex::build(
            n_chunks * 2,
            LayoutParams { unit_size: 1, units_per_chunk: 2, n_files: 2 },
            |_| SiteId::LOCAL,
        )
        .unwrap();
        JobPool::from_index(&idx, BatchPolicy::Fixed(2))
    }

    #[test]
    fn head_serves_until_senders_drop() {
        let (tx, rx) = unbounded();
        let head = std::thread::spawn(move || run_head(pool(4), rx));

        let (btx, brx) = bounded(1);
        tx.send(HeadMsg::RequestJobs { site: SiteId::LOCAL, reply: btx }).unwrap();
        let batch = brx.recv().unwrap();
        assert_eq!(batch.len(), 2);
        for j in &batch.jobs {
            tx.send(HeadMsg::Complete { job: j.id, site: SiteId::LOCAL }).unwrap();
        }
        drop(tx);
        let report = head.join().unwrap();
        assert_eq!(report.requests, 1);
        assert_eq!(report.completions, 2);
        assert_eq!(report.counts[&SiteId::LOCAL].local, 2);
    }

    #[test]
    fn empty_pool_grants_empty_batches() {
        let (tx, rx) = unbounded();
        let head = std::thread::spawn(move || run_head(pool(2), rx));
        // Drain everything.
        loop {
            let (btx, brx) = bounded(1);
            tx.send(HeadMsg::RequestJobs { site: SiteId::CLOUD, reply: btx }).unwrap();
            let batch = brx.recv().unwrap();
            if batch.is_empty() {
                break;
            }
            for j in &batch.jobs {
                tx.send(HeadMsg::Complete { job: j.id, site: SiteId::CLOUD }).unwrap();
            }
        }
        drop(tx);
        let report = head.join().unwrap();
        assert_eq!(report.counts[&SiteId::CLOUD].stolen, 2, "all-local data read from cloud");
    }
}
