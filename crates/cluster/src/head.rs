//! The head node (paper §III-B): owns the global job pool, grants batches to
//! requesting masters (local first, then stealing), and records completions.
//!
//! With fault tolerance enabled the head also runs the recovery machinery:
//! it reaps expired job leases on a periodic tick, declares sites dead when
//! their heartbeat goes silent past the timeout, evacuates their work, and
//! answers every completion with a merge/discard verdict so duplicated
//! executions (speculation, reaped leases, evacuated sites) merge exactly
//! once.

use crate::protocol::{HeadMsg, HeadReport};
use cloudburst_core::{ChunkId, HeartbeatConfig, JobPool, Seconds, SiteId};
use crossbeam::channel::{Receiver, RecvTimeoutError};
use parking_lot::RwLock;
use std::collections::{BTreeMap, HashSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared board of revoked chunk executions.
///
/// When the head reaps a lease or preempts a losing speculative copy it
/// posts the chunk here; slaves poll the board between (and during slow)
/// executions and abort work that can no longer win. Cancellation is purely
/// an optimization — the pool's dedup already guarantees exactly-once
/// merging even if a revoked execution runs to completion.
#[derive(Clone, Default)]
pub struct CancelBoard {
    inner: Arc<RwLock<HashSet<ChunkId>>>,
}

impl CancelBoard {
    /// An empty board.
    #[must_use]
    pub fn new() -> CancelBoard {
        CancelBoard::default()
    }

    /// Post `chunk` as revoked.
    pub fn revoke(&self, chunk: ChunkId) {
        self.inner.write().insert(chunk);
    }

    /// Clear `chunk`, typically because it was re-granted to a new owner.
    pub fn clear(&self, chunk: ChunkId) {
        self.inner.write().remove(&chunk);
    }

    /// Is `chunk` currently revoked?
    #[must_use]
    pub fn is_revoked(&self, chunk: ChunkId) -> bool {
        self.inner.read().contains(&chunk)
    }
}

impl std::fmt::Debug for CancelBoard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelBoard").field("revoked", &self.inner.read().len()).finish()
    }
}

/// Fault-tolerance knobs for the head loop. [`Default`] disables all of
/// them, reducing [`run_head_with`] to the classic fault-oblivious loop.
pub struct HeadOptions {
    /// Declare a site dead after this silence; `None` disables liveness
    /// tracking (channel-mode masters beacon at `interval`).
    pub heartbeat: Option<HeartbeatConfig>,
    /// Where to post revoked executions so slaves can abort early.
    pub cancel: Option<CancelBoard>,
    /// The origin of the head's clock; lease deadlines and heartbeat ages
    /// are measured in real seconds since this instant.
    pub epoch: Instant,
    /// The service-loop tick: how often expired leases and silent sites are
    /// checked for while no message is waiting.
    pub tick: Seconds,
    /// How many sites the run started with; once that many are dead the
    /// head abandons the remaining work so grants turn terminal instead of
    /// letting survivors-that-aren't poll forever. `0` disables the check.
    pub n_sites: usize,
}

impl Default for HeadOptions {
    fn default() -> HeadOptions {
        HeadOptions {
            heartbeat: None,
            cancel: None,
            epoch: Instant::now(),
            tick: 0.005,
            n_sites: 0,
        }
    }
}

/// Serve head requests until every sender has hung up, then report.
///
/// The classic entry point: no leases reaped, no liveness tracking. The
/// assignment policy itself lives in [`JobPool`], which the simulator
/// replays identically.
pub fn run_head(pool: JobPool, rx: Receiver<HeadMsg>) -> HeadReport {
    run_head_with(pool, rx, HeadOptions::default())
}

/// [`run_head`] with the fault-tolerance machinery of `options`.
///
/// The loop wakes at least every `options.tick` to feed the pool clock,
/// reap expired leases (revoking the reaped executions on the cancel
/// board), and evacuate sites whose heartbeat aged past the timeout. Any
/// message from a site also counts as a liveness beacon.
pub fn run_head_with(mut pool: JobPool, rx: Receiver<HeadMsg>, options: HeadOptions) -> HeadReport {
    let mut report = HeadReport::default();
    let mut last_beat: BTreeMap<SiteId, Seconds> = BTreeMap::new();
    let mut said_bye: HashSet<SiteId> = HashSet::new();
    let tick = Duration::from_secs_f64(options.tick.max(1e-4));
    loop {
        let now = options.epoch.elapsed().as_secs_f64();
        for (chunk, _site) in pool.reap_expired(now) {
            if let Some(board) = &options.cancel {
                board.revoke(chunk);
            }
        }
        if let Some(hb) = options.heartbeat {
            let silent: Vec<SiteId> = last_beat
                .iter()
                .filter(|&(&site, &beat)| now - beat > hb.timeout && !pool.is_dead(site))
                .map(|(&site, _)| site)
                .collect();
            for site in silent {
                pool.evacuate(site);
            }
        }
        if options.n_sites > 0 && !pool.all_done() && pool.dead_sites().len() >= options.n_sites {
            // Every site is dead: nobody is left to drain the backlog, so
            // abandon it — the empty grants turn terminal and the run ends
            // with an explicit incomplete report instead of a hang.
            pool.abandon_unfinished();
        }
        let msg = match rx.recv_timeout(tick) {
            Ok(msg) => msg,
            Err(RecvTimeoutError::Timeout) => continue,
            Err(RecvTimeoutError::Disconnected) => break,
        };
        match msg {
            HeadMsg::RequestJobs { site, reply } => {
                report.requests += 1;
                last_beat.insert(site, now);
                let batch = pool.request_for_at(site, now);
                if let Some(board) = &options.cancel {
                    // A re-granted chunk is live again; stale revocations
                    // must not kill the new owner's execution.
                    for j in &batch.jobs {
                        board.clear(j.id);
                    }
                }
                // A dropped reply means the master died; the pool keeps the
                // jobs assigned, which surfaces as a lease expiry (FT on) or
                // a runtime-detected worker panic (FT off) — never silent
                // data loss.
                let _ = reply.send(batch);
            }
            HeadMsg::Complete { job, site, reply } => {
                last_beat.insert(site, now);
                let outcome = pool.complete_at(job, site, now);
                if let cloudburst_core::Completion::Merged { preempted } = &outcome {
                    report.completions += 1;
                    if let Some(board) = &options.cancel {
                        for _ in preempted {
                            board.revoke(job);
                        }
                    }
                }
                if let Some(reply) = reply {
                    let _ = reply.send(outcome.is_merged());
                }
            }
            HeadMsg::Failed { job, site } => {
                report.failures += 1;
                last_beat.insert(site, now);
                pool.fail(job, site);
            }
            HeadMsg::Heartbeat { site } => {
                last_beat.insert(site, now);
            }
            HeadMsg::Bye { site } => {
                said_bye.insert(site);
            }
        }
    }
    // Every master is gone. With liveness tracking on, any site that joined
    // but hung up without an orderly goodbye crashed mid-run — evacuate it
    // now so results that died with its robj are re-queued rather than
    // silently counted as done (the heartbeat timeout alone cannot catch a
    // death the run outpaced).
    if options.heartbeat.is_some() {
        let vanished: Vec<SiteId> = last_beat
            .keys()
            .filter(|site| !said_bye.contains(site) && !pool.is_dead(**site))
            .copied()
            .collect();
        for site in vanished {
            pool.evacuate(site);
        }
    }
    // If a dead site stranded work that no survivor could pick up (all
    // channels closed first), record it as abandoned so the runtime reports
    // a partial result instead of a silent one.
    if !pool.all_done() && !pool.dead_sites().is_empty() {
        pool.abandon_unfinished();
    }
    report.counts = pool.site_counts().clone();
    report.abandoned = pool.abandoned() as u64;
    report.faults = pool.faults().clone();
    report.dead_sites = pool.dead_sites();
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_core::{BatchPolicy, DataIndex, LayoutParams, LeaseConfig, SiteId};
    use crossbeam::channel::{bounded, unbounded};

    fn pool(n_chunks: u64) -> JobPool {
        let idx = DataIndex::build(
            n_chunks * 2,
            LayoutParams { unit_size: 1, units_per_chunk: 2, n_files: 2 },
            |_| SiteId::LOCAL,
        )
        .unwrap();
        JobPool::from_index(&idx, BatchPolicy::Fixed(2))
    }

    /// Like [`pool`] but with all chunks in one file, so a `Fixed(2)` batch
    /// (which never spans files) is actually 2 jobs.
    fn pool_one_file(n_chunks: u64) -> JobPool {
        let idx = DataIndex::build(
            n_chunks * 2,
            LayoutParams { unit_size: 1, units_per_chunk: 2, n_files: 1 },
            |_| SiteId::LOCAL,
        )
        .unwrap();
        JobPool::from_index(&idx, BatchPolicy::Fixed(2))
    }

    #[test]
    fn head_serves_until_senders_drop() {
        let (tx, rx) = unbounded();
        let head = std::thread::spawn(move || run_head(pool(4), rx));

        let (btx, brx) = bounded(1);
        tx.send(HeadMsg::RequestJobs { site: SiteId::LOCAL, reply: btx }).unwrap();
        let batch = brx.recv().unwrap();
        assert_eq!(batch.len(), 2);
        for j in &batch.jobs {
            tx.send(HeadMsg::Complete { job: j.id, site: SiteId::LOCAL, reply: None }).unwrap();
        }
        drop(tx);
        let report = head.join().unwrap();
        assert_eq!(report.requests, 1);
        assert_eq!(report.completions, 2);
        assert_eq!(report.counts[&SiteId::LOCAL].local, 2);
        assert!(report.faults.is_quiet());
        assert!(report.dead_sites.is_empty());
    }

    #[test]
    fn empty_pool_grants_empty_batches() {
        let (tx, rx) = unbounded();
        let head = std::thread::spawn(move || run_head(pool(2), rx));
        // Drain everything.
        loop {
            let (btx, brx) = bounded(1);
            tx.send(HeadMsg::RequestJobs { site: SiteId::CLOUD, reply: btx }).unwrap();
            let batch = brx.recv().unwrap();
            if batch.is_empty() {
                break;
            }
            for j in &batch.jobs {
                tx.send(HeadMsg::Complete { job: j.id, site: SiteId::CLOUD, reply: None }).unwrap();
            }
        }
        drop(tx);
        let report = head.join().unwrap();
        assert_eq!(report.counts[&SiteId::CLOUD].stolen, 2, "all-local data read from cloud");
    }

    #[test]
    fn silent_site_is_evacuated_on_heartbeat_timeout() {
        let (tx, rx) = unbounded();
        let options = HeadOptions {
            heartbeat: Some(HeartbeatConfig { interval: 0.005, timeout: 0.03 }),
            tick: 0.002,
            ..HeadOptions::default()
        };
        let head = std::thread::spawn(move || run_head_with(pool(4), rx, options));

        // The cloud site takes a batch, then goes silent. The local site
        // keeps beaconing and eventually inherits the work as steals.
        let (btx, brx) = bounded(1);
        tx.send(HeadMsg::RequestJobs { site: SiteId::CLOUD, reply: btx }).unwrap();
        let stranded = brx.recv().unwrap();
        assert_eq!(stranded.len(), 2);

        let deadline = Instant::now() + Duration::from_secs(5);
        let mut done = 0usize;
        while done < 4 {
            assert!(Instant::now() < deadline, "local site never inherited the work");
            tx.send(HeadMsg::Heartbeat { site: SiteId::LOCAL }).unwrap();
            let (btx, brx) = bounded(1);
            tx.send(HeadMsg::RequestJobs { site: SiteId::LOCAL, reply: btx }).unwrap();
            let batch = brx.recv().unwrap();
            for j in &batch.jobs {
                let (ack_tx, ack_rx) = bounded(1);
                tx.send(HeadMsg::Complete { job: j.id, site: SiteId::LOCAL, reply: Some(ack_tx) })
                    .unwrap();
                assert!(ack_rx.recv().unwrap(), "survivor completions must merge");
                done += 1;
            }
        }
        tx.send(HeadMsg::Bye { site: SiteId::LOCAL }).unwrap();
        drop(tx);
        let report = head.join().unwrap();
        assert_eq!(report.dead_sites, vec![SiteId::CLOUD]);
        assert_eq!(report.faults.evacuated_jobs, 2);
        assert_eq!(report.completions, 4);
        assert_eq!(report.abandoned, 0);
    }

    #[test]
    fn duplicate_completion_is_nacked_and_counted() {
        let (tx, rx) = unbounded();
        let mut p = pool_one_file(2);
        p.set_lease(LeaseConfig::default());
        let options = HeadOptions { cancel: Some(CancelBoard::new()), ..HeadOptions::default() };
        let head = std::thread::spawn(move || run_head_with(p, rx, options));

        let (btx, brx) = bounded(1);
        tx.send(HeadMsg::RequestJobs { site: SiteId::LOCAL, reply: btx }).unwrap();
        let batch = brx.recv().unwrap();
        let job = batch.jobs[0].id;

        let (ack_tx, ack_rx) = bounded(1);
        tx.send(HeadMsg::Complete { job, site: SiteId::LOCAL, reply: Some(ack_tx) }).unwrap();
        assert!(ack_rx.recv().unwrap(), "first completion merges");

        let (ack_tx, ack_rx) = bounded(1);
        tx.send(HeadMsg::Complete { job, site: SiteId::LOCAL, reply: Some(ack_tx) }).unwrap();
        assert!(!ack_rx.recv().unwrap(), "second completion is a duplicate");

        for j in &batch.jobs[1..] {
            tx.send(HeadMsg::Complete { job: j.id, site: SiteId::LOCAL, reply: None }).unwrap();
        }
        drop(tx);
        let report = head.join().unwrap();
        assert_eq!(report.completions, 2);
        assert_eq!(report.faults.duplicate_completions, 1);
    }

    #[test]
    fn reaped_lease_is_posted_to_the_cancel_board() {
        let (tx, rx) = unbounded();
        let board = CancelBoard::new();
        let mut p = pool_one_file(2);
        // Tiny max lease: every grant expires almost immediately.
        p.set_lease(LeaseConfig { base: 0.01, min: 0.01, max: 0.01, ..LeaseConfig::default() });
        let options =
            HeadOptions { cancel: Some(board.clone()), tick: 0.002, ..HeadOptions::default() };
        let head = std::thread::spawn(move || run_head_with(p, rx, options));

        let (btx, brx) = bounded(1);
        tx.send(HeadMsg::RequestJobs { site: SiteId::LOCAL, reply: btx }).unwrap();
        let batch = brx.recv().unwrap();
        assert_eq!(batch.len(), 2);
        let job = batch.jobs[0].id;

        let deadline = Instant::now() + Duration::from_secs(5);
        while !board.is_revoked(job) {
            assert!(Instant::now() < deadline, "lease was never reaped onto the board");
            std::thread::sleep(Duration::from_millis(1));
        }

        // Re-granting the chunk clears the stale revocation.
        let (btx, brx) = bounded(1);
        tx.send(HeadMsg::RequestJobs { site: SiteId::LOCAL, reply: btx }).unwrap();
        let regrant = brx.recv().unwrap();
        assert!(regrant.jobs.iter().any(|j| j.id == job));
        assert!(!board.is_revoked(job));

        for j in &regrant.jobs {
            tx.send(HeadMsg::Complete { job: j.id, site: SiteId::LOCAL, reply: None }).unwrap();
        }
        drop(tx);
        let report = head.join().unwrap();
        assert!(report.faults.lease_expiries >= 2);
    }
}
