//! Routing of chunk retrievals to the store that hosts them, with WAN
//! charging for cross-site ("stolen") reads.
//!
//! A slave always asks the router for a chunk; the router finds the hosting
//! site's store, fetches with the configured number of retrieval threads,
//! and — when reader and host differ — pushes the bytes through the shared
//! inter-site throttle so concurrent thieves genuinely compete for WAN
//! bandwidth.

use crate::error::RunError;
use bytes::Bytes;
use cloudburst_core::{secs_to_ns, ChunkMeta, Metrics, SiteId};
use cloudburst_netsim::{Throttle, Topology};
use cloudburst_storage::{fetch_chunk_pooled, ChunkStore, FetchConfig, FetcherPool, RetryPolicy};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Outcome of one routed fetch.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// The chunk's bytes.
    pub bytes: Bytes,
    /// Whether the read crossed sites.
    pub remote: bool,
    /// Transient storage failures absorbed below the chunk level (each a
    /// single range re-read, never a whole-chunk restart).
    pub retries: u64,
}

/// Readers-per-site assumption used to size fetcher pools before
/// [`StoreRouter::set_concurrency`] tells the router the real worker count.
const DEFAULT_READERS: usize = 4;

/// The runtime's view of every site's storage plus the links between sites.
///
/// Each hosting site owns one persistent [`FetcherPool`]: every chunk read
/// against that site's store runs its concurrent range reads on the pool,
/// so the per-fetch thread spawn/join of the scoped path never appears on
/// the routed fast path.
pub struct StoreRouter {
    stores: BTreeMap<SiteId, Arc<dyn ChunkStore>>,
    pools: BTreeMap<SiteId, FetcherPool>,
    wan: BTreeMap<(SiteId, SiteId), Arc<Throttle>>,
    fetch: FetchConfig,
    retry: RetryPolicy,
    /// Coded redundancy: when on, a reader whose own store holds a chunk's
    /// file (a replica) is served locally — no WAN crossing, no throttle.
    replicated: bool,
}

impl StoreRouter {
    /// Build a router over per-site stores, charging cross-site reads
    /// against `topology`'s storage-access links at `time_scale`.
    #[must_use]
    pub fn new(
        stores: BTreeMap<SiteId, Arc<dyn ChunkStore>>,
        topology: &Topology,
        fetch: FetchConfig,
        time_scale: f64,
    ) -> StoreRouter {
        let mut wan = BTreeMap::new();
        let sites: Vec<SiteId> = stores.keys().copied().collect();
        for &reader in &sites {
            for &host in &sites {
                if reader != host {
                    let link = topology.storage_access(reader.0, host.0);
                    wan.insert((reader, host), Arc::new(Throttle::new(link, time_scale)));
                }
            }
        }
        let pools = Self::build_pools(&sites, fetch, DEFAULT_READERS);
        StoreRouter {
            stores,
            pools,
            wan,
            fetch,
            retry: RetryPolicy { max_retries: 0, ..RetryPolicy::default() },
            replicated: false,
        }
    }

    fn build_pools(
        sites: &[SiteId],
        fetch: FetchConfig,
        readers: usize,
    ) -> BTreeMap<SiteId, FetcherPool> {
        // `threads` ranges per chunk × every worker that may fetch
        // concurrently: sized so pooling never serializes reads that the
        // per-fetch spawns would have run in parallel.
        let size = (fetch.threads.max(1) as usize).saturating_mul(readers.max(1));
        sites.iter().map(|&s| (s, FetcherPool::new(size))).collect()
    }

    /// Resize each site's fetcher pool for `readers` concurrent fetching
    /// workers (the runtimes call this with the total core count before
    /// spawning slaves).
    pub fn set_concurrency(&mut self, readers: usize) {
        let sites: Vec<SiteId> = self.stores.keys().copied().collect();
        self.pools = Self::build_pools(&sites, self.fetch, readers);
    }

    /// Set the transient-failure retry policy applied to every range read.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Enable replica-aware routing (coded redundancy, `r > 1`): a fetch is
    /// served from the reader's **own** store whenever it holds the chunk's
    /// file — zero WAN bytes — and falls back to the primary site otherwise.
    /// Off by default, keeping r = 1 routing bit-exact with the classic
    /// primary-site path.
    pub fn set_replicated(&mut self, on: bool) {
        self.replicated = on;
    }

    /// Publish WAN traffic on the live-metrics registry: every modelled
    /// cross-site transfer feeds `cloudburst_net_bytes_total` and
    /// `cloudburst_net_transfer_seconds_total` with `src` (hosting site) and
    /// `dst` (reading site) labels. Instruments are resolved here, once per
    /// link; the per-transfer cost is two relaxed atomic adds inside the
    /// throttle's observer callback. A no-op when metrics are off.
    pub fn set_metrics(&self, metrics: &Metrics) {
        if !metrics.is_enabled() {
            return;
        }
        for (&(reader, host), throttle) in &self.wan {
            let src = host.to_string();
            let dst = reader.to_string();
            let labels: &[(&str, &str)] = &[("dst", &dst), ("src", &src)];
            let bytes = metrics.counter(
                "cloudburst_net_bytes_total",
                "Bytes pushed across an inter-site link (modelled WAN).",
                labels,
            );
            let time = metrics.time_counter(
                "cloudburst_net_transfer_seconds_total",
                "Modelled transfer time charged on an inter-site link.",
                labels,
            );
            throttle.set_observer(move |b, secs| {
                bytes.add(b);
                time.add(secs_to_ns(secs));
            });
        }
    }

    /// The retrieval configuration slaves use.
    #[must_use]
    pub fn fetch_config(&self) -> FetchConfig {
        self.fetch
    }

    /// Sites with a registered store.
    #[must_use]
    pub fn sites(&self) -> Vec<SiteId> {
        self.stores.keys().copied().collect()
    }

    /// Fetch `chunk` on behalf of a worker at `reader`: concurrent range
    /// reads on the hosting site's persistent fetcher pool, reassembled
    /// zero-copy.
    pub fn fetch(&self, reader: SiteId, chunk: &ChunkMeta) -> Result<Fetched, RunError> {
        // Replica-aware host election: prefer the reader's own store when it
        // holds the chunk's byte range (a coded replica), so the read never
        // crosses the WAN.
        let host = if self.replicated && chunk.site != reader && self.has_replica(reader, chunk) {
            reader
        } else {
            chunk.site
        };
        let store = self.stores.get(&host).ok_or(RunError::NoStoreForSite(host))?;
        let pool = self.pools.get(&host).expect("one pool per store site");
        let (bytes, retries) =
            fetch_chunk_pooled(pool, store, chunk, self.fetch, &self.retry, None)?;
        let remote = host != reader;
        if remote {
            if let Some(throttle) = self.wan.get(&(reader, host)) {
                throttle.transfer(bytes.len() as u64);
            }
        }
        Ok(Fetched { bytes, remote, retries })
    }

    /// Whether `reader`'s own store holds `chunk`'s full byte range.
    fn has_replica(&self, reader: SiteId, chunk: &ChunkMeta) -> bool {
        self.stores
            .get(&reader)
            .and_then(|s| s.file_len(chunk.file).ok())
            .is_some_and(|len| len >= chunk.offset + chunk.len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_core::{ChunkId, FileId};
    use cloudburst_netsim::LinkSpec;
    use cloudburst_storage::MemStore;
    use std::time::Instant;

    fn chunk(site: SiteId, len: u64) -> ChunkMeta {
        ChunkMeta { id: ChunkId(0), file: FileId(0), offset: 0, len, n_units: len, site }
    }

    fn router(wan_bw: f64) -> StoreRouter {
        let mut stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = BTreeMap::new();
        stores.insert(
            SiteId::LOCAL,
            Arc::new(MemStore::new(SiteId::LOCAL, vec![Bytes::from(vec![1u8; 4096])])),
        );
        stores.insert(
            SiteId::CLOUD,
            Arc::new(MemStore::new(SiteId::CLOUD, vec![Bytes::from(vec![2u8; 4096])])),
        );
        let topo = Topology::new()
            .with_storage_access(SiteId::LOCAL.0, SiteId::CLOUD.0, LinkSpec::new(0.0, wan_bw))
            .with_storage_access(SiteId::CLOUD.0, SiteId::LOCAL.0, LinkSpec::new(0.0, wan_bw));
        StoreRouter::new(stores, &topo, FetchConfig::sequential(), 1e-3)
    }

    #[test]
    fn local_reads_are_not_remote() {
        let r = router(1e12);
        let f = r.fetch(SiteId::LOCAL, &chunk(SiteId::LOCAL, 100)).unwrap();
        assert!(!f.remote);
        assert_eq!(f.bytes, Bytes::from(vec![1u8; 100]));
    }

    #[test]
    fn cross_site_reads_are_remote_and_throttled() {
        // 4096 bytes at 4096 B/s = 1 modelled s = 1 ms real at 1e-3.
        let r = router(4096.0);
        let t = Instant::now();
        let f = r.fetch(SiteId::LOCAL, &chunk(SiteId::CLOUD, 4096)).unwrap();
        assert!(f.remote);
        assert_eq!(f.bytes, Bytes::from(vec![2u8; 4096]));
        assert!(t.elapsed().as_secs_f64() >= 0.8e-3, "WAN charge expected");
    }

    #[test]
    fn missing_store_is_reported() {
        let r = router(1e12);
        let orphan = chunk(SiteId(9), 10);
        assert!(matches!(
            r.fetch(SiteId::LOCAL, &orphan),
            Err(RunError::NoStoreForSite(SiteId(9)))
        ));
    }

    #[test]
    fn sites_lists_registered_stores() {
        assert_eq!(router(1.0).sites(), vec![SiteId::LOCAL, SiteId::CLOUD]);
    }

    #[test]
    fn multi_range_fetches_run_on_the_pool_and_reassemble() {
        let mut stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = BTreeMap::new();
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 253) as u8).collect();
        stores.insert(
            SiteId::LOCAL,
            Arc::new(MemStore::new(SiteId::LOCAL, vec![Bytes::from(data.clone())])),
        );
        let mut r = StoreRouter::new(
            stores,
            &Topology::new(),
            FetchConfig { threads: 4, min_range: 64 },
            1e-3,
        );
        r.set_concurrency(6);
        let meta = ChunkMeta {
            id: ChunkId(0),
            file: FileId(0),
            offset: 128,
            len: 3000,
            n_units: 3000,
            site: SiteId::LOCAL,
        };
        let f = r.fetch(SiteId::LOCAL, &meta).unwrap();
        assert_eq!(f.bytes.as_ref(), &data[128..3128]);
    }

    #[test]
    fn wan_metrics_count_cross_site_bytes() {
        let r = router(1e12);
        let metrics = Metrics::on();
        r.set_metrics(&metrics);
        r.fetch(SiteId::LOCAL, &chunk(SiteId::CLOUD, 2048)).unwrap();
        r.fetch(SiteId::LOCAL, &chunk(SiteId::CLOUD, 1024)).unwrap();
        r.fetch(SiteId::LOCAL, &chunk(SiteId::LOCAL, 512)).unwrap(); // local: uncharged
        let text = metrics.registry().unwrap().render();
        assert!(
            text.contains("cloudburst_net_bytes_total{dst=\"local\",src=\"cloud\"} 3072"),
            "missing WAN byte series in:\n{text}"
        );
        assert!(text.contains("cloudburst_net_transfer_seconds_total{dst=\"local\",src=\"cloud\"}"));
    }

    #[test]
    fn replicated_routing_serves_replicas_locally() {
        // Both stores hold the same file (coded r = 2 placement).
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 251) as u8).collect();
        let mk = || {
            let mut stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = BTreeMap::new();
            for site in [SiteId::LOCAL, SiteId::CLOUD] {
                stores.insert(site, Arc::new(MemStore::new(site, vec![Bytes::from(data.clone())])));
            }
            let topo = Topology::new()
                .with_storage_access(SiteId::LOCAL.0, SiteId::CLOUD.0, LinkSpec::new(0.0, 1e12))
                .with_storage_access(SiteId::CLOUD.0, SiteId::LOCAL.0, LinkSpec::new(0.0, 1e12));
            StoreRouter::new(stores, &topo, FetchConfig::sequential(), 1e-3)
        };
        let cloud_chunk = chunk(SiteId::CLOUD, 2048);
        // Off (the default): the cross-site read is remote as ever.
        let r = mk();
        assert!(r.fetch(SiteId::LOCAL, &cloud_chunk).unwrap().remote);
        // On: the local replica serves it with zero WAN bytes.
        let mut r = mk();
        r.set_replicated(true);
        let metrics = Metrics::on();
        r.set_metrics(&metrics);
        let f = r.fetch(SiteId::LOCAL, &cloud_chunk).unwrap();
        assert!(!f.remote, "replica read must not count as remote");
        assert_eq!(f.bytes.as_ref(), &data[..2048]);
        let text = metrics.registry().unwrap().render();
        // The link series are registered eagerly; a replica read must leave
        // every one of them at zero.
        assert!(
            text.contains("cloudburst_net_bytes_total{dst=\"local\",src=\"cloud\"} 0"),
            "replica read must not touch the WAN:\n{text}"
        );
    }

    #[test]
    fn replicated_routing_falls_back_without_a_replica() {
        // The reader's store holds nothing: routing must behave classically
        // even with replication enabled.
        let mut stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = BTreeMap::new();
        stores.insert(SiteId::LOCAL, Arc::new(MemStore::new(SiteId::LOCAL, vec![])));
        stores.insert(
            SiteId::CLOUD,
            Arc::new(MemStore::new(SiteId::CLOUD, vec![Bytes::from(vec![2u8; 4096])])),
        );
        let topo = Topology::new()
            .with_storage_access(SiteId::LOCAL.0, SiteId::CLOUD.0, LinkSpec::new(0.0, 1e12))
            .with_storage_access(SiteId::CLOUD.0, SiteId::LOCAL.0, LinkSpec::new(0.0, 1e12));
        let mut r = StoreRouter::new(stores, &topo, FetchConfig::sequential(), 1e-3);
        r.set_replicated(true);
        let f = r.fetch(SiteId::LOCAL, &chunk(SiteId::CLOUD, 1024)).unwrap();
        assert!(f.remote);
        assert_eq!(f.bytes, Bytes::from(vec![2u8; 1024]));
    }

    #[test]
    fn transient_store_faults_are_absorbed_and_counted() {
        use cloudburst_core::FaultPlan;
        use cloudburst_storage::ChaosStore;
        // The chaos store remembers attempts per range, so each half of the
        // test gets a fresh router over a fresh store.
        let fresh = || {
            let plan = FaultPlan {
                storage_error_rate: 1.0,
                storage_max_consecutive: 1,
                ..FaultPlan::seeded(7)
            };
            let inner: Arc<dyn ChunkStore> =
                Arc::new(MemStore::new(SiteId::LOCAL, vec![Bytes::from(vec![5u8; 256])]));
            let mut stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = BTreeMap::new();
            stores.insert(SiteId::LOCAL, Arc::new(ChaosStore::new(inner, Arc::new(plan))));
            StoreRouter::new(stores, &Topology::new(), FetchConfig::sequential(), 1e-3)
        };

        // Without a retry policy the injected fault surfaces as an error.
        let r = fresh();
        assert!(r.fetch(SiteId::LOCAL, &chunk(SiteId::LOCAL, 256)).is_err());

        // With one, the fetch succeeds and reports the absorbed retries.
        let mut r = fresh();
        r.set_retry(RetryPolicy { max_retries: 3, base: 0.0, cap: 0.0, seed: 0 });
        let f = r.fetch(SiteId::LOCAL, &chunk(SiteId::LOCAL, 256)).unwrap();
        assert_eq!(f.bytes, Bytes::from(vec![5u8; 256]));
        assert!(f.retries > 0);
    }
}
