//! Routing of chunk retrievals to the store that hosts them, with WAN
//! charging for cross-site ("stolen") reads.
//!
//! A slave always asks the router for a chunk; the router finds the hosting
//! site's store, fetches with the configured number of retrieval threads,
//! and — when reader and host differ — pushes the bytes through the shared
//! inter-site throttle so concurrent thieves genuinely compete for WAN
//! bandwidth.

use crate::error::RunError;
use bytes::Bytes;
use cloudburst_core::{secs_to_ns, ChunkMeta, Metrics, SiteId};
use cloudburst_netsim::{Throttle, Topology};
use cloudburst_storage::{fetch_chunk_pooled, ChunkStore, FetchConfig, FetcherPool, RetryPolicy};
use std::collections::BTreeMap;
use std::sync::Arc;

/// Outcome of one routed fetch.
#[derive(Debug, Clone)]
pub struct Fetched {
    /// The chunk's bytes.
    pub bytes: Bytes,
    /// Whether the read crossed sites.
    pub remote: bool,
    /// Transient storage failures absorbed below the chunk level (each a
    /// single range re-read, never a whole-chunk restart).
    pub retries: u64,
}

/// Readers-per-site assumption used to size fetcher pools before
/// [`StoreRouter::set_concurrency`] tells the router the real worker count.
const DEFAULT_READERS: usize = 4;

/// The runtime's view of every site's storage plus the links between sites.
///
/// Each hosting site owns one persistent [`FetcherPool`]: every chunk read
/// against that site's store runs its concurrent range reads on the pool,
/// so the per-fetch thread spawn/join of the scoped path never appears on
/// the routed fast path.
pub struct StoreRouter {
    stores: BTreeMap<SiteId, Arc<dyn ChunkStore>>,
    pools: BTreeMap<SiteId, FetcherPool>,
    wan: BTreeMap<(SiteId, SiteId), Arc<Throttle>>,
    fetch: FetchConfig,
    retry: RetryPolicy,
}

impl StoreRouter {
    /// Build a router over per-site stores, charging cross-site reads
    /// against `topology`'s storage-access links at `time_scale`.
    #[must_use]
    pub fn new(
        stores: BTreeMap<SiteId, Arc<dyn ChunkStore>>,
        topology: &Topology,
        fetch: FetchConfig,
        time_scale: f64,
    ) -> StoreRouter {
        let mut wan = BTreeMap::new();
        let sites: Vec<SiteId> = stores.keys().copied().collect();
        for &reader in &sites {
            for &host in &sites {
                if reader != host {
                    let link = topology.storage_access(reader.0, host.0);
                    wan.insert((reader, host), Arc::new(Throttle::new(link, time_scale)));
                }
            }
        }
        let pools = Self::build_pools(&sites, fetch, DEFAULT_READERS);
        StoreRouter {
            stores,
            pools,
            wan,
            fetch,
            retry: RetryPolicy { max_retries: 0, ..RetryPolicy::default() },
        }
    }

    fn build_pools(
        sites: &[SiteId],
        fetch: FetchConfig,
        readers: usize,
    ) -> BTreeMap<SiteId, FetcherPool> {
        // `threads` ranges per chunk × every worker that may fetch
        // concurrently: sized so pooling never serializes reads that the
        // per-fetch spawns would have run in parallel.
        let size = (fetch.threads.max(1) as usize).saturating_mul(readers.max(1));
        sites.iter().map(|&s| (s, FetcherPool::new(size))).collect()
    }

    /// Resize each site's fetcher pool for `readers` concurrent fetching
    /// workers (the runtimes call this with the total core count before
    /// spawning slaves).
    pub fn set_concurrency(&mut self, readers: usize) {
        let sites: Vec<SiteId> = self.stores.keys().copied().collect();
        self.pools = Self::build_pools(&sites, self.fetch, readers);
    }

    /// Set the transient-failure retry policy applied to every range read.
    pub fn set_retry(&mut self, retry: RetryPolicy) {
        self.retry = retry;
    }

    /// Publish WAN traffic on the live-metrics registry: every modelled
    /// cross-site transfer feeds `cloudburst_net_bytes_total` and
    /// `cloudburst_net_transfer_seconds_total` with `src` (hosting site) and
    /// `dst` (reading site) labels. Instruments are resolved here, once per
    /// link; the per-transfer cost is two relaxed atomic adds inside the
    /// throttle's observer callback. A no-op when metrics are off.
    pub fn set_metrics(&self, metrics: &Metrics) {
        if !metrics.is_enabled() {
            return;
        }
        for (&(reader, host), throttle) in &self.wan {
            let src = host.to_string();
            let dst = reader.to_string();
            let labels: &[(&str, &str)] = &[("dst", &dst), ("src", &src)];
            let bytes = metrics.counter(
                "cloudburst_net_bytes_total",
                "Bytes pushed across an inter-site link (modelled WAN).",
                labels,
            );
            let time = metrics.time_counter(
                "cloudburst_net_transfer_seconds_total",
                "Modelled transfer time charged on an inter-site link.",
                labels,
            );
            throttle.set_observer(move |b, secs| {
                bytes.add(b);
                time.add(secs_to_ns(secs));
            });
        }
    }

    /// The retrieval configuration slaves use.
    #[must_use]
    pub fn fetch_config(&self) -> FetchConfig {
        self.fetch
    }

    /// Sites with a registered store.
    #[must_use]
    pub fn sites(&self) -> Vec<SiteId> {
        self.stores.keys().copied().collect()
    }

    /// Fetch `chunk` on behalf of a worker at `reader`: concurrent range
    /// reads on the hosting site's persistent fetcher pool, reassembled
    /// zero-copy.
    pub fn fetch(&self, reader: SiteId, chunk: &ChunkMeta) -> Result<Fetched, RunError> {
        let store = self.stores.get(&chunk.site).ok_or(RunError::NoStoreForSite(chunk.site))?;
        let pool = self.pools.get(&chunk.site).expect("one pool per store site");
        let (bytes, retries) =
            fetch_chunk_pooled(pool, store, chunk, self.fetch, &self.retry, None)?;
        let remote = chunk.site != reader;
        if remote {
            if let Some(throttle) = self.wan.get(&(reader, chunk.site)) {
                throttle.transfer(bytes.len() as u64);
            }
        }
        Ok(Fetched { bytes, remote, retries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_core::{ChunkId, FileId};
    use cloudburst_netsim::LinkSpec;
    use cloudburst_storage::MemStore;
    use std::time::Instant;

    fn chunk(site: SiteId, len: u64) -> ChunkMeta {
        ChunkMeta { id: ChunkId(0), file: FileId(0), offset: 0, len, n_units: len, site }
    }

    fn router(wan_bw: f64) -> StoreRouter {
        let mut stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = BTreeMap::new();
        stores.insert(
            SiteId::LOCAL,
            Arc::new(MemStore::new(SiteId::LOCAL, vec![Bytes::from(vec![1u8; 4096])])),
        );
        stores.insert(
            SiteId::CLOUD,
            Arc::new(MemStore::new(SiteId::CLOUD, vec![Bytes::from(vec![2u8; 4096])])),
        );
        let topo = Topology::new()
            .with_storage_access(SiteId::LOCAL.0, SiteId::CLOUD.0, LinkSpec::new(0.0, wan_bw))
            .with_storage_access(SiteId::CLOUD.0, SiteId::LOCAL.0, LinkSpec::new(0.0, wan_bw));
        StoreRouter::new(stores, &topo, FetchConfig::sequential(), 1e-3)
    }

    #[test]
    fn local_reads_are_not_remote() {
        let r = router(1e12);
        let f = r.fetch(SiteId::LOCAL, &chunk(SiteId::LOCAL, 100)).unwrap();
        assert!(!f.remote);
        assert_eq!(f.bytes, Bytes::from(vec![1u8; 100]));
    }

    #[test]
    fn cross_site_reads_are_remote_and_throttled() {
        // 4096 bytes at 4096 B/s = 1 modelled s = 1 ms real at 1e-3.
        let r = router(4096.0);
        let t = Instant::now();
        let f = r.fetch(SiteId::LOCAL, &chunk(SiteId::CLOUD, 4096)).unwrap();
        assert!(f.remote);
        assert_eq!(f.bytes, Bytes::from(vec![2u8; 4096]));
        assert!(t.elapsed().as_secs_f64() >= 0.8e-3, "WAN charge expected");
    }

    #[test]
    fn missing_store_is_reported() {
        let r = router(1e12);
        let orphan = chunk(SiteId(9), 10);
        assert!(matches!(
            r.fetch(SiteId::LOCAL, &orphan),
            Err(RunError::NoStoreForSite(SiteId(9)))
        ));
    }

    #[test]
    fn sites_lists_registered_stores() {
        assert_eq!(router(1.0).sites(), vec![SiteId::LOCAL, SiteId::CLOUD]);
    }

    #[test]
    fn multi_range_fetches_run_on_the_pool_and_reassemble() {
        let mut stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = BTreeMap::new();
        let data: Vec<u8> = (0..4096u32).map(|i| (i % 253) as u8).collect();
        stores.insert(
            SiteId::LOCAL,
            Arc::new(MemStore::new(SiteId::LOCAL, vec![Bytes::from(data.clone())])),
        );
        let mut r = StoreRouter::new(
            stores,
            &Topology::new(),
            FetchConfig { threads: 4, min_range: 64 },
            1e-3,
        );
        r.set_concurrency(6);
        let meta = ChunkMeta {
            id: ChunkId(0),
            file: FileId(0),
            offset: 128,
            len: 3000,
            n_units: 3000,
            site: SiteId::LOCAL,
        };
        let f = r.fetch(SiteId::LOCAL, &meta).unwrap();
        assert_eq!(f.bytes.as_ref(), &data[128..3128]);
    }

    #[test]
    fn wan_metrics_count_cross_site_bytes() {
        let r = router(1e12);
        let metrics = Metrics::on();
        r.set_metrics(&metrics);
        r.fetch(SiteId::LOCAL, &chunk(SiteId::CLOUD, 2048)).unwrap();
        r.fetch(SiteId::LOCAL, &chunk(SiteId::CLOUD, 1024)).unwrap();
        r.fetch(SiteId::LOCAL, &chunk(SiteId::LOCAL, 512)).unwrap(); // local: uncharged
        let text = metrics.registry().unwrap().render();
        assert!(
            text.contains("cloudburst_net_bytes_total{dst=\"local\",src=\"cloud\"} 3072"),
            "missing WAN byte series in:\n{text}"
        );
        assert!(text.contains("cloudburst_net_transfer_seconds_total{dst=\"local\",src=\"cloud\"}"));
    }

    #[test]
    fn transient_store_faults_are_absorbed_and_counted() {
        use cloudburst_core::FaultPlan;
        use cloudburst_storage::ChaosStore;
        // The chaos store remembers attempts per range, so each half of the
        // test gets a fresh router over a fresh store.
        let fresh = || {
            let plan = FaultPlan {
                storage_error_rate: 1.0,
                storage_max_consecutive: 1,
                ..FaultPlan::seeded(7)
            };
            let inner: Arc<dyn ChunkStore> =
                Arc::new(MemStore::new(SiteId::LOCAL, vec![Bytes::from(vec![5u8; 256])]));
            let mut stores: BTreeMap<SiteId, Arc<dyn ChunkStore>> = BTreeMap::new();
            stores.insert(SiteId::LOCAL, Arc::new(ChaosStore::new(inner, Arc::new(plan))));
            StoreRouter::new(stores, &Topology::new(), FetchConfig::sequential(), 1e-3)
        };

        // Without a retry policy the injected fault surfaces as an error.
        let r = fresh();
        assert!(r.fetch(SiteId::LOCAL, &chunk(SiteId::LOCAL, 256)).is_err());

        // With one, the fetch succeeds and reports the absorbed retries.
        let mut r = fresh();
        r.set_retry(RetryPolicy { max_retries: 3, base: 0.0, cap: 0.0, seed: 0 });
        let f = r.fetch(SiteId::LOCAL, &chunk(SiteId::LOCAL, 256)).unwrap();
        assert_eq!(f.bytes, Bytes::from(vec![5u8; 256]));
        assert!(f.retries > 0);
    }
}
