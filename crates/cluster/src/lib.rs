//! # cloudburst-cluster
//!
//! The threaded cloud-bursting runtime: a faithful, executable version of
//! the paper's architecture (Fig. 2) where sites are thread pools, the
//! control plane (head → master → slave job assignment, with on-demand
//! pooling and inter-cluster work stealing) flows over channels, and every
//! inter-site interaction is charged against the `cloudburst-netsim` link
//! model — master↔head RPCs, cross-site chunk retrieval, and the
//! reduction-object exchange at global reduction.
//!
//! Entry points: [`run_hybrid`] (channels) and [`run_hybrid_tcp`] (the
//! same protocol with the head ↔ master control plane over real TCP
//! sockets, see [`net`]/[`wire`]). The TCP head serves every connection
//! from one poll-reactor thread ([`reactor`]) and speaks both the v1
//! single-job protocol and the v2 batched, credit-windowed protocol
//! (negotiated per connection, see [`wire`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod error;
pub mod head;
pub mod net;
pub mod protocol;
pub mod reactor;
mod report;
pub mod router;
pub mod runtime;
pub mod wire;

pub use error::RunError;
pub use head::{run_head, run_head_with, CancelBoard, HeadOptions};
pub use net::{run_hybrid_tcp, serve_head};
pub use protocol::{HeadMsg, HeadReport, MasterMsg};
pub use router::{Fetched, StoreRouter};
pub use runtime::{run_hybrid, FaultPolicy, FtConfig, RunOutcome, RuntimeConfig, WireMode};
