//! Control-plane messages between node roles (Fig. 2 of the paper).
//!
//! The control plane (job assignment) flows over channels: slaves ask their
//! site's **master** for jobs; masters ask the **head** for batches and
//! report completions. The data plane — chunk bytes and reduction objects —
//! never rides these channels: chunks go through the
//! [`StoreRouter`](crate::router::StoreRouter), and reduction objects are
//! merged at site level and charged explicitly against the inter-site link
//! during global reduction.
//!
//! When fault tolerance is on, completions become a *request/response*:
//! the reporter attaches a reply channel and the head answers whether the
//! result was merged (first completion of the chunk) or must be discarded
//! (duplicate from a preempted, reaped, or evacuated execution). Masters
//! additionally emit [`HeadMsg::Heartbeat`] beacons so the head can detect
//! a silently dead site.

use cloudburst_core::{ChunkId, FaultCounters, JobBatch, SiteId, SiteJobCounts, Take};
use crossbeam::channel::Sender;
use std::collections::BTreeMap;

/// Messages the head node serves.
pub enum HeadMsg {
    /// A master requests a batch of jobs for its site.
    RequestJobs {
        /// The requesting site.
        site: SiteId,
        /// Where to send the granted batch (empty batch = no work left).
        reply: Sender<JobBatch>,
    },
    /// A slave finished one job.
    Complete {
        /// The finished job.
        job: ChunkId,
        /// The site that processed it.
        site: SiteId,
        /// When present, the head answers whether the result was merged
        /// (`true`) or is a duplicate to discard (`false`). Fire-and-forget
        /// (`None`) is only sound with fault tolerance off, when no
        /// duplicate can exist.
        reply: Option<Sender<bool>>,
    },
    /// A slave failed to process one job (retrieval error, crash); the head
    /// requeues it for reassignment or abandons it after too many attempts.
    Failed {
        /// The failed job.
        job: ChunkId,
        /// The site that failed it.
        site: SiteId,
    },
    /// A site master's liveness beacon. A site that stays silent past the
    /// heartbeat timeout is declared dead and evacuated.
    Heartbeat {
        /// The beaconing site.
        site: SiteId,
    },
    /// A site master's orderly goodbye. With liveness tracking on, a site
    /// that joined but hangs up without one is treated as crashed: the head
    /// evacuates it when the channel drains, so its merged-then-lost results
    /// are re-queued (or reported abandoned) instead of silently missing.
    Bye {
        /// The departing site.
        site: SiteId,
    },
}

/// Messages a site master serves.
pub enum MasterMsg {
    /// A slave asks for its next job.
    GetJob {
        /// Where to send the job (or the drained signal).
        reply: Sender<Take>,
    },
    /// A slave reports a finished job (TCP deployment mode: the master
    /// forwards it to the head over its control connection).
    Complete {
        /// The finished job.
        job: ChunkId,
        /// When present, the master forwards the head's merge/discard
        /// verdict back to the slave (see [`HeadMsg::Complete`]).
        reply: Option<Sender<bool>>,
    },
    /// A slave reports a failed job (TCP deployment mode).
    Failed {
        /// The failed job.
        job: ChunkId,
    },
}

/// What the head reports after the run: the authoritative per-site job
/// accounting (Table I) plus control-traffic counters.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HeadReport {
    /// Jobs processed per site, split local/stolen.
    pub counts: BTreeMap<SiteId, SiteJobCounts>,
    /// Batch requests served.
    pub requests: u64,
    /// Completions *merged* (each chunk exactly once; duplicates are
    /// counted in [`HeadReport::faults`] instead).
    pub completions: u64,
    /// Failure reports received.
    pub failures: u64,
    /// Jobs permanently abandoned after exhausting their retry attempts.
    pub abandoned: u64,
    /// Fault-path accounting: lease expiries, evacuations, speculative
    /// grants, deduplicated completions, abandoned-job detail.
    pub faults: FaultCounters,
    /// Sites declared dead and evacuated during the run.
    pub dead_sites: Vec<SiteId>,
    /// Connections the head accepted (TCP reactor mode; 0 in channel mode).
    pub conns_opened: u64,
    /// Connection states reclaimed — closed and their buffers freed (TCP
    /// reactor mode). Equal to [`HeadReport::conns_opened`] at the end of
    /// any run that leaks nothing, whether the peer said Bye, vanished, or
    /// timed out.
    pub conns_reclaimed: u64,
}
