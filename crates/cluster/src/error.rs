//! Error type for the threaded runtime.

use cloudburst_core::{AbandonedJob, SiteId};
use std::fmt;
use std::io;

/// Failures surfaced by a cloud-bursting run.
#[derive(Debug)]
pub enum RunError {
    /// A chunk retrieval failed.
    Io(io::Error),
    /// No store was registered for a site that hosts data.
    NoStoreForSite(SiteId),
    /// The environment has no cores anywhere.
    NoWorkers,
    /// A runtime thread panicked (the payload's message, if any).
    WorkerPanic(String),
    /// No data was processed (empty index or all sites idle).
    NothingProcessed,
    /// The run finished but some jobs were permanently abandoned after
    /// exhausting their retry attempts — the result would be partial.
    Incomplete {
        /// The abandoned chunks, each with the site whose failure (or
        /// death) doomed it.
        abandoned: Vec<AbandonedJob>,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Io(e) => write!(f, "chunk retrieval failed: {e}"),
            RunError::NoStoreForSite(s) => write!(f, "no store registered for {s}"),
            RunError::NoWorkers => write!(f, "environment has no worker cores"),
            RunError::WorkerPanic(m) => write!(f, "runtime thread panicked: {m}"),
            RunError::NothingProcessed => write!(f, "no data was processed"),
            RunError::Incomplete { abandoned } => {
                write!(f, "run incomplete: {} jobs abandoned after retries", abandoned.len())?;
                // Name the first few victims — enough to start debugging
                // without flooding the terminal on a mass failure.
                for a in abandoned.iter().take(8) {
                    write!(f, "\n  {a}")?;
                }
                if abandoned.len() > 8 {
                    write!(f, "\n  … and {} more", abandoned.len() - 8)?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RunError {
    fn from(e: io::Error) -> Self {
        RunError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_core::ChunkId;

    #[test]
    fn display_is_informative() {
        let e = RunError::NoStoreForSite(SiteId::CLOUD);
        assert!(e.to_string().contains("cloud"));
        let e = RunError::Io(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&RunError::NoWorkers).is_none());
    }

    #[test]
    fn io_errors_convert() {
        let e: RunError = io::Error::other("x").into();
        assert!(matches!(e, RunError::Io(_)));
    }

    #[test]
    fn incomplete_lists_abandoned_chunks_and_sites() {
        let e = RunError::Incomplete {
            abandoned: vec![
                AbandonedJob { chunk: ChunkId(3), last_site: Some(SiteId::CLOUD) },
                AbandonedJob { chunk: ChunkId(9), last_site: None },
            ],
        };
        let s = e.to_string();
        assert!(s.contains("2 jobs abandoned"));
        assert!(s.contains("chunk3"));
        assert!(s.contains("cloud"));
        assert!(s.contains("chunk9"));
        assert!(s.contains("never assigned"));
    }

    #[test]
    fn incomplete_truncates_long_lists() {
        let abandoned: Vec<AbandonedJob> = (0..20)
            .map(|i| AbandonedJob { chunk: ChunkId(i), last_site: Some(SiteId::LOCAL) })
            .collect();
        let s = RunError::Incomplete { abandoned }.to_string();
        assert!(s.contains("20 jobs abandoned"));
        assert!(s.contains("chunk7"));
        assert!(!s.contains("chunk8"), "only the first 8 are listed");
        assert!(s.contains("and 12 more"));
    }
}
