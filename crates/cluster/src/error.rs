//! Error type for the threaded runtime.

use cloudburst_core::SiteId;
use std::fmt;
use std::io;

/// Failures surfaced by a cloud-bursting run.
#[derive(Debug)]
pub enum RunError {
    /// A chunk retrieval failed.
    Io(io::Error),
    /// No store was registered for a site that hosts data.
    NoStoreForSite(SiteId),
    /// The environment has no cores anywhere.
    NoWorkers,
    /// A runtime thread panicked (the payload's message, if any).
    WorkerPanic(String),
    /// No data was processed (empty index or all sites idle).
    NothingProcessed,
    /// The run finished but some jobs were permanently abandoned after
    /// exhausting their retry attempts — the result would be partial.
    Incomplete {
        /// Number of abandoned jobs.
        abandoned: u64,
    },
}

impl fmt::Display for RunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RunError::Io(e) => write!(f, "chunk retrieval failed: {e}"),
            RunError::NoStoreForSite(s) => write!(f, "no store registered for {s}"),
            RunError::NoWorkers => write!(f, "environment has no worker cores"),
            RunError::WorkerPanic(m) => write!(f, "runtime thread panicked: {m}"),
            RunError::NothingProcessed => write!(f, "no data was processed"),
            RunError::Incomplete { abandoned } => {
                write!(f, "run incomplete: {abandoned} jobs abandoned after retries")
            }
        }
    }
}

impl std::error::Error for RunError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RunError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for RunError {
    fn from(e: io::Error) -> Self {
        RunError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = RunError::NoStoreForSite(SiteId::CLOUD);
        assert!(e.to_string().contains("cloud"));
        let e = RunError::Io(io::Error::new(io::ErrorKind::NotFound, "gone"));
        assert!(e.to_string().contains("gone"));
        assert!(std::error::Error::source(&e).is_some());
        assert!(std::error::Error::source(&RunError::NoWorkers).is_none());
    }

    #[test]
    fn io_errors_convert() {
        let e: RunError = io::Error::other("x").into();
        assert!(matches!(e, RunError::Io(_)));
    }
}
