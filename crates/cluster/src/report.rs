//! End-of-run report assembly shared by the channel and TCP runtimes.
//!
//! Both [`run_hybrid`](crate::runtime::run_hybrid) and
//! [`run_hybrid_tcp`](crate::net::run_hybrid_tcp) collect one
//! [`SiteOutcome`] per site and hand them here; the paper's time
//! decomposition itself lives in [`cloudburst_core::assemble_sites`], the
//! same function the telemetry aggregator uses, so the two runtimes and the
//! event-derived report can never drift apart.

use crate::protocol::HeadReport;
use crate::runtime::SlaveStats;
use cloudburst_core::{assemble_sites, RunReport, Seconds, SiteId, SiteSample, SlaveSample};
use std::collections::BTreeMap;

/// One site's end-of-run state, as collected by a runtime coordinator.
pub(crate) struct SiteOutcome<O> {
    /// The site these measurements belong to.
    pub(crate) site: SiteId,
    /// The site's locally combined reduction object (`None` when the site
    /// was revoked or fenced off as dead).
    pub(crate) robj: Option<O>,
    /// Per-slave measurements.
    pub(crate) slaves: Vec<SlaveStats>,
    /// Seconds spent folding the workers' objects into one.
    pub(crate) local_merge: Seconds,
    /// Run-clock time at which the site finished everything.
    pub(crate) finish: Seconds,
}

/// Assemble the paper-shaped report from the coordinators' measurements and
/// the head's authoritative job/fault accounting.
pub(crate) fn assemble_report<O>(
    env: &str,
    outcomes: &[SiteOutcome<O>],
    head: &HeadReport,
    global_reduction: Seconds,
    total_time: Seconds,
) -> RunReport {
    let samples: BTreeMap<SiteId, SiteSample> = outcomes
        .iter()
        .map(|o| {
            (
                o.site,
                SiteSample {
                    slaves: o
                        .slaves
                        .iter()
                        .map(|s| SlaveSample {
                            processing: s.processing,
                            retrieval: s.retrieval,
                            finish: s.finish,
                        })
                        .collect(),
                    local_merge: o.local_merge,
                    finish: o.finish,
                    jobs: head.counts.get(&o.site).copied().unwrap_or_default(),
                    remote_bytes: o.slaves.iter().map(|s| s.remote_bytes).sum(),
                    retries: o.slaves.iter().map(|s| s.retries).sum(),
                },
            )
        })
        .collect();
    RunReport {
        env: env.to_owned(),
        sites: assemble_sites(&samples),
        global_reduction,
        total_time,
        faults: head.faults.clone(),
    }
}
