//! The event queue: a priority queue over `(SimTime, sequence)` with FIFO
//! tie-breaking, which makes every simulation a deterministic function of
//! its inputs.

use crate::time::SimTime;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

struct Entry<E> {
    at: SimTime,
    seq: u64,
    event: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant are delivered in scheduling order.
/// Popping advances the queue's clock; scheduling into the past is a logic
/// error and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Reverse<Entry<E>>>,
    seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue at time zero.
    #[must_use]
    pub fn new() -> EventQueue<E> {
        EventQueue { heap: BinaryHeap::new(), seq: 0, now: SimTime::ZERO }
    }

    /// Current virtual time (the timestamp of the last popped event).
    #[must_use]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `event` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is before the current time.
    pub fn schedule(&mut self, at: SimTime, event: E) {
        assert!(at >= self.now, "cannot schedule into the past ({at} < {})", self.now);
        self.heap.push(Reverse(Entry { at, seq: self.seq, event }));
        self.seq += 1;
    }

    /// Schedule `event` after a non-negative `delay` from now.
    pub fn schedule_in(&mut self, delay: f64, event: E) {
        let at = self.now + delay;
        self.schedule(at, event);
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let Reverse(e) = self.heap.pop()?;
        debug_assert!(e.at >= self.now, "event queue went backwards");
        self.now = e.at;
        Some((e.at, e.event))
    }

    /// Timestamp of the earliest pending event, if any.
    #[must_use]
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(e)| e.at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::at(3.0), "c");
        q.schedule(SimTime::at(1.0), "a");
        q.schedule(SimTime::at(2.0), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn simultaneous_events_are_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.schedule(SimTime::at(5.0), i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule_in(2.0, ());
        assert_eq!(q.now(), SimTime::ZERO);
        let (t, ()) = q.pop().unwrap();
        assert_eq!(t, SimTime::at(2.0));
        assert_eq!(q.now(), t);
        // schedule_in is now relative to the advanced clock.
        q.schedule_in(1.0, ());
        assert_eq!(q.peek_time(), Some(SimTime::at(3.0)));
    }

    #[test]
    fn empty_queue_reports_state() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
        assert_eq!(q.pop(), None.map(|x: (SimTime, ())| x));
        q.schedule_in(0.0, ());
        assert_eq!(q.len(), 1);
    }

    #[test]
    #[should_panic(expected = "into the past")]
    fn scheduling_into_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::at(5.0), ());
        let _ = q.pop();
        q.schedule(SimTime::at(1.0), ());
    }

    #[test]
    fn interleaved_schedule_and_pop_is_deterministic() {
        // Two structurally identical runs produce identical traces.
        let run = || {
            let mut q = EventQueue::new();
            let mut trace = Vec::new();
            q.schedule_in(1.0, 0u32);
            q.schedule_in(1.0, 1);
            while let Some((t, e)) = q.pop() {
                trace.push((t, e));
                if e < 4 {
                    q.schedule_in(0.5, e + 2);
                }
            }
            trace
        };
        assert_eq!(run(), run());
    }
}
