//! Shared simulated resources.
//!
//! [`Servers`] models a bank of `k` identical servers with FIFO queueing —
//! the shape of every contended resource in the cloud-bursting scenario:
//! a site's cores, a storage node's disk streams, S3's parallel GET
//! connections, and the WAN link's capacity.

use crate::time::SimTime;

/// Result of reserving a resource: when service began (after queueing) and
/// when it completes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Grant {
    /// When the request reached a free server.
    pub start: SimTime,
    /// When service completes.
    pub finish: SimTime,
}

impl Grant {
    /// Time spent waiting for a free server.
    #[must_use]
    pub fn queued(&self, requested_at: SimTime) -> f64 {
        self.start - requested_at
    }
}

/// A bank of `k` identical servers with greedy earliest-free assignment.
///
/// Requests are served in request order (the caller must issue requests in
/// non-decreasing time order, which event-loop code naturally does).
#[derive(Debug, Clone)]
pub struct Servers {
    free_at: Vec<SimTime>,
    busy: f64,
    served: u64,
}

impl Servers {
    /// A bank of `k >= 1` servers, all free at time zero.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> Servers {
        assert!(k > 0, "resource needs at least one server");
        Servers { free_at: vec![SimTime::ZERO; k], busy: 0.0, served: 0 }
    }

    /// Number of servers.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.free_at.len()
    }

    /// Reserve one server at `now` for `service` seconds, queueing FIFO if
    /// all are busy.
    ///
    /// # Panics
    /// Panics on negative service time.
    pub fn request(&mut self, now: SimTime, service: f64) -> Grant {
        assert!(service >= 0.0, "service time cannot be negative");
        let idx = self
            .free_at
            .iter()
            .enumerate()
            .min_by_key(|(_, &t)| t)
            .map(|(i, _)| i)
            .expect("at least one server");
        let start = self.free_at[idx].max(now);
        let finish = start + service;
        self.free_at[idx] = finish;
        self.busy += service;
        self.served += 1;
        Grant { start, finish }
    }

    /// Earliest time any server becomes free.
    #[must_use]
    pub fn next_free(&self) -> SimTime {
        self.free_at.iter().copied().min().unwrap_or(SimTime::ZERO)
    }

    /// Total busy seconds accumulated across servers.
    #[must_use]
    pub fn busy_time(&self) -> f64 {
        self.busy
    }

    /// Requests served so far.
    #[must_use]
    pub fn served(&self) -> u64 {
        self.served
    }

    /// Mean utilization over `[0, horizon]`.
    #[must_use]
    pub fn utilization(&self, horizon: SimTime) -> f64 {
        let h = horizon.seconds();
        if h > 0.0 {
            self.busy / (h * self.free_at.len() as f64)
        } else {
            0.0
        }
    }
}

/// Online summary statistics over a stream of samples.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Tally {
    count: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl Tally {
    /// Record one sample.
    pub fn record(&mut self, v: f64) {
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            self.min = self.min.min(v);
            self.max = self.max.max(v);
        }
        self.count += 1;
        self.sum += v;
    }

    /// Number of samples.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of samples.
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Mean of samples (`None` when empty).
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }

    /// Smallest sample (`None` when empty).
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_server_serializes_requests() {
        let mut s = Servers::new(1);
        let g1 = s.request(SimTime::ZERO, 2.0);
        let g2 = s.request(SimTime::ZERO, 3.0);
        assert_eq!(g1.start, SimTime::ZERO);
        assert_eq!(g1.finish, SimTime::at(2.0));
        assert_eq!(g2.start, SimTime::at(2.0), "second request queues");
        assert_eq!(g2.finish, SimTime::at(5.0));
        assert_eq!(g2.queued(SimTime::ZERO), 2.0);
    }

    #[test]
    fn k_servers_run_k_requests_in_parallel() {
        let mut s = Servers::new(3);
        for _ in 0..3 {
            let g = s.request(SimTime::ZERO, 4.0);
            assert_eq!(g.start, SimTime::ZERO);
        }
        let g4 = s.request(SimTime::ZERO, 1.0);
        assert_eq!(g4.start, SimTime::at(4.0));
    }

    #[test]
    fn idle_server_starts_at_request_time() {
        let mut s = Servers::new(1);
        let g = s.request(SimTime::at(10.0), 1.0);
        assert_eq!(g.start, SimTime::at(10.0));
        assert_eq!(g.queued(SimTime::at(10.0)), 0.0);
    }

    #[test]
    fn bookkeeping_tracks_busy_and_served() {
        let mut s = Servers::new(2);
        s.request(SimTime::ZERO, 3.0);
        s.request(SimTime::ZERO, 5.0);
        assert_eq!(s.busy_time(), 8.0);
        assert_eq!(s.served(), 2);
        assert_eq!(s.next_free(), SimTime::at(3.0));
        // Utilization over horizon 5s with 2 servers: 8 / 10 = 0.8.
        assert!((s.utilization(SimTime::at(5.0)) - 0.8).abs() < 1e-12);
        assert_eq!(s.utilization(SimTime::ZERO), 0.0);
    }

    #[test]
    fn zero_service_is_instant() {
        let mut s = Servers::new(1);
        let g = s.request(SimTime::at(1.0), 0.0);
        assert_eq!(g.start, g.finish);
    }

    #[test]
    #[should_panic(expected = "at least one server")]
    fn zero_capacity_rejected() {
        let _ = Servers::new(0);
    }

    #[test]
    #[should_panic(expected = "cannot be negative")]
    fn negative_service_rejected() {
        let _ = Servers::new(1).request(SimTime::ZERO, -1.0);
    }

    #[test]
    fn tally_summary_statistics() {
        let mut t = Tally::default();
        assert_eq!(t.mean(), None);
        for v in [2.0, 4.0, 6.0] {
            t.record(v);
        }
        assert_eq!(t.count(), 3);
        assert_eq!(t.sum(), 12.0);
        assert_eq!(t.mean(), Some(4.0));
        assert_eq!(t.min(), Some(2.0));
        assert_eq!(t.max(), Some(6.0));
    }

    #[test]
    fn tally_single_sample_is_min_and_max() {
        let mut t = Tally::default();
        t.record(-3.5);
        assert_eq!(t.min(), Some(-3.5));
        assert_eq!(t.max(), Some(-3.5));
    }
}
