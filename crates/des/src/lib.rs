//! # cloudburst-des
//!
//! A small deterministic discrete-event simulation engine: virtual time
//! ([`time`]), a future-event list with FIFO tie-breaking ([`queue`]),
//! contended resources with FIFO queueing plus summary statistics
//! ([`resource`]), and activity timelines with utilization curves and text
//! Gantt charts ([`trace`]).
//!
//! `cloudburst-sim` builds the paper-scale cloud-bursting scenario on top of
//! this engine, replaying the *same* scheduling-policy objects the threaded
//! runtime uses, so simulated schedules are the real schedules under a cost
//! model rather than a re-implementation.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod queue;
pub mod resource;
pub mod time;
pub mod trace;

pub use queue::EventQueue;
pub use resource::{Grant, Servers, Tally};
pub use time::SimTime;
pub use trace::{Span, Timeline};
