//! Execution timelines: record what every entity was doing when, then
//! derive utilization curves and text Gantt charts — the observability
//! layer for simulated runs.

use crate::time::SimTime;

/// One recorded activity interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Span<K> {
    /// Which entity (worker, link, store) was active.
    pub entity: usize,
    /// What it was doing.
    pub kind: K,
    /// Activity start.
    pub start: SimTime,
    /// Activity end.
    pub end: SimTime,
}

/// An append-only log of activity spans.
#[derive(Debug, Clone, PartialEq)]
pub struct Timeline<K> {
    spans: Vec<Span<K>>,
    n_entities: usize,
}

impl<K: Copy + PartialEq> Timeline<K> {
    /// An empty timeline.
    #[must_use]
    pub fn new() -> Timeline<K> {
        Timeline { spans: Vec::new(), n_entities: 0 }
    }

    /// Record one activity interval.
    ///
    /// # Panics
    /// Panics when `end < start`.
    pub fn record(&mut self, entity: usize, kind: K, start: SimTime, end: SimTime) {
        assert!(end >= start, "span ends before it starts");
        self.n_entities = self.n_entities.max(entity + 1);
        self.spans.push(Span { entity, kind, start, end });
    }

    /// All recorded spans, in recording order.
    #[must_use]
    pub fn spans(&self) -> &[Span<K>] {
        &self.spans
    }

    /// Number of distinct entities seen (max id + 1).
    #[must_use]
    pub fn n_entities(&self) -> usize {
        self.n_entities
    }

    /// Latest span end, or time zero when empty.
    #[must_use]
    pub fn horizon(&self) -> SimTime {
        self.spans.iter().map(|s| s.end).max().unwrap_or(SimTime::ZERO)
    }

    /// Total busy seconds of one entity (spans of any kind; overlaps are
    /// counted once — spans for a single sequential entity should not
    /// overlap, and this clips them defensively).
    #[must_use]
    pub fn busy_seconds(&self, entity: usize) -> f64 {
        let mut spans: Vec<(f64, f64)> = self
            .spans
            .iter()
            .filter(|s| s.entity == entity)
            .map(|s| (s.start.seconds(), s.end.seconds()))
            .collect();
        spans.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut busy = 0.0;
        let mut cursor = f64::NEG_INFINITY;
        for (start, end) in spans {
            let s = start.max(cursor);
            if end > s {
                busy += end - s;
                cursor = end;
            } else {
                cursor = cursor.max(end);
            }
        }
        busy
    }

    /// Fraction of `[0, horizon]` the entity was busy.
    #[must_use]
    pub fn utilization(&self, entity: usize) -> f64 {
        let h = self.horizon().seconds();
        if h > 0.0 {
            self.busy_seconds(entity) / h
        } else {
            0.0
        }
    }

    /// Per-bucket mean utilization across all entities: the cluster-wide
    /// activity curve with `buckets` samples over the horizon.
    #[must_use]
    pub fn utilization_curve(&self, buckets: usize) -> Vec<f64> {
        let h = self.horizon().seconds();
        let n = self.n_entities.max(1) as f64;
        if h <= 0.0 || buckets == 0 {
            return vec![0.0; buckets];
        }
        let width = h / buckets as f64;
        let mut curve = vec![0.0; buckets];
        for s in &self.spans {
            let (a, b) = (s.start.seconds(), s.end.seconds());
            let first = ((a / width) as usize).min(buckets - 1);
            let last = ((b / width) as usize).min(buckets - 1);
            for (i, c) in curve.iter_mut().enumerate().take(last + 1).skip(first) {
                let lo = i as f64 * width;
                let hi = lo + width;
                let overlap = (b.min(hi) - a.max(lo)).max(0.0);
                *c += overlap / width / n;
            }
        }
        curve
    }

    /// A text Gantt chart: one row per entity, `cols` columns over the
    /// horizon, each cell showing the dominant activity via `glyph`.
    #[must_use]
    pub fn gantt(&self, cols: usize, glyph: impl Fn(K) -> char) -> String {
        let h = self.horizon().seconds();
        if h <= 0.0 || cols == 0 {
            return String::new();
        }
        let width = h / cols as f64;
        let mut out = String::new();
        for e in 0..self.n_entities {
            let mut row = vec![(' ', 0.0); cols];
            for s in self.spans.iter().filter(|s| s.entity == e) {
                let (a, b) = (s.start.seconds(), s.end.seconds());
                let first = ((a / width) as usize).min(cols - 1);
                let last = ((b / width) as usize).min(cols - 1);
                for (i, cell) in row.iter_mut().enumerate().take(last + 1).skip(first) {
                    let lo = i as f64 * width;
                    let overlap = (b.min(lo + width) - a.max(lo)).max(0.0);
                    if overlap > cell.1 {
                        *cell = (glyph(s.kind), overlap);
                    }
                }
            }
            out.push_str(&format!("{e:>3} |"));
            out.extend(row.iter().map(|&(c, _)| c));
            out.push_str("|\n");
        }
        out
    }
}

impl<K: Copy + PartialEq> Default for Timeline<K> {
    fn default() -> Self {
        Timeline::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq)]
    enum Kind {
        Fetch,
        Compute,
    }

    fn t(x: f64) -> SimTime {
        SimTime::at(x)
    }

    #[test]
    fn busy_seconds_and_utilization() {
        let mut tl = Timeline::new();
        tl.record(0, Kind::Fetch, t(0.0), t(2.0));
        tl.record(0, Kind::Compute, t(2.0), t(6.0));
        tl.record(1, Kind::Compute, t(0.0), t(3.0));
        assert_eq!(tl.horizon(), t(6.0));
        assert_eq!(tl.busy_seconds(0), 6.0);
        assert_eq!(tl.busy_seconds(1), 3.0);
        assert!((tl.utilization(0) - 1.0).abs() < 1e-12);
        assert!((tl.utilization(1) - 0.5).abs() < 1e-12);
        assert_eq!(tl.n_entities(), 2);
    }

    #[test]
    fn overlapping_spans_count_once() {
        let mut tl = Timeline::new();
        tl.record(0, Kind::Fetch, t(0.0), t(4.0));
        tl.record(0, Kind::Compute, t(2.0), t(6.0));
        assert_eq!(tl.busy_seconds(0), 6.0);
    }

    #[test]
    fn contained_spans_do_not_double_count() {
        let mut tl = Timeline::new();
        tl.record(0, Kind::Fetch, t(0.0), t(10.0));
        tl.record(0, Kind::Compute, t(2.0), t(4.0));
        tl.record(0, Kind::Compute, t(12.0), t(13.0));
        assert_eq!(tl.busy_seconds(0), 11.0);
    }

    #[test]
    fn utilization_curve_tracks_activity() {
        let mut tl = Timeline::new();
        // Two entities: both busy in the first half, idle in the second.
        tl.record(0, Kind::Compute, t(0.0), t(5.0));
        tl.record(1, Kind::Compute, t(0.0), t(5.0));
        tl.record(0, Kind::Compute, t(9.0), t(10.0)); // stretch horizon
        let curve = tl.utilization_curve(10);
        assert_eq!(curve.len(), 10);
        assert!((curve[0] - 1.0).abs() < 1e-9, "{curve:?}");
        assert!((curve[6] - 0.0).abs() < 1e-9, "{curve:?}");
        assert!((curve[9] - 0.5).abs() < 1e-9, "{curve:?}");
    }

    #[test]
    fn gantt_renders_rows_and_glyphs() {
        let mut tl = Timeline::new();
        tl.record(0, Kind::Fetch, t(0.0), t(5.0));
        tl.record(0, Kind::Compute, t(5.0), t(10.0));
        tl.record(1, Kind::Compute, t(0.0), t(10.0));
        let g = tl.gantt(10, |k| if k == Kind::Fetch { 'F' } else { 'C' });
        let lines: Vec<&str> = g.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("FFFFFCCCCC"), "{g}");
        assert!(lines[1].contains("CCCCCCCCCC"), "{g}");
    }

    #[test]
    fn empty_timeline_is_harmless() {
        let tl: Timeline<Kind> = Timeline::default();
        assert_eq!(tl.horizon(), SimTime::ZERO);
        assert_eq!(tl.utilization(0), 0.0);
        assert!(tl.gantt(10, |_| 'x').is_empty());
        assert_eq!(tl.utilization_curve(4), vec![0.0; 4]);
    }

    #[test]
    #[should_panic(expected = "ends before")]
    fn inverted_span_panics() {
        let mut tl = Timeline::new();
        tl.record(0, Kind::Fetch, t(2.0), t(1.0));
    }
}
