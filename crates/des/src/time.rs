//! Virtual time for the discrete-event simulator.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in virtual time, in seconds since simulation start.
///
/// Wraps `f64` with a total order (`total_cmp`) so it can key the event
/// queue; construction rejects NaN so the order is also meaningful.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0.0);

    /// A time point `t` seconds after start.
    ///
    /// # Panics
    /// Panics on NaN or negative input.
    #[must_use]
    pub fn at(t: f64) -> SimTime {
        assert!(!t.is_nan(), "SimTime cannot be NaN");
        assert!(t >= 0.0, "SimTime cannot be negative");
        SimTime(t)
    }

    /// Seconds since simulation start.
    #[must_use]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// The later of two times.
    #[must_use]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Eq for SimTime {}

impl Ord for SimTime {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0)
    }
}

impl PartialOrd for SimTime {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add<f64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: f64) -> SimTime {
        SimTime::at(self.0 + rhs)
    }
}

impl AddAssign<f64> for SimTime {
    fn add_assign(&mut self, rhs: f64) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = f64;
    fn sub(self, rhs: SimTime) -> f64 {
        self.0 - rhs.0
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_and_ordering() {
        let a = SimTime::at(1.0);
        let b = a + 2.5;
        assert_eq!(b.seconds(), 3.5);
        assert!(b > a);
        assert_eq!(b - a, 2.5);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn add_assign_advances() {
        let mut t = SimTime::ZERO;
        t += 1.25;
        assert_eq!(t.seconds(), 1.25);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn rejects_nan() {
        let _ = SimTime::at(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn rejects_negative() {
        let _ = SimTime::at(-1.0);
    }
}
