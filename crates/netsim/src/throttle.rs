//! Real-time bandwidth/latency enforcement for the threaded runtime.
//!
//! The threaded runtime executes on one machine, so "remote" transfers must
//! be slowed down artificially to exercise the same code paths the paper's
//! geo-distributed deployment does. [`Throttle`] paces callers against a
//! shared token bucket so concurrent readers genuinely compete for the
//! modelled bandwidth, exactly like slaves sharing the S3 egress pipe.
//!
//! A global `time_scale` lets tests compress the modelled world (e.g.
//! `1e-3`: one modelled second = one real millisecond) while preserving every
//! *ratio* the experiments care about.

use crate::link::LinkSpec;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Callback invoked after every completed transfer with `(bytes, modelled
/// seconds, queueing included)`. Lets a metrics layer count link traffic
/// without this crate depending on it.
pub type TransferObserver = Arc<dyn Fn(u64, f64) + Send + Sync>;

/// A shared pacing gate enforcing a [`LinkSpec`] in (scaled) real time.
pub struct Throttle {
    spec: LinkSpec,
    /// Multiplier from modelled seconds to real seconds.
    time_scale: f64,
    state: Mutex<State>,
    /// Optional per-transfer callback (bytes, modelled secs).
    observer: Mutex<Option<TransferObserver>>,
}

impl std::fmt::Debug for Throttle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Throttle")
            .field("spec", &self.spec)
            .field("time_scale", &self.time_scale)
            .field("observed", &self.observer.lock().is_some())
            .finish()
    }
}

#[derive(Debug)]
struct State {
    /// Epoch for the token-bucket schedule.
    start: Instant,
    /// Time (relative to `start`, in real seconds) until which the link's
    /// serialization capacity is already reserved.
    reserved_until: f64,
}

impl Throttle {
    /// A throttle enforcing `spec`, with modelled time compressed by
    /// `time_scale` (1.0 = real time; 1e-3 = 1000x faster).
    ///
    /// # Panics
    /// Panics if `time_scale` is not finite and positive.
    #[must_use]
    pub fn new(spec: LinkSpec, time_scale: f64) -> Throttle {
        assert!(
            time_scale.is_finite() && time_scale > 0.0,
            "time_scale must be finite and positive"
        );
        Throttle {
            spec,
            time_scale,
            state: Mutex::new(State { start: Instant::now(), reserved_until: 0.0 }),
            observer: Mutex::new(None),
        }
    }

    /// Install (or replace) the per-transfer observer: called after every
    /// completed [`Throttle::transfer`] with the byte count and the modelled
    /// seconds the transfer took, queueing included.
    pub fn set_observer(&self, observer: impl Fn(u64, f64) + Send + Sync + 'static) {
        *self.observer.lock() = Some(Arc::new(observer));
    }

    /// The modelled link.
    #[must_use]
    pub fn spec(&self) -> LinkSpec {
        self.spec
    }

    /// Block the caller for the (scaled) time a transfer of `bytes` takes,
    /// *including queueing behind other in-flight transfers*. Returns the
    /// modelled (unscaled) seconds the transfer took, queueing included.
    pub fn transfer(&self, bytes: u64) -> f64 {
        let service_real = self.spec.transfer_time(bytes) * self.time_scale;
        let (anchor, enqueued_at, wake_at) = {
            let mut st = self.state.lock();
            let now = st.start.elapsed().as_secs_f64();
            // Link capacity is reserved back-to-back, FIFO: a transfer that
            // arrives while another is in flight queues behind it.
            let begin = st.reserved_until.max(now);
            st.reserved_until = begin + service_real;
            (st.start, now, st.reserved_until)
        };
        loop {
            let now = anchor.elapsed().as_secs_f64();
            if now >= wake_at {
                break;
            }
            std::thread::sleep(Duration::from_secs_f64((wake_at - now).min(0.05)));
        }
        let modelled = (wake_at - enqueued_at) / self.time_scale;
        let observer = self.observer.lock().clone();
        if let Some(observe) = observer {
            observe(bytes, modelled);
        }
        modelled
    }

    /// Block for one request/response round trip plus serialization of
    /// `bytes` in the response (the shape of a control RPC or ranged GET).
    /// Returns modelled seconds.
    pub fn rpc(&self, bytes: u64) -> f64 {
        // The request leg only pays latency; the response leg is `transfer`.
        std::thread::sleep(Duration::from_secs_f64(self.spec.latency * self.time_scale));
        self.spec.latency + self.transfer(bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn spec(latency: f64, bw: f64) -> LinkSpec {
        LinkSpec::new(latency, bw)
    }

    #[test]
    fn transfer_takes_modelled_time() {
        // 1 KB at 1 MB/s with 1 ms latency = ~2 ms modelled; scale 1.0.
        let t = Throttle::new(spec(1e-3, 1e6), 1.0);
        let before = Instant::now();
        let modelled = t.transfer(1000);
        let real = before.elapsed().as_secs_f64();
        assert!(modelled >= 2e-3 - 1e-9, "modelled {modelled}");
        assert!(real >= 1.5e-3, "real {real}");
    }

    #[test]
    fn time_scale_compresses_real_time() {
        // 10 modelled seconds at scale 1e-4 = ~1 ms real.
        let t = Throttle::new(spec(0.0, 100.0), 1e-4);
        let before = Instant::now();
        let modelled = t.transfer(1000); // 10 modelled s
        let real = before.elapsed().as_secs_f64();
        assert!(modelled >= 10.0 - 1e-6);
        assert!(real < 0.5, "real {real} should be ~1ms");
    }

    #[test]
    fn concurrent_transfers_share_bandwidth() {
        // Two 5-modelled-second transfers through one link must take ~10
        // modelled seconds of link capacity: the second queues.
        let t = Arc::new(Throttle::new(spec(0.0, 200.0), 1e-3));
        let before = Instant::now();
        std::thread::scope(|s| {
            for _ in 0..2 {
                let t = Arc::clone(&t);
                s.spawn(move || {
                    t.transfer(1000) // 5 modelled seconds each
                });
            }
        });
        let real = before.elapsed().as_secs_f64();
        // 10 modelled seconds at 1e-3 = 10 ms real, minus scheduling slack.
        assert!(real >= 8e-3, "two transfers must serialize, took {real}");
    }

    #[test]
    fn observer_sees_every_transfer() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let t = Throttle::new(spec(0.0, 1e6), 1e-4);
        let total = Arc::new(AtomicU64::new(0));
        let seen = Arc::clone(&total);
        t.set_observer(move |bytes, modelled| {
            assert!(modelled > 0.0);
            seen.fetch_add(bytes, Ordering::Relaxed);
        });
        let m1 = t.transfer(1000);
        let m2 = t.transfer(500);
        assert!(m1 > 0.0 && m2 > 0.0);
        assert_eq!(total.load(Ordering::Relaxed), 1500);
    }

    #[test]
    fn spec_accessor_returns_configuration() {
        let s = spec(0.25, 42.0);
        assert_eq!(Throttle::new(s, 1.0).spec(), s);
    }

    #[test]
    #[should_panic(expected = "time_scale")]
    fn rejects_zero_scale() {
        let _ = Throttle::new(spec(0.0, 1.0), 0.0);
    }
}
