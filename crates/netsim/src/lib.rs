//! # cloudburst-netsim
//!
//! The network substrate of the cloudburst framework: link specifications
//! and transfer-time arithmetic ([`link`]), the two-site topology of the
//! paper's testbed ([`topology`]), real-time bandwidth enforcement for the
//! threaded runtime ([`throttle`]), and the deterministic EC2
//! performance-variability model ([`jitter`]).
//!
//! Both runtimes consume the same [`LinkSpec`] arithmetic: the threaded
//! runtime through [`Throttle`] (which paces real threads), the paper-scale
//! simulator through closed-form [`LinkSpec::transfer_time`] charges.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod jitter;
pub mod link;
pub mod throttle;
pub mod topology;

pub use jitter::Jitter;
pub use link::{profiles, LinkSpec};
pub use throttle::{Throttle, TransferObserver};
pub use topology::Topology;
