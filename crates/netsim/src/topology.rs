//! The deployment's network topology: which link connects which pair of
//! sites, and how each site reaches each storage service.

use crate::link::{profiles, LinkSpec};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Site identifier, mirroring `cloudburst_core::SiteId` without a dependency
/// cycle (netsim sits below core's consumers).
pub type Site = u16;

/// Conventional site numbers.
pub const LOCAL: Site = 0;
/// The cloud site.
pub const CLOUD: Site = 1;

/// The full topology: inter-site links plus per-site storage access links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Topology {
    /// Inter-site links, keyed by unordered pair (lo, hi).
    links: BTreeMap<(Site, Site), LinkSpec>,
    /// Access path from a compute site to a storage site's store:
    /// `storage_access[(compute, storage)]`.
    storage: BTreeMap<(Site, Site), LinkSpec>,
    /// Per-connection limit when fetching from each storage site.
    per_connection: BTreeMap<Site, LinkSpec>,
}

impl Topology {
    /// An empty topology; populate with [`Topology::with_link`] etc.
    #[must_use]
    pub fn new() -> Topology {
        Topology {
            links: BTreeMap::new(),
            storage: BTreeMap::new(),
            per_connection: BTreeMap::new(),
        }
    }

    /// The paper's two-site deployment: a campus cluster (site 0, Infiniband
    /// plus a dedicated storage node) and AWS (site 1, EC2 + S3), joined by
    /// a commodity WAN.
    #[must_use]
    pub fn paper_testbed() -> Topology {
        Topology::new()
            .with_link(LOCAL, CLOUD, profiles::wan())
            .with_storage_access(LOCAL, LOCAL, profiles::cluster_storage())
            .with_storage_access(CLOUD, CLOUD, profiles::s3_host_cap())
            // Cross-site storage access rides the WAN.
            .with_storage_access(LOCAL, CLOUD, profiles::wan())
            .with_storage_access(CLOUD, LOCAL, profiles::wan())
            .with_per_connection(CLOUD, profiles::s3_connection())
            .with_per_connection(LOCAL, profiles::cluster_storage())
    }

    /// Add (or replace) the inter-site link between `a` and `b`.
    #[must_use]
    pub fn with_link(mut self, a: Site, b: Site, spec: LinkSpec) -> Topology {
        self.links.insert(Self::key(a, b), spec);
        self
    }

    /// Add (or replace) the access path from compute site `from` to the
    /// store hosted at site `at`.
    #[must_use]
    pub fn with_storage_access(mut self, from: Site, at: Site, spec: LinkSpec) -> Topology {
        self.storage.insert((from, at), spec);
        self
    }

    /// Set the per-connection limit of the store hosted at `at`.
    #[must_use]
    pub fn with_per_connection(mut self, at: Site, spec: LinkSpec) -> Topology {
        self.per_connection.insert(at, spec);
        self
    }

    /// The link between two sites. Same-site traffic uses loopback.
    #[must_use]
    pub fn link(&self, a: Site, b: Site) -> LinkSpec {
        if a == b {
            return profiles::loopback();
        }
        self.links.get(&Self::key(a, b)).copied().unwrap_or_else(profiles::wan)
    }

    /// The path from compute site `from` to the store at `at`. Falls back to
    /// the inter-site link when no explicit storage path is configured.
    #[must_use]
    pub fn storage_access(&self, from: Site, at: Site) -> LinkSpec {
        self.storage.get(&(from, at)).copied().unwrap_or_else(|| self.link(from, at))
    }

    /// Per-connection limit of the store at `at` (defaults to its aggregate
    /// access path, i.e. a single connection can saturate the store).
    #[must_use]
    pub fn per_connection(&self, at: Site) -> LinkSpec {
        self.per_connection.get(&at).copied().unwrap_or_else(|| self.storage_access(at, at))
    }

    fn key(a: Site, b: Site) -> (Site, Site) {
        (a.min(b), a.max(b))
    }
}

impl Default for Topology {
    fn default() -> Self {
        Topology::paper_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_site_is_loopback() {
        let t = Topology::paper_testbed();
        assert!(t.link(LOCAL, LOCAL).bandwidth >= 1e9);
        assert!(t.link(LOCAL, LOCAL).latency < 1e-6);
    }

    #[test]
    fn links_are_symmetric() {
        let t = Topology::paper_testbed();
        assert_eq!(t.link(LOCAL, CLOUD), t.link(CLOUD, LOCAL));
    }

    #[test]
    fn local_storage_faster_than_cross_site() {
        let t = Topology::paper_testbed();
        let mb = 1 << 20;
        let local = t.storage_access(LOCAL, LOCAL).transfer_time(mb);
        let cross = t.storage_access(LOCAL, CLOUD).transfer_time(mb);
        assert!(local < cross);
    }

    #[test]
    fn cloud_reads_s3_faster_than_cluster_does() {
        // Intra-AWS S3 access beats WAN S3 access — the basis of the paper's
        // observation that env-cloud has *shorter* retrieval than env-local
        // never holds for cross-site reads.
        let t = Topology::paper_testbed();
        let mb = 64 << 20;
        assert!(
            t.storage_access(CLOUD, CLOUD).transfer_time(mb)
                < t.storage_access(LOCAL, CLOUD).transfer_time(mb)
        );
    }

    #[test]
    fn unknown_pairs_fall_back_to_wan() {
        let t = Topology::paper_testbed();
        assert_eq!(t.link(0, 7), profiles::wan());
        assert_eq!(t.storage_access(7, 8), profiles::wan());
    }

    #[test]
    fn builder_overrides_apply() {
        let fast = LinkSpec::new(1e-3, 1e9);
        let t = Topology::new().with_link(LOCAL, CLOUD, fast);
        assert_eq!(t.link(CLOUD, LOCAL), fast);
    }

    #[test]
    fn per_connection_defaults_to_store_access() {
        let t = Topology::new().with_storage_access(2, 2, LinkSpec::new(0.01, 123.0));
        assert_eq!(t.per_connection(2).bandwidth, 123.0);
    }
}
