//! Point-to-point link specifications and transfer-time arithmetic.
//!
//! All the paper's communication overheads — head↔master control traffic,
//! reduction-object exchange at global reduction, and remote chunk retrieval
//! — are functions of *(latency, bandwidth, bytes)*. This module is the
//! single source of that arithmetic for both the real-time throttle and the
//! discrete-event simulator.

use serde::{Deserialize, Serialize};

/// Seconds.
pub type Seconds = f64;

/// A unidirectional link (or a storage access path) with fixed latency and
/// bandwidth.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LinkSpec {
    /// One-way latency in seconds charged per message/request.
    pub latency: Seconds,
    /// Sustained bandwidth in bytes per second.
    pub bandwidth: f64,
}

impl LinkSpec {
    /// # Panics
    /// Panics on non-positive bandwidth or negative latency.
    #[must_use]
    pub fn new(latency: Seconds, bandwidth: f64) -> LinkSpec {
        assert!(bandwidth > 0.0, "bandwidth must be positive");
        assert!(latency >= 0.0, "latency must be non-negative");
        LinkSpec { latency, bandwidth }
    }

    /// Time for one message of `bytes` payload: `latency + bytes/bandwidth`.
    #[must_use]
    pub fn transfer_time(&self, bytes: u64) -> Seconds {
        self.latency + bytes as f64 / self.bandwidth
    }

    /// Round-trip time of an empty request/response pair.
    #[must_use]
    pub fn rtt(&self) -> Seconds {
        2.0 * self.latency
    }

    /// Time for a request/response exchange carrying `bytes` in the response
    /// (the shape of a job-request RPC or a ranged GET).
    #[must_use]
    pub fn request_response(&self, bytes: u64) -> Seconds {
        self.rtt() + bytes as f64 / self.bandwidth
    }

    /// Effective bandwidth when `n` equal streams share the link fairly.
    #[must_use]
    pub fn shared(&self, n: u32) -> LinkSpec {
        LinkSpec { latency: self.latency, bandwidth: self.bandwidth / f64::from(n.max(1)) }
    }
}

/// Built-in link profiles, calibrated to the paper's testbed (§IV-A):
/// an Infiniband campus cluster with a dedicated SATA-SCSI storage node,
/// EC2 m1.large instances rated "high I/O", S3 object storage, and the
/// commodity WAN between Ohio and AWS circa 2011.
pub mod profiles {
    use super::LinkSpec;

    /// Intra-cluster Infiniband: ~1 GB/s effective, microsecond latency.
    #[must_use]
    pub fn infiniband() -> LinkSpec {
        LinkSpec::new(5e-6, 1.0e9)
    }

    /// Cluster storage node over Infiniband (streaming reads off SATA-SCSI
    /// RAID): the paper's local jobs stream at disk speed, ~350 MB/s
    /// aggregate.
    #[must_use]
    pub fn cluster_storage() -> LinkSpec {
        LinkSpec::new(2e-4, 350.0e6)
    }

    /// Intra-EC2 network between instances: ~120 MB/s, sub-millisecond.
    #[must_use]
    pub fn ec2_lan() -> LinkSpec {
        LinkSpec::new(3e-4, 120.0e6)
    }

    /// One S3 GET connection from EC2: ~25 MB/s with ~30 ms time-to-first-
    /// byte. Parallel ranged GETs aggregate (paper: "multiple retrieval
    /// threads, to capitalize on the fast network interconnects").
    #[must_use]
    pub fn s3_connection() -> LinkSpec {
        LinkSpec::new(30e-3, 25.0e6)
    }

    /// Aggregate S3 throughput one host can reach with enough connections.
    #[must_use]
    pub fn s3_host_cap() -> LinkSpec {
        LinkSpec::new(30e-3, 90.0e6)
    }

    /// WAN between the campus cluster and AWS: ~40 ms one way, ~50 MB/s
    /// (the paper notes bandwidth to cloud storage "is quite limited today").
    #[must_use]
    pub fn wan() -> LinkSpec {
        LinkSpec::new(40e-3, 50.0e6)
    }

    /// In-process "loopback" for co-located components.
    #[must_use]
    pub fn loopback() -> LinkSpec {
        LinkSpec::new(1e-7, 20.0e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_is_latency_plus_serialization() {
        let l = LinkSpec::new(0.1, 1000.0);
        assert!((l.transfer_time(500) - 0.6).abs() < 1e-12);
        assert!((l.transfer_time(0) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn rtt_and_request_response() {
        let l = LinkSpec::new(0.05, 100.0);
        assert!((l.rtt() - 0.1).abs() < 1e-12);
        assert!((l.request_response(50) - 0.6).abs() < 1e-12);
    }

    #[test]
    fn shared_divides_bandwidth_not_latency() {
        let l = LinkSpec::new(0.01, 800.0);
        let s = l.shared(4);
        assert_eq!(s.latency, 0.01);
        assert_eq!(s.bandwidth, 200.0);
        // Zero streams clamps to one.
        assert_eq!(l.shared(0).bandwidth, 800.0);
    }

    #[test]
    fn wan_is_slower_than_infiniband() {
        let one_mb = 1 << 20;
        assert!(
            profiles::wan().transfer_time(one_mb)
                > 10.0 * profiles::infiniband().transfer_time(one_mb)
        );
    }

    #[test]
    fn s3_parallel_beats_single_connection() {
        // 8 parallel ranged GETs at the host cap beat one connection.
        let chunk = 64 << 20;
        let single = profiles::s3_connection().transfer_time(chunk);
        let parallel = profiles::s3_host_cap().transfer_time(chunk); // host cap
        assert!(parallel < single);
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn rejects_zero_bandwidth() {
        let _ = LinkSpec::new(0.0, 0.0);
    }

    #[test]
    #[should_panic(expected = "latency must be non-negative")]
    fn rejects_negative_latency() {
        let _ = LinkSpec::new(-0.1, 1.0);
    }
}
