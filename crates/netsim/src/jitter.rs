//! Deterministic performance-variability model.
//!
//! The paper observes that "the virtualized environment of EC2 can
//! occasionally cause variability in performance, which exacerbates
//! overheads", and counters it with pooling-based load balancing. To let the
//! experiments exercise (and the tests verify) that behaviour *repeatably*,
//! jitter comes from a seeded xorshift generator rather than the OS — every
//! run with the same seed sees the same "EC2 weather".

use serde::{Deserialize, Serialize};

/// A multiplicative slowdown factor stream: each sample is a factor in
/// `[1.0, 1.0 + amplitude]` by which a nominal duration is stretched.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Jitter {
    state: u64,
    amplitude: f64,
}

impl Jitter {
    /// A jitter stream with the given seed and amplitude (`0.25` = up to 25%
    /// slower than nominal).
    ///
    /// # Panics
    /// Panics on negative amplitude.
    #[must_use]
    pub fn new(seed: u64, amplitude: f64) -> Jitter {
        assert!(amplitude >= 0.0, "amplitude must be non-negative");
        // Avoid the all-zero fixed point of xorshift.
        Jitter { state: seed | 1, amplitude }
    }

    /// A stream that never perturbs anything (for the local cluster).
    #[must_use]
    pub fn none() -> Jitter {
        Jitter::new(1, 0.0)
    }

    /// The configured amplitude.
    #[must_use]
    pub fn amplitude(&self) -> f64 {
        self.amplitude
    }

    /// Next slowdown factor in `[1, 1 + amplitude]`.
    pub fn factor(&mut self) -> f64 {
        1.0 + self.amplitude * self.uniform()
    }

    /// Stretch a nominal duration by the next factor.
    pub fn stretch(&mut self, nominal: f64) -> f64 {
        nominal * self.factor()
    }

    /// xorshift64*, mapped to `[0, 1)`.
    fn uniform(&mut self) -> f64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        let bits = x.wrapping_mul(0x2545_F491_4F6C_DD1D) >> 11;
        bits as f64 / (1u64 << 53) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Jitter::new(42, 0.3);
        let mut b = Jitter::new(42, 0.3);
        for _ in 0..100 {
            assert_eq!(a.factor(), b.factor());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Jitter::new(1, 0.3);
        let mut b = Jitter::new(2, 0.3);
        let same = (0..32).filter(|_| a.factor() == b.factor()).count();
        assert!(same < 4, "streams should decorrelate, {same}/32 equal");
    }

    #[test]
    fn factors_stay_in_range() {
        let mut j = Jitter::new(7, 0.25);
        for _ in 0..10_000 {
            let f = j.factor();
            assert!((1.0..=1.25).contains(&f), "factor {f} out of range");
        }
    }

    #[test]
    fn zero_amplitude_is_identity() {
        let mut j = Jitter::none();
        for _ in 0..10 {
            assert_eq!(j.stretch(3.5), 3.5);
        }
    }

    #[test]
    fn mean_factor_is_near_midpoint() {
        let mut j = Jitter::new(99, 0.2);
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| j.factor()).sum::<f64>() / f64::from(n);
        assert!((mean - 1.1).abs() < 0.005, "mean {mean}");
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn rejects_negative_amplitude() {
        let _ = Jitter::new(1, -0.1);
    }
}
