//! # cloudburst-apps
//!
//! The paper's three representative data-intensive applications —
//! [`knn`] (I/O-bound, tiny reduction object), [`kmeans`] (compute-bound,
//! small reduction object) and [`pagerank`] (balanced, *large* reduction
//! object) — plus [`wordcount`] for the quickstart, each implemented
//! against **both** the Generalized Reduction API and the MapReduce
//! baseline, with seeded synthetic dataset generators ([`gen`]) and serial
//! oracles for correctness testing.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod gen;
pub mod gridding;
pub mod kmeans;
pub mod knn;
pub mod pagerank;
pub mod units;
pub mod wordcount;

pub use gridding::{gridding_oracle, Grid2D, Gridding, Sample};
pub use kmeans::{kmeans_oracle, KMeans, KMeansObj};
pub use knn::{knn_oracle, Knn, KnnObj, Neighbor};
pub use pagerank::{pagerank_oracle, PageRank, RankMass};
pub use units::{Edge, IdPoint, Point, Word};
pub use wordcount::{wordcount_oracle, WordCount, WordCounts};
