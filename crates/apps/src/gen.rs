//! Seeded synthetic dataset generators.
//!
//! The paper's datasets (12 GB each for knn, kmeans, pagerank) are not
//! published, so the experiments run on synthetic data with equivalent
//! statistical shape: uniform points for k-NN, Gaussian clusters for
//! k-means, a skewed (hub-heavy) link graph for PageRank, and Zipf-ish text
//! for wordcount. Everything is generated from an explicit seed, so every
//! test and benchmark is reproducible bit for bit.

use crate::units::{Edge, IdPoint, Point, Word};
use bytes::{Bytes, BytesMut};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Uniform identified points in `[0, 1)^D` — the k-NN dataset.
#[must_use]
pub fn gen_id_points<const D: usize>(n: u32, seed: u64) -> Bytes {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = BytesMut::with_capacity(n as usize * IdPoint::<D>::SIZE);
    for id in 0..n {
        let mut coords = [0f32; D];
        for c in &mut coords {
            *c = rng.gen::<f32>();
        }
        IdPoint { id, coords }.encode(&mut buf);
    }
    buf.freeze()
}

/// Points drawn from `k` Gaussian clusters in `[0, 1)^D` — the k-means
/// dataset. Returns `(data, true_centers)`.
#[must_use]
pub fn gen_clustered_points<const D: usize>(
    n: u32,
    k: usize,
    spread: f32,
    seed: u64,
) -> (Bytes, Vec<[f32; D]>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<[f32; D]> = (0..k)
        .map(|_| {
            let mut c = [0f32; D];
            for x in &mut c {
                *x = rng.gen::<f32>();
            }
            c
        })
        .collect();
    let mut buf = BytesMut::with_capacity(n as usize * Point::<D>::SIZE);
    for i in 0..n {
        let center = centers[(i as usize) % k];
        let mut coords = [0f32; D];
        for (x, c) in coords.iter_mut().zip(center) {
            // Box-Muller-free noise: sum of uniforms is plenty Gaussian-ish
            // for a clustering benchmark and avoids transcendental calls.
            let noise: f32 = (0..4).map(|_| rng.gen::<f32>() - 0.5).sum::<f32>() * 0.5;
            *x = c + noise * spread;
        }
        Point(coords).encode(&mut buf);
    }
    (buf.freeze(), centers)
}

/// A skewed directed graph: sources uniform, destinations biased toward
/// low-numbered "hub" pages (squaring a uniform variate concentrates mass
/// near zero) — the PageRank dataset. Every page gets one guaranteed
/// outgoing edge so no page is dangling.
#[must_use]
pub fn gen_edges(n_pages: u32, n_edges: u32, seed: u64) -> Bytes {
    assert!(n_pages > 1, "graph needs at least two pages");
    let n_edges = n_edges.max(n_pages);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = BytesMut::with_capacity(n_edges as usize * Edge::SIZE);
    for i in 0..n_edges {
        // First n_pages edges give every page an out-edge (kills dangling
        // pages); the rest are random.
        let src = if i < n_pages { i } else { rng.gen_range(0..n_pages) };
        let hub: f64 = rng.gen::<f64>();
        let mut dst = ((hub * hub) * f64::from(n_pages)) as u32;
        if dst >= n_pages {
            dst = n_pages - 1;
        }
        if dst == src {
            dst = (dst + 1) % n_pages;
        }
        Edge { src, dst }.encode(&mut buf);
    }
    buf.freeze()
}

/// Zipf-ish fixed-width words over a synthetic vocabulary — the wordcount
/// dataset.
#[must_use]
pub fn gen_words(n: u32, vocab: u32, seed: u64) -> Bytes {
    assert!(vocab > 0, "vocabulary must be non-empty");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut buf = BytesMut::with_capacity(n as usize * Word::SIZE);
    for _ in 0..n {
        // Squared uniform skews toward word 0, like natural-language ranks.
        let u: f64 = rng.gen();
        let idx = ((u * u) * f64::from(vocab)) as u32 % vocab;
        Word::from_str_lossy(&format!("word{idx:06}")).encode(&mut buf);
    }
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::decode_all;

    #[test]
    fn generators_are_deterministic() {
        assert_eq!(gen_id_points::<4>(100, 7), gen_id_points::<4>(100, 7));
        assert_eq!(gen_edges(50, 200, 7), gen_edges(50, 200, 7));
        assert_eq!(gen_words(100, 20, 7), gen_words(100, 20, 7));
        let (a, ca) = gen_clustered_points::<2>(100, 3, 0.1, 7);
        let (b, cb) = gen_clustered_points::<2>(100, 3, 0.1, 7);
        assert_eq!(a, b);
        assert_eq!(ca, cb);
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(gen_id_points::<4>(100, 1), gen_id_points::<4>(100, 2));
    }

    #[test]
    fn id_points_are_sized_and_identified() {
        let data = gen_id_points::<3>(64, 3);
        assert_eq!(data.len(), 64 * IdPoint::<3>::SIZE);
        let mut pts = Vec::new();
        decode_all(&data, IdPoint::<3>::SIZE, &mut pts, IdPoint::<3>::decode);
        assert_eq!(pts.len(), 64);
        assert!(pts.iter().enumerate().all(|(i, p)| p.id == i as u32));
        assert!(pts.iter().all(|p| p.coords.iter().all(|c| (0.0..1.0).contains(c))));
    }

    #[test]
    fn clustered_points_stay_near_centers() {
        let (data, centers) = gen_clustered_points::<2>(300, 3, 0.05, 11);
        let mut pts = Vec::new();
        decode_all(&data, Point::<2>::SIZE, &mut pts, Point::<2>::decode);
        // Each point's nearest true center should be its generating one for
        // a tight spread; check at least 95% are "close" to some center.
        let close = pts
            .iter()
            .filter(|p| {
                centers
                    .iter()
                    .map(|c| crate::units::dist2_f32(&p.0, c))
                    .fold(f32::INFINITY, f32::min)
                    < 0.05
            })
            .count();
        assert!(close >= 285, "only {close}/300 points near a center");
    }

    #[test]
    fn graph_has_no_dangling_pages_or_self_loops() {
        let data = gen_edges(40, 200, 5);
        let mut edges = Vec::new();
        decode_all(&data, Edge::SIZE, &mut edges, Edge::decode);
        assert_eq!(edges.len(), 200);
        let mut has_out = [false; 40];
        for e in &edges {
            assert!(e.src < 40 && e.dst < 40);
            assert_ne!(e.src, e.dst, "self-loop");
            has_out[e.src as usize] = true;
        }
        assert!(has_out.iter().all(|&b| b), "dangling page");
    }

    #[test]
    fn graph_destinations_are_skewed_toward_hubs() {
        let data = gen_edges(100, 10_000, 9);
        let mut edges = Vec::new();
        decode_all(&data, Edge::SIZE, &mut edges, Edge::decode);
        let low = edges.iter().filter(|e| e.dst < 25).count();
        // Squared-uniform: P(dst < 25%) = sqrt(0.25) = 50%.
        assert!(low > 4_000, "hub skew expected, got {low}/10000 to low quarter");
    }

    #[test]
    fn words_follow_a_skewed_distribution() {
        let data = gen_words(10_000, 100, 13);
        let mut words = Vec::new();
        decode_all(&data, Word::SIZE, &mut words, Word::decode);
        let top = words.iter().filter(|w| w.as_str() == "word000000").count();
        let mid = words.iter().filter(|w| w.as_str() == "word000050").count();
        assert!(top > mid, "word000000 ({top}) should outnumber word000050 ({mid})");
    }
}
