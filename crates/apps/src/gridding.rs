//! Spatial gridding — remote-sensing style aggregation (the paper's §I/§V
//! motivation cites MODIS satellite reprojection pipelines as the kind of
//! data-intensive workload hybrid clouds serve): bin geolocated samples
//! into a regular 2D grid, accumulating per-cell count and value sums.
//!
//! Resource profile: light compute (a couple of multiplies per sample) and
//! a **resolution-dependent** reduction object (`width × height × 16`
//! bytes) — between kmeans's kilobytes and pagerank's megabytes, making it
//! a useful fourth point for the overhead analysis.

use crate::units::decode_all;
use bytes::{BufMut, BytesMut};
use cloudburst_core::{Merge, Reduction, ReductionObject};
use cloudburst_mapreduce::MapReduceApp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One geolocated sample: `x, y ∈ [0, 1)` and a measured value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Sample {
    /// Horizontal coordinate in `[0, 1)`.
    pub x: f32,
    /// Vertical coordinate in `[0, 1)`.
    pub y: f32,
    /// The measurement.
    pub value: f32,
}

impl Sample {
    /// Encoded size in bytes.
    pub const SIZE: usize = 12;

    /// Append the record's encoding to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_f32_le(self.x);
        buf.put_f32_le(self.y);
        buf.put_f32_le(self.value);
    }

    /// Decode one record from exactly [`Sample::SIZE`] bytes.
    ///
    /// # Panics
    /// Panics when `bytes` is shorter than the record.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Sample {
        let f = |i: usize| f32::from_le_bytes(bytes[i..i + 4].try_into().expect("f32 bytes"));
        Sample { x: f(0), y: f(4), value: f(8) }
    }
}

/// The gridding reduction object: per-cell sample counts and value sums.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid2D {
    width: usize,
    height: usize,
    /// Row-major per-cell sample counts.
    pub counts: Vec<u64>,
    /// Row-major per-cell value sums.
    pub sums: Vec<f64>,
}

impl Grid2D {
    /// An empty `width × height` grid.
    ///
    /// # Panics
    /// Panics on zero dimensions.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Grid2D {
        assert!(width > 0 && height > 0, "grid needs positive dimensions");
        Grid2D { width, height, counts: vec![0; width * height], sums: vec![0.0; width * height] }
    }

    /// Grid width in cells.
    #[must_use]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Grid height in cells.
    #[must_use]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Row-major cell index for a sample (coordinates clamp to the edges).
    #[must_use]
    pub fn cell_of(&self, x: f32, y: f32) -> usize {
        let cx = ((f64::from(x) * self.width as f64) as isize).clamp(0, self.width as isize - 1);
        let cy = ((f64::from(y) * self.height as f64) as isize).clamp(0, self.height as isize - 1);
        cy as usize * self.width + cx as usize
    }

    /// Fold one sample into its cell.
    pub fn observe(&mut self, s: &Sample) {
        let c = self.cell_of(s.x, s.y);
        self.counts[c] += 1;
        self.sums[c] += f64::from(s.value);
    }

    /// Mean value per cell (`None` for empty cells).
    #[must_use]
    pub fn cell_mean(&self, cell: usize) -> Option<f64> {
        (self.counts[cell] > 0).then(|| self.sums[cell] / self.counts[cell] as f64)
    }

    /// Total samples observed.
    #[must_use]
    pub fn total_samples(&self) -> u64 {
        self.counts.iter().sum()
    }
}

impl Merge for Grid2D {
    /// # Panics
    /// Panics when grid shapes differ.
    fn merge(&mut self, other: Self) {
        assert_eq!((self.width, self.height), (other.width, other.height), "grid shape mismatch");
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
        for (a, b) in self.sums.iter_mut().zip(other.sums) {
            *a += b;
        }
    }
}

impl ReductionObject for Grid2D {
    fn byte_size(&self) -> usize {
        16 + self.counts.len() * 16
    }
}

/// The gridding application.
#[derive(Debug, Clone, Copy)]
pub struct Gridding {
    /// Grid width in cells.
    pub width: usize,
    /// Grid height in cells.
    pub height: usize,
}

impl Gridding {
    /// A gridder with the given resolution.
    #[must_use]
    pub fn new(width: usize, height: usize) -> Gridding {
        Gridding { width, height }
    }
}

impl Reduction for Gridding {
    type Item = Sample;
    type RObj = Grid2D;

    fn make_robj(&self) -> Grid2D {
        Grid2D::new(self.width, self.height)
    }

    fn unit_size(&self) -> usize {
        Sample::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<Sample>) {
        decode_all(chunk, Sample::SIZE, out, Sample::decode);
    }

    fn local_reduce(&self, robj: &mut Grid2D, item: &Sample) {
        robj.observe(item);
    }
}

/// MapReduce formulation: one `(cell, (count, sum))` pair per sample.
impl MapReduceApp for Gridding {
    type Item = Sample;
    type Key = u32;
    type Value = (u64, f64);

    fn unit_size(&self) -> usize {
        Sample::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<Sample>) {
        decode_all(chunk, Sample::SIZE, out, Sample::decode);
    }

    fn map(&self, item: &Sample, emit: &mut dyn FnMut(u32, (u64, f64))) {
        let grid = Grid2D::new(self.width, self.height);
        emit(grid.cell_of(item.x, item.y) as u32, (1, f64::from(item.value)));
    }

    fn reduce(&self, _key: &u32, values: Vec<(u64, f64)>) -> (u64, f64) {
        values.into_iter().fold((0, 0.0), |(c, s), (dc, ds)| (c + dc, s + ds))
    }

    fn combine(&self, key: &u32, values: Vec<(u64, f64)>) -> Vec<(u64, f64)> {
        vec![self.reduce(key, values)]
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

/// Synthetic sensor swath: samples cluster around `hotspots` warm regions
/// on a cool background (a caricature of a surface-temperature product).
#[must_use]
pub fn gen_samples(n: u32, hotspots: u32, seed: u64) -> bytes::Bytes {
    assert!(hotspots > 0, "need at least one hotspot");
    let mut rng = StdRng::seed_from_u64(seed);
    let centers: Vec<(f32, f32)> = (0..hotspots).map(|_| (rng.gen(), rng.gen())).collect();
    let mut buf = BytesMut::with_capacity(n as usize * Sample::SIZE);
    for i in 0..n {
        let (x, y, v) = if i % 4 == 0 {
            // A quarter of the samples come from hotspots.
            let (cx, cy) = centers[(i / 4) as usize % centers.len()];
            let dx = (rng.gen::<f32>() - 0.5) * 0.1;
            let dy = (rng.gen::<f32>() - 0.5) * 0.1;
            (
                (cx + dx).clamp(0.0, 0.999),
                (cy + dy).clamp(0.0, 0.999),
                30.0 + rng.gen::<f32>() * 5.0,
            )
        } else {
            (rng.gen(), rng.gen(), 10.0 + rng.gen::<f32>() * 5.0)
        };
        Sample { x, y, value: v }.encode(&mut buf);
    }
    buf.freeze()
}

/// Serial oracle.
#[must_use]
pub fn gridding_oracle(data: &[u8], width: usize, height: usize) -> Grid2D {
    let mut samples = Vec::new();
    decode_all(data, Sample::SIZE, &mut samples, Sample::decode);
    let mut grid = Grid2D::new(width, height);
    for s in &samples {
        grid.observe(s);
    }
    grid
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_core::reduce_serial;

    #[test]
    fn sample_roundtrip() {
        let s = Sample { x: 0.25, y: 0.75, value: -3.5 };
        let mut buf = BytesMut::new();
        s.encode(&mut buf);
        assert_eq!(buf.len(), Sample::SIZE);
        assert_eq!(Sample::decode(&buf), s);
    }

    #[test]
    fn cells_cover_the_unit_square() {
        let g = Grid2D::new(4, 3);
        assert_eq!(g.cell_of(0.0, 0.0), 0);
        assert_eq!(g.cell_of(0.999, 0.0), 3);
        assert_eq!(g.cell_of(0.0, 0.999), 8);
        assert_eq!(g.cell_of(0.999, 0.999), 11);
        // Out-of-range clamps rather than panics.
        assert_eq!(g.cell_of(-1.0, 2.0), 8);
    }

    #[test]
    fn genred_matches_oracle() {
        let data = gen_samples(5_000, 3, 7);
        let app = Gridding::new(16, 16);
        let robj = reduce_serial(&app, [data.as_ref()]);
        assert_eq!(robj, gridding_oracle(&data, 16, 16));
        assert_eq!(robj.total_samples(), 5_000);
    }

    #[test]
    fn merge_of_partitions_matches_whole() {
        let data = gen_samples(2_000, 2, 9);
        let app = Gridding::new(8, 8);
        let cut = (data.len() / 2) - (data.len() / 2) % Sample::SIZE;
        let mut a = reduce_serial(&app, [&data[..cut]]);
        let b = reduce_serial(&app, [&data[cut..]]);
        a.merge(b);
        let whole = gridding_oracle(&data, 8, 8);
        assert_eq!(a.counts, whole.counts);
        for (x, y) in a.sums.iter().zip(&whole.sums) {
            assert!((x - y).abs() < 1e-9);
        }
    }

    #[test]
    fn hotspot_cells_run_warmer() {
        let data = gen_samples(40_000, 1, 11);
        let grid = gridding_oracle(&data, 10, 10);
        // The warmest cell mean should be far above the background (~12.5).
        let best = (0..100).filter_map(|c| grid.cell_mean(c)).fold(f64::MIN, f64::max);
        assert!(best > 20.0, "hotspot mean {best}");
    }

    #[test]
    fn robj_size_scales_with_resolution() {
        let small = Grid2D::new(8, 8);
        let big = Grid2D::new(256, 256);
        assert!(big.byte_size() > 1_000 * small.byte_size() / 2);
        assert_eq!(big.byte_size(), 16 + 256 * 256 * 16);
    }

    #[test]
    fn mapreduce_matches_genred() {
        use cloudburst_mapreduce::{run_mapreduce, EngineConfig};
        let data = gen_samples(3_000, 2, 13);
        let app = Gridding::new(6, 6);
        let chunks: Vec<&[u8]> = data.chunks(100 * Sample::SIZE).collect();
        let (res, _) = run_mapreduce(&app, &chunks, EngineConfig::default());
        let oracle = gridding_oracle(&data, 6, 6);
        for (cell, (count, sum)) in res {
            assert_eq!(count, oracle.counts[cell as usize]);
            assert!((sum - oracle.sums[cell as usize]).abs() < 1e-9);
        }
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn merging_different_resolutions_panics() {
        Grid2D::new(2, 2).merge(Grid2D::new(3, 3));
    }
}
