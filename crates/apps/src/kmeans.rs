//! k-Means clustering — "heavy computation resulting in low to medium I/O,
//! and a small reduction object" (paper §IV-A).
//!
//! One framework run performs one Lloyd iteration: every point is assigned
//! to its nearest centroid and folded into per-centroid coordinate sums.
//! The reduction object is `k × (D sums + count)` — kilobytes regardless of
//! dataset size. The per-unit cost is `k·D` multiply-adds, which is what
//! makes kmeans the compute-bound application of the trio.

use crate::units::{decode_all, dist2, Point};
use cloudburst_core::{Merge, Reduction, ReductionObject};
use cloudburst_mapreduce::MapReduceApp;

/// The k-means reduction object: per-centroid coordinate sums and counts.
#[derive(Debug, Clone, PartialEq)]
pub struct KMeansObj {
    /// Flattened `k × D` coordinate sums.
    pub sums: Vec<f64>,
    /// Points assigned per centroid.
    pub counts: Vec<u64>,
}

impl KMeansObj {
    /// A zeroed accumulator for `k` centroids in `D` dimensions.
    #[must_use]
    pub fn zeros(k: usize, dim: usize) -> KMeansObj {
        KMeansObj { sums: vec![0.0; k * dim], counts: vec![0; k] }
    }

    /// The updated centroids; centroids with no assigned points keep their
    /// previous position.
    #[must_use]
    pub fn new_centroids<const D: usize>(&self, previous: &[[f64; D]]) -> Vec<[f64; D]> {
        let k = self.counts.len();
        let mut out = Vec::with_capacity(k);
        for (c, (&count, &prev)) in self.counts.iter().zip(previous).enumerate() {
            if count == 0 {
                out.push(prev);
                continue;
            }
            let mut centroid = [0f64; D];
            for (d, x) in centroid.iter_mut().enumerate() {
                *x = self.sums[c * D + d] / count as f64;
            }
            out.push(centroid);
        }
        out
    }
}

impl Merge for KMeansObj {
    /// # Panics
    /// Panics when the accumulators have different shapes.
    fn merge(&mut self, other: Self) {
        assert_eq!(self.sums.len(), other.sums.len(), "kmeans robj shape mismatch");
        assert_eq!(self.counts.len(), other.counts.len(), "kmeans robj shape mismatch");
        for (a, b) in self.sums.iter_mut().zip(other.sums) {
            *a += b;
        }
        for (a, b) in self.counts.iter_mut().zip(other.counts) {
            *a += b;
        }
    }
}

impl ReductionObject for KMeansObj {
    fn byte_size(&self) -> usize {
        self.sums.len() * 8 + self.counts.len() * 8
    }
}

/// One Lloyd iteration of k-means over `D`-dimensional points.
#[derive(Debug, Clone)]
pub struct KMeans<const D: usize> {
    /// Current centroids.
    pub centroids: Vec<[f64; D]>,
}

impl<const D: usize> KMeans<D> {
    /// An iteration against the given centroids.
    ///
    /// # Panics
    /// Panics when `centroids` is empty.
    #[must_use]
    pub fn new(centroids: Vec<[f64; D]>) -> KMeans<D> {
        assert!(!centroids.is_empty(), "kmeans needs at least one centroid");
        KMeans { centroids }
    }

    /// Index of the centroid nearest to `p`.
    #[must_use]
    pub fn nearest(&self, p: &[f32; D]) -> usize {
        let mut best = 0;
        let mut best_d = f64::INFINITY;
        for (i, c) in self.centroids.iter().enumerate() {
            let d = dist2(p, c);
            if d < best_d {
                best_d = d;
                best = i;
            }
        }
        best
    }
}

impl<const D: usize> Reduction for KMeans<D> {
    type Item = Point<D>;
    type RObj = KMeansObj;

    fn make_robj(&self) -> KMeansObj {
        KMeansObj::zeros(self.centroids.len(), D)
    }

    fn unit_size(&self) -> usize {
        Point::<D>::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<Point<D>>) {
        decode_all(chunk, Point::<D>::SIZE, out, Point::<D>::decode);
    }

    fn local_reduce(&self, robj: &mut KMeansObj, item: &Point<D>) {
        let c = self.nearest(&item.0);
        for (d, &x) in item.0.iter().enumerate() {
            robj.sums[c * D + d] += f64::from(x);
        }
        robj.counts[c] += 1;
    }
}

/// A per-centroid partial aggregate flowing through the MapReduce shuffle.
#[derive(Debug, Clone, PartialEq)]
pub struct Partial<const D: usize> {
    /// Coordinate sums.
    pub sums: [f64; D],
    /// Point count.
    pub count: u64,
}

/// The MapReduce formulation: map each point to `(centroid, partial sum)`;
/// the combiner/reducer add partials. Note the per-point heap value the
/// fused API never materializes — the §III-A ablation measures exactly this.
impl<const D: usize> MapReduceApp for KMeans<D> {
    type Item = Point<D>;
    type Key = u32;
    type Value = Partial<D>;

    fn unit_size(&self) -> usize {
        Point::<D>::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<Point<D>>) {
        decode_all(chunk, Point::<D>::SIZE, out, Point::<D>::decode);
    }

    fn map(&self, item: &Point<D>, emit: &mut dyn FnMut(u32, Partial<D>)) {
        let c = self.nearest(&item.0);
        let mut sums = [0f64; D];
        for (s, &x) in sums.iter_mut().zip(&item.0) {
            *s = f64::from(x);
        }
        emit(c as u32, Partial { sums, count: 1 });
    }

    fn reduce(&self, _key: &u32, values: Vec<Partial<D>>) -> Partial<D> {
        let mut acc = Partial { sums: [0f64; D], count: 0 };
        for v in values {
            for (a, b) in acc.sums.iter_mut().zip(v.sums) {
                *a += b;
            }
            acc.count += v.count;
        }
        acc
    }

    fn combine(&self, key: &u32, values: Vec<Partial<D>>) -> Vec<Partial<D>> {
        vec![self.reduce(key, values)]
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

/// Serial oracle: one Lloyd iteration with plain loops.
#[must_use]
pub fn kmeans_oracle<const D: usize>(data: &[u8], centroids: &[[f64; D]]) -> KMeansObj {
    let app = KMeans::new(centroids.to_vec());
    let mut pts = Vec::new();
    decode_all(data, Point::<D>::SIZE, &mut pts, Point::<D>::decode);
    let mut obj = KMeansObj::zeros(centroids.len(), D);
    for p in &pts {
        Reduction::local_reduce(&app, &mut obj, p);
    }
    obj
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_clustered_points;
    use cloudburst_core::reduce_serial;

    fn initial_centroids<const D: usize>(k: usize) -> Vec<[f64; D]> {
        (0..k)
            .map(|i| {
                let mut c = [0f64; D];
                c.iter_mut().for_each(|x| *x = (i as f64 + 0.5) / k as f64);
                c
            })
            .collect()
    }

    #[test]
    fn genred_matches_oracle() {
        let (data, _) = gen_clustered_points::<3>(400, 4, 0.05, 17);
        let app = KMeans::new(initial_centroids::<3>(4));
        let robj = reduce_serial(&app, [data.as_ref()]);
        let oracle = kmeans_oracle(&data, &app.centroids);
        assert_eq!(robj, oracle);
        assert_eq!(robj.counts.iter().sum::<u64>(), 400);
    }

    #[test]
    fn merge_of_partitions_matches_whole() {
        let (data, _) = gen_clustered_points::<2>(256, 3, 0.1, 23);
        let app = KMeans::new(initial_centroids::<2>(3));
        let cut = (data.len() / 2) - (data.len() / 2) % Point::<2>::SIZE;
        let mut a = reduce_serial(&app, [&data[..cut]]);
        let b = reduce_serial(&app, [&data[cut..]]);
        a.merge(b);
        assert_eq!(a, kmeans_oracle(&data, &app.centroids));
    }

    #[test]
    fn lloyd_iterations_converge_to_true_centers() {
        let (data, truth) = gen_clustered_points::<2>(3000, 3, 0.02, 41);
        let mut centroids = initial_centroids::<2>(3);
        for _ in 0..10 {
            let app = KMeans::new(centroids.clone());
            let obj = reduce_serial(&app, [data.as_ref()]);
            centroids = obj.new_centroids(&centroids);
        }
        // Every true center must have a learned centroid nearby.
        for t in &truth {
            let t64 = [f64::from(t[0]), f64::from(t[1])];
            let nearest = centroids
                .iter()
                .map(|c| (c[0] - t64[0]).powi(2) + (c[1] - t64[1]).powi(2))
                .fold(f64::INFINITY, f64::min);
            assert!(nearest < 0.01, "no centroid near true center {t:?} ({nearest})");
        }
    }

    #[test]
    fn empty_cluster_keeps_previous_centroid() {
        let obj = KMeansObj::zeros(2, 2);
        let prev = [[0.25, 0.25], [0.75, 0.75]];
        assert_eq!(obj.new_centroids(&prev), prev.to_vec());
    }

    #[test]
    fn robj_size_is_independent_of_data() {
        let app = KMeans::new(initial_centroids::<4>(10));
        let robj = Reduction::make_robj(&app);
        assert_eq!(robj.byte_size(), 10 * 4 * 8 + 10 * 8);
    }

    #[test]
    fn mapreduce_matches_genred() {
        use cloudburst_mapreduce::{run_mapreduce, EngineConfig};
        let (data, _) = gen_clustered_points::<2>(300, 3, 0.05, 29);
        let app = KMeans::new(initial_centroids::<2>(3));
        let chunks: Vec<&[u8]> = data.chunks(64 * Point::<2>::SIZE).collect();
        let (res, _) = run_mapreduce(&app, &chunks, EngineConfig::default());
        let oracle = kmeans_oracle(&data, &app.centroids);
        for (key, partial) in res {
            let c = key as usize;
            assert_eq!(partial.count, oracle.counts[c]);
            for d in 0..2 {
                assert!((partial.sums[d] - oracle.sums[c * 2 + d]).abs() < 1e-9);
            }
        }
    }
}
