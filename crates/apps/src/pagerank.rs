//! PageRank — "low to medium computation leading to high I/O, and a very
//! large reduction object" (paper §IV-A).
//!
//! One framework run performs one power iteration over the edge list: each
//! edge deposits `rank[src] / outdeg[src]` onto `dst`. The reduction object
//! is the **dense rank-mass vector** — 8 bytes per page (the paper's ~3 MB
//! robj), which is what makes PageRank's global reduction expensive across
//! the WAN and limits its scalability (§IV-C).

use crate::units::{decode_all, Edge};
use cloudburst_core::{Merge, Reduction, ReductionObject};
use cloudburst_mapreduce::MapReduceApp;
use std::sync::Arc;

/// The PageRank reduction object: accumulated rank mass per page.
#[derive(Debug, Clone, PartialEq)]
pub struct RankMass(pub Vec<f64>);

impl Merge for RankMass {
    /// # Panics
    /// Panics when page counts differ.
    fn merge(&mut self, other: Self) {
        assert_eq!(self.0.len(), other.0.len(), "rank vector length mismatch");
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a += b;
        }
    }
}

impl ReductionObject for RankMass {
    fn byte_size(&self) -> usize {
        self.0.len() * 8
    }
}

/// One PageRank power iteration over an edge list.
///
/// The immutable per-iteration state (`contrib[p] = rank[p] / outdeg[p]`) is
/// shared read-only across all workers via `Arc`.
#[derive(Debug, Clone)]
pub struct PageRank {
    n_pages: usize,
    damping: f64,
    contrib: Arc<Vec<f64>>,
    dangling_mass: f64,
}

impl PageRank {
    /// An iteration with `ranks` as the current rank vector and `outdeg` the
    /// out-degree of every page.
    ///
    /// # Panics
    /// Panics when lengths differ, pages == 0, or damping is outside (0, 1).
    #[must_use]
    pub fn new(ranks: &[f64], outdeg: &[u32], damping: f64) -> PageRank {
        assert_eq!(ranks.len(), outdeg.len(), "ranks/outdeg length mismatch");
        assert!(!ranks.is_empty(), "graph has no pages");
        assert!((0.0..1.0).contains(&damping) && damping > 0.0, "damping must be in (0, 1)");
        let mut dangling_mass = 0.0;
        let contrib: Vec<f64> = ranks
            .iter()
            .zip(outdeg)
            .map(|(&r, &d)| {
                if d == 0 {
                    dangling_mass += r;
                    0.0
                } else {
                    r / f64::from(d)
                }
            })
            .collect();
        PageRank { n_pages: ranks.len(), damping, contrib: Arc::new(contrib), dangling_mass }
    }

    /// Number of pages.
    #[must_use]
    pub fn n_pages(&self) -> usize {
        self.n_pages
    }

    /// Turn accumulated mass into the next rank vector:
    /// `(1 - d)/N + d * (mass + dangling/N)`.
    #[must_use]
    pub fn next_ranks(&self, mass: &RankMass) -> Vec<f64> {
        let n = self.n_pages as f64;
        mass.0
            .iter()
            .map(|&m| (1.0 - self.damping) / n + self.damping * (m + self.dangling_mass / n))
            .collect()
    }

    /// Count out-degrees from an encoded edge list.
    #[must_use]
    pub fn outdegrees(data: &[u8], n_pages: usize) -> Vec<u32> {
        let mut edges = Vec::new();
        decode_all(data, Edge::SIZE, &mut edges, Edge::decode);
        let mut deg = vec![0u32; n_pages];
        for e in &edges {
            deg[e.src as usize] += 1;
        }
        deg
    }
}

impl Reduction for PageRank {
    type Item = Edge;
    type RObj = RankMass;

    fn make_robj(&self) -> RankMass {
        RankMass(vec![0.0; self.n_pages])
    }

    fn unit_size(&self) -> usize {
        Edge::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<Edge>) {
        decode_all(chunk, Edge::SIZE, out, Edge::decode);
    }

    fn local_reduce(&self, robj: &mut RankMass, item: &Edge) {
        robj.0[item.dst as usize] += self.contrib[item.src as usize];
    }
}

/// The MapReduce formulation: each edge emits `(dst, contribution)`; the
/// shuffle carries one pair per edge (a huge intermediate set — the paper's
/// §III-A point), combined/reduced by addition.
impl MapReduceApp for PageRank {
    type Item = Edge;
    type Key = u32;
    type Value = f64;

    fn unit_size(&self) -> usize {
        Edge::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<Edge>) {
        decode_all(chunk, Edge::SIZE, out, Edge::decode);
    }

    fn map(&self, item: &Edge, emit: &mut dyn FnMut(u32, f64)) {
        emit(item.dst, self.contrib[item.src as usize]);
    }

    fn reduce(&self, _key: &u32, values: Vec<f64>) -> f64 {
        values.into_iter().sum()
    }

    fn combine(&self, _key: &u32, values: Vec<f64>) -> Vec<f64> {
        vec![values.into_iter().sum()]
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

/// Serial oracle: run `iterations` full power iterations and return the
/// final rank vector.
#[must_use]
pub fn pagerank_oracle(data: &[u8], n_pages: usize, damping: f64, iterations: usize) -> Vec<f64> {
    let outdeg = PageRank::outdegrees(data, n_pages);
    let mut edges = Vec::new();
    decode_all(data, Edge::SIZE, &mut edges, Edge::decode);
    let mut ranks = vec![1.0 / n_pages as f64; n_pages];
    for _ in 0..iterations {
        let app = PageRank::new(&ranks, &outdeg, damping);
        let mut mass = Reduction::make_robj(&app);
        for e in &edges {
            Reduction::local_reduce(&app, &mut mass, e);
        }
        ranks = app.next_ranks(&mass);
    }
    ranks
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_edges;
    use cloudburst_core::reduce_serial;

    fn tiny_graph() -> Vec<u8> {
        // 0 -> 1, 1 -> 2, 2 -> 0 (a cycle: uniform stationary ranks).
        let mut buf = bytes::BytesMut::new();
        for (s, d) in [(0u32, 1u32), (1, 2), (2, 0)] {
            Edge { src: s, dst: d }.encode(&mut buf);
        }
        buf.to_vec()
    }

    #[test]
    fn cycle_graph_has_uniform_ranks() {
        let ranks = pagerank_oracle(&tiny_graph(), 3, 0.85, 50);
        for r in &ranks {
            assert!((r - 1.0 / 3.0).abs() < 1e-9, "rank {r}");
        }
    }

    #[test]
    fn ranks_always_sum_to_one() {
        let data = gen_edges(100, 600, 3);
        let ranks = pagerank_oracle(&data, 100, 0.85, 15);
        let total: f64 = ranks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9, "rank mass {total}");
    }

    #[test]
    fn hubs_earn_more_rank() {
        let data = gen_edges(100, 5000, 7);
        let ranks = pagerank_oracle(&data, 100, 0.85, 20);
        let low: f64 = ranks[..25].iter().sum();
        assert!(low > 0.4, "hub pages should concentrate rank, got {low}");
    }

    #[test]
    fn genred_one_iteration_matches_oracle() {
        let data = gen_edges(50, 300, 9);
        let outdeg = PageRank::outdegrees(&data, 50);
        let ranks = vec![1.0 / 50.0; 50];
        let app = PageRank::new(&ranks, &outdeg, 0.85);
        let mass = reduce_serial(&app, [data.as_ref()]);
        let next = app.next_ranks(&mass);
        assert_eq!(next, pagerank_oracle(&data, 50, 0.85, 1));
    }

    #[test]
    fn merge_of_edge_partitions_matches_whole() {
        let data = gen_edges(40, 400, 11);
        let outdeg = PageRank::outdegrees(&data, 40);
        let ranks = vec![1.0 / 40.0; 40];
        let app = PageRank::new(&ranks, &outdeg, 0.85);
        let whole = reduce_serial(&app, [data.as_ref()]);
        let cut = (data.len() / 2) - (data.len() / 2) % Edge::SIZE;
        let mut a = reduce_serial(&app, [&data[..cut]]);
        let b = reduce_serial(&app, [&data[cut..]]);
        a.merge(b);
        // Summation order differs between the two schedules, so compare up
        // to floating-point reassociation error.
        for (x, y) in a.0.iter().zip(&whole.0) {
            assert!((x - y).abs() < 1e-12, "{x} vs {y}");
        }
    }

    #[test]
    fn dangling_pages_redistribute_mass() {
        // 0 -> 1, 1 has no out-edges.
        let mut buf = bytes::BytesMut::new();
        Edge { src: 0, dst: 1 }.encode(&mut buf);
        let ranks = pagerank_oracle(&buf, 2, 0.85, 30);
        assert!((ranks.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(ranks[1] > ranks[0], "page 1 receives page 0's rank");
    }

    #[test]
    fn robj_is_8_bytes_per_page() {
        let outdeg = vec![1u32; 375_000];
        let ranks = vec![1.0 / 375_000.0; 375_000];
        let app = PageRank::new(&ranks, &outdeg, 0.85);
        let robj = Reduction::make_robj(&app);
        // The paper's robj is ~3 MB: 375k pages × 8 B = 3 MB exactly.
        assert_eq!(robj.byte_size(), 3_000_000);
    }

    #[test]
    fn mapreduce_matches_genred_mass() {
        use cloudburst_mapreduce::{run_mapreduce, EngineConfig};
        let data = gen_edges(30, 200, 13);
        let outdeg = PageRank::outdegrees(&data, 30);
        let ranks = vec![1.0 / 30.0; 30];
        let app = PageRank::new(&ranks, &outdeg, 0.85);
        let mass = reduce_serial(&app, [data.as_ref()]);
        let chunks: Vec<&[u8]> = data.chunks(20 * Edge::SIZE).collect();
        let (res, _) = run_mapreduce(&app, &chunks, EngineConfig::default());
        for (page, m) in res {
            assert!((m - mass.0[page as usize]).abs() < 1e-12);
        }
    }
}
