//! Binary record ("data unit") encodings shared by the generators and the
//! applications' `decode` implementations.
//!
//! Units are fixed-size little-endian records, so chunks split on unit
//! boundaries and any byte range that is a multiple of the unit size decodes
//! without framing metadata — the property the files → chunks → units
//! organization relies on.

use bytes::{BufMut, BytesMut};

/// An identified point: `id: u32` followed by `D` little-endian `f32`
/// coordinates. Used by k-NN (ids identify the neighbors found).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IdPoint<const D: usize> {
    /// Record identifier.
    pub id: u32,
    /// Coordinates.
    pub coords: [f32; D],
}

impl<const D: usize> IdPoint<D> {
    /// Encoded size in bytes.
    pub const SIZE: usize = 4 + 4 * D;

    /// Append the record's encoding to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.id);
        for c in self.coords {
            buf.put_f32_le(c);
        }
    }

    /// Decode one record from exactly [`IdPoint::SIZE`] bytes.
    ///
    /// # Panics
    /// Panics when `bytes` is shorter than the record.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> IdPoint<D> {
        let id = u32::from_le_bytes(bytes[0..4].try_into().expect("id bytes"));
        let mut coords = [0f32; D];
        for (i, c) in coords.iter_mut().enumerate() {
            let at = 4 + 4 * i;
            *c = f32::from_le_bytes(bytes[at..at + 4].try_into().expect("coord bytes"));
        }
        IdPoint { id, coords }
    }
}

/// An anonymous point: `D` little-endian `f32` coordinates. Used by k-means.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point<const D: usize>(pub [f32; D]);

impl<const D: usize> Point<D> {
    /// Encoded size in bytes.
    pub const SIZE: usize = 4 * D;

    /// Append the record's encoding to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        for c in self.0 {
            buf.put_f32_le(c);
        }
    }

    /// Decode one record from exactly [`Point::SIZE`] bytes.
    ///
    /// # Panics
    /// Panics when `bytes` is shorter than the record.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Point<D> {
        let mut coords = [0f32; D];
        for (i, c) in coords.iter_mut().enumerate() {
            *c = f32::from_le_bytes(bytes[4 * i..4 * i + 4].try_into().expect("coord bytes"));
        }
        Point(coords)
    }
}

/// A directed graph edge: `src: u32`, `dst: u32`. Used by PageRank.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source page.
    pub src: u32,
    /// Destination page.
    pub dst: u32,
}

impl Edge {
    /// Encoded size in bytes.
    pub const SIZE: usize = 8;

    /// Append the record's encoding to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_u32_le(self.src);
        buf.put_u32_le(self.dst);
    }

    /// Decode one record from exactly [`Edge::SIZE`] bytes.
    ///
    /// # Panics
    /// Panics when `bytes` is shorter than the record.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Edge {
        Edge {
            src: u32::from_le_bytes(bytes[0..4].try_into().expect("src bytes")),
            dst: u32::from_le_bytes(bytes[4..8].try_into().expect("dst bytes")),
        }
    }
}

/// A fixed-width ASCII token: up to 16 bytes, zero-padded. Used by
/// wordcount, where variable-length words are normalized into fixed units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Word(pub [u8; 16]);

impl Word {
    /// Encoded size in bytes.
    pub const SIZE: usize = 16;

    /// Build a word from a string, truncating to 16 bytes.
    #[must_use]
    pub fn from_str_lossy(s: &str) -> Word {
        let mut w = [0u8; 16];
        let bytes = s.as_bytes();
        let n = bytes.len().min(16);
        w[..n].copy_from_slice(&bytes[..n]);
        Word(w)
    }

    /// The word as a string (padding stripped).
    #[must_use]
    pub fn as_str(&self) -> &str {
        let end = self.0.iter().position(|&b| b == 0).unwrap_or(16);
        std::str::from_utf8(&self.0[..end]).unwrap_or("<non-utf8>")
    }

    /// Append the record's encoding to `buf`.
    pub fn encode(&self, buf: &mut BytesMut) {
        buf.put_slice(&self.0);
    }

    /// Decode one record from exactly [`Word::SIZE`] bytes.
    ///
    /// # Panics
    /// Panics when `bytes` is shorter than the record.
    #[must_use]
    pub fn decode(bytes: &[u8]) -> Word {
        Word(bytes[..16].try_into().expect("word bytes"))
    }
}

/// Decode every fixed-size record in `chunk` with `decode_one`, appending to
/// `out`. `chunk.len()` must be a multiple of `size`.
pub fn decode_all<T>(chunk: &[u8], size: usize, out: &mut Vec<T>, decode_one: impl Fn(&[u8]) -> T) {
    debug_assert_eq!(chunk.len() % size, 0, "chunk not unit-aligned");
    out.reserve(chunk.len() / size);
    for rec in chunk.chunks_exact(size) {
        out.push(decode_one(rec));
    }
}

/// Squared Euclidean distance between two same-dimension slices.
#[must_use]
pub fn dist2(a: &[f32], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = f64::from(x) - y;
            d * d
        })
        .sum()
}

/// Squared Euclidean distance between two `f32` slices.
#[must_use]
pub fn dist2_f32(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    a.iter()
        .zip(b)
        .map(|(&x, &y)| {
            let d = x - y;
            d * d
        })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idpoint_roundtrip() {
        let p = IdPoint::<3> { id: 42, coords: [1.5, -2.0, 0.25] };
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), IdPoint::<3>::SIZE);
        assert_eq!(IdPoint::<3>::decode(&buf), p);
    }

    #[test]
    fn point_roundtrip() {
        let p = Point::<4>([0.0, 1.0, -1.0, 3.5]);
        let mut buf = BytesMut::new();
        p.encode(&mut buf);
        assert_eq!(buf.len(), 16);
        assert_eq!(Point::<4>::decode(&buf), p);
    }

    #[test]
    fn edge_roundtrip() {
        let e = Edge { src: 7, dst: 99 };
        let mut buf = BytesMut::new();
        e.encode(&mut buf);
        assert_eq!(buf.len(), 8);
        assert_eq!(Edge::decode(&buf), e);
    }

    #[test]
    fn word_roundtrip_and_truncation() {
        let w = Word::from_str_lossy("cloud");
        assert_eq!(w.as_str(), "cloud");
        let mut buf = BytesMut::new();
        w.encode(&mut buf);
        assert_eq!(Word::decode(&buf), w);
        let long = Word::from_str_lossy("a-very-long-word-indeed");
        assert_eq!(long.as_str().len(), 16);
    }

    #[test]
    fn decode_all_walks_every_record() {
        let mut buf = BytesMut::new();
        for i in 0..5u32 {
            Edge { src: i, dst: i * 2 }.encode(&mut buf);
        }
        let mut out = Vec::new();
        decode_all(&buf, Edge::SIZE, &mut out, Edge::decode);
        assert_eq!(out.len(), 5);
        assert_eq!(out[3], Edge { src: 3, dst: 6 });
    }

    #[test]
    fn distance_functions_agree() {
        let a = [1.0f32, 2.0];
        let b64 = [4.0f64, 6.0];
        let b32 = [4.0f32, 6.0];
        assert_eq!(dist2(&a, &b64), 25.0);
        assert_eq!(dist2_f32(&a, &b32), 25.0);
    }
}
