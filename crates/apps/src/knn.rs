//! k-Nearest Neighbors search — "a classic database/data mining algorithm.
//! It has low computation, leading to medium to high I/O demands and the
//! reduction object is small" (paper §IV-A).
//!
//! Given a query point, find the `k` dataset points nearest to it. The
//! reduction object is a bounded top-k set of `(distance, id)` pairs —
//! a few hundred bytes no matter how large the dataset, which is why the
//! paper sees tiny global-reduction times for knn.

use crate::units::{decode_all, dist2_f32, IdPoint};
use cloudburst_core::combiners::TopK;
use cloudburst_core::{Merge, Reduction, ReductionObject};
use cloudburst_mapreduce::MapReduceApp;

/// A neighbor candidate ordered by distance. The distance is stored as the
/// bit pattern of a non-negative `f32`, which orders identically to the
/// float itself — giving a total order without `f32: Ord` headaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct Neighbor {
    dist_bits: u32,
    /// The dataset point's id.
    pub id: u32,
}

impl Neighbor {
    /// A candidate at squared distance `dist2` (must be non-negative).
    #[must_use]
    pub fn new(dist2: f32, id: u32) -> Neighbor {
        debug_assert!(dist2 >= 0.0);
        Neighbor { dist_bits: dist2.to_bits(), id }
    }

    /// The squared distance.
    #[must_use]
    pub fn dist2(&self) -> f32 {
        f32::from_bits(self.dist_bits)
    }
}

/// The k-NN reduction object: the `k` nearest candidates seen so far.
#[derive(Debug, Clone, PartialEq)]
pub struct KnnObj(pub TopK<Neighbor>);

impl Merge for KnnObj {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
    }
}

impl ReductionObject for KnnObj {
    fn byte_size(&self) -> usize {
        self.0.byte_size()
    }
}

/// The k-NN application over `D`-dimensional identified points.
#[derive(Debug, Clone)]
pub struct Knn<const D: usize> {
    /// The query point.
    pub query: [f32; D],
    /// How many neighbors to find.
    pub k: usize,
}

impl<const D: usize> Knn<D> {
    /// A k-NN search for the `k` nearest points to `query`.
    #[must_use]
    pub fn new(query: [f32; D], k: usize) -> Knn<D> {
        Knn { query, k }
    }
}

impl<const D: usize> Reduction for Knn<D> {
    type Item = IdPoint<D>;
    type RObj = KnnObj;

    fn make_robj(&self) -> KnnObj {
        KnnObj(TopK::new(self.k))
    }

    fn unit_size(&self) -> usize {
        IdPoint::<D>::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<IdPoint<D>>) {
        decode_all(chunk, IdPoint::<D>::SIZE, out, IdPoint::<D>::decode);
    }

    fn local_reduce(&self, robj: &mut KnnObj, item: &IdPoint<D>) {
        let d = dist2_f32(&item.coords, &self.query);
        robj.0.observe(Neighbor::new(d, item.id));
    }
}

/// The MapReduce formulation of the same search: every point maps to a
/// candidate under a single key; the combiner keeps per-buffer top-k sets;
/// the reducer selects the global top-k. Used by the §III-A ablation.
impl<const D: usize> MapReduceApp for Knn<D> {
    type Item = IdPoint<D>;
    type Key = ();
    type Value = Neighbor;

    fn unit_size(&self) -> usize {
        IdPoint::<D>::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<IdPoint<D>>) {
        decode_all(chunk, IdPoint::<D>::SIZE, out, IdPoint::<D>::decode);
    }

    fn map(&self, item: &IdPoint<D>, emit: &mut dyn FnMut((), Neighbor)) {
        let d = dist2_f32(&item.coords, &self.query);
        emit((), Neighbor::new(d, item.id));
    }

    fn reduce(&self, _key: &(), mut values: Vec<Neighbor>) -> Neighbor {
        // MapReduce's reduce returns one value per key; for top-k we return
        // the k-th nearest (callers wanting the full set use `top_k_of`).
        values.sort_unstable();
        values[values.len().min(self.k) - 1]
    }

    fn combine(&self, _key: &(), mut values: Vec<Neighbor>) -> Vec<Neighbor> {
        values.sort_unstable();
        values.truncate(self.k);
        values
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

/// Serial oracle: the exact `k` nearest neighbors by full sort.
#[must_use]
pub fn knn_oracle<const D: usize>(data: &[u8], query: &[f32; D], k: usize) -> Vec<Neighbor> {
    let mut pts = Vec::new();
    decode_all(data, IdPoint::<D>::SIZE, &mut pts, IdPoint::<D>::decode);
    let mut all: Vec<Neighbor> =
        pts.iter().map(|p| Neighbor::new(dist2_f32(&p.coords, query), p.id)).collect();
    all.sort_unstable();
    all.truncate(k);
    all
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_id_points;
    use cloudburst_core::reduce_serial;

    #[test]
    fn neighbor_ordering_matches_distance() {
        let a = Neighbor::new(0.5, 1);
        let b = Neighbor::new(1.5, 2);
        assert!(a < b);
        assert_eq!(a.dist2(), 0.5);
    }

    #[test]
    fn genred_matches_oracle() {
        let data = gen_id_points::<4>(500, 21);
        let app = Knn::<4>::new([0.5; 4], 10);
        let robj = reduce_serial(&app, [data.as_ref()]);
        let expect = knn_oracle(&data, &[0.5; 4], 10);
        assert_eq!(robj.0.items(), expect.as_slice());
    }

    #[test]
    fn split_and_merge_matches_oracle() {
        let data = gen_id_points::<4>(512, 33);
        let app = Knn::<4>::new([0.2, 0.8, 0.4, 0.6], 7);
        let half = data.len() / 2;
        // Split on a unit boundary.
        let cut = half - half % IdPoint::<4>::SIZE;
        let mut a = reduce_serial(&app, [&data[..cut]]);
        let b = reduce_serial(&app, [&data[cut..]]);
        a.merge(b);
        assert_eq!(a.0.items(), knn_oracle(&data, &app.query, 7).as_slice());
    }

    #[test]
    fn robj_stays_small() {
        let data = gen_id_points::<4>(10_000, 1);
        let app = Knn::<4>::new([0.5; 4], 10);
        let robj = reduce_serial(&app, [data.as_ref()]);
        assert!(robj.byte_size() < 256, "knn robj must stay tiny");
    }

    #[test]
    fn mapreduce_combiner_matches_oracle_top_k() {
        use cloudburst_mapreduce::{run_mapreduce, EngineConfig};
        let data = gen_id_points::<4>(400, 5);
        let app = Knn::<4>::new([0.1; 4], 5);
        let chunks: Vec<&[u8]> = data.chunks(50 * IdPoint::<4>::SIZE).collect();
        let (res, _) = run_mapreduce(&app, &chunks, EngineConfig::default());
        assert_eq!(res.len(), 1);
        let kth = res[0].1;
        let oracle = knn_oracle(&data, &app.query, 5);
        assert_eq!(kth, *oracle.last().unwrap(), "reduce returns the k-th nearest");
    }
}
