//! Wordcount — the quickstart application: count occurrences of fixed-width
//! tokens. Not part of the paper's evaluated trio, but the canonical first
//! MapReduce program, used by the quickstart example and the API-comparison
//! ablation.

use crate::units::{decode_all, Word};
use cloudburst_core::combiners::{Count, MergeMap};
use cloudburst_core::{Merge, Reduction, ReductionObject};
use cloudburst_mapreduce::MapReduceApp;
use std::collections::HashMap;

/// The wordcount reduction object: word → occurrence count.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WordCounts(pub MergeMap<Word, Count>);

impl WordCounts {
    /// The counts as a plain map of strings (for display).
    #[must_use]
    pub fn as_string_counts(&self) -> HashMap<String, u64> {
        self.0 .0.iter().map(|(w, c)| (w.as_str().to_owned(), c.0)).collect()
    }

    /// Total words observed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.0 .0.values().map(|c| c.0).sum()
    }
}

impl Merge for WordCounts {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
    }
}

impl ReductionObject for WordCounts {
    fn byte_size(&self) -> usize {
        self.0.byte_size()
    }
}

/// The wordcount application.
#[derive(Debug, Clone, Copy, Default)]
pub struct WordCount;

impl Reduction for WordCount {
    type Item = Word;
    type RObj = WordCounts;

    fn make_robj(&self) -> WordCounts {
        WordCounts::default()
    }

    fn unit_size(&self) -> usize {
        Word::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<Word>) {
        decode_all(chunk, Word::SIZE, out, Word::decode);
    }

    fn local_reduce(&self, robj: &mut WordCounts, item: &Word) {
        robj.0.observe(*item, Count(1));
    }
}

/// The classic MapReduce wordcount.
impl MapReduceApp for WordCount {
    type Item = Word;
    type Key = Word;
    type Value = u64;

    fn unit_size(&self) -> usize {
        Word::SIZE
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<Word>) {
        decode_all(chunk, Word::SIZE, out, Word::decode);
    }

    fn map(&self, item: &Word, emit: &mut dyn FnMut(Word, u64)) {
        emit(*item, 1);
    }

    fn reduce(&self, _key: &Word, values: Vec<u64>) -> u64 {
        values.into_iter().sum()
    }

    fn combine(&self, _key: &Word, values: Vec<u64>) -> Vec<u64> {
        vec![values.into_iter().sum()]
    }

    fn has_combiner(&self) -> bool {
        true
    }
}

/// Serial oracle.
#[must_use]
pub fn wordcount_oracle(data: &[u8]) -> HashMap<String, u64> {
    let mut words = Vec::new();
    decode_all(data, Word::SIZE, &mut words, Word::decode);
    let mut counts = HashMap::new();
    for w in &words {
        *counts.entry(w.as_str().to_owned()).or_insert(0) += 1;
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::gen_words;
    use cloudburst_core::reduce_serial;

    #[test]
    fn genred_matches_oracle() {
        let data = gen_words(2000, 50, 3);
        let robj = reduce_serial(&WordCount, [data.as_ref()]);
        assert_eq!(robj.as_string_counts(), wordcount_oracle(&data));
        assert_eq!(robj.total(), 2000);
    }

    #[test]
    fn merge_of_partitions_matches_whole() {
        let data = gen_words(1024, 30, 5);
        let cut = (data.len() / 2) - (data.len() / 2) % Word::SIZE;
        let mut a = reduce_serial(&WordCount, [&data[..cut]]);
        let b = reduce_serial(&WordCount, [&data[cut..]]);
        a.merge(b);
        assert_eq!(a.as_string_counts(), wordcount_oracle(&data));
    }

    #[test]
    fn mapreduce_matches_oracle() {
        use cloudburst_mapreduce::{run_mapreduce, EngineConfig};
        let data = gen_words(500, 20, 7);
        let chunks: Vec<&[u8]> = data.chunks(100 * Word::SIZE).collect();
        let (res, metrics) = run_mapreduce(&WordCount, &chunks, EngineConfig::default());
        let oracle = wordcount_oracle(&data);
        assert_eq!(res.len(), oracle.len());
        for (w, c) in res {
            assert_eq!(oracle[w.as_str()], c);
        }
        assert_eq!(metrics.pairs_emitted, 500);
    }
}
