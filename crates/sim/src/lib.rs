//! # cloudburst-sim
//!
//! The paper-scale simulation harness: replays the framework's real
//! scheduling policies (`JobPool`, `MasterPool`) against a calibrated cost
//! model of the paper's testbed (12 GB datasets, a campus cluster with a
//! dedicated storage node, EC2 + S3, a 2011-era WAN), regenerating every
//! figure and table of the evaluation (§IV) in seconds of CPU time.
//!
//! * [`model`] — per-application resource signatures (knn / kmeans /
//!   pagerank);
//! * [`params`] — the testbed's storage/WAN/compute parameters;
//! * [`scenario`] — the discrete-event simulation itself;
//! * [`figures`] — one function per figure/table of the paper;
//! * [`cost`] — the dollar-cost model and deadline-provisioning planner
//!   (the authors' follow-up extension).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod cost;
pub mod figures;
pub mod model;
pub mod multi;
pub mod params;
pub mod scenario;

pub use cost::{
    burst_frontier, cost_of, cost_of_usage, provision_for_deadline, BurstOption, CostReport,
    PricingModel,
};
pub use model::AppModel;
pub use multi::{
    simulate_multi, simulate_multi_instrumented, simulate_multi_traced, Activity, MultiEnv,
    SiteSpec,
};
pub use params::{ResourceSpec, SimParams};
pub use scenario::simulate;
