//! Testbed parameters for the paper-scale simulation (paper §IV-A).
//!
//! Calibration sources:
//! * local cluster — 8-core Intel Xeon nodes on Infiniband with one
//!   dedicated SATA-SCSI storage node: one reading node streams ~88 MB/s,
//!   and the storage node saturates around 440 MB/s. Retrieval is
//!   per-reader limited below ~5 concurrent nodes, which is why the
//!   paper's hybrid runs (half the readers per site) see near-baseline
//!   retrieval times;
//! * cloud — EC2 m1.large ("high I/O"), datasets in S3; one instance
//!   sustains ~48 MB/s with multi-threaded ranged GETs, and the service
//!   scales to several hundred MB/s across instances;
//! * cluster ↔ AWS — a 2011-era commodity WAN: ~40 ms one way; ~50 MB/s
//!   for parallel bulk flows, but a single control/robj stream sustains
//!   only a few MB/s.

use serde::{Deserialize, Serialize};

/// A contended store/link modelled as `servers` parallel channels of
/// `per_channel_bw` bytes/s each, with `latency` seconds charged per request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ResourceSpec {
    /// Parallel service channels.
    pub servers: usize,
    /// Bandwidth of one channel, bytes/s.
    pub per_channel_bw: f64,
    /// Per-request latency, seconds.
    pub latency: f64,
}

impl ResourceSpec {
    /// Aggregate bandwidth across channels.
    #[must_use]
    pub fn aggregate_bw(&self) -> f64 {
        self.per_channel_bw * self.servers as f64
    }

    /// Service time of one `bytes`-sized request on one channel.
    #[must_use]
    pub fn service_time(&self, bytes: u64) -> f64 {
        self.latency + bytes as f64 / self.per_channel_bw
    }
}

/// All tunables of the simulated testbed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimParams {
    /// Total dataset size in bytes (paper: 12 GB).
    pub dataset_bytes: u64,
    /// Number of dataset files (paper: 32).
    pub n_files: u32,
    /// Number of chunks == jobs (paper: 96).
    pub n_chunks: u32,
    /// The cluster's storage node as seen by one reading worker.
    pub cluster_disk: ResourceSpec,
    /// S3 as seen by one EC2 worker (multi-threaded GETs folded into the
    /// per-channel rate; `servers` bounds how many workers stream at once).
    pub s3: ResourceSpec,
    /// The bulk WAN data path for stolen chunks (shared FIFO pipe).
    pub wan_bulk: ResourceSpec,
    /// One-way latency of a small control RPC across the WAN, seconds.
    pub control_latency: f64,
    /// Single-stream WAN bandwidth for reduction-object exchange, bytes/s.
    pub robj_stream_bw: f64,
    /// Memory bandwidth for local robj merging, bytes/s.
    pub merge_bw: f64,
    /// Cores per local slave node (the paper's compute nodes are 8-core
    /// Xeons; one slave processes one chunk at a time using all its cores).
    pub local_cores_per_slave: u32,
    /// Elastic compute units per cloud slave instance (m1.large: two
    /// virtual cores x two ECUs).
    pub cloud_cores_per_slave: u32,
    /// Intra-cluster performance variability amplitude.
    pub local_jitter: f64,
    /// EC2 performance-variability amplitude (multiplicative, deterministic).
    pub cloud_jitter: f64,
    /// Jitter seed.
    pub seed: u64,
}

impl SimParams {
    /// The paper's testbed.
    #[must_use]
    pub fn paper() -> SimParams {
        SimParams {
            dataset_bytes: 12 * (1 << 30),
            n_files: 32,
            n_chunks: 96,
            cluster_disk: ResourceSpec { servers: 5, per_channel_bw: 88e6, latency: 2e-3 },
            s3: ResourceSpec { servers: 12, per_channel_bw: 48e6, latency: 60e-3 },
            wan_bulk: ResourceSpec { servers: 4, per_channel_bw: 30e6, latency: 40e-3 },
            control_latency: 40e-3,
            robj_stream_bw: 4e6,
            merge_bw: 2e9,
            local_cores_per_slave: 8,
            cloud_cores_per_slave: 4,
            local_jitter: 0.02,
            cloud_jitter: 0.06,
            seed: 2011,
        }
    }

    /// A scaled-down copy (`factor` < 1 shrinks the dataset) for fast tests;
    /// job/file counts are preserved so the *schedule* is unchanged.
    #[must_use]
    pub fn scaled(&self, factor: f64) -> SimParams {
        let mut p = self.clone();
        p.dataset_bytes = ((self.dataset_bytes as f64) * factor) as u64;
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shape() {
        let p = SimParams::paper();
        assert_eq!(p.dataset_bytes, 12 * (1 << 30));
        assert_eq!(p.n_files, 32);
        assert_eq!(p.n_chunks, 96);
        // Cluster disk ≈ 440 MB/s aggregate; one slave node streams ~88 MB/s.
        assert!(p.cluster_disk.aggregate_bw() > 300e6);
        assert!(p.cluster_disk.per_channel_bw < 100e6);
        // S3 aggregate far exceeds one host; WAN is the slowest data path.
        assert!(p.s3.aggregate_bw() > p.cluster_disk.aggregate_bw());
        assert!(p.wan_bulk.aggregate_bw() < p.cluster_disk.aggregate_bw());
        // A single robj stream is much slower than the bulk path.
        assert!(p.robj_stream_bw < p.wan_bulk.per_channel_bw);
    }

    #[test]
    fn resource_arithmetic() {
        let r = ResourceSpec { servers: 4, per_channel_bw: 10.0, latency: 0.5 };
        assert_eq!(r.aggregate_bw(), 40.0);
        assert_eq!(r.service_time(20), 0.5 + 2.0);
    }

    #[test]
    fn scaling_preserves_schedule_shape() {
        let p = SimParams::paper().scaled(0.01);
        assert_eq!(p.n_chunks, 96);
        assert_eq!(p.n_files, 32);
        assert!(p.dataset_bytes < SimParams::paper().dataset_bytes);
    }
}
