//! The multi-site generalization of the cloud-bursting scenario.
//!
//! The paper notes the framework "will also be applicable if the data
//! and/or processing power is spread across two different cloud providers"
//! — the scheduler is already site-generic; only the two-site scenario
//! harness wasn't. This module simulates an arbitrary number of sites
//! (e.g. cluster + AWS + a second provider), each with its own compute
//! profile and storage, joined by a shared inter-site bulk pipe.
//!
//! The two-site [`crate::scenario::simulate`] is a thin wrapper over
//! [`simulate_multi`], so the calibrated paper numbers and the multi-site
//! results come from the same engine.

use crate::model::AppModel;
use crate::params::{ResourceSpec, SimParams};
use cloudburst_core::{
    secs_to_ns, BatchPolicy, Breakdown, ChunkId, DataIndex, Event, EventKind, FaultPlan, JobPool,
    LayoutParams, LeaseConfig, LocalJob, MasterPool, RunReport, Seconds, SiteId, SiteStats, Take,
    Telemetry,
};
use cloudburst_des::{EventQueue, Servers, SimTime, Timeline};
use cloudburst_netsim::Jitter;
use std::collections::BTreeMap;

/// What a simulated slave is doing at a point in time (timeline kinds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activity {
    /// Head/master control RPCs.
    Control,
    /// Chunk retrieval (including queueing and WAN transfer).
    Retrieval,
    /// Local reduction.
    Compute,
}

/// One site's compute and storage profile.
#[derive(Debug, Clone, PartialEq)]
pub struct SiteSpec {
    /// Site identity.
    pub site: SiteId,
    /// Worker cores at the site.
    pub cores: u32,
    /// Cores per slave node/instance (one slave processes one chunk at a
    /// time with all its cores).
    pub cores_per_slave: u32,
    /// Multiplier on per-unit compute time relative to a reference core.
    pub compute_factor: f64,
    /// Performance-variability amplitude (deterministic).
    pub jitter: f64,
    /// The site's storage as seen by one of its slaves.
    pub store: ResourceSpec,
    /// Fraction of the dataset's files hosted here (fractions should sum to
    /// roughly 1 across sites).
    pub data_fraction: f64,
}

/// A deployment across any number of sites.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiEnv {
    /// Display label.
    pub name: String,
    /// Per-site profiles (order fixes file placement: earlier sites get
    /// earlier files).
    pub sites: Vec<SiteSpec>,
    /// The shared inter-site bulk pipe for stolen chunks.
    pub wan: ResourceSpec,
    /// One-way control latency between the head and a remote master.
    pub control_latency: f64,
    /// Single-stream bandwidth for reduction-object exchange.
    pub robj_stream_bw: f64,
    /// Memory bandwidth for robj merging.
    pub merge_bw: f64,
    /// Jitter seed.
    pub seed: u64,
    /// Dataset size in bytes.
    pub dataset_bytes: u64,
    /// Number of dataset files.
    pub n_files: u32,
    /// Number of chunks (jobs).
    pub n_chunks: u32,
    /// Whether the head uses the rate-aware steal condition (the paper's
    /// "considers the rate of processing"); disable to measure the naive
    /// locality-greedy policy (the stealing ablation).
    pub rate_aware_stealing: bool,
    /// Deterministic fault injection: site outages, worker crashes, and
    /// straggler slowdowns are replayed in virtual time, so Table-II-style
    /// overheads can be re-derived under failure. `None` (or an empty plan)
    /// simulates a clean run.
    pub chaos: Option<FaultPlan>,
    /// Hand idle sites speculative duplicates of tail stragglers (first
    /// completion wins). Chaos plans with slow workers enable this
    /// implicitly; set it explicitly to ablate speculation against coded
    /// redundancy under site-wide slowdowns.
    pub speculation: bool,
    /// Coded-redundancy replication factor. With `r ≥ 2` every chunk is
    /// modelled as replicated at the reader — retrievals are served by the
    /// reader's own store with no WAN leg — and the pool proactively grants
    /// up to `r` copies of straggling chunks, first finished copy winning.
    /// 1 (the classic single-copy placement) changes nothing.
    pub redundancy: u32,
}

impl MultiEnv {
    /// The paper's two-site deployment, from an [`cloudburst_core::EnvConfig`]
    /// and the testbed parameters.
    #[must_use]
    pub fn two_site(
        env: &cloudburst_core::EnvConfig,
        app: &AppModel,
        params: &SimParams,
    ) -> MultiEnv {
        let mut sites = Vec::new();
        if env.local_cores > 0 || env.local_data_fraction > 0.0 {
            sites.push(SiteSpec {
                site: SiteId::LOCAL,
                cores: env.local_cores,
                cores_per_slave: params.local_cores_per_slave,
                compute_factor: 1.0,
                jitter: params.local_jitter,
                store: params.cluster_disk,
                data_fraction: env.local_data_fraction,
            });
        }
        sites.push(SiteSpec {
            site: SiteId::CLOUD,
            cores: env.cloud_cores,
            cores_per_slave: params.cloud_cores_per_slave,
            compute_factor: app.cloud_compute_factor,
            jitter: params.cloud_jitter,
            store: params.s3,
            data_fraction: 1.0 - env.local_data_fraction,
        });
        MultiEnv {
            name: env.name.clone(),
            sites,
            wan: params.wan_bulk,
            control_latency: params.control_latency,
            robj_stream_bw: params.robj_stream_bw,
            merge_bw: params.merge_bw,
            seed: params.seed,
            dataset_bytes: params.dataset_bytes,
            n_files: params.n_files,
            n_chunks: params.n_chunks,
            rate_aware_stealing: true,
            chaos: None,
            speculation: false,
            redundancy: 1,
        }
    }

    /// Files hosted per site, by cumulative rounding of the fractions.
    fn file_placement(&self) -> Vec<SiteId> {
        let n = self.n_files;
        let total: f64 = self.sites.iter().map(|s| s.data_fraction).sum();
        let mut out = Vec::with_capacity(n as usize);
        let mut cut_prev = 0u32;
        let mut cum = 0.0;
        for (i, s) in self.sites.iter().enumerate() {
            cum += s.data_fraction / total.max(f64::MIN_POSITIVE);
            let cut = if i + 1 == self.sites.len() {
                n
            } else {
                ((cum * f64::from(n)).round() as u32).min(n)
            };
            for _ in cut_prev..cut {
                out.push(s.site);
            }
            cut_prev = cut;
        }
        debug_assert_eq!(out.len(), n as usize);
        out
    }
}

/// Per-site derived slave shape.
struct SlaveShape {
    site: SiteId,
    n_slaves: u32,
    speed: f64,
}

/// Simulate one run of `app` across `env`'s sites. Deterministic.
///
/// # Panics
/// Panics when no site has cores, or the layout is degenerate.
#[must_use]
pub fn simulate_multi(app: &AppModel, env: &MultiEnv) -> RunReport {
    run_multi(app, env, None, &Telemetry::off())
}

/// Like [`simulate_multi`], additionally recording every slave's activity
/// timeline (control / retrieval / compute spans) for utilization analysis
/// and Gantt rendering.
#[must_use]
pub fn simulate_multi_traced(app: &AppModel, env: &MultiEnv) -> (RunReport, Timeline<Activity>) {
    let mut timeline = Timeline::new();
    let report = run_multi(app, env, Some(&mut timeline), &Telemetry::off());
    (report, timeline)
}

/// Like [`simulate_multi`], additionally emitting the full telemetry event
/// stream to `telemetry` — the same taxonomy the threaded runtimes emit,
/// but clocked in *virtual* time (event timestamps are simulated seconds
/// converted to ns). A simulated chaos run can thus be exported to the same
/// JSONL / Chrome-trace artifacts as a real one. Emission never perturbs
/// the simulation: the returned report is identical to [`simulate_multi`]'s.
#[must_use]
pub fn simulate_multi_instrumented(
    app: &AppModel,
    env: &MultiEnv,
    telemetry: &Telemetry,
) -> RunReport {
    run_multi(app, env, None, telemetry)
}

fn run_multi(
    app: &AppModel,
    env: &MultiEnv,
    mut trace: Option<&mut Timeline<Activity>>,
    telemetry: &Telemetry,
) -> RunReport {
    let placement = env.file_placement();
    let total_units = app.units_in(env.dataset_bytes).max(u64::from(env.n_chunks));
    let upc = total_units.div_ceil(u64::from(env.n_chunks));
    let index = DataIndex::build(
        total_units,
        LayoutParams { unit_size: app.unit_size, units_per_chunk: upc, n_files: env.n_files },
        |f| placement[f.0 as usize],
    )
    .expect("valid multi-site layout");

    let batch_policy = BatchPolicy::Adaptive { divisor: 24, min: 1, max: 2 };
    let mut pool = JobPool::from_index(&index, batch_policy);
    // The pool's clock is virtual (request_for_at / complete_at), so its
    // grant / completion / reap events land in simulated time.
    pool.set_sink(telemetry.clone());
    let chunk_bytes = index.chunks[0].len;
    let chunk_units = index.chunks[0].n_units;

    // Fault injection happens in virtual time: the plan's clock is the
    // simulation clock, so replays are exactly reproducible.
    let chaos = env.chaos.as_ref().filter(|p| !p.is_empty());
    if let Some(plan) = chaos {
        if !plan.worker_crash.is_empty() {
            // A crashed worker leaks the job it held; only lease reaping
            // can recover it.
            pool.set_lease(LeaseConfig::default());
        }
        if !plan.slow_workers.is_empty() {
            pool.set_speculation(true);
        }
    }
    if env.speculation {
        pool.set_speculation(true);
    }
    pool.set_redundancy(env.redundancy);

    let specs: BTreeMap<SiteId, &SiteSpec> = env.sites.iter().map(|s| (s.site, s)).collect();
    let active: Vec<SlaveShape> = env
        .sites
        .iter()
        .filter(|s| s.cores > 0)
        .map(|s| {
            let n_slaves =
                ((f64::from(s.cores) / f64::from(s.cores_per_slave.max(1))).round() as u32).max(1);
            SlaveShape { site: s.site, n_slaves, speed: f64::from(s.cores) / f64::from(n_slaves) }
        })
        .collect();
    assert!(!active.is_empty(), "environment has no workers");
    let head_site = active[0].site;

    // Rate-aware stealing: each active site's end-to-end cost to fetch and
    // process one remote chunk (worst remote store + WAN + compute).
    for shape in active.iter().filter(|_| env.rate_aware_stealing) {
        let spec = specs[&shape.site];
        let worst_remote_store = env
            .sites
            .iter()
            .filter(|s| s.site != shape.site)
            .map(|s| s.store.service_time(chunk_bytes))
            .fold(0.0_f64, f64::max);
        let cost = env.wan.service_time(chunk_bytes)
            + worst_remote_store
            + app.compute_time(chunk_units, spec.compute_factor) / shape.speed;
        pool.set_steal_cost(shape.site, cost);
    }

    let mut masters: BTreeMap<SiteId, MasterPool> =
        active.iter().map(|s| (s.site, MasterPool::new(s.site, 0))).collect();
    let mut stores: BTreeMap<SiteId, Servers> =
        env.sites.iter().map(|s| (s.site, Servers::new(s.store.servers))).collect();
    let mut wan = Servers::new(env.wan.servers);

    struct Worker {
        site: SiteId,
        /// Slave index within the site (the telemetry worker tag).
        lane: u32,
        speed: f64,
        factor: f64,
        processing: Seconds,
        retrieval: Seconds,
        control: Seconds,
        remote_bytes: u64,
        /// When the worker observed the drained signal (includes the final
        /// cross-site polling wait).
        finish: Seconds,
        /// When the worker finished its last job — the paper's notion of a
        /// worker going idle.
        last_done: Seconds,
        jitter: Jitter,
        done: bool,
        /// Injected per-job slowdown (straggler model).
        delay: Seconds,
        /// Site-wide multiplicative slowdown on compute (≥ 1.0).
        slow: f64,
        /// Crash after taking this many jobs (the job in hand leaks).
        crash_after: Option<u64>,
        taken: u64,
    }
    let mut workers: Vec<Worker> = Vec::new();
    for shape in &active {
        let spec = specs[&shape.site];
        for c in 0..shape.n_slaves {
            workers.push(Worker {
                site: shape.site,
                lane: c,
                speed: shape.speed,
                factor: spec.compute_factor,
                processing: 0.0,
                retrieval: 0.0,
                control: 0.0,
                remote_bytes: 0,
                finish: 0.0,
                last_done: 0.0,
                jitter: Jitter::new(
                    env.seed ^ (u64::from(shape.site.0) << 32) ^ u64::from(c),
                    spec.jitter,
                ),
                done: false,
                delay: chaos.map_or(0.0, |p| p.worker_delay(shape.site, c)),
                slow: chaos.map_or(1.0, |p| p.site_slowdown(shape.site)),
                crash_after: chaos.and_then(|p| p.crash_after(shape.site, c)),
                taken: 0,
            });
        }
    }

    struct Ready {
        worker: usize,
        completes: Option<ChunkId>,
    }
    enum Pull {
        Job(LocalJob),
        PollLater,
        Finished,
    }

    let mut queue: EventQueue<Ready> = EventQueue::new();
    for w in 0..workers.len() {
        queue.schedule(SimTime::ZERO, Ready { worker: w, completes: None });
    }

    while let Some((at, ev)) = queue.pop() {
        let mut now = at.seconds();
        if let Some(plan) = chaos {
            if let Some(o) = plan.site_outage {
                if now >= o.at {
                    pool.evacuate(o.site); // idempotent after the first call
                }
            }
            for _ in pool.reap_expired(now) {}
        }
        let w = &mut workers[ev.worker];
        let site = w.site;
        if chaos.is_some_and(|p| p.site_dead(site, now)) {
            // The site just lost power: the in-flight completion dies with
            // the site's robj; evacuation above re-homes its jobs.
            w.finish = now;
            w.done = true;
            telemetry.emit(
                Event::at(secs_to_ns(now), EventKind::SlaveFinished).site(site).worker(w.lane),
            );
            continue;
        }
        if let Some(job) = ev.completes {
            pool.complete_at(job, site, now);
        }

        let master = masters.get_mut(&site).expect("active site has a master");
        let pull = loop {
            match master.take() {
                Take::Job(j) => break Pull::Job(j),
                Take::Drained => break Pull::Finished,
                Take::NeedRefill => {
                    let rpc = if site == head_site { 2e-4 } else { 2.0 * env.control_latency };
                    if let Some(t) = trace.as_deref_mut() {
                        t.record(
                            ev.worker,
                            Activity::Control,
                            SimTime::at(now),
                            SimTime::at(now + rpc),
                        );
                    }
                    now += rpc;
                    w.control += rpc;
                    let batch = pool.request_for_at(site, now);
                    let empty_nonterminal = batch.is_empty() && !batch.terminal;
                    master.refill(batch);
                    if empty_nonterminal {
                        break Pull::PollLater;
                    }
                }
            }
        };
        let job = match pull {
            Pull::Job(j) => j,
            Pull::PollLater => {
                queue
                    .schedule(SimTime::at(now + 0.2), Ready { worker: ev.worker, completes: None });
                continue;
            }
            Pull::Finished => {
                w.finish = now;
                w.done = true;
                telemetry.emit(
                    Event::at(secs_to_ns(now), EventKind::SlaveFinished).site(site).worker(w.lane),
                );
                continue;
            }
        };
        w.taken += 1;
        if w.crash_after.is_some_and(|k| w.taken > k) {
            // Simulated worker crash: the job it just pulled leaks — the
            // lease reaper recovers it once the deadline passes.
            w.finish = now;
            w.done = true;
            telemetry.emit(
                Event::at(secs_to_ns(now), EventKind::SlaveFinished).site(site).worker(w.lane),
            );
            continue;
        }
        telemetry.emit(
            Event::at(secs_to_ns(now), EventKind::JobStarted { stolen: job.stolen })
                .site(site)
                .worker(w.lane)
                .chunk(job.chunk.id)
                .span_id(job.span),
        );

        // Under coded redundancy the chunk's bytes are replicated at the
        // reader: the read is served on-site and never touches the WAN.
        let data_site = if env.redundancy > 1 { site } else { job.chunk.site };
        let spec = specs[&data_site];
        let store = stores.get_mut(&data_site).expect("store for data site");
        let grant = store.request(SimTime::at(now), spec.store.service_time(job.chunk.len));
        let mut retr_end = grant.finish.seconds();
        if data_site != site {
            let wg =
                wan.request(SimTime::at(retr_end.max(now)), env.wan.service_time(job.chunk.len));
            retr_end = wg.finish.seconds();
            w.remote_bytes += job.chunk.len;
        }
        w.retrieval += retr_end - now;

        let compute = w.jitter.stretch(app.compute_time(job.chunk.n_units, w.factor)) / w.speed
            * w.slow
            + w.delay;
        w.processing += compute;
        w.last_done = retr_end + compute;
        if telemetry.is_enabled() {
            let tag = |e: Event| e.site(site).worker(w.lane).chunk(job.chunk.id).span_id(job.span);
            telemetry.emit(tag(Event::span(
                secs_to_ns(now),
                secs_to_ns(retr_end - now),
                EventKind::ChunkFetched {
                    bytes: job.chunk.len,
                    remote: data_site != site,
                    retries: 0,
                },
            )));
            telemetry.emit(tag(Event::span(
                secs_to_ns(retr_end),
                secs_to_ns(compute),
                EventKind::JobProcessed,
            )));
        }
        if let Some(t) = trace.as_deref_mut() {
            t.record(ev.worker, Activity::Retrieval, SimTime::at(now), SimTime::at(retr_end));
            t.record(
                ev.worker,
                Activity::Compute,
                SimTime::at(retr_end),
                SimTime::at(retr_end + compute),
            );
        }
        queue.schedule(
            SimTime::at(retr_end + compute),
            Ready { worker: ev.worker, completes: Some(job.chunk.id) },
        );
    }

    debug_assert!(pool.all_done(), "simulation ended with unprocessed jobs");

    // A site is "finished" when its last *completion* lands (plus the local
    // robj combination); the end-of-run polling a drained site does while
    // the other site works is the paper's inter-cluster **idle** time.
    let mut site_finish: BTreeMap<SiteId, Seconds> = BTreeMap::new();
    for shape in &active {
        let worker_finish = workers
            .iter()
            .filter(|w| w.site == shape.site)
            .map(|w| w.last_done)
            .fold(0.0_f64, f64::max);
        let merge = f64::from(shape.n_slaves) * app.robj_bytes as f64 / env.merge_bw;
        telemetry.emit(
            Event::span(secs_to_ns(worker_finish), secs_to_ns(merge), EventKind::SiteMerged)
                .site(shape.site),
        );
        telemetry.emit(
            Event::at(secs_to_ns(worker_finish + merge), EventKind::SiteFinished).site(shape.site),
        );
        site_finish.insert(shape.site, worker_finish + merge);
    }
    let compute_finish = site_finish.values().copied().fold(0.0_f64, f64::max);

    let mut global_reduction = 0.0;
    for shape in &active {
        if shape.site != head_site {
            global_reduction += env.control_latency
                + 2.0 * f64::from(shape.n_slaves) * app.robj_bytes as f64 / env.robj_stream_bw
                + f64::from(shape.n_slaves) * app.robj_bytes as f64 / env.merge_bw;
        }
    }
    let total_time = compute_finish + global_reduction;
    telemetry.emit(Event::span(
        secs_to_ns(compute_finish),
        secs_to_ns(global_reduction),
        EventKind::GlobalReduction,
    ));
    telemetry.emit(Event::at(secs_to_ns(total_time), EventKind::RunFinished));

    let counts = pool.site_counts().clone();
    let mut report = RunReport {
        env: env.name.clone(),
        global_reduction,
        total_time,
        faults: pool.faults().clone(),
        ..RunReport::default()
    };
    for shape in &active {
        let site = shape.site;
        let site_workers: Vec<&Worker> = workers.iter().filter(|w| w.site == site).collect();
        let n = site_workers.len().max(1) as f64;
        let fin = site_finish[&site];
        let mean_proc = site_workers.iter().map(|w| w.processing).sum::<f64>() / n;
        let mean_retr = site_workers.iter().map(|w| w.retrieval).sum::<f64>() / n;
        let mean_barrier =
            site_workers.iter().map(|w| (fin - w.last_done).max(0.0)).sum::<f64>() / n;
        let mean_control = site_workers.iter().map(|w| w.control).sum::<f64>() / n;
        let idle = compute_finish - fin;
        report.sites.insert(
            site,
            SiteStats {
                breakdown: Breakdown {
                    processing: mean_proc,
                    retrieval: mean_retr,
                    sync: mean_barrier + mean_control + idle,
                },
                finish_time: fin,
                idle,
                jobs: counts.get(&site).copied().unwrap_or_default(),
                remote_bytes: site_workers.iter().map(|w| w.remote_bytes).sum(),
                retries: 0,
            },
        );
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three providers: the campus cluster plus two clouds with different
    /// compute/storage profiles.
    fn three_sites() -> MultiEnv {
        let p = SimParams::paper();
        MultiEnv {
            name: "tri-cloud".into(),
            sites: vec![
                SiteSpec {
                    site: SiteId::LOCAL,
                    cores: 16,
                    cores_per_slave: 8,
                    compute_factor: 1.0,
                    jitter: p.local_jitter,
                    store: p.cluster_disk,
                    data_fraction: 0.2,
                },
                SiteSpec {
                    site: SiteId::CLOUD,
                    cores: 16,
                    cores_per_slave: 4,
                    compute_factor: 1.2,
                    jitter: p.cloud_jitter,
                    store: p.s3,
                    data_fraction: 0.4,
                },
                SiteSpec {
                    site: SiteId(2),
                    cores: 16,
                    cores_per_slave: 2,
                    compute_factor: 1.5,
                    jitter: 0.2,
                    store: ResourceSpec { servers: 16, per_channel_bw: 30e6, latency: 80e-3 },
                    data_fraction: 0.4,
                },
            ],
            wan: p.wan_bulk,
            control_latency: p.control_latency,
            robj_stream_bw: p.robj_stream_bw,
            merge_bw: p.merge_bw,
            seed: p.seed,
            dataset_bytes: p.dataset_bytes,
            n_files: p.n_files,
            n_chunks: p.n_chunks,
            rate_aware_stealing: true,
            chaos: None,
            speculation: false,
            redundancy: 1,
        }
    }

    #[test]
    fn three_site_run_conserves_jobs() {
        let report = simulate_multi(&AppModel::pagerank(), &three_sites());
        assert_eq!(report.total_jobs(), 96);
        assert_eq!(report.sites.len(), 3);
        assert!(report.total_time > 0.0);
    }

    #[test]
    fn three_site_run_is_deterministic() {
        let a = simulate_multi(&AppModel::knn(), &three_sites());
        let b = simulate_multi(&AppModel::knn(), &three_sites());
        assert_eq!(a, b);
    }

    #[test]
    fn placement_covers_every_file_proportionally() {
        let env = three_sites();
        let placement = env.file_placement();
        assert_eq!(placement.len(), 32);
        let count = |s: SiteId| placement.iter().filter(|&&x| x == s).count();
        // 0.2 / 0.4 / 0.4 of 32 files = 6-7 / 13 / 12-13.
        assert!((6..=7).contains(&count(SiteId::LOCAL)));
        assert!((12..=14).contains(&count(SiteId::CLOUD)));
        assert!((12..=14).contains(&count(SiteId(2))));
    }

    #[test]
    fn all_compute_on_one_site_steals_the_rest() {
        let mut env = three_sites();
        env.sites[1].cores = 0;
        env.sites[2].cores = 0;
        let report = simulate_multi(&AppModel::knn(), &env);
        let local = &report.sites[&SiteId::LOCAL];
        assert_eq!(local.jobs.total(), 96);
        assert!(local.jobs.stolen > 0);
        assert_eq!(report.sites.len(), 1);
    }

    #[test]
    fn global_reduction_scales_with_remote_sites() {
        let app = AppModel::pagerank();
        let three = simulate_multi(&app, &three_sites());
        let mut two = three_sites();
        two.sites.remove(2);
        two.sites[0].data_fraction = 0.4;
        two.sites[1].data_fraction = 0.6;
        let two = simulate_multi(&app, &two);
        assert!(
            three.global_reduction > two.global_reduction,
            "more remote sites exchange more robjs: {} vs {}",
            three.global_reduction,
            two.global_reduction
        );
    }

    #[test]
    fn traced_run_matches_untraced_and_covers_workers() {
        let app = AppModel::knn();
        let env = three_sites();
        let (report, timeline) = simulate_multi_traced(&app, &env);
        assert_eq!(report, simulate_multi(&app, &env), "tracing must not perturb the run");
        // Every slave recorded activity: 16/8 + 16/4 + 16/2 = 2+4+8 = 14.
        assert_eq!(timeline.n_entities(), 14);
        for e in 0..timeline.n_entities() {
            assert!(timeline.busy_seconds(e) > 0.0, "slave {e} never worked");
        }
        // The trace horizon ends near the compute finish: the drained side's
        // final poll ticks may run slightly past the last completion.
        assert!(timeline.horizon().seconds() <= report.total_time + 0.5);
        // Retrieval + compute span time equals the reported mean-per-slave
        // times × slave counts exactly (control/polling spans excluded).
        let work_spans: f64 = timeline
            .spans()
            .iter()
            .filter(|s| s.kind != Activity::Control)
            .map(|s| s.end - s.start)
            .sum();
        let slaves_of = |site: SiteId| match site.0 {
            0 => 2.0, // 16 cores / 8 per node
            1 => 4.0, // 16 / 4
            _ => 8.0, // 16 / 2
        };
        let reported: f64 = report
            .sites
            .iter()
            .map(|(&site, s)| (s.breakdown.processing + s.breakdown.retrieval) * slaves_of(site))
            .sum();
        assert!(
            (work_spans - reported).abs() < reported * 1e-9,
            "spans {work_spans} vs reported {reported}"
        );
    }

    #[test]
    fn site_outage_is_evacuated_and_work_is_rehomed() {
        use cloudburst_core::SiteOutage;
        let mut env = three_sites();
        env.chaos = Some(FaultPlan {
            site_outage: Some(SiteOutage { site: SiteId(2), at: 1.0 }),
            ..FaultPlan::seeded(11)
        });
        let report = simulate_multi(&AppModel::knn(), &env);
        // Every chunk still merges exactly once, at a surviving site.
        assert_eq!(report.total_jobs(), 96);
        let recovered = report.faults.evacuated_jobs + report.faults.lost_results;
        assert!(recovered > 0, "the outage must have interrupted something");
        assert_eq!(report.faults.abandoned_jobs.len(), 0);
    }

    #[test]
    fn crashed_worker_leaks_its_job_until_the_lease_reaper_recovers_it() {
        use cloudburst_core::WorkerCrash;
        let mut env = three_sites();
        env.chaos = Some(FaultPlan {
            worker_crash: vec![WorkerCrash { site: SiteId::CLOUD, worker: 0, after_jobs: 1 }],
            ..FaultPlan::seeded(12)
        });
        let report = simulate_multi(&AppModel::knn(), &env);
        assert_eq!(report.total_jobs(), 96);
        assert!(report.faults.lease_expiries > 0, "the leaked job must be reaped");
    }

    #[test]
    fn chaos_replay_is_deterministic() {
        use cloudburst_core::{SiteOutage, SlowWorker};
        let mut env = three_sites();
        env.chaos = Some(FaultPlan {
            site_outage: Some(SiteOutage { site: SiteId(2), at: 2.0 }),
            slow_workers: vec![SlowWorker { site: SiteId::CLOUD, worker: 1, delay_per_job: 50.0 }],
            ..FaultPlan::seeded(13)
        });
        let a = simulate_multi(&AppModel::knn(), &env);
        let b = simulate_multi(&AppModel::knn(), &env);
        assert_eq!(a, b, "a seeded fault plan must replay byte-identically");
        assert!(!a.faults.is_quiet());
    }

    #[test]
    fn coded_redundancy_outruns_a_straggling_site() {
        use cloudburst_core::SlowSite;
        let mk = |speculation: bool, redundancy: u32| {
            let mut env = three_sites();
            env.chaos = Some(FaultPlan {
                slow_sites: vec![SlowSite { site: SiteId::CLOUD, factor: 8.0 }],
                ..FaultPlan::seeded(31)
            });
            env.speculation = speculation;
            env.redundancy = redundancy;
            simulate_multi(&AppModel::knn(), &env)
        };
        let none = mk(false, 1);
        let coded = mk(false, 2);
        assert_eq!(none.total_jobs(), 96);
        assert_eq!(coded.total_jobs(), 96);
        // Replicated chunks are read at the executing site: no WAN bytes.
        for (site, s) in &coded.sites {
            assert_eq!(s.remote_bytes, 0, "{site} crossed the WAN despite replicas");
        }
        // The straggling site's in-flight tail is rescued by proactive
        // replicas at the idle survivors, which `none` cannot do (a granted
        // job can only be duplicated by speculation or redundancy).
        assert!(coded.faults.replica_grants > 0, "survivors must pick up replica copies");
        assert!(
            coded.total_time < none.total_time,
            "coded {} vs none {}",
            coded.total_time,
            none.total_time
        );
    }

    #[test]
    fn slow_site_replay_is_deterministic_and_slower_than_clean() {
        use cloudburst_core::SlowSite;
        let mut env = three_sites();
        env.chaos = Some(FaultPlan {
            slow_sites: vec![SlowSite { site: SiteId(2), factor: 3.0 }],
            ..FaultPlan::seeded(17)
        });
        let a = simulate_multi(&AppModel::kmeans(), &env);
        let b = simulate_multi(&AppModel::kmeans(), &env);
        assert_eq!(a, b, "site-wide slowdown must replay identically");
        let clean = simulate_multi(&AppModel::kmeans(), &three_sites());
        assert!(a.total_time > clean.total_time, "a 3x site slowdown must cost wall-clock");
    }

    #[test]
    fn instrumented_run_matches_plain_and_narrates_the_chaos() {
        use cloudburst_core::{Recorder, SlowWorker, Telemetry, WorkerCrash};
        use std::sync::Arc;
        let mut env = three_sites();
        env.chaos = Some(FaultPlan {
            worker_crash: vec![WorkerCrash { site: SiteId::CLOUD, worker: 0, after_jobs: 1 }],
            slow_workers: vec![SlowWorker { site: SiteId(2), worker: 1, delay_per_job: 60.0 }],
            ..FaultPlan::seeded(21)
        });
        let app = AppModel::knn();
        let rec = Arc::new(Recorder::new());
        let report = simulate_multi_instrumented(&app, &env, &Telemetry::to(rec.clone()));
        assert_eq!(report, simulate_multi(&app, &env), "emission must not perturb the run");

        let events = rec.snapshot();
        // The virtual-time stream narrates the faults the report counts.
        let reaps = events.iter().filter(|e| e.kind == EventKind::LeaseReaped).count();
        assert_eq!(reaps as u64, report.faults.lease_expiries);
        assert!(reaps > 0, "the crashed worker's job must be reaped");
        let spec_grants = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::JobGranted { speculative: true, .. }))
            .count();
        assert_eq!(spec_grants as u64, report.faults.speculative_grants);
        assert!(spec_grants > 0, "the straggler must trigger speculation");
        // The run-finished stamp is the report's total time, in virtual ns.
        let end = events.last().expect("stream non-empty");
        assert_eq!(end.kind, EventKind::RunFinished);
        assert_eq!(end.at_ns, secs_to_ns(report.total_time));
        // Per-slave streams are monotonic in virtual time.
        let mut last: BTreeMap<(SiteId, u32), u64> = BTreeMap::new();
        for e in &events {
            if let (Some(s), Some(w)) = (e.site, e.worker) {
                let prev = last.entry((s, w)).or_insert(0);
                assert!(e.at_ns >= *prev, "slave stream went backwards");
                *prev = e.at_ns;
            }
        }
    }

    #[test]
    fn two_site_wrapper_matches_scenario() {
        // The delegated two-site path must reproduce the calibrated results.
        let app = AppModel::kmeans();
        let env = cloudburst_core::EnvConfig::new("env-33/67", 0.33, 16, 22);
        let params = SimParams::paper();
        let via_multi = simulate_multi(&app, &MultiEnv::two_site(&env, &app, &params));
        let via_scenario = crate::scenario::simulate(&app, &env, &params);
        assert_eq!(via_multi, via_scenario);
    }
}
