//! One function per figure/table of the paper's evaluation (§IV).
//!
//! | Function | Paper artifact |
//! |---|---|
//! | [`fig3`] | Fig. 3(a/b/c): execution-time breakdown over the five environments |
//! | [`table1`] | Table I: jobs processed per site, stolen jobs |
//! | [`table2`] | Table II: global reduction, idle times, total slowdown |
//! | [`fig4`] | Fig. 4(a/b/c): scalability, all data in S3, (m, m) cores |
//! | [`summary`] | headline numbers: 15.55% average slowdown, 81% scaling |

use crate::model::AppModel;
use crate::params::SimParams;
use crate::scenario::simulate;
use cloudburst_core::config::{paper_envs_even, paper_envs_kmeans, scalability_envs};
use cloudburst_core::{doubling_efficiency, EnvConfig, RunReport, SiteId};

/// The five evaluation environments for `app` (paper §IV-B): kmeans gets
/// throughput-equalized cloud core counts (44 centralized / 22 hybrid),
/// knn and pagerank split 32 cores evenly.
#[must_use]
pub fn envs_for(app: &AppModel) -> Vec<EnvConfig> {
    if app.name == "kmeans" {
        paper_envs_kmeans(32, 44)
    } else {
        paper_envs_even(32)
    }
}

/// Fig. 3: one report per environment, in paper order
/// (env-local, env-cloud, env-50/50, env-33/67, env-17/83).
#[must_use]
pub fn fig3(app: &AppModel, params: &SimParams) -> Vec<RunReport> {
    envs_for(app).iter().map(|e| simulate(app, e, params)).collect()
}

/// One row of Table I.
#[derive(Debug, Clone, PartialEq)]
pub struct Table1Row {
    /// Application name.
    pub app: String,
    /// Environment label (50/50, 33/67, 17/83).
    pub env: String,
    /// Jobs processed by the local cluster (total).
    pub local_jobs: u64,
    /// Jobs processed by the cloud (total).
    pub cloud_jobs: u64,
    /// Jobs the local cluster stole from S3-resident files.
    pub local_stolen: u64,
    /// Jobs the cloud stole from cluster-resident files.
    pub cloud_stolen: u64,
}

/// Table I: job assignment per application over the three hybrid
/// environments.
#[must_use]
pub fn table1(apps: &[AppModel], params: &SimParams) -> Vec<Table1Row> {
    let mut rows = Vec::new();
    for app in apps {
        for report in fig3(app, params).into_iter().skip(2) {
            let local = report.sites.get(&SiteId::LOCAL).cloned().unwrap_or_default();
            let cloud = report.sites.get(&SiteId::CLOUD).cloned().unwrap_or_default();
            rows.push(Table1Row {
                app: app.name.clone(),
                env: report.env.clone(),
                local_jobs: local.jobs.total(),
                cloud_jobs: cloud.jobs.total(),
                local_stolen: local.jobs.stolen,
                cloud_stolen: cloud.jobs.stolen,
            });
        }
    }
    rows
}

/// One row of Table II.
#[derive(Debug, Clone, PartialEq)]
pub struct Table2Row {
    /// Application name.
    pub app: String,
    /// Environment label.
    pub env: String,
    /// Elapsed global-reduction time, seconds.
    pub global_reduction: f64,
    /// End-of-run idle time at the local cluster, seconds.
    pub idle_local: f64,
    /// End-of-run idle time at the cloud, seconds.
    pub idle_cloud: f64,
    /// Total slowdown vs env-local, seconds.
    pub slowdown: f64,
    /// Slowdown as a fraction of the env-local total.
    pub slowdown_ratio: f64,
}

/// Table II: overheads and slowdowns of the hybrid environments relative to
/// the env-local baseline.
#[must_use]
pub fn table2(apps: &[AppModel], params: &SimParams) -> Vec<Table2Row> {
    let mut rows = Vec::new();
    for app in apps {
        let reports = fig3(app, params);
        let baseline = &reports[0];
        for report in &reports[2..] {
            let idle = |s: SiteId| report.sites.get(&s).map_or(0.0, |x| x.idle);
            rows.push(Table2Row {
                app: app.name.clone(),
                env: report.env.clone(),
                global_reduction: report.global_reduction,
                idle_local: idle(SiteId::LOCAL),
                idle_cloud: idle(SiteId::CLOUD),
                slowdown: report.slowdown_vs(baseline),
                slowdown_ratio: report.slowdown_ratio_vs(baseline),
            });
        }
    }
    rows
}

/// Fig. 4: scalability sweep — all data in S3, `(m, m)` cores for
/// `m ∈ {4, 8, 16, 32}`. Returns the reports in sweep order.
#[must_use]
pub fn fig4(app: &AppModel, params: &SimParams) -> Vec<RunReport> {
    scalability_envs(&[4, 8, 16, 32]).iter().map(|e| simulate(app, e, params)).collect()
}

/// Per-doubling efficiencies of a Fig. 4 sweep: `t(m) / (2 t(2m))`.
#[must_use]
pub fn fig4_efficiencies(reports: &[RunReport]) -> Vec<f64> {
    reports.windows(2).map(|w| doubling_efficiency(w[0].total_time, w[1].total_time)).collect()
}

/// Cumulative efficiencies relative to the smallest configuration — the
/// percentage labels the paper prints above the Fig. 4 bars:
/// `E(m) = t(m₀) / (t(m) · m/m₀)` for each configuration after the first.
#[must_use]
pub fn fig4_cumulative_efficiencies(reports: &[RunReport]) -> Vec<f64> {
    let Some(first) = reports.first() else { return Vec::new() };
    let t0 = first.total_time;
    reports
        .iter()
        .enumerate()
        .skip(1)
        .map(|(i, r)| {
            let scale = (1u32 << i) as f64;
            if r.total_time > 0.0 {
                t0 / (r.total_time * scale)
            } else {
                0.0
            }
        })
        .collect()
}

/// The paper's headline numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Mean slowdown ratio of cloud bursting vs centralized processing
    /// across all apps × hybrid environments (paper: 15.55%).
    pub avg_slowdown_ratio: f64,
    /// Mean per-doubling scaling efficiency across all apps and steps
    /// (paper: 81%).
    pub avg_scaling_efficiency: f64,
}

/// Compute the headline summary over the full paper trio.
#[must_use]
pub fn summary(params: &SimParams) -> Summary {
    let apps = AppModel::paper_trio();
    let t2 = table2(&apps, params);
    let avg_slowdown_ratio = t2.iter().map(|r| r.slowdown_ratio).sum::<f64>() / t2.len() as f64;
    let mut effs = Vec::new();
    for app in &apps {
        effs.extend(fig4_cumulative_efficiencies(&fig4(app, params)));
    }
    let avg_scaling_efficiency = effs.iter().sum::<f64>() / effs.len() as f64;
    Summary { avg_slowdown_ratio, avg_scaling_efficiency }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The DES walks the same 96-job schedule regardless of dataset size,
    // so tests run the full paper scale (microseconds of CPU).
    fn fast() -> SimParams {
        SimParams::paper()
    }

    #[test]
    fn fig3_produces_five_reports_in_order() {
        let reports = fig3(&AppModel::knn(), &fast());
        assert_eq!(reports.len(), 5);
        assert_eq!(reports[0].env, "env-local");
        assert_eq!(reports[4].env, "env-17/83");
    }

    #[test]
    fn kmeans_envs_are_equalized() {
        let envs = envs_for(&AppModel::kmeans());
        assert_eq!(envs[1].cloud_cores, 44);
        assert_eq!(envs[2].cloud_cores, 22);
        let knn_envs = envs_for(&AppModel::knn());
        assert_eq!(knn_envs[2].cloud_cores, 16);
    }

    #[test]
    fn table1_conserves_jobs() {
        let rows = table1(&[AppModel::knn()], &fast());
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert_eq!(r.local_jobs + r.cloud_jobs, 96, "{}", r.env);
        }
    }

    #[test]
    fn table2_has_nonnegative_overheads() {
        let rows = table2(&[AppModel::pagerank()], &fast());
        for r in &rows {
            assert!(r.global_reduction > 0.0);
            assert!(r.idle_local >= 0.0 && r.idle_cloud >= 0.0);
            // One of the two sites always finishes first.
            assert!(r.idle_local == 0.0 || r.idle_cloud == 0.0);
        }
    }

    #[test]
    fn fig4_efficiencies_have_three_steps() {
        let reports = fig4(&AppModel::kmeans(), &fast());
        assert_eq!(reports.len(), 4);
        let effs = fig4_efficiencies(&reports);
        assert_eq!(effs.len(), 3);
        assert!(effs.iter().all(|&e| e > 0.3 && e <= 1.05), "{effs:?}");
    }

    #[test]
    fn summary_reproduces_the_paper_headlines() {
        // Paper: 15.55% average slowdown, 81% average scaling efficiency.
        let s = summary(&fast());
        assert!(
            s.avg_slowdown_ratio > 0.05 && s.avg_slowdown_ratio < 0.35,
            "avg slowdown should sit near the paper's 15.55%: {s:?}"
        );
        assert!(
            s.avg_scaling_efficiency > 0.65 && s.avg_scaling_efficiency < 0.95,
            "avg scaling should sit near the paper's 81%: {s:?}"
        );
    }
}
