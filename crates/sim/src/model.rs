//! Application cost models for the paper-scale simulation.
//!
//! The simulator replays the real scheduling policies; what it needs from
//! each application is only its *resource signature*: bytes per unit,
//! compute per unit, how much slower a cloud core runs it, and the size of
//! its reduction object. The constants below are calibrated so the three
//! applications land in the regimes the paper describes (§IV-A):
//!
//! * **knn** — "low computation ... medium to high I/O ... reduction object
//!   is small": retrieval-dominated.
//! * **kmeans** — "heavy computation resulting in low to medium I/O, and a
//!   small reduction object": compute-dominated; one EC2 compute unit
//!   delivers less than a cluster core (the paper equalizes 22 cloud cores
//!   against 16 cluster cores ⇒ factor ≈ 1.375).
//! * **pagerank** — "low to medium computation leading to high I/O, and a
//!   very large reduction object" (~3 MB).

use serde::{Deserialize, Serialize};

/// The resource signature of one application.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AppModel {
    /// Application name used in reports.
    pub name: String,
    /// Bytes per data unit.
    pub unit_size: u32,
    /// Seconds of compute per unit on one cluster core.
    pub compute_per_unit: f64,
    /// Multiplier on compute time when the unit runs on a cloud core
    /// (≥ 1.0; EC2 m1.large elastic compute units are slower than the
    /// cluster's Xeons).
    pub cloud_compute_factor: f64,
    /// Size of the reduction object in bytes.
    pub robj_bytes: u64,
}

impl AppModel {
    /// k-NN: 64-byte point records, ~40 ns/unit (one distance computation),
    /// 1 KB reduction object (k best candidates).
    #[must_use]
    pub fn knn() -> AppModel {
        AppModel {
            name: "knn".into(),
            unit_size: 64,
            compute_per_unit: 40e-9,
            cloud_compute_factor: 1.1,
            robj_bytes: 1024,
        }
    }

    /// k-means: 32-byte points, ~24 µs/unit (k distance computations over
    /// high-dimensional points), ~1 KB reduction object; cloud cores 1.375x
    /// slower (the paper's 22-vs-16 equalization).
    #[must_use]
    pub fn kmeans() -> AppModel {
        AppModel {
            name: "kmeans".into(),
            unit_size: 32,
            compute_per_unit: 24e-6,
            cloud_compute_factor: 1.375,
            robj_bytes: 1024,
        }
    }

    /// PageRank: 8-byte edges, ~700 ns/unit (one indexed add plus cache
    /// misses on a large rank vector), 3 MB reduction object
    /// (375 k pages × 8 B).
    #[must_use]
    pub fn pagerank() -> AppModel {
        AppModel {
            name: "pagerank".into(),
            unit_size: 8,
            compute_per_unit: 700e-9,
            cloud_compute_factor: 1.0,
            robj_bytes: 3_000_000,
        }
    }

    /// The three evaluated applications in paper order.
    #[must_use]
    pub fn paper_trio() -> Vec<AppModel> {
        vec![AppModel::knn(), AppModel::kmeans(), AppModel::pagerank()]
    }

    /// Units in a dataset of `bytes` total size.
    #[must_use]
    pub fn units_in(&self, bytes: u64) -> u64 {
        bytes / u64::from(self.unit_size)
    }

    /// Seconds of compute for `units` units on one core at `site_factor`.
    #[must_use]
    pub fn compute_time(&self, units: u64, site_factor: f64) -> f64 {
        units as f64 * self.compute_per_unit * site_factor
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB: u64 = 1 << 30;

    #[test]
    fn regimes_match_the_paper() {
        // Over the paper's 12 GB dataset on 32 cores vs a 350 MB/s store:
        // knn compute << retrieval; kmeans compute >> retrieval;
        // pagerank within a factor ~2 either way.
        let retrieval_wall = (12 * GB) as f64 / 350e6;
        let per_core = |m: &AppModel| m.compute_time(m.units_in(12 * GB), 1.0) / 32.0;

        let knn = per_core(&AppModel::knn());
        assert!(knn < retrieval_wall / 2.0, "knn must be retrieval-bound: {knn}");

        let kmeans = per_core(&AppModel::kmeans());
        assert!(kmeans > 2.0 * retrieval_wall, "kmeans must be compute-bound: {kmeans}");

        let pr = per_core(&AppModel::pagerank());
        assert!(
            pr > retrieval_wall / 3.0 && pr < retrieval_wall * 3.0,
            "pagerank must be balanced: {pr} vs {retrieval_wall}"
        );
    }

    #[test]
    fn robj_sizes_follow_the_paper() {
        assert!(AppModel::knn().robj_bytes < 10_000);
        assert!(AppModel::kmeans().robj_bytes < 10_000);
        assert_eq!(AppModel::pagerank().robj_bytes, 3_000_000);
    }

    #[test]
    fn kmeans_cloud_factor_matches_core_equalization() {
        // 22 cloud cores ≈ 16 cluster cores -> factor ≈ 22/16.
        let f = AppModel::kmeans().cloud_compute_factor;
        assert!((f - 22.0 / 16.0).abs() < 1e-9);
    }

    #[test]
    fn unit_accounting() {
        let m = AppModel::pagerank();
        assert_eq!(m.units_in(80), 10);
        assert_eq!(m.compute_time(10, 2.0), 10.0 * 700e-9 * 2.0);
    }
}
