//! Dollar-cost model for cloud bursting — the extension the authors pursue
//! in their follow-up work (*"Time and Cost Sensitive Data-Intensive
//! Computing on Hybrid Clouds"*, cited alongside the paper): given a run's
//! report, price the EC2 instance-hours, S3 requests and data egress it
//! consumed, and answer the planning question cloud bursting exists for —
//! *how many cloud instances must I rent to meet a deadline, and what will
//! it cost?*
//!
//! Prices default to the 2011 us-east rates the paper's experiments paid
//! (m1.large $0.34/h, hourly billing, $0.01 per 10k GETs, ~$0.10/GB egress).

use crate::model::AppModel;
use crate::params::SimParams;
use crate::scenario::simulate;
use cloudburst_core::{EnvConfig, RunReport, SiteId};
use serde::{Deserialize, Serialize};

/// A cloud provider's price list.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingModel {
    /// $ per instance-hour (billed in whole hours, as EC2 did in 2011).
    pub instance_hour: f64,
    /// Compute cores per rented instance.
    pub cores_per_instance: u32,
    /// $ per 10,000 GET requests against object storage.
    pub per_10k_gets: f64,
    /// $ per GiB of data leaving the cloud (S3 → the local cluster).
    pub egress_per_gib: f64,
    /// Ranged GET requests issued per chunk retrieval (the multi-threaded
    /// fetcher's connections).
    pub gets_per_chunk: u64,
}

impl PricingModel {
    /// Amazon's 2011 us-east price card for the paper's m1.large setup.
    #[must_use]
    pub fn aws_2011() -> PricingModel {
        PricingModel {
            instance_hour: 0.34,
            cores_per_instance: 4,
            per_10k_gets: 0.01,
            egress_per_gib: 0.10,
            gets_per_chunk: 8,
        }
    }
}

/// The priced resources of one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CostReport {
    /// Instances rented.
    pub instances: u32,
    /// Billed instance-hours (whole hours per instance).
    pub instance_hours: u64,
    /// $ for compute.
    pub compute_cost: f64,
    /// GET requests issued against object storage.
    pub get_requests: u64,
    /// $ for requests.
    pub request_cost: f64,
    /// Bytes that left the cloud (stolen chunks + reduction objects).
    pub egress_bytes: u64,
    /// $ for egress.
    pub egress_cost: f64,
}

impl CostReport {
    /// Total dollars.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.compute_cost + self.request_cost + self.egress_cost
    }
}

/// Price a simulated run under `pricing`.
#[must_use]
pub fn cost_of(
    report: &RunReport,
    env: &EnvConfig,
    app: &AppModel,
    pricing: &PricingModel,
) -> CostReport {
    let instances = env.cloud_cores.div_ceil(pricing.cores_per_instance.max(1));
    // 2011 billing: each instance pays for every *started* hour.
    let hours_each = (report.total_time / 3600.0).ceil().max(1.0) as u64;
    let instance_hours = u64::from(instances) * hours_each;
    let compute_cost = instance_hours as f64 * pricing.instance_hour;

    // Every job whose data lives in S3 costs GETs: the cloud's own jobs and
    // the local cluster's stolen jobs both hit the object store.
    let s3_jobs: u64 = report
        .sites
        .iter()
        .map(|(&site, s)| if site == SiteId::CLOUD { s.jobs.local } else { s.jobs.stolen })
        .sum();
    let get_requests = s3_jobs * pricing.gets_per_chunk;
    let request_cost = get_requests as f64 / 10_000.0 * pricing.per_10k_gets;

    // Egress: bytes fetched out of the cloud by the local cluster, plus the
    // reduction objects the cloud ships during global reduction.
    let stolen_egress = report.sites.get(&SiteId::LOCAL).map_or(0, |s| s.remote_bytes);
    let cloud_slaves = u64::from(instances.max(1));
    let robj_egress = if env.is_hybrid() { cloud_slaves * app.robj_bytes } else { 0 };
    let egress_bytes = stolen_egress + robj_egress;
    let egress_cost = egress_bytes as f64 / f64::from(1u32 << 30) * pricing.egress_per_gib;

    CostReport {
        instances,
        instance_hours,
        compute_cost,
        get_requests,
        request_cost,
        egress_bytes,
        egress_cost,
    }
}

/// Price *measured* usage — the live-meter entry point behind the CLI's
/// `--watch` dollar readout and the `CostReport` attached to real-run
/// stats: no [`AppModel`], no simulation, just the counters a run actually
/// accumulated (elapsed wall time, object-store GETs, cloud-egress bytes).
///
/// Compute is pro-rated by instance-*seconds* so the meter moves while the
/// run does; the `instance_hours` field still reports what 2011 whole-hour
/// billing would invoice at teardown (each instance pays every started
/// hour).
#[must_use]
pub fn cost_of_usage(
    pricing: &PricingModel,
    cloud_cores: u32,
    elapsed_secs: f64,
    get_requests: u64,
    egress_bytes: u64,
) -> CostReport {
    let instances = cloud_cores.div_ceil(pricing.cores_per_instance.max(1));
    let elapsed = if elapsed_secs.is_finite() { elapsed_secs.max(0.0) } else { 0.0 };
    let instance_hours = if instances == 0 {
        0
    } else {
        u64::from(instances) * ((elapsed / 3600.0).ceil().max(1.0) as u64)
    };
    let compute_cost = f64::from(instances) * elapsed / 3600.0 * pricing.instance_hour;
    let request_cost = get_requests as f64 / 10_000.0 * pricing.per_10k_gets;
    let egress_cost = egress_bytes as f64 / f64::from(1u32 << 30) * pricing.egress_per_gib;
    CostReport {
        instances,
        instance_hours,
        compute_cost,
        get_requests,
        request_cost,
        egress_bytes,
        egress_cost,
    }
}

/// One option on the time/cost frontier.
#[derive(Debug, Clone, PartialEq)]
pub struct BurstOption {
    /// Cloud cores rented (0 = no bursting).
    pub cloud_cores: u32,
    /// Simulated completion time, seconds.
    pub time: f64,
    /// Priced cloud cost.
    pub cost: CostReport,
}

/// Sweep cloud capacity for a fixed local cluster and data split, producing
/// the time/cost frontier a capacity planner would look at.
#[must_use]
pub fn burst_frontier(
    app: &AppModel,
    local_cores: u32,
    local_data_fraction: f64,
    cloud_core_steps: &[u32],
    params: &SimParams,
    pricing: &PricingModel,
) -> Vec<BurstOption> {
    let mut out = Vec::with_capacity(cloud_core_steps.len() + 1);
    let eval = |cloud_cores: u32| {
        let env = EnvConfig::new(
            &format!("burst-{cloud_cores}"),
            local_data_fraction,
            local_cores,
            cloud_cores,
        );
        let report = simulate(app, &env, params);
        let cost = cost_of(&report, &env, app, pricing);
        BurstOption { cloud_cores, time: report.total_time, cost }
    };
    if local_cores > 0 {
        out.push(eval(0));
    }
    for &c in cloud_core_steps {
        if c > 0 {
            out.push(eval(c));
        }
    }
    out
}

/// The planning query: the cheapest bursting option that meets `deadline`.
/// Returns `None` when no candidate meets it.
#[must_use]
pub fn provision_for_deadline(
    app: &AppModel,
    local_cores: u32,
    local_data_fraction: f64,
    deadline: f64,
    params: &SimParams,
    pricing: &PricingModel,
) -> Option<BurstOption> {
    let steps: Vec<u32> = (0..=6).map(|i| 4 << i).collect(); // 4..=256 cores
    burst_frontier(app, local_cores, local_data_fraction, &steps, params, pricing)
        .into_iter()
        .filter(|o| o.time <= deadline)
        .min_by(|a, b| a.cost.total().total_cmp(&b.cost.total()).then(a.time.total_cmp(&b.time)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params() -> SimParams {
        SimParams::paper()
    }

    #[test]
    fn centralized_local_run_costs_nothing() {
        let app = AppModel::knn();
        let env = EnvConfig::new("env-local", 1.0, 32, 0);
        let report = simulate(&app, &env, &params());
        let cost = cost_of(&report, &env, &app, &PricingModel::aws_2011());
        assert_eq!(cost.instances, 0);
        assert_eq!(cost.total(), 0.0);
    }

    #[test]
    fn hourly_billing_rounds_up() {
        let app = AppModel::knn();
        let env = EnvConfig::new("env-cloud", 0.0, 0, 32);
        let report = simulate(&app, &env, &params());
        assert!(report.total_time < 3600.0, "a sub-hour run");
        let cost = cost_of(&report, &env, &app, &PricingModel::aws_2011());
        // 32 cores / 4 per instance = 8 instances, 1 billed hour each.
        assert_eq!(cost.instances, 8);
        assert_eq!(cost.instance_hours, 8);
        assert!((cost.compute_cost - 8.0 * 0.34).abs() < 1e-9);
        assert!(cost.get_requests > 0, "cloud jobs hit S3");
    }

    #[test]
    fn stealing_incurs_egress() {
        let app = AppModel::knn();
        let env = EnvConfig::new("env-17/83", 0.17, 16, 16);
        let report = simulate(&app, &env, &params());
        assert!(report.sites[&SiteId::LOCAL].jobs.stolen > 0, "precondition");
        let cost = cost_of(&report, &env, &app, &PricingModel::aws_2011());
        assert!(cost.egress_bytes > report.sites[&SiteId::LOCAL].remote_bytes / 2);
        assert!(cost.egress_cost > 0.0);
    }

    #[test]
    fn frontier_time_decreases_with_cloud_cores() {
        let app = AppModel::kmeans();
        let frontier =
            burst_frontier(&app, 8, 0.5, &[8, 16, 32, 64], &params(), &PricingModel::aws_2011());
        assert_eq!(frontier.len(), 5);
        for w in frontier.windows(2) {
            assert!(
                w[1].time <= w[0].time * 1.02,
                "more cloud cores should not slow the run: {} -> {}",
                w[0].time,
                w[1].time
            );
        }
        // The no-instances option still pays for S3: the local cluster
        // fetches the cloud-resident half (GETs + egress), just no compute.
        assert_eq!(frontier[0].cost.compute_cost, 0.0);
        assert!(frontier[0].cost.egress_cost > 0.0);
        assert!(frontier[0].cost.request_cost > 0.0);
    }

    #[test]
    fn provisioning_meets_feasible_deadlines_cheaply() {
        let app = AppModel::kmeans();
        let p = params();
        let pricing = PricingModel::aws_2011();
        // Local-only time with 8 cores.
        let local_only = simulate(&app, &EnvConfig::new("l", 0.5, 8, 0), &p).total_time;
        let choice = provision_for_deadline(&app, 8, 0.5, local_only * 0.5, &p, &pricing)
            .expect("bursting must be able to halve the makespan");
        assert!(choice.time <= local_only * 0.5);
        assert!(choice.cloud_cores > 0);
        // A cheaper (fewer-core) option must not also meet the deadline.
        let frontier = burst_frontier(&app, 8, 0.5, &[4, 8, 16, 32, 64, 128, 256], &p, &pricing);
        for o in frontier {
            if o.time <= local_only * 0.5 {
                assert!(o.cost.total() >= choice.cost.total() - 1e-9);
            }
        }
    }

    #[test]
    fn usage_pricing_is_prorated_and_simulation_free() {
        let pricing = PricingModel::aws_2011();
        // No cloud cores: only requests and egress cost anything.
        let idle = cost_of_usage(&pricing, 0, 120.0, 20_000, u64::from(1u32 << 30));
        assert_eq!(idle.instances, 0);
        assert_eq!(idle.instance_hours, 0);
        assert_eq!(idle.compute_cost, 0.0);
        assert!((idle.request_cost - 0.02).abs() < 1e-12, "2 * $0.01 per 10k GETs");
        assert!((idle.egress_cost - 0.10).abs() < 1e-12, "1 GiB egress");
        // 8 cores = 2 instances; 30 minutes pro-rates to one half-hour each
        // while the billed ledger still charges the started hour.
        let busy = cost_of_usage(&pricing, 8, 1800.0, 0, 0);
        assert_eq!(busy.instances, 2);
        assert_eq!(busy.instance_hours, 2);
        assert!((busy.compute_cost - 2.0 * 0.5 * 0.34).abs() < 1e-12);
        // The meter is monotone in elapsed time.
        assert!(
            cost_of_usage(&pricing, 8, 3600.0, 0, 0).compute_cost > busy.compute_cost,
            "longer runs cost more"
        );
        // Garbage clocks don't poison the meter.
        assert_eq!(cost_of_usage(&pricing, 8, f64::NAN, 0, 0).compute_cost, 0.0);
    }

    #[test]
    fn impossible_deadlines_are_reported() {
        let app = AppModel::kmeans();
        let choice = provision_for_deadline(
            &app,
            8,
            0.5,
            1.0, // one second: nothing can do this
            &params(),
            &PricingModel::aws_2011(),
        );
        assert!(choice.is_none());
    }
}
