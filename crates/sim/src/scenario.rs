//! The paper-scale cloud-bursting scenario as a discrete-event simulation.
//!
//! The simulator replays the **exact** scheduling objects the threaded
//! runtime uses — [`JobPool`](cloudburst_core::JobPool) (locality-aware consecutive batching +
//! min-contention stealing) and [`MasterPool`](cloudburst_core::MasterPool) (on-demand batch refills) —
//! against the cost model of [`crate::params`]. Every worker is an event-
//! driven actor: pull a job (paying control RPCs when the master refills),
//! occupy a storage channel for the chunk (plus the WAN pipe when the job
//! was stolen across sites), then compute for `units × cost × site-factor ×
//! jitter` seconds. The output is a [`RunReport`] in exactly the shape of
//! the paper's Figures 3–4 and Tables I–II.

use crate::model::AppModel;
use crate::params::SimParams;
use cloudburst_core::{EnvConfig, RunReport};

/// Simulate one run of `app` under `env` on the testbed `params`.
///
/// Deterministic: same inputs → identical report.
///
/// # Panics
/// Panics when the dataset is too small to form one chunk (misuse of the
/// harness, not a runtime condition).
#[must_use]
pub fn simulate(app: &AppModel, env: &EnvConfig, params: &SimParams) -> RunReport {
    crate::multi::simulate_multi(app, &crate::multi::MultiEnv::two_site(env, app, params))
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_core::config::{paper_envs_even, scalability_envs};

    fn fast_params() -> SimParams {
        // The DES walks the same 96-job schedule regardless of dataset
        // size, so even full scale runs in microseconds of CPU.
        SimParams::paper()
    }

    #[test]
    fn simulation_is_deterministic() {
        let app = AppModel::knn();
        let env = EnvConfig::new("env-33/67", 0.33, 16, 16);
        let a = simulate(&app, &env, &fast_params());
        let b = simulate(&app, &env, &fast_params());
        assert_eq!(a, b);
    }

    #[test]
    fn every_job_is_processed_once() {
        for env in paper_envs_even(32) {
            let r = simulate(&AppModel::pagerank(), &env, &fast_params());
            assert_eq!(r.total_jobs(), 96, "{}", env.name);
        }
    }

    #[test]
    fn centralized_envs_have_no_stealing_and_no_idle() {
        let app = AppModel::knn();
        for env in &paper_envs_even(32)[..2] {
            let r = simulate(&app, env, &fast_params());
            assert_eq!(r.total_stolen(), 0, "{}", env.name);
            assert_eq!(r.sites.len(), 1);
            let s = r.sites.values().next().unwrap();
            assert_eq!(s.idle, 0.0);
        }
    }

    #[test]
    fn skew_increases_stealing() {
        let app = AppModel::knn();
        let envs = paper_envs_even(32);
        let stolen: Vec<u64> =
            envs[2..].iter().map(|e| simulate(&app, e, &fast_params()).total_stolen()).collect();
        assert!(
            stolen[0] <= stolen[1] && stolen[1] <= stolen[2],
            "stealing must grow with skew: {stolen:?}"
        );
        assert!(stolen[2] > 0, "env-17/83 must steal");
    }

    #[test]
    fn hybrid_runs_are_slower_than_local_baseline() {
        let app = AppModel::knn();
        let envs = paper_envs_even(32);
        let base = simulate(&app, &envs[0], &fast_params());
        for env in &envs[2..] {
            let r = simulate(&app, env, &fast_params());
            assert!(
                r.total_time >= base.total_time * 0.95,
                "{} ({}s) should not beat env-local ({}s) materially",
                env.name,
                r.total_time,
                base.total_time
            );
        }
    }

    #[test]
    fn slowdown_grows_with_skew() {
        let app = AppModel::knn();
        let envs = paper_envs_even(32);
        let base = simulate(&app, &envs[0], &fast_params());
        let ratios: Vec<f64> = envs[2..]
            .iter()
            .map(|e| simulate(&app, e, &fast_params()).slowdown_ratio_vs(&base))
            .collect();
        assert!(ratios[0] < ratios[1] && ratios[1] < ratios[2], "{ratios:?}");
    }

    #[test]
    fn pagerank_global_reduction_dwarfs_knn() {
        let env = EnvConfig::new("env-50/50", 0.5, 16, 16);
        let knn = simulate(&AppModel::knn(), &env, &fast_params());
        let pr = simulate(&AppModel::pagerank(), &env, &fast_params());
        assert!(
            pr.global_reduction > 10.0 * knn.global_reduction,
            "pagerank {} vs knn {}",
            pr.global_reduction,
            knn.global_reduction
        );
    }

    #[test]
    fn more_cores_scale_kmeans_well() {
        let app = AppModel::kmeans();
        let envs = scalability_envs(&[4, 8, 16]);
        let times: Vec<f64> =
            envs.iter().map(|e| simulate(&app, e, &fast_params()).total_time).collect();
        let e1 = cloudburst_core::doubling_efficiency(times[0], times[1]);
        let e2 = cloudburst_core::doubling_efficiency(times[1], times[2]);
        assert!(e1 > 0.7 && e2 > 0.7, "kmeans efficiencies {e1} {e2}");
    }

    #[test]
    fn breakdown_components_are_nonnegative_and_sum() {
        let r = simulate(
            &AppModel::pagerank(),
            &EnvConfig::new("env-17/83", 0.17, 16, 16),
            &fast_params(),
        );
        for (site, s) in &r.sites {
            assert!(s.breakdown.processing > 0.0, "{site}");
            assert!(s.breakdown.retrieval > 0.0, "{site}");
            assert!(s.breakdown.sync >= 0.0, "{site}");
            assert!(s.finish_time <= r.total_time);
        }
    }
}
