//! Property tests for the storage substrate: for any layout parameters and
//! placement, organizing a dataset and reading it back — whole, per chunk,
//! or through the multi-threaded range fetcher — reproduces the bytes
//! exactly; the binary index format round-trips any valid index.

use bytes::Bytes;
use cloudburst_core::{DataIndex, LayoutParams, SiteId};
use cloudburst_storage::{
    decode_index, encode_index, fetch_range, fraction_placement, organize, reassemble, ChunkStore,
    FetchConfig, MemStore,
};
use proptest::prelude::*;

fn arb_layout() -> impl Strategy<Value = (LayoutParams, u64)> {
    (1u32..16, 1u64..20, 1u32..7, 1u64..200).prop_map(|(unit, upc, nf, n_chunk_ish)| {
        (LayoutParams { unit_size: unit, units_per_chunk: upc, n_files: nf }, n_chunk_ish * upc)
    })
}

fn dataset(units: u64, unit_size: u32, seed: u8) -> Bytes {
    let len = (units * u64::from(unit_size)) as usize;
    Bytes::from((0..len).map(|i| (i as u8).wrapping_mul(31).wrapping_add(seed)).collect::<Vec<_>>())
}

proptest! {
    #[test]
    fn organize_reassemble_roundtrip(
        (params, units) in arb_layout(),
        frac in 0.0f64..=1.0,
        seed in 0u8..255,
    ) {
        let data = dataset(units, params.unit_size, seed);
        let org = organize(&data, params, &mut fraction_placement(frac, params.n_files))
            .expect("organize");
        prop_assert_eq!(org.index.total_bytes() as usize, data.len());
        let back = reassemble(&org.index, &org.stores).expect("reassemble");
        prop_assert_eq!(back, data);
    }

    #[test]
    fn every_chunk_reads_back_its_exact_bytes(
        (params, units) in arb_layout(),
        frac in 0.0f64..=1.0,
    ) {
        let data = dataset(units, params.unit_size, 7);
        let org = organize(&data, params, &mut fraction_placement(frac, params.n_files))
            .expect("organize");
        // Walk the dataset in index order and compare chunk-by-chunk.
        let mut at = 0usize;
        for f in &org.index.files {
            let store = org.store(f.site);
            for &cid in &f.chunks {
                let c = org.index.chunk(cid);
                let got = store.read(c.file, c.offset, c.len).expect("chunk read");
                prop_assert_eq!(&got[..], &data[at..at + c.len as usize]);
                at += c.len as usize;
            }
        }
        prop_assert_eq!(at, data.len());
    }

    #[test]
    fn fetch_range_equals_direct_read(
        len in 1usize..5000,
        offset_frac in 0.0f64..1.0,
        read_frac in 0.0f64..=1.0,
        threads in 1u32..9,
        min_range in 1u64..512,
    ) {
        let data = dataset(len as u64, 1, 3);
        let store = MemStore::new(SiteId::LOCAL, vec![data.clone()]);
        let offset = ((len as f64) * offset_frac) as u64;
        let max_read = len as u64 - offset;
        let read = ((max_read as f64) * read_frac) as u64;
        let cfg = FetchConfig { threads, min_range };
        let got = fetch_range(&store, cloudburst_core::FileId(0), offset, read, cfg)
            .expect("fetch");
        prop_assert_eq!(&got[..], &data[offset as usize..(offset + read) as usize]);
    }

    #[test]
    fn index_codec_roundtrips_any_valid_index(
        (params, units) in arb_layout(),
        frac in 0.0f64..=1.0,
    ) {
        let n_local = (frac * f64::from(params.n_files)).round() as u32;
        let index = DataIndex::build(units, params, |f| {
            if f.0 < n_local { SiteId::LOCAL } else { SiteId::CLOUD }
        }).expect("build");
        let bytes = encode_index(&index);
        let back = decode_index(&bytes).expect("decode");
        prop_assert_eq!(back, index);
    }

    #[test]
    fn single_bitflip_never_decodes_silently(
        (params, units) in arb_layout(),
        flip_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let index = DataIndex::build(units, params, |_| SiteId::LOCAL).expect("build");
        let mut bytes = encode_index(&index).to_vec();
        let pos = (((bytes.len() as f64) * flip_frac) as usize).min(bytes.len() - 1);
        bytes[pos] ^= 1 << bit;
        // Either the checksum/structure rejects it, or (astronomically
        // unlikely with FNV over these sizes) it decodes to a *different*
        // index — it must never silently decode to the same one.
        if let Ok(decoded) = decode_index(&bytes) {
            prop_assert_ne!(decoded, index);
        }
    }
}
