//! A persistent pool of fetcher threads for ranged retrieval.
//!
//! The original multi-threaded fetch path spawned fresh OS threads for
//! every chunk (`std::thread::scope` in [`crate::fetch`]), paying a spawn +
//! join round trip per retrieval — thousands of times per run. A
//! [`FetcherPool`] is created once per store site and reused for every
//! chunk read against that site: range-read tasks go down a channel, a
//! fixed set of workers executes them, and the submitting thread collects
//! the filled buffers through its own completion channel.
//!
//! Tasks must never block on *other pool tasks* (ours are leaf range reads,
//! which only block on storage), so a bounded pool can be shared by any
//! number of concurrent fetchers without deadlock — excess tasks just
//! queue.

use crossbeam::channel::{unbounded, Sender};
use std::thread::JoinHandle;

type Task = Box<dyn FnOnce() + Send + 'static>;

/// A fixed-size pool of threads executing boxed fetch tasks.
///
/// Dropping the pool closes the task channel and joins every worker, so a
/// pool can never outlive its owner with tasks still running.
pub struct FetcherPool {
    tx: Option<Sender<Task>>,
    workers: Vec<JoinHandle<()>>,
}

impl FetcherPool {
    /// Spawn a pool of `threads` workers (at least one).
    #[must_use]
    pub fn new(threads: usize) -> FetcherPool {
        let threads = threads.max(1);
        let (tx, rx) = unbounded::<Task>();
        let workers = (0..threads)
            .map(|i| {
                let rx = rx.clone();
                std::thread::Builder::new()
                    .name(format!("fetcher-{i}"))
                    .spawn(move || {
                        // Channel closed (pool dropped) ends the worker.
                        while let Ok(task) = rx.recv() {
                            task();
                        }
                    })
                    .expect("spawn fetcher thread")
            })
            .collect();
        FetcherPool { tx: Some(tx), workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Submit a task for execution on some pool worker.
    pub fn execute(&self, task: impl FnOnce() + Send + 'static) {
        self.tx
            .as_ref()
            .expect("pool channel open while not dropped")
            .send(Box::new(task))
            .expect("fetcher workers alive while pool not dropped");
    }
}

impl Drop for FetcherPool {
    fn drop(&mut self) {
        // Close the channel so workers drain the queue and exit.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl std::fmt::Debug for FetcherPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FetcherPool").field("threads", &self.workers.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_every_submitted_task() {
        let pool = FetcherPool::new(4);
        let done = Arc::new(AtomicUsize::new(0));
        let (tx, rx) = unbounded();
        for _ in 0..100 {
            let done = done.clone();
            let tx = tx.clone();
            pool.execute(move || {
                done.fetch_add(1, Ordering::SeqCst);
                tx.send(()).unwrap();
            });
        }
        for _ in 0..100 {
            rx.recv().unwrap();
        }
        assert_eq!(done.load(Ordering::SeqCst), 100);
    }

    #[test]
    fn drop_joins_after_draining_the_queue() {
        let done = Arc::new(AtomicUsize::new(0));
        {
            let pool = FetcherPool::new(2);
            for _ in 0..50 {
                let done = done.clone();
                pool.execute(move || {
                    done.fetch_add(1, Ordering::SeqCst);
                });
            }
        } // drop: queue drained, workers joined
        assert_eq!(done.load(Ordering::SeqCst), 50);
    }

    #[test]
    fn zero_threads_is_clamped_to_one() {
        assert_eq!(FetcherPool::new(0).threads(), 1);
    }
}
