//! The data organizer (paper §III-B): cuts a dataset into files, chunks and
//! units, places files across sites, and emits the [`DataIndex`] the head
//! node reads to generate the job pool.

use crate::store::{check_range, no_such_file, ChunkStore};
use bytes::Bytes;
use cloudburst_core::{ByteSize, DataIndex, FileId, LayoutParams, SiteId};
use std::collections::BTreeMap;
use std::io;

/// A store holding an arbitrary subset of the dataset's files (a site hosts
/// only the files placed on it, but answers reads by *global* file id).
#[derive(Debug, Clone)]
pub struct SiteStore {
    site: SiteId,
    files: BTreeMap<FileId, Bytes>,
}

impl SiteStore {
    /// An empty store for `site`.
    #[must_use]
    pub fn new(site: SiteId) -> SiteStore {
        SiteStore { site, files: BTreeMap::new() }
    }

    /// Add one file's bytes.
    pub fn insert(&mut self, file: FileId, data: Bytes) {
        self.files.insert(file, data);
    }

    /// Ids of the files hosted here.
    #[must_use]
    pub fn file_ids(&self) -> Vec<FileId> {
        self.files.keys().copied().collect()
    }

    /// Total bytes hosted.
    #[must_use]
    pub fn total_bytes(&self) -> ByteSize {
        self.files.values().map(|b| b.len() as ByteSize).sum()
    }
}

impl ChunkStore for SiteStore {
    fn site(&self) -> SiteId {
        self.site
    }

    fn kind(&self) -> &'static str {
        "mem"
    }

    fn read(&self, file: FileId, offset: ByteSize, len: ByteSize) -> io::Result<Bytes> {
        let data = self.files.get(&file).ok_or_else(|| no_such_file(file))?;
        check_range(file, data.len() as ByteSize, offset, len)?;
        Ok(data.slice(offset as usize..(offset + len) as usize))
    }

    fn file_len(&self, file: FileId) -> io::Result<ByteSize> {
        self.files.get(&file).map(|b| b.len() as ByteSize).ok_or_else(|| no_such_file(file))
    }

    fn n_files(&self) -> usize {
        self.files.len()
    }
}

/// The organizer's output: the index plus one store per site that hosts data.
#[derive(Debug, Clone)]
pub struct Organized {
    /// The dataset's layout metadata (input to the head node).
    pub index: DataIndex,
    /// Per-site stores holding the actual bytes.
    pub stores: BTreeMap<SiteId, SiteStore>,
    /// Coded-redundancy replication factor the stores were populated with
    /// (1 = classic single-copy placement).
    pub redundancy: u32,
}

impl Organized {
    /// The store for `site`, or an empty one if the site hosts nothing.
    #[must_use]
    pub fn store(&self, site: SiteId) -> SiteStore {
        self.stores.get(&site).cloned().unwrap_or_else(|| SiteStore::new(site))
    }
}

/// File placement: pick the site hosting each file.
pub type Placement<'a> = dyn FnMut(FileId) -> SiteId + 'a;

/// Cut `data` (whose length must be a multiple of `params.unit_size`) into
/// files/chunks/units, place each file with `place`, and return the index
/// plus per-site stores.
///
/// Placement happens at file granularity, mirroring the paper's deployment
/// where whole dataset files were uploaded to S3.
pub fn organize(
    data: &Bytes,
    params: LayoutParams,
    place: &mut Placement<'_>,
) -> Result<Organized, String> {
    organize_redundant(data, params, place, 1)
}

/// [`organize`] with coded redundancy: every file's bytes are additionally
/// replicated onto `redundancy - 1` further sites (round-robin over the
/// other sites the placement uses), so any `r - 1` site losses leave a
/// complete local copy somewhere and re-executions never re-fetch over the
/// WAN. The **index is unchanged** — each file and chunk keeps its single
/// primary site, so the pool's locality and steal accounting are identical
/// to the classic layout; only the stores carry the extra copies.
/// `redundancy <= 1` is exactly [`organize`].
pub fn organize_redundant(
    data: &Bytes,
    params: LayoutParams,
    place: &mut Placement<'_>,
    redundancy: u32,
) -> Result<Organized, String> {
    params.validate()?;
    if data.is_empty() {
        return Err("dataset is empty".into());
    }
    if !data.len().is_multiple_of(params.unit_size as usize) {
        return Err(format!(
            "dataset length {} is not a multiple of unit_size {}",
            data.len(),
            params.unit_size
        ));
    }
    let redundancy = redundancy.max(1);
    let total_units = (data.len() / params.unit_size as usize) as u64;
    let index = DataIndex::build(total_units, params, &mut *place)?;

    // The replica target universe: every site the placement mentioned, in
    // id order, so the round-robin below is deterministic.
    let all_sites: Vec<SiteId> = {
        let mut s: Vec<SiteId> = index.files.iter().map(|f| f.site).collect();
        s.sort_unstable();
        s.dedup();
        s
    };
    let mut stores: BTreeMap<SiteId, SiteStore> = BTreeMap::new();
    let mut at: usize = 0;
    for fm in &index.files {
        let len = fm.len as usize;
        let slice = data.slice(at..at + len);
        at += len;
        stores
            .entry(fm.site)
            .or_insert_with(|| SiteStore::new(fm.site))
            .insert(fm.id, slice.clone());
        // r - 1 extra copies on the next distinct sites after the primary
        // (cyclically by site id): on the paper's two-site testbed r = 2
        // means every site holds everything.
        let primary_pos = all_sites.iter().position(|&s| s == fm.site).unwrap_or(0);
        let extra = (redundancy as usize - 1).min(all_sites.len() - 1);
        for k in 1..=extra {
            let site = all_sites[(primary_pos + k) % all_sites.len()];
            stores.entry(site).or_insert_with(|| SiteStore::new(site)).insert(fm.id, slice.clone());
        }
    }
    debug_assert_eq!(at, data.len());
    Ok(Organized { index, stores, redundancy })
}

/// Place the first `round(local_fraction * n_files)` files at the local
/// cluster and the rest in the cloud — the paper's env-50/50, env-33/67 and
/// env-17/83 data skews.
pub fn fraction_placement(local_fraction: f64, n_files: u32) -> impl FnMut(FileId) -> SiteId {
    let n_local = (local_fraction * f64::from(n_files)).round() as u32;
    move |f: FileId| {
        if f.0 < n_local {
            SiteId::LOCAL
        } else {
            SiteId::CLOUD
        }
    }
}

/// Reassemble the full dataset from the index and the per-site stores — the
/// round-trip check used by tests.
pub fn reassemble(index: &DataIndex, stores: &BTreeMap<SiteId, SiteStore>) -> io::Result<Bytes> {
    let mut out = Vec::with_capacity(index.total_bytes() as usize);
    for fm in &index.files {
        let store = stores.get(&fm.site).ok_or_else(|| {
            io::Error::new(io::ErrorKind::NotFound, format!("no store for {}", fm.site))
        })?;
        let data = store.read(fm.id, 0, fm.len)?;
        out.extend_from_slice(&data);
    }
    Ok(Bytes::from(out))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(units: usize, unit_size: usize) -> Bytes {
        Bytes::from((0..units * unit_size).map(|i| (i % 253) as u8).collect::<Vec<_>>())
    }

    fn params(unit: u32, upc: u64, nf: u32) -> LayoutParams {
        LayoutParams { unit_size: unit, units_per_chunk: upc, n_files: nf }
    }

    #[test]
    fn organize_roundtrips_exactly() {
        let data = dataset(256, 16);
        let org = organize(&data, params(16, 8, 4), &mut fraction_placement(0.5, 4)).unwrap();
        assert_eq!(org.index.total_bytes() as usize, data.len());
        let back = reassemble(&org.index, &org.stores).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn fraction_placement_splits_files() {
        let data = dataset(320, 8);
        let org = organize(&data, params(8, 10, 8), &mut fraction_placement(0.25, 8)).unwrap();
        // 2 of 8 files local.
        assert_eq!(org.store(SiteId::LOCAL).n_files(), 2);
        assert_eq!(org.store(SiteId::CLOUD).n_files(), 6);
        let f = org.index.byte_fraction_at(SiteId::LOCAL);
        assert!((f - 0.25).abs() < 0.01, "local byte fraction {f}");
    }

    #[test]
    fn all_local_placement_leaves_cloud_empty() {
        let data = dataset(64, 4);
        let org = organize(&data, params(4, 8, 2), &mut fraction_placement(1.0, 2)).unwrap();
        assert_eq!(org.store(SiteId::CLOUD).n_files(), 0);
        assert_eq!(org.store(SiteId::LOCAL).total_bytes() as usize, data.len());
    }

    #[test]
    fn chunks_read_back_through_their_site_store() {
        let data = dataset(128, 8);
        let org = organize(&data, params(8, 16, 4), &mut fraction_placement(0.5, 4)).unwrap();
        for c in &org.index.chunks {
            let store = org.store(c.site);
            let bytes = store.read(c.file, c.offset, c.len).unwrap();
            assert_eq!(bytes.len() as u64, c.len);
        }
    }

    #[test]
    fn redundant_organize_replicates_stores_but_not_the_index() {
        let data = dataset(256, 16);
        let plain = organize(&data, params(16, 8, 4), &mut fraction_placement(0.5, 4)).unwrap();
        let coded = organize_redundant(&data, params(16, 8, 4), &mut fraction_placement(0.5, 4), 2)
            .unwrap();
        // The index (and thus the job pool) is identical: replication is a
        // pure data-placement concern.
        assert_eq!(coded.index, plain.index);
        assert_eq!(coded.redundancy, 2);
        // On two sites, r = 2 means both stores hold every file.
        for site in [SiteId::LOCAL, SiteId::CLOUD] {
            assert_eq!(coded.store(site).n_files(), 4, "{site} must hold all files");
            assert_eq!(coded.store(site).total_bytes() as usize, data.len());
        }
        // Every chunk reads identical bytes from either store.
        for c in &coded.index.chunks {
            let a = coded.store(SiteId::LOCAL).read(c.file, c.offset, c.len).unwrap();
            let b = coded.store(SiteId::CLOUD).read(c.file, c.offset, c.len).unwrap();
            assert_eq!(a, b);
        }
        // Reassembly (which follows primary sites) is unaffected.
        assert_eq!(reassemble(&coded.index, &coded.stores).unwrap(), data);
    }

    #[test]
    fn redundancy_one_is_the_classic_layout() {
        let data = dataset(128, 8);
        let plain = organize(&data, params(8, 16, 4), &mut fraction_placement(0.5, 4)).unwrap();
        let r1 = organize_redundant(&data, params(8, 16, 4), &mut fraction_placement(0.5, 4), 1)
            .unwrap();
        assert_eq!(r1.index, plain.index);
        assert_eq!(r1.redundancy, 1);
        for site in [SiteId::LOCAL, SiteId::CLOUD] {
            assert_eq!(r1.store(site).file_ids(), plain.store(site).file_ids());
        }
    }

    #[test]
    fn misaligned_dataset_is_rejected() {
        let data = Bytes::from_static(b"123");
        let err = organize(&data, params(2, 4, 1), &mut fraction_placement(1.0, 1)).unwrap_err();
        assert!(err.contains("multiple of unit_size"));
    }

    #[test]
    fn empty_dataset_is_rejected() {
        let data = Bytes::new();
        assert!(organize(&data, params(2, 4, 1), &mut fraction_placement(1.0, 1)).is_err());
    }

    #[test]
    fn site_store_rejects_unhosted_files() {
        let data = dataset(64, 4);
        let org = organize(&data, params(4, 8, 2), &mut fraction_placement(0.5, 2)).unwrap();
        let local = org.store(SiteId::LOCAL);
        let cloud_file = org.index.files.iter().find(|f| f.site == SiteId::CLOUD).unwrap();
        assert_eq!(local.read(cloud_file.id, 0, 1).unwrap_err().kind(), io::ErrorKind::NotFound);
    }
}
