//! Per-store live metrics: [`MeteredStore`] decorates any [`ChunkStore`]
//! with request / byte / error counters and a read-latency histogram.
//!
//! The decorator sits directly above the backend (below retry and chaos
//! layers), so it sees every physical ranged read — retried attempts
//! included — at range granularity, uniformly across `FileStore`,
//! `S3SimStore` and `MemStore`. Instrument handles are resolved once at
//! construction; the per-read cost is two relaxed atomic adds plus one
//! `Instant` pair, and the whole decorator is skipped entirely when metrics
//! are off (the runtime only wraps stores for an enabled handle).

use crate::store::ChunkStore;
use bytes::Bytes;
use cloudburst_core::metrics::{Counter, Histogram, Metrics};
use cloudburst_core::{ByteSize, FileId, SiteId};
use std::io;
use std::sync::Arc;
use std::time::Instant;

/// A [`ChunkStore`] decorator feeding the live-metrics registry.
pub struct MeteredStore {
    inner: Arc<dyn ChunkStore>,
    requests: Counter,
    bytes: Counter,
    errors: Counter,
    latency: Histogram,
}

impl MeteredStore {
    /// Wrap `inner`, publishing its traffic under
    /// `cloudburst_store_*{site=..., store=...}` series. `store` names the
    /// backend flavor (e.g. `"file"`, `"s3sim"`, `"mem"`).
    #[must_use]
    pub fn new(inner: Arc<dyn ChunkStore>, metrics: &Metrics, store: &str) -> MeteredStore {
        let site = inner.site().to_string();
        let labels: &[(&str, &str)] = &[("site", &site), ("store", store)];
        MeteredStore {
            requests: metrics.counter(
                "cloudburst_store_requests_total",
                "Ranged reads issued against a backend (every physical attempt).",
                labels,
            ),
            bytes: metrics.counter(
                "cloudburst_store_bytes_total",
                "Bytes successfully read from a backend.",
                labels,
            ),
            errors: metrics.counter(
                "cloudburst_store_errors_total",
                "Ranged reads that returned an error (transient ones included).",
                labels,
            ),
            latency: metrics.histogram(
                "cloudburst_store_read_seconds",
                "Latency of one ranged read against a backend.",
                labels,
            ),
            inner,
        }
    }

    /// Shared accounting for both read entry points.
    fn account<T>(&self, started: Instant, got: u64, result: &io::Result<T>) {
        self.requests.inc();
        self.latency.observe_secs(started.elapsed().as_secs_f64());
        match result {
            Ok(_) => self.bytes.add(got),
            Err(_) => self.errors.inc(),
        }
    }
}

impl std::fmt::Debug for MeteredStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MeteredStore").field("site", &self.inner.site()).finish_non_exhaustive()
    }
}

impl ChunkStore for MeteredStore {
    fn site(&self) -> SiteId {
        self.inner.site()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn read(&self, file: FileId, offset: ByteSize, len: ByteSize) -> io::Result<Bytes> {
        let started = Instant::now();
        let result = self.inner.read(file, offset, len);
        self.account(started, len, &result);
        result
    }

    fn read_into(&self, file: FileId, offset: ByteSize, out: &mut [u8]) -> io::Result<()> {
        let started = Instant::now();
        let result = self.inner.read_into(file, offset, out);
        self.account(started, out.len() as ByteSize, &result);
        result
    }

    fn file_len(&self, file: FileId) -> io::Result<ByteSize> {
        self.inner.file_len(file)
    }

    fn n_files(&self) -> usize {
        self.inner.n_files()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;

    fn mem_store() -> Arc<dyn ChunkStore> {
        Arc::new(MemStore::new(SiteId::LOCAL, vec![Bytes::from(vec![7u8; 64])]))
    }

    #[test]
    fn counts_requests_bytes_and_latency() {
        let metrics = Metrics::on();
        let store = MeteredStore::new(mem_store(), &metrics, "mem");
        assert_eq!(store.read(FileId(0), 0, 16).unwrap().len(), 16);
        let mut buf = [0u8; 8];
        store.read_into(FileId(0), 8, &mut buf).unwrap();
        assert!(store.read(FileId(0), 60, 32).is_err(), "out of range");

        let text = metrics.registry().unwrap().render();
        assert!(text.contains("cloudburst_store_requests_total{site=\"local\",store=\"mem\"} 3"));
        assert!(text.contains("cloudburst_store_bytes_total{site=\"local\",store=\"mem\"} 24"));
        assert!(text.contains("cloudburst_store_errors_total{site=\"local\",store=\"mem\"} 1"));
        assert!(text.contains("cloudburst_store_read_seconds_count"));
    }

    #[test]
    fn disabled_metrics_are_inert_and_transparent() {
        let store = MeteredStore::new(mem_store(), &Metrics::off(), "mem");
        assert_eq!(store.site(), SiteId::LOCAL);
        assert_eq!(store.n_files(), 1);
        assert_eq!(store.file_len(FileId(0)).unwrap(), 64);
        assert_eq!(store.read(FileId(0), 0, 4).unwrap(), Bytes::from(vec![7u8; 4]));
    }
}
