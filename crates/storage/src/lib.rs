//! # cloudburst-storage
//!
//! The storage substrate of the cloudburst framework:
//!
//! * the [`ChunkStore`] ranged-read abstraction every slave retrieves
//!   through ([`store`]);
//! * backends: in-memory ([`mem`]), on-disk ([`mod@file`]), and the simulated
//!   Amazon S3 with per-connection limits, a connection cap, and an
//!   aggregate bandwidth pipe ([`s3sim`]);
//! * multi-threaded ranged retrieval, the paper's "multiple retrieval
//!   threads" optimization ([`fetch`]), with a persistent fetcher-thread
//!   pool and zero-copy chunk reassembly ([`pool`]);
//! * the data organizer that cuts a dataset into files/chunks/units, places
//!   files across sites and emits the index ([`organizer`]);
//! * the binary on-disk index format ([`index_io`]);
//! * transient-error classification and capped exponential backoff with
//!   deterministic jitter for range reads ([`retry`]);
//! * seeded, replayable fault injection over any store ([`chaos`]);
//! * live-metrics decoration over any store — request/byte/error counters
//!   and read-latency histograms ([`metered`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod chaos;
pub mod fetch;
pub mod file;
pub mod index_io;
pub mod mem;
pub mod metered;
pub mod organizer;
pub mod pool;
pub mod retry;
pub mod s3sim;
pub mod store;

pub use chaos::ChaosStore;
pub use fetch::{
    fetch_chunk, fetch_chunk_observed, fetch_chunk_pooled, fetch_chunk_with_retry, fetch_range,
    fetch_range_observed, fetch_range_pooled, fetch_range_with_retry, FetchConfig,
};
pub use file::FileStore;
pub use index_io::{
    decode_index, decode_index_meta, encode_index, encode_index_redundant, read_index,
    read_index_meta, write_index, write_index_redundant,
};
pub use mem::MemStore;
pub use metered::MeteredStore;
pub use organizer::{
    fraction_placement, organize, organize_redundant, reassemble, Organized, SiteStore,
};
pub use pool::FetcherPool;
pub use retry::{
    is_transient, read_into_with_retry, read_with_retry, read_with_retry_observed, RetryAttempt,
    RetryObserver, RetryPolicy, SharedRetryObserver,
};
pub use s3sim::{S3Config, S3Metrics, S3SimStore};
pub use store::ChunkStore;
