//! On-disk format for the data index ("A data index file is generated after
//! analyzing the data set").
//!
//! The workspace's only approved serialization dependency is `serde` without
//! a format crate, so the index uses a small hand-rolled little-endian
//! binary format:
//!
//! ```text
//! magic   b"CBIX"                     4 bytes
//! version u16                         currently 1
//! params  unit_size u32, units_per_chunk u64, n_files u32
//! n_files u32, then per file:  site u16, len u64, n_chunks u32, chunk ids u32...
//! n_chunks u32, then per chunk: file u32, offset u64, len u64, n_units u64, site u16
//! crc     u32 (FNV-1a over everything before it)
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cloudburst_core::{ChunkId, ChunkMeta, DataIndex, FileId, FileMeta, LayoutParams, SiteId};
use std::io::{self, ErrorKind};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CBIX";
const VERSION: u16 = 1;

fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Serialize an index to its binary format.
#[must_use]
pub fn encode_index(index: &DataIndex) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + index.chunks.len() * 34);
    buf.put_slice(MAGIC);
    buf.put_u16_le(VERSION);
    buf.put_u32_le(index.params.unit_size);
    buf.put_u64_le(index.params.units_per_chunk);
    buf.put_u32_le(index.params.n_files);
    buf.put_u32_le(index.files.len() as u32);
    for f in &index.files {
        buf.put_u16_le(f.site.0);
        buf.put_u64_le(f.len);
        buf.put_u32_le(f.chunks.len() as u32);
        for c in &f.chunks {
            buf.put_u32_le(c.0);
        }
    }
    buf.put_u32_le(index.chunks.len() as u32);
    for c in &index.chunks {
        buf.put_u32_le(c.file.0);
        buf.put_u64_le(c.offset);
        buf.put_u64_le(c.len);
        buf.put_u64_le(c.n_units);
        buf.put_u16_le(c.site.0);
    }
    let crc = fnv1a(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Parse an index from its binary format, verifying magic, version, checksum
/// and internal consistency.
pub fn decode_index(data: &[u8]) -> io::Result<DataIndex> {
    if data.len() < MAGIC.len() + 2 + 4 {
        return Err(err("index file truncated"));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if fnv1a(body) != stored_crc {
        return Err(err("index checksum mismatch"));
    }
    let mut buf = body;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic: not a cloudburst index"));
    }
    let version = buf.get_u16_le();
    if version != VERSION {
        return Err(err(format!("unsupported index version {version}")));
    }
    let check =
        |cond: bool, what: &str| if cond { Ok(()) } else { Err(err(format!("truncated {what}"))) };

    check(buf.remaining() >= 16, "params")?;
    let params = LayoutParams {
        unit_size: buf.get_u32_le(),
        units_per_chunk: buf.get_u64_le(),
        n_files: buf.get_u32_le(),
    };
    check(buf.remaining() >= 4, "file count")?;
    let n_files = buf.get_u32_le() as usize;
    let mut files = Vec::with_capacity(n_files.min(1 << 20));
    for i in 0..n_files {
        check(buf.remaining() >= 14, "file record")?;
        let site = SiteId(buf.get_u16_le());
        let len = buf.get_u64_le();
        let n_chunks = buf.get_u32_le() as usize;
        check(buf.remaining() >= n_chunks * 4, "file chunk list")?;
        let chunks = (0..n_chunks).map(|_| ChunkId(buf.get_u32_le())).collect();
        files.push(FileMeta { id: FileId(i as u32), site, len, chunks });
    }
    check(buf.remaining() >= 4, "chunk count")?;
    let n_chunks = buf.get_u32_le() as usize;
    let mut chunks = Vec::with_capacity(n_chunks.min(1 << 24));
    for i in 0..n_chunks {
        check(buf.remaining() >= 30, "chunk record")?;
        chunks.push(ChunkMeta {
            id: ChunkId(i as u32),
            file: FileId(buf.get_u32_le()),
            offset: buf.get_u64_le(),
            len: buf.get_u64_le(),
            n_units: buf.get_u64_le(),
            site: SiteId(buf.get_u16_le()),
        });
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes after index"));
    }
    let index = DataIndex { params, files, chunks };
    index.validate().map_err(err)?;
    Ok(index)
}

/// Write an index to a file.
pub fn write_index(index: &DataIndex, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, encode_index(index))
}

/// Read an index from a file.
pub fn read_index(path: impl AsRef<Path>) -> io::Result<DataIndex> {
    decode_index(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> DataIndex {
        DataIndex::build(
            1000,
            LayoutParams { unit_size: 16, units_per_chunk: 64, n_files: 4 },
            |f| if f.0 % 2 == 0 { SiteId::LOCAL } else { SiteId::CLOUD },
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let idx = sample_index();
        let bytes = encode_index(&idx);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cbix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.idx");
        let idx = sample_index();
        write_index(&idx, &path).unwrap();
        assert_eq!(read_index(&path).unwrap(), idx);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let mut bytes = encode_index(&sample_index()).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let e = decode_index(&bytes).unwrap_err();
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn truncation_fails_cleanly() {
        let bytes = encode_index(&sample_index());
        for cut in [0, 3, 10, bytes.len() - 5] {
            assert!(decode_index(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = encode_index(&sample_index()).to_vec();
        bytes[0] = b'X';
        // Fix up the checksum so the magic check is what trips.
        let body_len = bytes.len() - 4;
        let crc = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let e = decode_index(&bytes).unwrap_err();
        assert!(e.to_string().contains("magic"));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = encode_index(&sample_index()).to_vec();
        bytes[4] = 9; // version low byte
        let body_len = bytes.len() - 4;
        let crc = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let e = decode_index(&bytes).unwrap_err();
        assert!(e.to_string().contains("version"));
    }

    #[test]
    fn decoded_index_is_validated() {
        // Encode a structurally broken index; decode must reject it.
        let mut idx = sample_index();
        idx.chunks[0].len += 16;
        let bytes = encode_index(&idx);
        assert!(decode_index(&bytes).is_err());
    }
}
