//! On-disk format for the data index ("A data index file is generated after
//! analyzing the data set").
//!
//! The workspace's only approved serialization dependency is `serde` without
//! a format crate, so the index uses a small hand-rolled little-endian
//! binary format:
//!
//! ```text
//! magic   b"CBIX"                     4 bytes
//! version u16                         1 (classic) or 2 (coded redundancy)
//! redund  u16                         version 2 only: replication factor r
//! params  unit_size u32, units_per_chunk u64, n_files u32
//! n_files u32, then per file:  site u16, len u64, n_chunks u32, chunk ids u32...
//! n_chunks u32, then per chunk: file u32, offset u64, len u64, n_units u64, site u16
//! crc     u32 (FNV-1a over everything before it)
//! ```
//!
//! Version 1 and version 2 differ only by the `redund` field: a version-1
//! index is exactly a version-2 index with `r = 1`, and an organizer run
//! with `--redundancy 1` emits version 1 bit-for-bit, so pre-coded readers
//! and writers interoperate unchanged.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use cloudburst_core::{ChunkId, ChunkMeta, DataIndex, FileId, FileMeta, LayoutParams, SiteId};
use std::io::{self, ErrorKind};
use std::path::Path;

const MAGIC: &[u8; 4] = b"CBIX";
const VERSION: u16 = 1;
/// Version 2 = version 1 plus a `u16` replication factor after the version.
const VERSION_CODED: u16 = 2;

fn fnv1a(data: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in data {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn err(msg: impl Into<String>) -> io::Error {
    io::Error::new(ErrorKind::InvalidData, msg.into())
}

/// Serialize an index to its binary format (version 1, `r = 1`).
#[must_use]
pub fn encode_index(index: &DataIndex) -> Bytes {
    encode_index_redundant(index, 1)
}

/// Serialize an index carrying a coded-redundancy replication factor.
/// `redundancy <= 1` emits the classic version-1 format bit-for-bit;
/// `redundancy > 1` emits version 2 with the factor recorded after the
/// version field.
#[must_use]
pub fn encode_index_redundant(index: &DataIndex, redundancy: u32) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 + index.chunks.len() * 34);
    buf.put_slice(MAGIC);
    if redundancy > 1 {
        buf.put_u16_le(VERSION_CODED);
        buf.put_u16_le(redundancy.min(u32::from(u16::MAX)) as u16);
    } else {
        buf.put_u16_le(VERSION);
    }
    buf.put_u32_le(index.params.unit_size);
    buf.put_u64_le(index.params.units_per_chunk);
    buf.put_u32_le(index.params.n_files);
    buf.put_u32_le(index.files.len() as u32);
    for f in &index.files {
        buf.put_u16_le(f.site.0);
        buf.put_u64_le(f.len);
        buf.put_u32_le(f.chunks.len() as u32);
        for c in &f.chunks {
            buf.put_u32_le(c.0);
        }
    }
    buf.put_u32_le(index.chunks.len() as u32);
    for c in &index.chunks {
        buf.put_u32_le(c.file.0);
        buf.put_u64_le(c.offset);
        buf.put_u64_le(c.len);
        buf.put_u64_le(c.n_units);
        buf.put_u16_le(c.site.0);
    }
    let crc = fnv1a(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Parse an index from its binary format, verifying magic, version, checksum
/// and internal consistency. Accepts version 1 and version 2, discarding the
/// replication factor — use [`decode_index_meta`] to keep it.
pub fn decode_index(data: &[u8]) -> io::Result<DataIndex> {
    decode_index_meta(data).map(|(index, _)| index)
}

/// Parse an index and its coded-redundancy replication factor (1 for a
/// classic version-1 index).
pub fn decode_index_meta(data: &[u8]) -> io::Result<(DataIndex, u32)> {
    if data.len() < MAGIC.len() + 2 + 4 {
        return Err(err("index file truncated"));
    }
    let (body, crc_bytes) = data.split_at(data.len() - 4);
    let stored_crc = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if fnv1a(body) != stored_crc {
        return Err(err("index checksum mismatch"));
    }
    let mut buf = body;
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(err("bad magic: not a cloudburst index"));
    }
    let version = buf.get_u16_le();
    if version != VERSION && version != VERSION_CODED {
        return Err(err(format!("unsupported index version {version}")));
    }
    let redundancy = if version == VERSION_CODED {
        if buf.remaining() < 2 {
            return Err(err("truncated redundancy field"));
        }
        u32::from(buf.get_u16_le()).max(1)
    } else {
        1
    };
    let check =
        |cond: bool, what: &str| if cond { Ok(()) } else { Err(err(format!("truncated {what}"))) };

    check(buf.remaining() >= 16, "params")?;
    let params = LayoutParams {
        unit_size: buf.get_u32_le(),
        units_per_chunk: buf.get_u64_le(),
        n_files: buf.get_u32_le(),
    };
    check(buf.remaining() >= 4, "file count")?;
    let n_files = buf.get_u32_le() as usize;
    let mut files = Vec::with_capacity(n_files.min(1 << 20));
    for i in 0..n_files {
        check(buf.remaining() >= 14, "file record")?;
        let site = SiteId(buf.get_u16_le());
        let len = buf.get_u64_le();
        let n_chunks = buf.get_u32_le() as usize;
        check(buf.remaining() >= n_chunks * 4, "file chunk list")?;
        let chunks = (0..n_chunks).map(|_| ChunkId(buf.get_u32_le())).collect();
        files.push(FileMeta { id: FileId(i as u32), site, len, chunks });
    }
    check(buf.remaining() >= 4, "chunk count")?;
    let n_chunks = buf.get_u32_le() as usize;
    let mut chunks = Vec::with_capacity(n_chunks.min(1 << 24));
    for i in 0..n_chunks {
        check(buf.remaining() >= 30, "chunk record")?;
        chunks.push(ChunkMeta {
            id: ChunkId(i as u32),
            file: FileId(buf.get_u32_le()),
            offset: buf.get_u64_le(),
            len: buf.get_u64_le(),
            n_units: buf.get_u64_le(),
            site: SiteId(buf.get_u16_le()),
        });
    }
    if buf.has_remaining() {
        return Err(err("trailing bytes after index"));
    }
    let index = DataIndex { params, files, chunks };
    index.validate().map_err(err)?;
    Ok((index, redundancy))
}

/// Write an index to a file (version 1, `r = 1`).
pub fn write_index(index: &DataIndex, path: impl AsRef<Path>) -> io::Result<()> {
    std::fs::write(path, encode_index(index))
}

/// Write an index carrying a coded-redundancy replication factor; `r = 1`
/// writes the classic version-1 format.
pub fn write_index_redundant(
    index: &DataIndex,
    redundancy: u32,
    path: impl AsRef<Path>,
) -> io::Result<()> {
    std::fs::write(path, encode_index_redundant(index, redundancy))
}

/// Read an index from a file.
pub fn read_index(path: impl AsRef<Path>) -> io::Result<DataIndex> {
    decode_index(&std::fs::read(path)?)
}

/// Read an index and its replication factor (1 for version-1 files).
pub fn read_index_meta(path: impl AsRef<Path>) -> io::Result<(DataIndex, u32)> {
    decode_index_meta(&std::fs::read(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_index() -> DataIndex {
        DataIndex::build(
            1000,
            LayoutParams { unit_size: 16, units_per_chunk: 64, n_files: 4 },
            |f| if f.0 % 2 == 0 { SiteId::LOCAL } else { SiteId::CLOUD },
        )
        .unwrap()
    }

    #[test]
    fn encode_decode_roundtrip() {
        let idx = sample_index();
        let bytes = encode_index(&idx);
        let back = decode_index(&bytes).unwrap();
        assert_eq!(back, idx);
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join(format!("cbix-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("dataset.idx");
        let idx = sample_index();
        write_index(&idx, &path).unwrap();
        assert_eq!(read_index(&path).unwrap(), idx);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupted_byte_fails_checksum() {
        let mut bytes = encode_index(&sample_index()).to_vec();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        let e = decode_index(&bytes).unwrap_err();
        assert!(e.to_string().contains("checksum"));
    }

    #[test]
    fn truncation_fails_cleanly() {
        let bytes = encode_index(&sample_index());
        for cut in [0, 3, 10, bytes.len() - 5] {
            assert!(decode_index(&bytes[..cut]).is_err(), "cut at {cut} must fail");
        }
    }

    #[test]
    fn wrong_magic_rejected() {
        let mut bytes = encode_index(&sample_index()).to_vec();
        bytes[0] = b'X';
        // Fix up the checksum so the magic check is what trips.
        let body_len = bytes.len() - 4;
        let crc = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let e = decode_index(&bytes).unwrap_err();
        assert!(e.to_string().contains("magic"));
    }

    #[test]
    fn unsupported_version_rejected() {
        let mut bytes = encode_index(&sample_index()).to_vec();
        bytes[4] = 9; // version low byte
        let body_len = bytes.len() - 4;
        let crc = fnv1a(&bytes[..body_len]);
        bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        let e = decode_index(&bytes).unwrap_err();
        assert!(e.to_string().contains("version"));
    }

    #[test]
    fn redundant_encoding_roundtrips_and_r1_is_bit_exact() {
        let idx = sample_index();
        // r = 1 emits the classic version-1 bytes, bit for bit.
        assert_eq!(encode_index_redundant(&idx, 1), encode_index(&idx));
        assert_eq!(decode_index_meta(&encode_index(&idx)).unwrap(), (idx.clone(), 1));
        // r = 2 round-trips through version 2 and survives a plain decode.
        let coded = encode_index_redundant(&idx, 2);
        assert_ne!(coded, encode_index(&idx));
        assert_eq!(decode_index_meta(&coded).unwrap(), (idx.clone(), 2));
        assert_eq!(decode_index(&coded).unwrap(), idx);
    }

    #[test]
    fn decoded_index_is_validated() {
        // Encode a structurally broken index; decode must reject it.
        let mut idx = sample_index();
        idx.chunks[0].len += 16;
        let bytes = encode_index(&idx);
        assert!(decode_index(&bytes).is_err());
    }
}
