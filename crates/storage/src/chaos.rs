//! Deterministic fault injection at the storage layer.
//!
//! [`ChaosStore`] wraps any [`ChunkStore`] and makes ranged reads fail
//! transiently according to a seeded [`FaultPlan`] — the same plan, the
//! same failures, every run. This is how the failure experiments exercise
//! the retry path without touching the backends: the store under test stays
//! byte-identical, only the error schedule is injected.

use crate::store::ChunkStore;
use bytes::Bytes;
use cloudburst_core::fault::FaultPlan;
use cloudburst_core::{ByteSize, FileId, SiteId};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A [`ChunkStore`] decorator that injects deterministic transient read
/// failures per the plan's `storage_error_rate`.
///
/// Each `(file, offset)` range tracks its consecutive failed attempts; the
/// plan decides per `(file, offset, attempt)` whether to fail, and caps the
/// consecutive failures (`storage_max_consecutive`) so a bounded retry
/// budget always eventually succeeds. A successful read resets the range's
/// attempt counter, so the schedule replays identically run over run.
pub struct ChaosStore {
    inner: Arc<dyn ChunkStore>,
    plan: Arc<FaultPlan>,
    attempts: Mutex<HashMap<(u32, u64), u32>>,
    injected: AtomicU64,
}

impl ChaosStore {
    /// Wrap `inner`, injecting the storage faults of `plan`.
    #[must_use]
    pub fn new(inner: Arc<dyn ChunkStore>, plan: Arc<FaultPlan>) -> ChaosStore {
        ChaosStore {
            inner,
            plan,
            attempts: Mutex::new(HashMap::new()),
            injected: AtomicU64::new(0),
        }
    }

    /// Total injected failures so far (diagnostic aid for tests).
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.injected.load(Ordering::Relaxed)
    }

    /// Consult the plan's schedule for this range's next attempt; returns
    /// the injected error when it is the range's turn to fail.
    fn inject(&self, file: FileId, offset: ByteSize) -> io::Result<()> {
        let mut attempts = self.attempts.lock();
        let n = attempts.entry((file.0, offset)).or_insert(0);
        if self.plan.storage_read_fails(file.0, offset, *n) {
            *n += 1;
            self.injected.fetch_add(1, Ordering::Relaxed);
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                format!("chaos: injected transient failure for {file} @ {offset}"),
            ));
        }
        Ok(())
    }
}

impl std::fmt::Debug for ChaosStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ChaosStore").field("plan", &self.plan).finish_non_exhaustive()
    }
}

impl ChunkStore for ChaosStore {
    fn site(&self) -> SiteId {
        self.inner.site()
    }

    fn kind(&self) -> &'static str {
        self.inner.kind()
    }

    fn read(&self, file: FileId, offset: ByteSize, len: ByteSize) -> io::Result<Bytes> {
        self.inject(file, offset)?;
        let result = self.inner.read(file, offset, len);
        if result.is_ok() {
            self.attempts.lock().remove(&(file.0, offset));
        }
        result
    }

    fn read_into(&self, file: FileId, offset: ByteSize, out: &mut [u8]) -> io::Result<()> {
        self.inject(file, offset)?;
        let result = self.inner.read_into(file, offset, out);
        if result.is_ok() {
            self.attempts.lock().remove(&(file.0, offset));
        }
        result
    }

    fn file_len(&self, file: FileId) -> io::Result<ByteSize> {
        self.inner.file_len(file)
    }

    fn n_files(&self) -> usize {
        self.inner.n_files()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fetch::{fetch_range_with_retry, FetchConfig};
    use crate::mem::MemStore;
    use crate::retry::RetryPolicy;

    fn chaotic(rate: f64, max_consecutive: u32, data: Vec<u8>) -> ChaosStore {
        let plan = FaultPlan {
            storage_error_rate: rate,
            storage_max_consecutive: max_consecutive,
            ..FaultPlan::seeded(42)
        };
        let inner: Arc<dyn ChunkStore> =
            Arc::new(MemStore::new(SiteId::CLOUD, vec![Bytes::from(data)]));
        ChaosStore::new(inner, Arc::new(plan))
    }

    #[test]
    fn always_fail_rate_is_capped_by_max_consecutive() {
        let store = chaotic(1.0, 2, vec![9u8; 100]);
        assert!(store.read(FileId(0), 0, 100).is_err());
        assert!(store.read(FileId(0), 0, 100).is_err());
        let ok = store.read(FileId(0), 0, 100).unwrap();
        assert_eq!(ok.len(), 100);
        // The counter reset on success: the schedule repeats.
        assert!(store.read(FileId(0), 0, 100).is_err());
    }

    #[test]
    fn injection_is_per_range_and_deterministic() {
        let a = chaotic(0.5, 1, vec![1u8; 1000]);
        let b = chaotic(0.5, 1, vec![1u8; 1000]);
        for offset in (0..1000).step_by(100) {
            assert_eq!(
                a.read(FileId(0), offset, 100).is_err(),
                b.read(FileId(0), offset, 100).is_err(),
                "same plan must fail the same ranges"
            );
        }
    }

    #[test]
    fn zero_rate_injects_nothing() {
        let store = chaotic(0.0, 2, vec![3u8; 64]);
        for _ in 0..10 {
            assert!(store.read(FileId(0), 0, 64).is_ok());
        }
        assert_eq!(store.injected(), 0);
    }

    #[test]
    fn retrying_fetch_absorbs_injected_faults() {
        let data: Vec<u8> = (0..10_000u32).map(|i| (i % 241) as u8).collect();
        let store = chaotic(0.6, 3, data.clone());
        let cfg = FetchConfig { threads: 4, min_range: 512 };
        let policy = RetryPolicy { max_retries: 4, base: 0.0, cap: 0.0, seed: 1 };
        let (bytes, retries) =
            fetch_range_with_retry(&store, FileId(0), 0, 10_000, cfg, &policy).unwrap();
        assert_eq!(bytes.to_vec(), data, "reassembly must survive retries");
        assert!(retries > 0, "a 60% rate must inject something across 4 ranges");
    }
}
