//! A filesystem-backed store: the dataset's files live on disk as
//! `data-<n>.bin` inside one directory, matching the paper's dedicated
//! storage node holding the 32 dataset files.

use crate::store::{check_range, no_such_file, ChunkStore};
use bytes::Bytes;
use cloudburst_core::{ByteSize, FileId, SiteId};
use std::fs::File;
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Name of the `n`-th dataset file inside a store directory.
#[must_use]
pub fn file_name(n: u32) -> String {
    format!("data-{n:05}.bin")
}

/// A directory of dataset files, opened per read (stores are shared across
/// threads and `File` seeks are stateful, so each read opens its own handle;
/// the OS page cache makes this cheap).
#[derive(Debug, Clone)]
pub struct FileStore {
    site: SiteId,
    dir: PathBuf,
    lens: Vec<ByteSize>,
}

impl FileStore {
    /// Open a store over the `data-*.bin` files in `dir`.
    pub fn open(site: SiteId, dir: impl AsRef<Path>) -> io::Result<FileStore> {
        let dir = dir.as_ref().to_path_buf();
        let mut lens = Vec::new();
        loop {
            let path = dir.join(file_name(lens.len() as u32));
            match std::fs::metadata(&path) {
                Ok(m) => lens.push(m.len()),
                Err(e) if e.kind() == io::ErrorKind::NotFound => break,
                Err(e) => return Err(e),
            }
        }
        Ok(FileStore { site, dir, lens })
    }

    /// Create a store directory by writing `files` as `data-*.bin`.
    pub fn create(site: SiteId, dir: impl AsRef<Path>, files: &[Bytes]) -> io::Result<FileStore> {
        let dir = dir.as_ref();
        std::fs::create_dir_all(dir)?;
        for (n, data) in files.iter().enumerate() {
            let mut f = File::create(dir.join(file_name(n as u32)))?;
            f.write_all(data)?;
        }
        FileStore::open(site, dir)
    }

    /// The backing directory.
    #[must_use]
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    fn path(&self, file: FileId) -> PathBuf {
        self.dir.join(file_name(file.0))
    }
}

impl ChunkStore for FileStore {
    fn site(&self) -> SiteId {
        self.site
    }

    fn kind(&self) -> &'static str {
        "file"
    }

    fn read(&self, file: FileId, offset: ByteSize, len: ByteSize) -> io::Result<Bytes> {
        let mut buf = vec![0u8; len as usize];
        self.read_into(file, offset, &mut buf)?;
        Ok(Bytes::from(buf))
    }

    fn read_into(&self, file: FileId, offset: ByteSize, out: &mut [u8]) -> io::Result<()> {
        let file_len = *self.lens.get(file.0 as usize).ok_or_else(|| no_such_file(file))?;
        check_range(file, file_len, offset, out.len() as ByteSize)?;
        let mut f = File::open(self.path(file))?;
        f.seek(SeekFrom::Start(offset))?;
        f.read_exact(out)
    }

    fn file_len(&self, file: FileId) -> io::Result<ByteSize> {
        self.lens.get(file.0 as usize).copied().ok_or_else(|| no_such_file(file))
    }

    fn n_files(&self) -> usize {
        self.lens.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir()
            .join("cloudburst-tests")
            .join(format!("filestore-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn create_then_read_back() {
        let dir = tmpdir("roundtrip");
        let files = vec![Bytes::from_static(b"abcdef"), Bytes::from_static(b"XYZ")];
        let s = FileStore::create(SiteId::LOCAL, &dir, &files).unwrap();
        assert_eq!(s.n_files(), 2);
        assert_eq!(s.read(FileId(0), 2, 3).unwrap(), Bytes::from_static(b"cde"));
        assert_eq!(s.read(FileId(1), 0, 3).unwrap(), Bytes::from_static(b"XYZ"));
        assert_eq!(s.file_len(FileId(1)).unwrap(), 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_discovers_files() {
        let dir = tmpdir("reopen");
        let files = vec![Bytes::from_static(b"12345678")];
        let _ = FileStore::create(SiteId::CLOUD, &dir, &files).unwrap();
        let s = FileStore::open(SiteId::CLOUD, &dir).unwrap();
        assert_eq!(s.n_files(), 1);
        assert_eq!(s.site(), SiteId::CLOUD);
        assert_eq!(s.read(FileId(0), 4, 4).unwrap(), Bytes::from_static(b"5678"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn out_of_range_and_missing_file_errors() {
        let dir = tmpdir("errors");
        let s = FileStore::create(SiteId::LOCAL, &dir, &[Bytes::from_static(b"ab")]).unwrap();
        assert_eq!(s.read(FileId(0), 1, 5).unwrap_err().kind(), io::ErrorKind::UnexpectedEof);
        assert_eq!(s.read(FileId(7), 0, 1).unwrap_err().kind(), io::ErrorKind::NotFound);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_directory_is_empty_store() {
        let dir = tmpdir("empty");
        std::fs::create_dir_all(&dir).unwrap();
        let s = FileStore::open(SiteId::LOCAL, &dir).unwrap();
        assert_eq!(s.n_files(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
