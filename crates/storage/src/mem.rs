//! An in-memory store: the backend for tests and for datasets generated on
//! the fly by the examples.

use crate::store::{check_range, no_such_file, ChunkStore};
use bytes::Bytes;
use cloudburst_core::{ByteSize, FileId, SiteId};
use std::io;

/// An immutable in-memory file set.
#[derive(Debug, Clone)]
pub struct MemStore {
    site: SiteId,
    files: Vec<Bytes>,
}

impl MemStore {
    /// A store at `site` holding `files` (index = `FileId.0`).
    #[must_use]
    pub fn new(site: SiteId, files: Vec<Bytes>) -> MemStore {
        MemStore { site, files }
    }

    /// An empty store (useful as the "other" site in single-site setups).
    #[must_use]
    pub fn empty(site: SiteId) -> MemStore {
        MemStore { site, files: Vec::new() }
    }

    /// Total bytes across files.
    #[must_use]
    pub fn total_bytes(&self) -> ByteSize {
        self.files.iter().map(|f| f.len() as ByteSize).sum()
    }

    fn file(&self, file: FileId) -> io::Result<&Bytes> {
        self.files.get(file.0 as usize).ok_or_else(|| no_such_file(file))
    }
}

impl ChunkStore for MemStore {
    fn site(&self) -> SiteId {
        self.site
    }

    fn kind(&self) -> &'static str {
        "mem"
    }

    fn read(&self, file: FileId, offset: ByteSize, len: ByteSize) -> io::Result<Bytes> {
        let data = self.file(file)?;
        check_range(file, data.len() as ByteSize, offset, len)?;
        // Bytes::slice is zero-copy: workers share the backing allocation.
        Ok(data.slice(offset as usize..(offset + len) as usize))
    }

    fn file_len(&self, file: FileId) -> io::Result<ByteSize> {
        Ok(self.file(file)?.len() as ByteSize)
    }

    fn n_files(&self) -> usize {
        self.files.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> MemStore {
        MemStore::new(
            SiteId::LOCAL,
            vec![Bytes::from_static(b"hello world"), Bytes::from_static(b"0123456789")],
        )
    }

    #[test]
    fn reads_exact_ranges() {
        let s = store();
        assert_eq!(s.read(FileId(0), 0, 5).unwrap(), Bytes::from_static(b"hello"));
        assert_eq!(s.read(FileId(1), 3, 4).unwrap(), Bytes::from_static(b"3456"));
        assert_eq!(s.read(FileId(0), 11, 0).unwrap().len(), 0);
    }

    #[test]
    fn read_beyond_end_fails() {
        let e = store().read(FileId(0), 6, 10).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
    }

    #[test]
    fn missing_file_fails() {
        let e = store().read(FileId(5), 0, 1).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::NotFound);
    }

    #[test]
    fn metadata_accessors() {
        let s = store();
        assert_eq!(s.site(), SiteId::LOCAL);
        assert_eq!(s.n_files(), 2);
        assert_eq!(s.file_len(FileId(0)).unwrap(), 11);
        assert_eq!(s.total_bytes(), 21);
        assert_eq!(MemStore::empty(SiteId::CLOUD).n_files(), 0);
    }

    #[test]
    fn slices_share_backing_storage() {
        let s = store();
        let a = s.read(FileId(0), 0, 5).unwrap();
        let b = s.read(FileId(0), 0, 5).unwrap();
        assert_eq!(a.as_ptr(), b.as_ptr(), "zero-copy reads expected");
    }
}
