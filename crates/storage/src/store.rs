//! The storage abstraction slaves retrieve chunks through.
//!
//! A [`ChunkStore`] answers ranged reads against the dataset's files — the
//! same operation whether the bytes live on the cluster's storage node, in
//! Amazon S3, or in memory for tests. Stores are shared across worker
//! threads, so every method takes `&self`.

use bytes::Bytes;
use cloudburst_core::{ByteSize, FileId, SiteId};
use std::io;

/// A ranged-read interface over the dataset's files.
pub trait ChunkStore: Send + Sync {
    /// The site whose storage this is (reads from other sites are "remote").
    fn site(&self) -> SiteId;

    /// A short static name for the backend flavor (`"mem"`, `"file"`,
    /// `"s3sim"`), used as the `store` label on live-metrics series.
    /// Decorators delegate to their inner store.
    fn kind(&self) -> &'static str {
        "store"
    }

    /// Read `len` bytes of `file` starting at `offset`.
    ///
    /// Implementations must return exactly `len` bytes or an error; short
    /// reads are reported as [`io::ErrorKind::UnexpectedEof`].
    fn read(&self, file: FileId, offset: ByteSize, len: ByteSize) -> io::Result<Bytes>;

    /// Read `out.len()` bytes of `file` at `offset` directly into `out` —
    /// the zero-copy entry point of the reassembly path: the caller hands
    /// each range fetcher a disjoint slice of one pre-allocated chunk
    /// buffer, so the bytes land in their final position.
    ///
    /// The default delegates to [`ChunkStore::read`] and copies once (what
    /// the old `extend_from_slice` reassembly paid anyway); backends that
    /// can fill a caller buffer natively override it.
    fn read_into(&self, file: FileId, offset: ByteSize, out: &mut [u8]) -> io::Result<()> {
        let bytes = self.read(file, offset, out.len() as ByteSize)?;
        out.copy_from_slice(&bytes);
        Ok(())
    }

    /// Total length of `file` in bytes.
    fn file_len(&self, file: FileId) -> io::Result<ByteSize>;

    /// Number of files in the store.
    fn n_files(&self) -> usize;
}

/// Validate a ranged read against a file length, producing the standard
/// error shapes all backends share.
pub fn check_range(
    file: FileId,
    file_len: ByteSize,
    offset: ByteSize,
    len: ByteSize,
) -> io::Result<()> {
    let end = offset.checked_add(len).ok_or_else(|| {
        io::Error::new(io::ErrorKind::InvalidInput, format!("{file}: range overflows u64"))
    })?;
    if end > file_len {
        return Err(io::Error::new(
            io::ErrorKind::UnexpectedEof,
            format!("{file}: range {offset}..{end} beyond file length {file_len}"),
        ));
    }
    Ok(())
}

/// Standard error for a file id not present in a store.
pub fn no_such_file(file: FileId) -> io::Error {
    io::Error::new(io::ErrorKind::NotFound, format!("{file}: no such file in store"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn in_bounds_ranges_pass() {
        assert!(check_range(FileId(0), 100, 0, 100).is_ok());
        assert!(check_range(FileId(0), 100, 99, 1).is_ok());
        assert!(check_range(FileId(0), 100, 100, 0).is_ok());
    }

    #[test]
    fn out_of_bounds_is_unexpected_eof() {
        let e = check_range(FileId(3), 100, 50, 51).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::UnexpectedEof);
        assert!(e.to_string().contains("file3"));
    }

    #[test]
    fn overflowing_range_is_invalid_input() {
        let e = check_range(FileId(0), 100, u64::MAX, 2).unwrap_err();
        assert_eq!(e.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn missing_file_error_shape() {
        let e = no_such_file(FileId(9));
        assert_eq!(e.kind(), io::ErrorKind::NotFound);
        assert!(e.to_string().contains("file9"));
    }
}
