//! Transient-error classification and capped exponential backoff for
//! storage reads.
//!
//! Cloud object stores fail *transiently* all the time — reset connections,
//! throttled requests, timeouts — and the right response is to retry the
//! ranged read, not to fail the whole chunk back to the head (which would
//! cost a requeue round-trip and a fresh fetch of every other range of the
//! chunk). This module is the one place the framework decides which
//! [`io::ErrorKind`]s are worth retrying and how long to wait between
//! attempts: exponential backoff, capped, with deterministic seeded jitter
//! so replayed chaos runs back off identically.

use crate::store::ChunkStore;
use bytes::Bytes;
use cloudburst_core::fault::{det_hash, det_unit};
use cloudburst_core::{ByteSize, FileId};
use std::io;
use std::time::Duration;

/// Whether an I/O error kind is worth retrying.
///
/// Transient: the request may succeed if re-issued (network hiccups,
/// throttling, interrupted syscalls). Permanent: re-issuing the identical
/// request will fail the identical way (missing file, out-of-range read),
/// so retrying only wastes the backoff budget.
#[must_use]
pub fn is_transient(kind: io::ErrorKind) -> bool {
    matches!(
        kind,
        io::ErrorKind::ConnectionReset
            | io::ErrorKind::ConnectionAborted
            | io::ErrorKind::ConnectionRefused
            | io::ErrorKind::NotConnected
            | io::ErrorKind::BrokenPipe
            | io::ErrorKind::TimedOut
            | io::ErrorKind::Interrupted
            | io::ErrorKind::WouldBlock
            | io::ErrorKind::HostUnreachable
            | io::ErrorKind::NetworkUnreachable
            | io::ErrorKind::NetworkDown
            | io::ErrorKind::ResourceBusy
    )
}

/// Capped exponential backoff with deterministic jitter.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Retries per range read after the initial attempt (so a range is read
    /// at most `max_retries + 1` times).
    pub max_retries: u32,
    /// Backoff before the first retry, in seconds.
    pub base: f64,
    /// Largest backoff ever waited, in seconds.
    pub cap: f64,
    /// Seed for the jitter, so two runs of the same plan sleep the same.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy { max_retries: 4, base: 0.001, cap: 0.05, seed: 0 }
    }
}

impl RetryPolicy {
    /// The backoff before retry number `attempt` (0-based) of the range at
    /// `(file, offset)`: `min(cap, base · 2^attempt)`, jittered into
    /// `[50%, 100%]` of itself. Jitter decorrelates the retry storms of
    /// parallel range fetchers without sacrificing replay determinism.
    #[must_use]
    pub fn delay(&self, file: FileId, offset: ByteSize, attempt: u32) -> Duration {
        let exp = self.base * f64::powi(2.0, attempt.min(30) as i32);
        let capped = exp.min(self.cap).max(0.0);
        let h = det_hash(&[self.seed, 0xBAC0_0FF5, u64::from(file.0), offset, u64::from(attempt)]);
        let jitter = 0.5 + 0.5 * det_unit(h);
        Duration::from_secs_f64(capped * jitter)
    }
}

/// One transient failure absorbed by the retry loop, reported to a
/// [`RetryObserver`] *before* the backoff sleep — so an observer sees the
/// retry when it happens, not after the whole chunk lands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryAttempt {
    /// File whose range read failed.
    pub file: FileId,
    /// Byte offset of the failing range.
    pub offset: ByteSize,
    /// 0-based retry number (the initial attempt is not reported).
    pub attempt: u32,
    /// The transient error kind being absorbed.
    pub kind: io::ErrorKind,
}

/// Callback invoked on every absorbed transient failure. `Sync` because the
/// parallel range fetchers share one observer across their scoped threads.
pub type RetryObserver<'a> = &'a (dyn Fn(RetryAttempt) + Sync);

/// An owned, shareable retry observer for the pooled fetch path, whose
/// `'static` tasks outlive the submitting stack frame and so cannot borrow
/// a [`RetryObserver`].
pub type SharedRetryObserver = std::sync::Arc<dyn Fn(RetryAttempt) + Send + Sync>;

/// Read `len` bytes of `file` at `offset`, retrying transient failures with
/// backoff. Returns the bytes and how many retries were needed; permanent
/// errors and exhausted budgets surface the last error.
pub fn read_with_retry<S: ChunkStore + ?Sized>(
    store: &S,
    file: FileId,
    offset: ByteSize,
    len: ByteSize,
    policy: &RetryPolicy,
) -> io::Result<(Bytes, u64)> {
    read_with_retry_observed(store, file, offset, len, policy, &|_| {})
}

/// [`read_with_retry`] that reports each absorbed failure to `observe` as it
/// happens, below the chunk level.
pub fn read_with_retry_observed<S: ChunkStore + ?Sized>(
    store: &S,
    file: FileId,
    offset: ByteSize,
    len: ByteSize,
    policy: &RetryPolicy,
    observe: RetryObserver<'_>,
) -> io::Result<(Bytes, u64)> {
    let mut attempt: u32 = 0;
    loop {
        match store.read(file, offset, len) {
            Ok(bytes) => return Ok((bytes, u64::from(attempt))),
            Err(e) if is_transient(e.kind()) && attempt < policy.max_retries => {
                observe(RetryAttempt { file, offset, attempt, kind: e.kind() });
                let wait = policy.delay(file, offset, attempt);
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

/// [`read_with_retry_observed`] over [`ChunkStore::read_into`]: fill the
/// caller's buffer in place (its length is the read length), retrying
/// transient failures with the same backoff schedule. Returns the retries
/// absorbed. This is the zero-copy leg the reassembly path stands on — the
/// buffer is a disjoint slice of the chunk's final allocation.
pub fn read_into_with_retry<S: ChunkStore + ?Sized>(
    store: &S,
    file: FileId,
    offset: ByteSize,
    out: &mut [u8],
    policy: &RetryPolicy,
    observe: RetryObserver<'_>,
) -> io::Result<u64> {
    let mut attempt: u32 = 0;
    loop {
        match store.read_into(file, offset, out) {
            Ok(()) => return Ok(u64::from(attempt)),
            Err(e) if is_transient(e.kind()) && attempt < policy.max_retries => {
                observe(RetryAttempt { file, offset, attempt, kind: e.kind() });
                let wait = policy.delay(file, offset, attempt);
                if !wait.is_zero() {
                    std::thread::sleep(wait);
                }
                attempt += 1;
            }
            Err(e) => return Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cloudburst_core::SiteId;
    use std::sync::atomic::{AtomicU32, Ordering};

    /// A store that fails the first `fail_first` reads transiently.
    struct Flaky {
        fail_first: u32,
        calls: AtomicU32,
        kind: io::ErrorKind,
    }

    impl ChunkStore for Flaky {
        fn site(&self) -> SiteId {
            SiteId::LOCAL
        }
        fn read(&self, _file: FileId, _offset: ByteSize, len: ByteSize) -> io::Result<Bytes> {
            let n = self.calls.fetch_add(1, Ordering::SeqCst);
            if n < self.fail_first {
                Err(io::Error::new(self.kind, "flaky"))
            } else {
                Ok(Bytes::from(vec![7u8; len as usize]))
            }
        }
        fn file_len(&self, _file: FileId) -> io::Result<ByteSize> {
            Ok(u64::MAX)
        }
        fn n_files(&self) -> usize {
            1
        }
    }

    #[test]
    fn classification_separates_transient_from_permanent() {
        assert!(is_transient(io::ErrorKind::ConnectionReset));
        assert!(is_transient(io::ErrorKind::TimedOut));
        assert!(is_transient(io::ErrorKind::Interrupted));
        assert!(!is_transient(io::ErrorKind::NotFound));
        assert!(!is_transient(io::ErrorKind::UnexpectedEof));
        assert!(!is_transient(io::ErrorKind::InvalidInput));
        assert!(!is_transient(io::ErrorKind::PermissionDenied));
    }

    #[test]
    fn backoff_grows_and_caps_with_bounded_jitter() {
        let p = RetryPolicy { max_retries: 8, base: 0.001, cap: 0.008, seed: 3 };
        let mut prev_max = 0.0f64;
        for attempt in 0..8 {
            let d = p.delay(FileId(0), 0, attempt).as_secs_f64();
            let full = (0.001 * f64::powi(2.0, attempt as i32)).min(0.008);
            assert!(d >= full * 0.5 - 1e-12, "attempt {attempt}: {d} below jitter floor");
            assert!(d <= full + 1e-12, "attempt {attempt}: {d} above cap");
            assert!(full >= prev_max, "backoff must be monotone before the cap");
            prev_max = full;
        }
        // Deterministic for the same (seed, file, offset, attempt).
        assert_eq!(p.delay(FileId(1), 64, 2), p.delay(FileId(1), 64, 2));
    }

    #[test]
    fn transient_failures_are_absorbed() {
        let store =
            Flaky { fail_first: 3, calls: AtomicU32::new(0), kind: io::ErrorKind::ConnectionReset };
        let policy = RetryPolicy { base: 0.0, cap: 0.0, ..RetryPolicy::default() };
        let (bytes, retries) = read_with_retry(&store, FileId(0), 0, 16, &policy).unwrap();
        assert_eq!(bytes.len(), 16);
        assert_eq!(retries, 3);
    }

    #[test]
    fn observer_sees_each_absorbed_failure_in_order() {
        use std::sync::Mutex;
        let store =
            Flaky { fail_first: 3, calls: AtomicU32::new(0), kind: io::ErrorKind::TimedOut };
        let policy = RetryPolicy { base: 0.0, cap: 0.0, ..RetryPolicy::default() };
        let seen: Mutex<Vec<RetryAttempt>> = Mutex::new(Vec::new());
        let (_, retries) = read_with_retry_observed(&store, FileId(2), 64, 16, &policy, &|a| {
            seen.lock().unwrap().push(a);
        })
        .unwrap();
        let seen = seen.into_inner().unwrap();
        assert_eq!(retries, 3);
        assert_eq!(seen.len(), 3, "one report per absorbed failure");
        for (i, a) in seen.iter().enumerate() {
            assert_eq!(
                *a,
                RetryAttempt {
                    file: FileId(2),
                    offset: 64,
                    attempt: i as u32,
                    kind: io::ErrorKind::TimedOut
                }
            );
        }
    }

    #[test]
    fn read_into_retries_and_fills_the_caller_buffer() {
        let store =
            Flaky { fail_first: 2, calls: AtomicU32::new(0), kind: io::ErrorKind::BrokenPipe };
        let policy = RetryPolicy { base: 0.0, cap: 0.0, ..RetryPolicy::default() };
        let mut buf = [0u8; 16];
        let retries =
            read_into_with_retry(&store, FileId(0), 0, &mut buf, &policy, &|_| {}).unwrap();
        assert_eq!(retries, 2);
        assert_eq!(buf, [7u8; 16]);
    }

    #[test]
    fn permanent_errors_fail_immediately() {
        let store =
            Flaky { fail_first: 1, calls: AtomicU32::new(0), kind: io::ErrorKind::NotFound };
        let policy = RetryPolicy { base: 0.0, cap: 0.0, ..RetryPolicy::default() };
        let err = read_with_retry(&store, FileId(0), 0, 16, &policy).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::NotFound);
        assert_eq!(store.calls.load(Ordering::SeqCst), 1, "no retry on permanent errors");
    }

    #[test]
    fn exhausted_budget_surfaces_the_transient_error() {
        let store =
            Flaky { fail_first: 10, calls: AtomicU32::new(0), kind: io::ErrorKind::TimedOut };
        let policy = RetryPolicy { max_retries: 2, base: 0.0, cap: 0.0, seed: 0 };
        let err = read_with_retry(&store, FileId(0), 0, 16, &policy).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::TimedOut);
        assert_eq!(store.calls.load(Ordering::SeqCst), 3, "initial + 2 retries");
    }
}
