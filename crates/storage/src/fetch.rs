//! Multi-threaded chunk retrieval (paper §III-B): "Each slave retrieves
//! jobs using multiple retrieval threads, to capitalize on the fast network
//! interconnects in the cluster."
//!
//! A chunk is split into `threads` byte ranges fetched concurrently and
//! reassembled in order. Against the simulated S3 this recovers most of the
//! gap between one connection's bandwidth and the aggregate host cap; against
//! local stores it degrades gracefully to a single sequential read.

use crate::pool::FetcherPool;
use crate::retry::{
    read_into_with_retry, read_with_retry_observed, RetryAttempt, RetryObserver, RetryPolicy,
    SharedRetryObserver,
};
use crate::store::ChunkStore;
use bytes::{Bytes, BytesMut};
use cloudburst_core::{ByteSize, ChunkMeta, FileId};
use crossbeam::channel::bounded;
use std::io;
use std::sync::Arc;

/// Retrieval configuration for one slave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchConfig {
    /// Concurrent range requests per chunk.
    pub threads: u32,
    /// Ranges smaller than this are not split further.
    pub min_range: ByteSize,
}

impl Default for FetchConfig {
    fn default() -> Self {
        FetchConfig { threads: 4, min_range: 64 * 1024 }
    }
}

impl FetchConfig {
    /// Sequential fetching (one range per chunk).
    #[must_use]
    pub fn sequential() -> FetchConfig {
        FetchConfig { threads: 1, min_range: 1 }
    }

    /// The byte ranges `(offset, len)` a read of `[offset, offset+len)` is
    /// split into: contiguous, non-empty, ascending.
    #[must_use]
    pub fn split(&self, offset: ByteSize, len: ByteSize) -> Vec<(ByteSize, ByteSize)> {
        if len == 0 {
            return Vec::new();
        }
        let max_parts = len.div_ceil(self.min_range.max(1));
        let parts = u64::from(self.threads.max(1)).min(max_parts);
        let base = len / parts;
        let extra = len % parts;
        let mut ranges = Vec::with_capacity(parts as usize);
        let mut at = offset;
        for i in 0..parts {
            let this = base + u64::from(i < extra);
            ranges.push((at, this));
            at += this;
        }
        ranges
    }
}

/// Fetch `len` bytes of `file` at `offset` using up to `config.threads`
/// concurrent range reads, returning the reassembled bytes.
pub fn fetch_range<S: ChunkStore + ?Sized>(
    store: &S,
    file: FileId,
    offset: ByteSize,
    len: ByteSize,
    config: FetchConfig,
) -> io::Result<Bytes> {
    let no_retry = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
    fetch_range_with_retry(store, file, offset, len, config, &no_retry).map(|(b, _)| b)
}

/// [`fetch_range`] with transient-failure retries *below* the chunk level:
/// each concurrent range read independently retries per `retry`, so one
/// reset connection re-reads only its own range, not the whole chunk.
/// Returns the reassembled bytes and the total retries absorbed.
pub fn fetch_range_with_retry<S: ChunkStore + ?Sized>(
    store: &S,
    file: FileId,
    offset: ByteSize,
    len: ByteSize,
    config: FetchConfig,
    retry: &RetryPolicy,
) -> io::Result<(Bytes, u64)> {
    fetch_range_observed(store, file, offset, len, config, retry, &|_| {})
}

/// [`fetch_range_with_retry`] that reports each absorbed transient failure to
/// `observe` as it happens. The observer is shared by all concurrent range
/// fetchers of the chunk, so it must be `Sync`.
pub fn fetch_range_observed<S: ChunkStore + ?Sized>(
    store: &S,
    file: FileId,
    offset: ByteSize,
    len: ByteSize,
    config: FetchConfig,
    retry: &RetryPolicy,
    observe: RetryObserver<'_>,
) -> io::Result<(Bytes, u64)> {
    let ranges = config.split(offset, len);
    match ranges.len() {
        0 => Ok((Bytes::new(), 0)),
        1 => read_with_retry_observed(store, file, offset, len, retry, observe),
        _ => {
            // Zero-copy reassembly: one allocation for the whole chunk, each
            // concurrent range read landing directly in its final position.
            let mut buf = BytesMut::with_capacity(len as usize);
            buf.resize(len as usize, 0);
            let mut outcomes: Vec<io::Result<u64>> = Vec::new();
            std::thread::scope(|scope| {
                let mut rest: &mut [u8] = &mut buf;
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|&(o, l)| {
                        let (slice, tail) = std::mem::take(&mut rest).split_at_mut(l as usize);
                        rest = tail;
                        scope.spawn(move || {
                            read_into_with_retry(store, file, o, slice, retry, observe)
                        })
                    })
                    .collect();
                outcomes =
                    handles.into_iter().map(|h| h.join().expect("fetch thread panicked")).collect();
            });
            let mut retries = 0;
            for r in outcomes {
                retries += r?;
            }
            Ok((buf.freeze(), retries))
        }
    }
}

/// [`fetch_range_observed`] executed on a persistent [`FetcherPool`]
/// instead of per-fetch spawned threads: range-read tasks are submitted to
/// the pool, each filling an owned, disjoint sub-buffer of one
/// pre-allocated chunk allocation ([`BytesMut::split_to`]), and the caller
/// reassembles by stitching the contiguous sub-buffers back together
/// ([`BytesMut::unsplit`], O(1)) — no spawn/join per chunk and no copy per
/// range.
///
/// The store is passed by `Arc` because the pool's workers outlive this
/// call's stack frame; likewise the optional observer is the owned
/// [`SharedRetryObserver`] form.
#[allow(clippy::too_many_arguments)]
pub fn fetch_range_pooled(
    pool: &FetcherPool,
    store: &Arc<dyn ChunkStore>,
    file: FileId,
    offset: ByteSize,
    len: ByteSize,
    config: FetchConfig,
    retry: &RetryPolicy,
    observe: Option<SharedRetryObserver>,
) -> io::Result<(Bytes, u64)> {
    let ranges = config.split(offset, len);
    let n = ranges.len();
    match n {
        0 => Ok((Bytes::new(), 0)),
        1 => {
            // One range: the pool round trip buys nothing — read on the
            // calling thread (and keep the backend's zero-copy `read`).
            let obs: &(dyn Fn(RetryAttempt) + Sync) = &|a| {
                if let Some(o) = &observe {
                    o(a);
                }
            };
            read_with_retry_observed(store.as_ref(), file, offset, len, retry, obs)
        }
        _ => {
            let mut buf = BytesMut::with_capacity(len as usize);
            buf.resize(len as usize, 0);
            // Carve the chunk allocation into owned, disjoint parts — one
            // per range — so `'static` pool tasks can write in place.
            let parts: Vec<BytesMut> =
                ranges.iter().map(|&(_, l)| buf.split_to(l as usize)).collect();
            let (done_tx, done_rx) = bounded::<(usize, BytesMut, io::Result<u64>)>(n);
            for (idx, (mut part, &(o, _))) in parts.into_iter().zip(&ranges).enumerate() {
                let store = Arc::clone(store);
                let retry = *retry;
                let observe = observe.clone();
                let done_tx = done_tx.clone();
                pool.execute(move || {
                    let obs: &(dyn Fn(RetryAttempt) + Sync) = &|a| {
                        if let Some(o) = &observe {
                            o(a);
                        }
                    };
                    let r = read_into_with_retry(store.as_ref(), file, o, &mut part, &retry, obs);
                    let _ = done_tx.send((idx, part, r));
                });
            }
            drop(done_tx);
            let mut slots: Vec<Option<(BytesMut, io::Result<u64>)>> =
                (0..n).map(|_| None).collect();
            for _ in 0..n {
                let (idx, part, r) =
                    done_rx.recv().map_err(|_| io::Error::other("fetcher pool task vanished"))?;
                slots[idx] = Some((part, r));
            }
            let mut retries = 0u64;
            let mut out: Option<BytesMut> = None;
            for slot in slots {
                let (part, r) = slot.expect("every range task reported");
                retries += r?;
                out = Some(match out {
                    None => part,
                    Some(mut acc) => {
                        // Contiguous neighbors from one allocation: O(1).
                        acc.unsplit(part);
                        acc
                    }
                });
            }
            Ok((out.expect("at least two ranges").freeze(), retries))
        }
    }
}

/// [`fetch_range_pooled`] for one chunk described by its metadata.
pub fn fetch_chunk_pooled(
    pool: &FetcherPool,
    store: &Arc<dyn ChunkStore>,
    chunk: &ChunkMeta,
    config: FetchConfig,
    retry: &RetryPolicy,
    observe: Option<SharedRetryObserver>,
) -> io::Result<(Bytes, u64)> {
    fetch_range_pooled(pool, store, chunk.file, chunk.offset, chunk.len, config, retry, observe)
}

/// Fetch one chunk described by its metadata.
pub fn fetch_chunk<S: ChunkStore + ?Sized>(
    store: &S,
    chunk: &ChunkMeta,
    config: FetchConfig,
) -> io::Result<Bytes> {
    fetch_range(store, chunk.file, chunk.offset, chunk.len, config)
}

/// Fetch one chunk with below-chunk transient-failure retries; returns the
/// bytes and the retries absorbed.
pub fn fetch_chunk_with_retry<S: ChunkStore + ?Sized>(
    store: &S,
    chunk: &ChunkMeta,
    config: FetchConfig,
    retry: &RetryPolicy,
) -> io::Result<(Bytes, u64)> {
    fetch_range_with_retry(store, chunk.file, chunk.offset, chunk.len, config, retry)
}

/// [`fetch_chunk_with_retry`] that reports each absorbed transient failure
/// to `observe` as it happens (see [`RetryObserver`]).
pub fn fetch_chunk_observed<S: ChunkStore + ?Sized>(
    store: &S,
    chunk: &ChunkMeta,
    config: FetchConfig,
    retry: &RetryPolicy,
    observe: RetryObserver<'_>,
) -> io::Result<(Bytes, u64)> {
    fetch_range_observed(store, chunk.file, chunk.offset, chunk.len, config, retry, observe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;
    use cloudburst_core::SiteId;

    fn pattern(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn split_covers_range_contiguously() {
        let cfg = FetchConfig { threads: 4, min_range: 10 };
        let ranges = cfg.split(100, 103);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], (100, 26));
        let mut at = 100;
        let mut total = 0;
        for (o, l) in ranges {
            assert_eq!(o, at);
            assert!(l > 0);
            at += l;
            total += l;
        }
        assert_eq!(total, 103);
    }

    #[test]
    fn split_respects_min_range() {
        let cfg = FetchConfig { threads: 8, min_range: 50 };
        // 120 bytes / min 50 -> at most 3 parts despite 8 threads.
        assert_eq!(cfg.split(0, 120).len(), 3);
        // Tiny range -> single part.
        assert_eq!(cfg.split(0, 10).len(), 1);
    }

    #[test]
    fn split_empty_range_is_empty() {
        assert!(FetchConfig::default().split(5, 0).is_empty());
    }

    #[test]
    fn parallel_fetch_reassembles_in_order() {
        let data = pattern(10_000);
        let store = MemStore::new(SiteId::LOCAL, vec![data.clone()]);
        let cfg = FetchConfig { threads: 7, min_range: 100 };
        let got = fetch_range(&store, FileId(0), 123, 7_531, cfg).unwrap();
        assert_eq!(got, data.slice(123..123 + 7_531));
    }

    #[test]
    fn sequential_config_uses_single_read() {
        let data = pattern(1000);
        let store = MemStore::new(SiteId::LOCAL, vec![data.clone()]);
        let got = fetch_range(&store, FileId(0), 0, 1000, FetchConfig::sequential()).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn fetch_chunk_uses_chunk_metadata() {
        let data = pattern(4096);
        let store = MemStore::new(SiteId::LOCAL, vec![data.clone()]);
        let chunk = ChunkMeta {
            id: cloudburst_core::ChunkId(0),
            file: FileId(0),
            offset: 512,
            len: 1024,
            n_units: 256,
            site: SiteId::LOCAL,
        };
        let got = fetch_chunk(&store, &chunk, FetchConfig::default()).unwrap();
        assert_eq!(got, data.slice(512..1536));
    }

    #[test]
    fn errors_propagate_from_any_range() {
        let store = MemStore::new(SiteId::LOCAL, vec![pattern(100)]);
        let cfg = FetchConfig { threads: 4, min_range: 1 };
        assert!(fetch_range(&store, FileId(0), 50, 100, cfg).is_err());
    }

    #[test]
    fn pooled_fetch_reassembles_in_order() {
        let data = pattern(10_000);
        let store: Arc<dyn ChunkStore> = Arc::new(MemStore::new(SiteId::LOCAL, vec![data.clone()]));
        let pool = FetcherPool::new(3);
        let cfg = FetchConfig { threads: 7, min_range: 100 };
        let no_retry = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        for (offset, len) in [(0u64, 10_000u64), (123, 7_531), (9_999, 1), (40, 0)] {
            let (got, retries) =
                fetch_range_pooled(&pool, &store, FileId(0), offset, len, cfg, &no_retry, None)
                    .unwrap();
            assert_eq!(got, data.slice(offset as usize..(offset + len) as usize));
            assert_eq!(retries, 0);
        }
    }

    #[test]
    fn pooled_fetch_matches_spawned_fetch() {
        let data = pattern(50_000);
        let store: Arc<dyn ChunkStore> = Arc::new(MemStore::new(SiteId::LOCAL, vec![data.clone()]));
        let pool = FetcherPool::new(4);
        let cfg = FetchConfig { threads: 4, min_range: 64 };
        let no_retry = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        let spawned = fetch_range(store.as_ref(), FileId(0), 11, 40_009, cfg).unwrap();
        let (pooled, _) =
            fetch_range_pooled(&pool, &store, FileId(0), 11, 40_009, cfg, &no_retry, None).unwrap();
        assert_eq!(spawned, pooled);
    }

    #[test]
    fn pooled_fetch_propagates_errors_and_reports_retries() {
        use crate::chaos::ChaosStore;
        use cloudburst_core::FaultPlan;
        use std::sync::atomic::{AtomicU64, Ordering};

        // The chaos store remembers attempts per range, so each half of the
        // test fetches through a fresh store.
        let fresh = || -> Arc<dyn ChunkStore> {
            let plan = FaultPlan {
                storage_error_rate: 1.0,
                storage_max_consecutive: 1,
                ..FaultPlan::seeded(3)
            };
            let inner: Arc<dyn ChunkStore> =
                Arc::new(MemStore::new(SiteId::LOCAL, vec![pattern(4_096)]));
            Arc::new(ChaosStore::new(inner, Arc::new(plan)))
        };
        let pool = FetcherPool::new(2);
        let cfg = FetchConfig { threads: 4, min_range: 128 };

        // Without retries the injected fault surfaces.
        let store = fresh();
        let no_retry = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        assert!(
            fetch_range_pooled(&pool, &store, FileId(0), 0, 4_096, cfg, &no_retry, None).is_err()
        );
        let store = fresh();

        // With retries the fetch succeeds and the observer sees each one.
        let seen = Arc::new(AtomicU64::new(0));
        let obs: SharedRetryObserver = {
            let seen = seen.clone();
            Arc::new(move |_| {
                seen.fetch_add(1, Ordering::SeqCst);
            })
        };
        let policy = RetryPolicy { max_retries: 3, base: 0.0, cap: 0.0, seed: 0 };
        let (bytes, retries) =
            fetch_range_pooled(&pool, &store, FileId(0), 0, 4_096, cfg, &policy, Some(obs))
                .unwrap();
        assert_eq!(bytes, pattern(4_096));
        assert!(retries > 0);
        assert_eq!(seen.load(Ordering::SeqCst), retries);
    }

    #[test]
    fn out_of_range_pooled_fetch_fails() {
        let store: Arc<dyn ChunkStore> = Arc::new(MemStore::new(SiteId::LOCAL, vec![pattern(100)]));
        let pool = FetcherPool::new(2);
        let cfg = FetchConfig { threads: 4, min_range: 1 };
        let no_retry = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
        assert!(
            fetch_range_pooled(&pool, &store, FileId(0), 50, 100, cfg, &no_retry, None).is_err()
        );
    }
}
