//! Multi-threaded chunk retrieval (paper §III-B): "Each slave retrieves
//! jobs using multiple retrieval threads, to capitalize on the fast network
//! interconnects in the cluster."
//!
//! A chunk is split into `threads` byte ranges fetched concurrently and
//! reassembled in order. Against the simulated S3 this recovers most of the
//! gap between one connection's bandwidth and the aggregate host cap; against
//! local stores it degrades gracefully to a single sequential read.

use crate::retry::{read_with_retry_observed, RetryObserver, RetryPolicy};
use crate::store::ChunkStore;
use bytes::{Bytes, BytesMut};
use cloudburst_core::{ByteSize, ChunkMeta, FileId};
use std::io;

/// Retrieval configuration for one slave.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FetchConfig {
    /// Concurrent range requests per chunk.
    pub threads: u32,
    /// Ranges smaller than this are not split further.
    pub min_range: ByteSize,
}

impl Default for FetchConfig {
    fn default() -> Self {
        FetchConfig { threads: 4, min_range: 64 * 1024 }
    }
}

impl FetchConfig {
    /// Sequential fetching (one range per chunk).
    #[must_use]
    pub fn sequential() -> FetchConfig {
        FetchConfig { threads: 1, min_range: 1 }
    }

    /// The byte ranges `(offset, len)` a read of `[offset, offset+len)` is
    /// split into: contiguous, non-empty, ascending.
    #[must_use]
    pub fn split(&self, offset: ByteSize, len: ByteSize) -> Vec<(ByteSize, ByteSize)> {
        if len == 0 {
            return Vec::new();
        }
        let max_parts = len.div_ceil(self.min_range.max(1));
        let parts = u64::from(self.threads.max(1)).min(max_parts);
        let base = len / parts;
        let extra = len % parts;
        let mut ranges = Vec::with_capacity(parts as usize);
        let mut at = offset;
        for i in 0..parts {
            let this = base + u64::from(i < extra);
            ranges.push((at, this));
            at += this;
        }
        ranges
    }
}

/// Fetch `len` bytes of `file` at `offset` using up to `config.threads`
/// concurrent range reads, returning the reassembled bytes.
pub fn fetch_range<S: ChunkStore + ?Sized>(
    store: &S,
    file: FileId,
    offset: ByteSize,
    len: ByteSize,
    config: FetchConfig,
) -> io::Result<Bytes> {
    let no_retry = RetryPolicy { max_retries: 0, ..RetryPolicy::default() };
    fetch_range_with_retry(store, file, offset, len, config, &no_retry).map(|(b, _)| b)
}

/// [`fetch_range`] with transient-failure retries *below* the chunk level:
/// each concurrent range read independently retries per `retry`, so one
/// reset connection re-reads only its own range, not the whole chunk.
/// Returns the reassembled bytes and the total retries absorbed.
pub fn fetch_range_with_retry<S: ChunkStore + ?Sized>(
    store: &S,
    file: FileId,
    offset: ByteSize,
    len: ByteSize,
    config: FetchConfig,
    retry: &RetryPolicy,
) -> io::Result<(Bytes, u64)> {
    fetch_range_observed(store, file, offset, len, config, retry, &|_| {})
}

/// [`fetch_range_with_retry`] that reports each absorbed transient failure to
/// `observe` as it happens. The observer is shared by all concurrent range
/// fetchers of the chunk, so it must be `Sync`.
pub fn fetch_range_observed<S: ChunkStore + ?Sized>(
    store: &S,
    file: FileId,
    offset: ByteSize,
    len: ByteSize,
    config: FetchConfig,
    retry: &RetryPolicy,
    observe: RetryObserver<'_>,
) -> io::Result<(Bytes, u64)> {
    let ranges = config.split(offset, len);
    match ranges.len() {
        0 => Ok((Bytes::new(), 0)),
        1 => read_with_retry_observed(store, file, offset, len, retry, observe),
        _ => {
            let mut parts: Vec<io::Result<(Bytes, u64)>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = ranges
                    .iter()
                    .map(|&(o, l)| {
                        scope.spawn(move || {
                            read_with_retry_observed(store, file, o, l, retry, observe)
                        })
                    })
                    .collect();
                parts =
                    handles.into_iter().map(|h| h.join().expect("fetch thread panicked")).collect();
            });
            let mut out = BytesMut::with_capacity(len as usize);
            let mut retries = 0;
            for part in parts {
                let (bytes, r) = part?;
                out.extend_from_slice(&bytes);
                retries += r;
            }
            Ok((out.freeze(), retries))
        }
    }
}

/// Fetch one chunk described by its metadata.
pub fn fetch_chunk<S: ChunkStore + ?Sized>(
    store: &S,
    chunk: &ChunkMeta,
    config: FetchConfig,
) -> io::Result<Bytes> {
    fetch_range(store, chunk.file, chunk.offset, chunk.len, config)
}

/// Fetch one chunk with below-chunk transient-failure retries; returns the
/// bytes and the retries absorbed.
pub fn fetch_chunk_with_retry<S: ChunkStore + ?Sized>(
    store: &S,
    chunk: &ChunkMeta,
    config: FetchConfig,
    retry: &RetryPolicy,
) -> io::Result<(Bytes, u64)> {
    fetch_range_with_retry(store, chunk.file, chunk.offset, chunk.len, config, retry)
}

/// [`fetch_chunk_with_retry`] that reports each absorbed transient failure
/// to `observe` as it happens (see [`RetryObserver`]).
pub fn fetch_chunk_observed<S: ChunkStore + ?Sized>(
    store: &S,
    chunk: &ChunkMeta,
    config: FetchConfig,
    retry: &RetryPolicy,
    observe: RetryObserver<'_>,
) -> io::Result<(Bytes, u64)> {
    fetch_range_observed(store, chunk.file, chunk.offset, chunk.len, config, retry, observe)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;
    use cloudburst_core::SiteId;

    fn pattern(n: usize) -> Bytes {
        Bytes::from((0..n).map(|i| (i % 251) as u8).collect::<Vec<_>>())
    }

    #[test]
    fn split_covers_range_contiguously() {
        let cfg = FetchConfig { threads: 4, min_range: 10 };
        let ranges = cfg.split(100, 103);
        assert_eq!(ranges.len(), 4);
        assert_eq!(ranges[0], (100, 26));
        let mut at = 100;
        let mut total = 0;
        for (o, l) in ranges {
            assert_eq!(o, at);
            assert!(l > 0);
            at += l;
            total += l;
        }
        assert_eq!(total, 103);
    }

    #[test]
    fn split_respects_min_range() {
        let cfg = FetchConfig { threads: 8, min_range: 50 };
        // 120 bytes / min 50 -> at most 3 parts despite 8 threads.
        assert_eq!(cfg.split(0, 120).len(), 3);
        // Tiny range -> single part.
        assert_eq!(cfg.split(0, 10).len(), 1);
    }

    #[test]
    fn split_empty_range_is_empty() {
        assert!(FetchConfig::default().split(5, 0).is_empty());
    }

    #[test]
    fn parallel_fetch_reassembles_in_order() {
        let data = pattern(10_000);
        let store = MemStore::new(SiteId::LOCAL, vec![data.clone()]);
        let cfg = FetchConfig { threads: 7, min_range: 100 };
        let got = fetch_range(&store, FileId(0), 123, 7_531, cfg).unwrap();
        assert_eq!(got, data.slice(123..123 + 7_531));
    }

    #[test]
    fn sequential_config_uses_single_read() {
        let data = pattern(1000);
        let store = MemStore::new(SiteId::LOCAL, vec![data.clone()]);
        let got = fetch_range(&store, FileId(0), 0, 1000, FetchConfig::sequential()).unwrap();
        assert_eq!(got, data);
    }

    #[test]
    fn fetch_chunk_uses_chunk_metadata() {
        let data = pattern(4096);
        let store = MemStore::new(SiteId::LOCAL, vec![data.clone()]);
        let chunk = ChunkMeta {
            id: cloudburst_core::ChunkId(0),
            file: FileId(0),
            offset: 512,
            len: 1024,
            n_units: 256,
            site: SiteId::LOCAL,
        };
        let got = fetch_chunk(&store, &chunk, FetchConfig::default()).unwrap();
        assert_eq!(got, data.slice(512..1536));
    }

    #[test]
    fn errors_propagate_from_any_range() {
        let store = MemStore::new(SiteId::LOCAL, vec![pattern(100)]);
        let cfg = FetchConfig { threads: 4, min_range: 1 };
        assert!(fetch_range(&store, FileId(0), 50, 100, cfg).is_err());
    }
}
