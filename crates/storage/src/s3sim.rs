//! A simulated Amazon S3: an object store with per-request time-to-first-
//! byte, a per-connection bandwidth ceiling, a bounded number of concurrent
//! connections, and an aggregate host bandwidth cap.
//!
//! The paper stores its 12 GB datasets in S3 and retrieves them both from
//! EC2 instances (fast path) and across the WAN from the campus cluster
//! (slow path, during job stealing). This store reproduces the two effects
//! that matter for those experiments:
//!
//! 1. a single GET connection is slow (high latency, modest bandwidth), so
//!    slaves fetch each chunk with **multiple retrieval threads**;
//! 2. connections share an aggregate pipe, so adding threads saturates.

use crate::store::ChunkStore;
use bytes::Bytes;
use cloudburst_core::{ByteSize, FileId, SiteId};
use cloudburst_netsim::{LinkSpec, Throttle};
use parking_lot::{Condvar, Mutex};
use std::io;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// A counting semaphore bounding concurrent GET connections.
#[derive(Debug)]
struct ConnectionLimit {
    permits: Mutex<u32>,
    freed: Condvar,
}

impl ConnectionLimit {
    fn new(max: u32) -> ConnectionLimit {
        ConnectionLimit { permits: Mutex::new(max), freed: Condvar::new() }
    }

    fn acquire(&self) {
        let mut p = self.permits.lock();
        while *p == 0 {
            self.freed.wait(&mut p);
        }
        *p -= 1;
    }

    fn release(&self) {
        let mut p = self.permits.lock();
        *p += 1;
        drop(p);
        self.freed.notify_one();
    }
}

/// Configuration of the simulated object store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct S3Config {
    /// Per-GET path: time-to-first-byte latency and per-connection bandwidth.
    pub connection: LinkSpec,
    /// Aggregate bandwidth cap across all concurrent GETs.
    pub aggregate: LinkSpec,
    /// Maximum concurrent GET connections the store accepts.
    pub max_connections: u32,
    /// Compression of modelled time into real time (see
    /// [`cloudburst_netsim::Throttle`]).
    pub time_scale: f64,
}

impl S3Config {
    /// The paper-testbed profile at the given time compression.
    #[must_use]
    pub fn paper(time_scale: f64) -> S3Config {
        S3Config {
            connection: cloudburst_netsim::profiles::s3_connection(),
            aggregate: cloudburst_netsim::profiles::s3_host_cap(),
            max_connections: 64,
            time_scale,
        }
    }
}

/// Counters exposed for tests and benchmarks.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct S3Metrics {
    /// Number of GET requests served.
    pub gets: u64,
    /// Total payload bytes served.
    pub bytes: u64,
}

/// The simulated S3 store: wraps any inner [`ChunkStore`] holding the actual
/// bytes and charges realistic retrieval time for every read.
pub struct S3SimStore<S> {
    inner: S,
    config: S3Config,
    aggregate: Throttle,
    connections: ConnectionLimit,
    gets: AtomicU64,
    bytes: AtomicU64,
}

impl<S: ChunkStore> S3SimStore<S> {
    /// Wrap `inner` with the S3 timing model.
    ///
    /// # Panics
    /// Panics if `max_connections == 0`.
    #[must_use]
    pub fn new(inner: S, config: S3Config) -> S3SimStore<S> {
        assert!(config.max_connections > 0, "S3 needs at least one connection");
        S3SimStore {
            aggregate: Throttle::new(config.aggregate, config.time_scale),
            connections: ConnectionLimit::new(config.max_connections),
            gets: AtomicU64::new(0),
            bytes: AtomicU64::new(0),
            inner,
            config,
        }
    }

    /// Counters accumulated so far.
    #[must_use]
    pub fn metrics(&self) -> S3Metrics {
        S3Metrics {
            gets: self.gets.load(Ordering::Relaxed),
            bytes: self.bytes.load(Ordering::Relaxed),
        }
    }

    /// The wrapped store.
    #[must_use]
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Run one GET of `len` payload bytes under the connection semaphore,
    /// charging the aggregate pipe and the per-connection floor on success.
    fn get<T>(&self, len: ByteSize, op: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
        self.connections.acquire();
        let started = Instant::now();
        let result = op();
        if result.is_ok() {
            // Aggregate pipe: queue behind other in-flight GETs.
            self.aggregate.transfer(len);
            // Per-connection floor: one GET can never beat its own link.
            let conn_real = self.config.connection.transfer_time(len) * self.config.time_scale;
            let elapsed = started.elapsed().as_secs_f64();
            if conn_real > elapsed {
                std::thread::sleep(Duration::from_secs_f64(conn_real - elapsed));
            }
            self.gets.fetch_add(1, Ordering::Relaxed);
            self.bytes.fetch_add(len, Ordering::Relaxed);
        }
        self.connections.release();
        result
    }
}

impl<S: ChunkStore> ChunkStore for S3SimStore<S> {
    fn site(&self) -> SiteId {
        self.inner.site()
    }

    fn kind(&self) -> &'static str {
        "s3sim"
    }

    fn read(&self, file: FileId, offset: ByteSize, len: ByteSize) -> io::Result<Bytes> {
        self.get(len, || self.inner.read(file, offset, len))
    }

    fn read_into(&self, file: FileId, offset: ByteSize, out: &mut [u8]) -> io::Result<()> {
        self.get(out.len() as ByteSize, || self.inner.read_into(file, offset, out))
    }

    fn file_len(&self, file: FileId) -> io::Result<ByteSize> {
        self.inner.file_len(file)
    }

    fn n_files(&self) -> usize {
        self.inner.n_files()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::MemStore;
    use std::sync::Arc;

    fn base(bytes_per_file: usize, n_files: usize) -> MemStore {
        let files = (0..n_files).map(|i| Bytes::from(vec![i as u8; bytes_per_file])).collect();
        MemStore::new(SiteId::CLOUD, files)
    }

    fn cfg(conn_bw: f64, agg_bw: f64, latency: f64, conns: u32) -> S3Config {
        S3Config {
            connection: LinkSpec::new(latency, conn_bw),
            aggregate: LinkSpec::new(0.0, agg_bw),
            max_connections: conns,
            time_scale: 1e-3,
        }
    }

    #[test]
    fn serves_correct_bytes_and_counts() {
        let s3 = S3SimStore::new(base(64, 2), cfg(1e9, 1e9, 0.0, 4));
        let got = s3.read(FileId(1), 8, 16).unwrap();
        assert_eq!(got, Bytes::from(vec![1u8; 16]));
        let m = s3.metrics();
        assert_eq!(m.gets, 1);
        assert_eq!(m.bytes, 16);
        assert_eq!(s3.n_files(), 2);
        assert_eq!(s3.file_len(FileId(0)).unwrap(), 64);
    }

    #[test]
    fn failed_reads_do_not_count() {
        let s3 = S3SimStore::new(base(8, 1), cfg(1e9, 1e9, 0.0, 4));
        assert!(s3.read(FileId(0), 4, 100).is_err());
        assert!(s3.read(FileId(9), 0, 1).is_err());
        assert_eq!(s3.metrics(), S3Metrics::default());
    }

    #[test]
    fn per_connection_bandwidth_floors_single_get() {
        // 100 KB at 100 KB/s per connection = 1 modelled second = 1 ms real
        // at scale 1e-3, even though the aggregate pipe is effectively free.
        let s3 = S3SimStore::new(base(100_000, 1), cfg(100_000.0, 1e12, 0.0, 4));
        let t = Instant::now();
        s3.read(FileId(0), 0, 100_000).unwrap();
        assert!(t.elapsed().as_secs_f64() >= 0.8e-3);
    }

    #[test]
    fn parallel_gets_beat_serial_on_aggregate_pipe() {
        // Aggregate 4x the connection speed: 4 parallel GETs of one quarter
        // each should take ~1/4 the wall time of 4 serial full-speed GETs.
        let s3 = Arc::new(S3SimStore::new(base(400_000, 1), cfg(100_000.0, 400_000.0, 0.0, 8)));
        let serial_start = Instant::now();
        for i in 0..4 {
            s3.read(FileId(0), i * 100_000, 100_000).unwrap();
        }
        let serial = serial_start.elapsed().as_secs_f64();

        let parallel_start = Instant::now();
        std::thread::scope(|sc| {
            for i in 0..4u64 {
                let s3 = Arc::clone(&s3);
                sc.spawn(move || s3.read(FileId(0), i * 100_000, 100_000).unwrap());
            }
        });
        let parallel = parallel_start.elapsed().as_secs_f64();
        assert!(parallel < serial * 0.6, "parallel {parallel:.4}s should beat serial {serial:.4}s");
    }

    #[test]
    fn connection_limit_serializes_excess_gets() {
        // 1 connection: two concurrent 1-modelled-second GETs take ~2x.
        let s3 = Arc::new(S3SimStore::new(base(1000, 1), cfg(1000.0, 1e12, 0.0, 1)));
        let t = Instant::now();
        std::thread::scope(|sc| {
            for _ in 0..2 {
                let s3 = Arc::clone(&s3);
                sc.spawn(move || s3.read(FileId(0), 0, 1000).unwrap());
            }
        });
        let real = t.elapsed().as_secs_f64();
        assert!(real >= 1.8e-3, "limit=1 must serialize, took {real}");
    }

    #[test]
    #[should_panic(expected = "at least one connection")]
    fn zero_connections_rejected() {
        let _ = S3SimStore::new(base(1, 1), cfg(1.0, 1.0, 0.0, 0));
    }
}
