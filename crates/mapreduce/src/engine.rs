//! A multi-threaded in-memory MapReduce engine: map → (combine) → shuffle →
//! reduce, with the intermediate-state instrumentation the paper's argument
//! rests on.
//!
//! The Generalized Reduction API "integrates map, combine, and reduce
//! together while processing each element ... we avoid intermediate memory
//! overheads" (§III-A). To quantify that claim, this engine counts every
//! intermediate pair it materializes and reports the peak number buffered at
//! once; the `genred_vs_mapreduce` bench compares those numbers (and wall
//! time) against the fused pipeline on identical inputs.

use crate::api::MapReduceApp;
use parking_lot::Mutex;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Instant;

/// Engine tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Mapper threads.
    pub mappers: usize,
    /// Reducer threads (== shuffle partitions).
    pub reducers: usize,
    /// Mapper buffer capacity in pairs; reaching it triggers a flush
    /// (and the combiner, when the app has one).
    pub buffer_pairs: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig { mappers: 4, reducers: 4, buffer_pairs: 64 * 1024 }
    }
}

/// What one run measured.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct EngineMetrics {
    /// Pairs emitted by map before any combining.
    pub pairs_emitted: u64,
    /// Pairs that crossed the shuffle (after combining, if any).
    pub pairs_shuffled: u64,
    /// Peak pairs buffered across all mappers at any instant — the
    /// intermediate-memory pressure Generalized Reduction avoids.
    pub peak_buffered_pairs: usize,
    /// Seconds in the map(+combine) phase.
    pub map_time: f64,
    /// Seconds in the shuffle (group-by-key) phase.
    pub shuffle_time: f64,
    /// Seconds in the reduce phase.
    pub reduce_time: f64,
}

impl EngineMetrics {
    /// Total wall time across phases.
    #[must_use]
    pub fn total_time(&self) -> f64 {
        self.map_time + self.shuffle_time + self.reduce_time
    }
}

/// One key's emitted or reduced pairs.
pub type Pairs<A> = Vec<(<A as MapReduceApp>::Key, <A as MapReduceApp>::Value)>;

fn partition_of<K: Hash>(key: &K, reducers: usize) -> usize {
    let mut h = DefaultHasher::new();
    key.hash(&mut h);
    (h.finish() as usize) % reducers
}

/// Run `app` over `chunks` and return `(sorted results, metrics)`.
///
/// Results are sorted by key so runs are comparable regardless of thread
/// interleaving.
pub fn run_mapreduce<A: MapReduceApp>(
    app: &A,
    chunks: &[impl AsRef<[u8]> + Sync],
    config: EngineConfig,
) -> (Pairs<A>, EngineMetrics) {
    let mappers = config.mappers.max(1);
    let reducers = config.reducers.max(1);
    let pairs_emitted = AtomicU64::new(0);
    let buffered_now = AtomicUsize::new(0);
    let peak_buffered = AtomicUsize::new(0);
    let next_chunk = AtomicUsize::new(0);

    // ---- Map (+ combine on flush) ----
    let map_start = Instant::now();
    // One Vec of partitioned output per mapper; merged at shuffle.
    let partitioned: Mutex<Vec<Pairs<A>>> = Mutex::new((0..reducers).map(|_| Vec::new()).collect());

    std::thread::scope(|scope| {
        for _ in 0..mappers {
            scope.spawn(|| {
                let mut items: Vec<A::Item> = Vec::new();
                let mut buffer: HashMap<A::Key, Vec<A::Value>> = HashMap::new();
                let mut buffered: usize = 0;

                let flush = |buffer: &mut HashMap<A::Key, Vec<A::Value>>, buffered: &mut usize| {
                    if buffer.is_empty() {
                        return;
                    }
                    let mut out: Vec<Vec<(A::Key, A::Value)>> =
                        (0..reducers).map(|_| Vec::new()).collect();
                    for (k, vs) in buffer.drain() {
                        let vs = app.combine(&k, vs);
                        let p = partition_of(&k, reducers);
                        out[p].extend(vs.into_iter().map(|v| (k.clone(), v)));
                    }
                    buffered_now.fetch_sub(*buffered, Ordering::Relaxed);
                    *buffered = 0;
                    let mut global = partitioned.lock();
                    for (p, vs) in out.into_iter().enumerate() {
                        global[p].extend(vs);
                    }
                };

                loop {
                    let i = next_chunk.fetch_add(1, Ordering::Relaxed);
                    let Some(chunk) = chunks.get(i) else { break };
                    items.clear();
                    app.decode(chunk.as_ref(), &mut items);
                    for item in &items {
                        app.map(item, &mut |k, v| {
                            pairs_emitted.fetch_add(1, Ordering::Relaxed);
                            buffer.entry(k).or_default().push(v);
                            buffered += 1;
                            let now = buffered_now.fetch_add(1, Ordering::Relaxed) + 1;
                            peak_buffered.fetch_max(now, Ordering::Relaxed);
                        });
                        if buffered >= config.buffer_pairs {
                            flush(&mut buffer, &mut buffered);
                        }
                    }
                }
                flush(&mut buffer, &mut buffered);
            });
        }
    });
    let map_time = map_start.elapsed().as_secs_f64();

    // ---- Shuffle: group each partition by key ----
    let shuffle_start = Instant::now();
    let partitioned = partitioned.into_inner();
    let pairs_shuffled: u64 = partitioned.iter().map(|p| p.len() as u64).sum();
    let grouped: Vec<HashMap<A::Key, Vec<A::Value>>> = {
        let mut grouped = Vec::with_capacity(reducers);
        for part in partitioned {
            let mut m: HashMap<A::Key, Vec<A::Value>> = HashMap::new();
            for (k, v) in part {
                m.entry(k).or_default().push(v);
            }
            grouped.push(m);
        }
        grouped
    };
    let shuffle_time = shuffle_start.elapsed().as_secs_f64();

    // ---- Reduce ----
    let reduce_start = Instant::now();
    let outputs: Mutex<Vec<(A::Key, A::Value)>> = Mutex::new(Vec::new());
    std::thread::scope(|scope| {
        for part in grouped {
            scope.spawn(|| {
                let mut local = Vec::with_capacity(part.len());
                for (k, vs) in part {
                    let v = app.reduce(&k, vs);
                    local.push((k, v));
                }
                outputs.lock().extend(local);
            });
        }
    });
    let mut results = outputs.into_inner();
    results.sort_by(|a, b| a.0.cmp(&b.0));
    let reduce_time = reduce_start.elapsed().as_secs_f64();

    let metrics = EngineMetrics {
        pairs_emitted: pairs_emitted.into_inner(),
        pairs_shuffled,
        peak_buffered_pairs: peak_buffered.into_inner(),
        map_time,
        shuffle_time,
        reduce_time,
    };
    (results, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Wordcount over byte "words": each byte is a word.
    struct ByteCount {
        with_combiner: bool,
    }

    impl MapReduceApp for ByteCount {
        type Item = u8;
        type Key = u8;
        type Value = u64;
        fn unit_size(&self) -> usize {
            1
        }
        fn decode(&self, chunk: &[u8], out: &mut Vec<u8>) {
            out.extend_from_slice(chunk);
        }
        fn map(&self, item: &u8, emit: &mut dyn FnMut(u8, u64)) {
            emit(*item, 1);
        }
        fn reduce(&self, _key: &u8, values: Vec<u64>) -> u64 {
            values.into_iter().sum()
        }
        fn combine(&self, _key: &u8, values: Vec<u64>) -> Vec<u64> {
            if self.with_combiner {
                vec![values.into_iter().sum()]
            } else {
                values
            }
        }
        fn has_combiner(&self) -> bool {
            self.with_combiner
        }
    }

    fn chunks() -> Vec<Vec<u8>> {
        // 4 chunks, bytes 0..4 with known counts.
        vec![vec![0, 1, 2, 3], vec![0, 0, 1, 1], vec![2, 2, 2, 3], vec![3, 3, 3, 3]]
    }

    fn expected() -> Vec<(u8, u64)> {
        vec![(0, 3), (1, 3), (2, 4), (3, 6)]
    }

    #[test]
    fn wordcount_without_combiner() {
        let (res, m) =
            run_mapreduce(&ByteCount { with_combiner: false }, &chunks(), EngineConfig::default());
        assert_eq!(res, expected());
        assert_eq!(m.pairs_emitted, 16);
        assert_eq!(m.pairs_shuffled, 16, "no combiner: every pair crosses the shuffle");
    }

    #[test]
    fn combiner_shrinks_shuffle_not_results() {
        let cfg = EngineConfig { mappers: 2, reducers: 2, buffer_pairs: 4 };
        let (res, m) = run_mapreduce(&ByteCount { with_combiner: true }, &chunks(), cfg);
        assert_eq!(res, expected());
        assert_eq!(m.pairs_emitted, 16);
        assert!(
            m.pairs_shuffled < m.pairs_emitted,
            "combiner must reduce shuffled pairs: {} vs {}",
            m.pairs_shuffled,
            m.pairs_emitted
        );
    }

    #[test]
    fn small_buffers_bound_peak_memory() {
        let big = EngineConfig { mappers: 1, reducers: 1, buffer_pairs: 1 << 20 };
        let small = EngineConfig { mappers: 1, reducers: 1, buffer_pairs: 4 };
        let data: Vec<Vec<u8>> = (0..8).map(|_| vec![7u8; 100]).collect();
        let (_, m_big) = run_mapreduce(&ByteCount { with_combiner: true }, &data, big);
        let (_, m_small) = run_mapreduce(&ByteCount { with_combiner: true }, &data, small);
        assert!(m_big.peak_buffered_pairs >= 800);
        assert!(m_small.peak_buffered_pairs <= 8);
    }

    #[test]
    fn single_threaded_and_parallel_agree() {
        let seq = EngineConfig { mappers: 1, reducers: 1, buffer_pairs: 16 };
        let par = EngineConfig { mappers: 8, reducers: 4, buffer_pairs: 16 };
        let (a, _) = run_mapreduce(&ByteCount { with_combiner: false }, &chunks(), seq);
        let (b, _) = run_mapreduce(&ByteCount { with_combiner: true }, &chunks(), par);
        assert_eq!(a, b);
    }

    #[test]
    fn empty_input_yields_empty_output() {
        let none: Vec<Vec<u8>> = Vec::new();
        let (res, m) =
            run_mapreduce(&ByteCount { with_combiner: false }, &none, EngineConfig::default());
        assert!(res.is_empty());
        assert_eq!(m.pairs_emitted, 0);
    }

    #[test]
    fn metrics_total_time_sums_phases() {
        let (_, m) =
            run_mapreduce(&ByteCount { with_combiner: false }, &chunks(), EngineConfig::default());
        let total = m.total_time();
        assert!(total >= m.map_time && total >= m.shuffle_time && total >= m.reduce_time);
    }
}
