//! # cloudburst-mapreduce
//!
//! The baseline the paper compares Generalized Reduction against: a
//! multi-threaded in-memory MapReduce engine with the classic
//! map → (combine) → shuffle → reduce pipeline ([`engine`]) and the
//! programming interface ([`api`]).
//!
//! The engine instruments exactly what the paper's §III-A argument is
//! about — intermediate `(key, value)` pairs emitted, shuffled and peak-
//! buffered — so the ablation benches can quantify the fused pipeline's
//! advantage on identical inputs.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod api;
pub mod engine;

pub use api::MapReduceApp;
pub use engine::{run_mapreduce, EngineConfig, EngineMetrics};
