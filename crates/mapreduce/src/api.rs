//! The classic MapReduce programming model (paper §III-A), implemented as
//! the baseline the Generalized Reduction API is compared against.
//!
//! "The map function takes a set of input points and generates a set of
//! corresponding output (key, value) pairs. The Map-Reduce library then
//! hashes these intermediate (key, value) pairs and passes them to the
//! reduce function in such a way that the same keys are always placed on the
//! same reduce node. ... The Map-Reduce framework also offers programmers an
//! optional Combine function."

use std::hash::Hash;

/// An application written against the MapReduce API.
pub trait MapReduceApp: Send + Sync {
    /// One decoded input record.
    type Item: Send;
    /// Intermediate/output key.
    type Key: Hash + Eq + Ord + Clone + Send;
    /// Intermediate/output value.
    type Value: Send;

    /// Size in bytes of one encoded input record.
    fn unit_size(&self) -> usize;

    /// Decode a chunk's raw bytes into records, appending to `out`.
    fn decode(&self, chunk: &[u8], out: &mut Vec<Self::Item>);

    /// Emit zero or more `(key, value)` pairs for one record.
    fn map(&self, item: &Self::Item, emit: &mut dyn FnMut(Self::Key, Self::Value));

    /// Merge the values of one key into the final output value.
    fn reduce(&self, key: &Self::Key, values: Vec<Self::Value>) -> Self::Value;

    /// Optional combiner applied when a mapper's buffer is flushed: fold a
    /// key's buffered values into fewer values (usually one). The default is
    /// the identity (no combiner), i.e. plain MapReduce.
    fn combine(&self, _key: &Self::Key, values: Vec<Self::Value>) -> Vec<Self::Value> {
        values
    }

    /// Whether [`MapReduceApp::combine`] is overridden. Engines use this to
    /// label runs; correctness does not depend on it.
    fn has_combiner(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Nop;
    impl MapReduceApp for Nop {
        type Item = u8;
        type Key = u8;
        type Value = u32;
        fn unit_size(&self) -> usize {
            1
        }
        fn decode(&self, chunk: &[u8], out: &mut Vec<u8>) {
            out.extend_from_slice(chunk);
        }
        fn map(&self, item: &u8, emit: &mut dyn FnMut(u8, u32)) {
            emit(*item, 1);
        }
        fn reduce(&self, _key: &u8, values: Vec<u32>) -> u32 {
            values.into_iter().sum()
        }
    }

    #[test]
    fn default_combiner_is_identity() {
        let app = Nop;
        assert!(!app.has_combiner());
        assert_eq!(app.combine(&0, vec![1, 2, 3]), vec![1, 2, 3]);
    }
}
