//! Fundamental identifier and quantity types shared across the framework.
//!
//! The paper's deployment has two *sites* (the local cluster and the cloud),
//! each hosting compute nodes and possibly storage. Everything in the
//! middleware is addressed by `(SiteId, NodeId)` for compute and by
//! `(FileId, offset)` for data.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Identifies a site: a cluster of co-located compute and/or storage
/// resources (e.g. the campus cluster, or an AWS region).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SiteId(pub u16);

impl SiteId {
    /// Conventional id of the local (in-house) cluster.
    pub const LOCAL: SiteId = SiteId(0);
    /// Conventional id of the cloud site.
    pub const CLOUD: SiteId = SiteId(1);

    /// Parse the [`fmt::Display`] spelling back (`local` / `cloud` /
    /// `site<N>`) — the inverse used when reading events JSONL.
    #[must_use]
    pub fn parse(text: &str) -> Option<SiteId> {
        match text {
            "local" => Some(SiteId::LOCAL),
            "cloud" => Some(SiteId::CLOUD),
            _ => text.strip_prefix("site").and_then(|n| n.parse().ok()).map(SiteId),
        }
    }
}

impl fmt::Display for SiteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            SiteId::LOCAL => write!(f, "local"),
            SiteId::CLOUD => write!(f, "cloud"),
            SiteId(n) => write!(f, "site{n}"),
        }
    }
}

/// Identifies a compute node (a worker/slave, a master, or the head) within
/// the whole deployment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "node{}", self.0)
    }
}

/// Identifies one data file of the (logically single) dataset.
///
/// The organizer splits a dataset into several files "to satisfy the compute
/// units' file system requirements" (paper §III-B); files are the unit of
/// placement across sites and of the contention heuristic used when stealing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct FileId(pub u32);

impl fmt::Display for FileId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "file{}", self.0)
    }
}

/// Identifies one chunk (== one job). Chunk ids are dense `0..n_chunks` in
/// file order, so consecutive ids within a file are physically consecutive
/// byte ranges — the property the consecutive-batch assignment exploits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ChunkId(pub u32);

impl ChunkId {
    /// The next chunk id in file order.
    #[must_use]
    pub fn next(self) -> ChunkId {
        ChunkId(self.0 + 1)
    }
}

impl fmt::Display for ChunkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "chunk{}", self.0)
    }
}

/// A job is the unit of assignment: exactly one chunk. The alias is kept
/// because jobs carry assignment state while chunks are pure layout.
pub type JobId = ChunkId;

/// Byte counts throughout the framework.
pub type ByteSize = u64;

/// Wall-clock or simulated durations, in seconds. A plain `f64` is used so
/// that the threaded runtime (real `Instant` deltas) and the discrete-event
/// simulator (virtual clock) share one stats model.
pub type Seconds = f64;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn site_display_names() {
        assert_eq!(SiteId::LOCAL.to_string(), "local");
        assert_eq!(SiteId::CLOUD.to_string(), "cloud");
        assert_eq!(SiteId(7).to_string(), "site7");
    }

    #[test]
    fn node_and_file_display_names() {
        assert_eq!(NodeId(3).to_string(), "node3");
        assert_eq!(FileId(12).to_string(), "file12");
        assert_eq!(ChunkId(5).to_string(), "chunk5");
    }

    #[test]
    fn chunk_id_next_is_successor() {
        assert_eq!(ChunkId(0).next(), ChunkId(1));
        assert_eq!(ChunkId(41).next(), ChunkId(42));
    }

    #[test]
    fn ids_order_by_inner_value() {
        assert!(ChunkId(3) < ChunkId(10));
        assert!(FileId(0) < FileId(1));
        assert!(SiteId::LOCAL < SiteId::CLOUD);
    }
}
