//! Runtime telemetry: typed events, sinks, exporters, and the event-stream
//! aggregator.
//!
//! The paper's entire evaluation is a set of *time decompositions* —
//! processing / retrieval / sync stacked bars, per-site job and steal
//! counts, global-reduction and idle overheads — and PR 1's fault layer
//! made *when* a steal, lease reap, speculation or evacuation happened the
//! interesting object of study. This module gives every runtime a shared
//! vocabulary for those moments:
//!
//! * [`Event`] / [`EventKind`] — the typed taxonomy, each event tagged with
//!   site / slave / chunk ids and nanosecond timestamps (monotonic within
//!   the emitting clock: the pool clock, a runtime's epoch `Instant`, or
//!   the simulator's virtual time);
//! * [`EventSink`] — the lock-cheap ingestion trait; [`Telemetry`] is the
//!   clonable handle the runtimes carry (a no-op when disabled, one atomic
//!   clone of an `Arc` when not);
//! * consumers: [`Recorder`] (in-memory), [`events_to_jsonl`] (JSONL event
//!   log), [`chrome_trace`] (Chrome `trace_event` JSON that opens directly
//!   in `chrome://tracing` / [Perfetto](https://ui.perfetto.dev) as
//!   per-slave swimlanes), and [`ConsoleSink`] (filtered stderr log);
//! * [`derive_report`] — the aggregator: it rebuilds the paper-shaped
//!   [`RunReport`] (breakdowns, per-site counts, fault counters) from the
//!   event stream alone, using the same assembly arithmetic
//!   ([`crate::stats::assemble_sites`]) as the live accumulators, so an
//!   equivalence test can prove the derived numbers match the legacy path.
//!
//! Overhead budget: with telemetry off the runtimes pay one branch per
//! would-be event. With a recorder attached, each event is a ~64-byte
//! `memcpy` under an uncontended `parking_lot` mutex — microseconds per
//! job, invisible next to chunk retrieval.

use crate::fault::{AbandonedJob, FaultCounters};
use crate::json::Json;
use crate::pool::SiteJobCounts;
use crate::stats::{RunReport, SiteSample, SlaveSample};
use crate::types::{ChunkId, SiteId};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// Convert caller-clock seconds to the event timestamp unit (ns).
#[must_use]
pub fn secs_to_ns(secs: f64) -> u64 {
    if secs <= 0.0 || !secs.is_finite() {
        return 0;
    }
    (secs * 1e9).round() as u64
}

/// Convert an event timestamp back to seconds.
#[must_use]
pub fn ns_to_secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

/// Nanoseconds of run clock between `epoch` and `at`, saturating at zero.
///
/// Every wall-clock event emitter must stamp through this (or [`ns_since`])
/// so a clock read that races the epoch can never underflow into a
/// nonsense timestamp.
#[must_use]
pub fn ns_between(epoch: std::time::Instant, at: std::time::Instant) -> u64 {
    at.saturating_duration_since(epoch).as_nanos() as u64
}

/// Nanoseconds of run clock elapsed since `epoch` (saturating at zero) —
/// the one timestamping helper shared by masters, slaves, and the
/// reduction phases.
#[must_use]
pub fn ns_since(epoch: std::time::Instant) -> u64 {
    ns_between(epoch, std::time::Instant::now())
}

/// What happened. Payload fields carry the flags the aggregator and the
/// trace exporter need; identity tags (site / worker / chunk) live on
/// [`Event`] itself.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum EventKind {
    /// The head granted a job lease to a site. `stolen` marks cross-site
    /// grants (work stealing); `speculative` marks straggler re-executions.
    JobGranted {
        /// Job data lives at a different site than the processor.
        stolen: bool,
        /// This is a speculative copy of an in-flight straggler.
        speculative: bool,
    },
    /// A slave began processing a job it took from its master.
    JobStarted {
        /// The job's data is not hosted at the processing site.
        stolen: bool,
    },
    /// A slave fetched a chunk (span: `dur_ns` covers the retrieval).
    ChunkFetched {
        /// Bytes retrieved.
        bytes: u64,
        /// True when fetched across the inter-site link.
        remote: bool,
        /// Transient read failures absorbed below the chunk level.
        retries: u64,
    },
    /// Transient storage-read failures were absorbed while fetching one
    /// range (emitted once per affected range, after it finally succeeded).
    StorageRetry {
        /// Number of failed attempts before success.
        retries: u64,
    },
    /// A slave ran the reduction over a chunk (span).
    JobProcessed,
    /// The head ruled on a completion report (the dedup verdict).
    JobCompleted {
        /// The result was accepted for merging (first completion wins).
        merged: bool,
        /// The winning lease had already been reaped (late completion).
        late: bool,
        /// The processor was not the data-home site.
        stolen: bool,
    },
    /// A speculative execution resolved: it either won the race (its result
    /// merged) or lost (preempted, reaped or evacuated before merging).
    SpeculationResolved {
        /// True when the speculative copy's result was the one merged.
        won: bool,
    },
    /// A site reported a processing failure; the job was released.
    JobFailed,
    /// A silent lease expired and the head reclaimed the job.
    LeaseReaped,
    /// An in-flight lease was revoked because its site was evacuated.
    JobEvacuated,
    /// A whole site was declared dead and evacuated.
    SiteEvacuated,
    /// A completed result died with an evacuated site's unreduced robj and
    /// the job was re-queued.
    LostResult {
        /// The lost execution had been a stolen job.
        stolen: bool,
    },
    /// A job was permanently abandoned after exhausting its attempts.
    JobAbandoned,
    /// A master liveness beacon reached the head.
    Heartbeat,
    /// A periodic sample of the live metrics registry (emitted by the
    /// background sampler when `--metrics-addr` / `--watch` is active), so
    /// traces and metrics share one timeline.
    MetricsSnapshot {
        /// Jobs granted so far (all sites, speculative copies included).
        grants: u64,
        /// Cross-site (stolen) grants so far.
        steals: u64,
        /// Completions merged so far.
        completions: u64,
        /// Jobs still waiting in the pool at sample time.
        queue_depth: u64,
        /// Bytes fetched from storage so far.
        bytes: u64,
    },
    /// A health detector changed state (emitted by
    /// [`crate::health::HealthMonitor`] after hysteresis, so transitions
    /// are rare even when the underlying signal is noisy).
    HealthTransition {
        /// Which detector changed state.
        detector: crate::health::HealthDetector,
        /// `true` = tripped (healthy -> degraded), `false` = cleared.
        tripped: bool,
        /// The observed value that drove the transition.
        value: f64,
        /// The configured threshold it was compared against.
        threshold: f64,
    },
    /// A slave processed its last job and exited (its finish timestamp).
    SlaveFinished,
    /// A site combined its workers' scratch objects (span).
    SiteMerged,
    /// A site finished everything, local combination included.
    SiteFinished,
    /// The inter-site global reduction phase (span).
    GlobalReduction,
    /// End of the run (`at_ns` is the total time).
    RunFinished,
}

impl EventKind {
    /// Stable machine-readable label (JSONL `kind` field).
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            EventKind::JobGranted { .. } => "job-granted",
            EventKind::JobStarted { .. } => "job-started",
            EventKind::ChunkFetched { .. } => "chunk-fetched",
            EventKind::StorageRetry { .. } => "storage-retry",
            EventKind::JobProcessed => "job-processed",
            EventKind::JobCompleted { .. } => "job-completed",
            EventKind::SpeculationResolved { .. } => "speculation-resolved",
            EventKind::JobFailed => "job-failed",
            EventKind::LeaseReaped => "lease-reap",
            EventKind::JobEvacuated => "job-evacuated",
            EventKind::SiteEvacuated => "site-evacuated",
            EventKind::LostResult { .. } => "lost-result",
            EventKind::JobAbandoned => "job-abandoned",
            EventKind::Heartbeat => "heartbeat",
            EventKind::MetricsSnapshot { .. } => "metrics-snapshot",
            EventKind::HealthTransition { .. } => "health-transition",
            EventKind::SlaveFinished => "slave-finished",
            EventKind::SiteMerged => "local-merge",
            EventKind::SiteFinished => "site-finished",
            EventKind::GlobalReduction => "global-reduction",
            EventKind::RunFinished => "run-finished",
        }
    }

    /// Human-facing trace name; grant flavors get their own names so steals
    /// and speculations are findable in a timeline by eye or by search.
    #[must_use]
    pub fn display_name(&self) -> &'static str {
        match self {
            EventKind::JobGranted { speculative: true, .. } => "speculate",
            EventKind::JobGranted { stolen: true, .. } => "steal",
            EventKind::JobGranted { .. } => "grant",
            EventKind::JobStarted { .. } => "start",
            EventKind::ChunkFetched { .. } => "fetch",
            EventKind::JobProcessed => "process",
            EventKind::JobCompleted { merged: false, .. } => "duplicate",
            EventKind::JobCompleted { late: true, .. } => "late-complete",
            EventKind::JobCompleted { .. } => "complete",
            EventKind::SpeculationResolved { won: true } => "spec-win",
            EventKind::SpeculationResolved { won: false } => "spec-loss",
            EventKind::HealthTransition { tripped: true, .. } => "health-trip",
            EventKind::HealthTransition { tripped: false, .. } => "health-clear",
            other => other.label(),
        }
    }

    /// Trace category (Perfetto lets you filter on these).
    #[must_use]
    pub fn category(&self) -> &'static str {
        match self {
            EventKind::JobGranted { .. }
            | EventKind::JobCompleted { .. }
            | EventKind::SpeculationResolved { .. }
            | EventKind::JobFailed
            | EventKind::LeaseReaped
            | EventKind::JobEvacuated
            | EventKind::JobAbandoned => "pool",
            EventKind::JobStarted { .. } | EventKind::JobProcessed | EventKind::SlaveFinished => {
                "slave"
            }
            EventKind::ChunkFetched { .. } | EventKind::StorageRetry { .. } => "storage",
            EventKind::SiteEvacuated | EventKind::LostResult { .. } | EventKind::Heartbeat => {
                "liveness"
            }
            EventKind::MetricsSnapshot { .. } => "metrics",
            EventKind::HealthTransition { .. } => "health",
            EventKind::SiteMerged | EventKind::SiteFinished => "site",
            EventKind::GlobalReduction | EventKind::RunFinished => "run",
        }
    }

    /// True for fault-path events worth surfacing at `--log-level info`.
    #[must_use]
    pub fn is_noteworthy(&self) -> bool {
        matches!(
            self,
            EventKind::JobGranted { speculative: true, .. }
                | EventKind::JobCompleted { merged: false, .. }
                | EventKind::JobCompleted { late: true, .. }
                | EventKind::SpeculationResolved { .. }
                | EventKind::JobFailed
                | EventKind::LeaseReaped
                | EventKind::JobEvacuated
                | EventKind::SiteEvacuated
                | EventKind::LostResult { .. }
                | EventKind::JobAbandoned
                | EventKind::StorageRetry { .. }
                | EventKind::HealthTransition { .. }
        )
    }
}

/// One telemetry event: a timestamped, tagged [`EventKind`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Event {
    /// Nanoseconds since the emitting clock's epoch (span start for spans).
    pub at_ns: u64,
    /// Span duration in nanoseconds; 0 marks an instant event.
    pub dur_ns: u64,
    /// Site involved, when known.
    pub site: Option<SiteId>,
    /// Slave (worker index within the site), when known.
    pub worker: Option<u32>,
    /// Chunk/job involved, when known.
    pub chunk: Option<ChunkId>,
    /// Causal span this event belongs to: the pool allocates one span id per
    /// job *execution* at grant time (so a chunk's speculative or replica
    /// copies each get their own), and every downstream event of that
    /// execution — start, fetch, process, completion, reap, evacuation —
    /// carries it, across threads and across the TCP wire.
    pub span: Option<u64>,
    /// The span this one was caused by (replica/speculation lineage: a
    /// duplicate grant's parent is the execution it races).
    pub parent: Option<u64>,
    /// Per-sink delivery sequence number, stamped by [`Telemetry::emit`]
    /// (1-based; 0 marks an event that never went through a handle). The
    /// stamped *set* is contiguous — `cloudburst check-json` uses it to
    /// prove an events JSONL lost nothing — but the recorded *order* may
    /// interleave, since racing emitters are stamped before they enqueue.
    pub seq: u64,
    /// What happened.
    pub kind: EventKind,
}

impl Event {
    /// An instant event at `at_ns`.
    #[must_use]
    pub fn at(at_ns: u64, kind: EventKind) -> Event {
        Event {
            at_ns,
            dur_ns: 0,
            site: None,
            worker: None,
            chunk: None,
            span: None,
            parent: None,
            seq: 0,
            kind,
        }
    }

    /// A span starting at `at_ns` lasting `dur_ns`.
    #[must_use]
    pub fn span(at_ns: u64, dur_ns: u64, kind: EventKind) -> Event {
        Event { dur_ns, ..Event::at(at_ns, kind) }
    }

    /// Tag with a site.
    #[must_use]
    pub fn site(mut self, site: SiteId) -> Event {
        self.site = Some(site);
        self
    }

    /// Tag with a slave index.
    #[must_use]
    pub fn worker(mut self, worker: u32) -> Event {
        self.worker = Some(worker);
        self
    }

    /// Tag with a chunk id.
    #[must_use]
    pub fn chunk(mut self, chunk: ChunkId) -> Event {
        self.chunk = Some(chunk);
        self
    }

    /// Tag with the causal span id (0, the "no span" sentinel, is ignored).
    #[must_use]
    pub fn span_id(mut self, span: u64) -> Event {
        if span != 0 {
            self.span = Some(span);
        }
        self
    }

    /// Tag with the parent span that caused this event (0 is ignored).
    #[must_use]
    pub fn cause(mut self, parent: u64) -> Event {
        if parent != 0 {
            self.parent = Some(parent);
        }
        self
    }

    /// Kind-specific payload fields, shared by the JSONL and trace exports.
    fn payload(&self) -> Vec<(&'static str, Json)> {
        match self.kind {
            EventKind::JobGranted { stolen, speculative } => {
                vec![("stolen", Json::Bool(stolen)), ("speculative", Json::Bool(speculative))]
            }
            EventKind::JobStarted { stolen } => vec![("stolen", Json::Bool(stolen))],
            EventKind::ChunkFetched { bytes, remote, retries } => vec![
                ("bytes", Json::U64(bytes)),
                ("remote", Json::Bool(remote)),
                ("retries", Json::U64(retries)),
            ],
            EventKind::StorageRetry { retries } => vec![("retries", Json::U64(retries))],
            EventKind::JobCompleted { merged, late, stolen } => vec![
                ("merged", Json::Bool(merged)),
                ("late", Json::Bool(late)),
                ("stolen", Json::Bool(stolen)),
            ],
            EventKind::SpeculationResolved { won } => vec![("won", Json::Bool(won))],
            EventKind::LostResult { stolen } => vec![("stolen", Json::Bool(stolen))],
            EventKind::MetricsSnapshot { grants, steals, completions, queue_depth, bytes } => vec![
                ("grants", Json::U64(grants)),
                ("steals", Json::U64(steals)),
                ("completions", Json::U64(completions)),
                ("queue_depth", Json::U64(queue_depth)),
                ("bytes", Json::U64(bytes)),
            ],
            EventKind::HealthTransition { detector, tripped, value, threshold } => vec![
                ("detector", Json::Str(detector.label().into())),
                ("tripped", Json::Bool(tripped)),
                ("value", Json::F64(value)),
                ("threshold", Json::F64(threshold)),
            ],
            _ => Vec::new(),
        }
    }

    /// The JSONL representation (one object per event).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .field("at_ns", Json::U64(self.at_ns))
            .field("kind", Json::Str(self.kind.label().into()));
        if self.dur_ns > 0 {
            j = j.field("dur_ns", Json::U64(self.dur_ns));
        }
        if let Some(site) = self.site {
            j = j.field("site", Json::Str(site.to_string()));
        }
        if let Some(worker) = self.worker {
            j = j.field("worker", Json::U64(u64::from(worker)));
        }
        if let Some(chunk) = self.chunk {
            j = j.field("chunk", Json::U64(u64::from(chunk.0)));
        }
        if let Some(span) = self.span {
            j = j.field("span", Json::U64(span));
        }
        if let Some(parent) = self.parent {
            j = j.field("parent", Json::U64(parent));
        }
        if self.seq > 0 {
            j = j.field("seq", Json::U64(self.seq));
        }
        for (k, v) in self.payload() {
            j = j.field(k, v);
        }
        j
    }

    /// Parse one JSONL object back into an [`Event`] — the exact inverse of
    /// [`Event::to_json`], used by `cloudburst explain` / `check-json` to
    /// reconstruct a run from its `--events-out` artifact.
    ///
    /// # Errors
    /// Returns a message naming the missing/malformed field, including an
    /// unrecognized `kind` (so a reader confronted with a newer taxonomy
    /// can skip rather than misfile).
    pub fn from_json(j: &Json) -> Result<Event, String> {
        fn u64_of(j: &Json, key: &str) -> Option<u64> {
            match j.get(key)? {
                Json::U64(v) => Some(*v),
                Json::F64(v) if *v >= 0.0 && v.fract() == 0.0 => Some(*v as u64),
                _ => None,
            }
        }
        fn bool_of(j: &Json, key: &str) -> bool {
            matches!(j.get(key), Some(Json::Bool(true)))
        }
        let at_ns = u64_of(j, "at_ns").ok_or("missing 'at_ns'")?;
        let label = j.get("kind").and_then(Json::as_str).ok_or("missing 'kind'")?;
        let kind = match label {
            "job-granted" => EventKind::JobGranted {
                stolen: bool_of(j, "stolen"),
                speculative: bool_of(j, "speculative"),
            },
            "job-started" => EventKind::JobStarted { stolen: bool_of(j, "stolen") },
            "chunk-fetched" => EventKind::ChunkFetched {
                bytes: u64_of(j, "bytes").unwrap_or(0),
                remote: bool_of(j, "remote"),
                retries: u64_of(j, "retries").unwrap_or(0),
            },
            "storage-retry" => {
                EventKind::StorageRetry { retries: u64_of(j, "retries").unwrap_or(0) }
            }
            "job-processed" => EventKind::JobProcessed,
            "job-completed" => EventKind::JobCompleted {
                merged: bool_of(j, "merged"),
                late: bool_of(j, "late"),
                stolen: bool_of(j, "stolen"),
            },
            "speculation-resolved" => EventKind::SpeculationResolved { won: bool_of(j, "won") },
            "job-failed" => EventKind::JobFailed,
            "lease-reap" => EventKind::LeaseReaped,
            "job-evacuated" => EventKind::JobEvacuated,
            "site-evacuated" => EventKind::SiteEvacuated,
            "lost-result" => EventKind::LostResult { stolen: bool_of(j, "stolen") },
            "job-abandoned" => EventKind::JobAbandoned,
            "heartbeat" => EventKind::Heartbeat,
            "metrics-snapshot" => EventKind::MetricsSnapshot {
                grants: u64_of(j, "grants").unwrap_or(0),
                steals: u64_of(j, "steals").unwrap_or(0),
                completions: u64_of(j, "completions").unwrap_or(0),
                queue_depth: u64_of(j, "queue_depth").unwrap_or(0),
                bytes: u64_of(j, "bytes").unwrap_or(0),
            },
            "health-transition" => {
                let label = j.get("detector").and_then(Json::as_str).ok_or("missing 'detector'")?;
                let detector = crate::health::HealthDetector::parse(label)
                    .ok_or_else(|| format!("unknown health detector '{label}'"))?;
                EventKind::HealthTransition {
                    detector,
                    tripped: bool_of(j, "tripped"),
                    value: j.get("value").and_then(Json::as_f64).unwrap_or(0.0),
                    threshold: j.get("threshold").and_then(Json::as_f64).unwrap_or(0.0),
                }
            }
            "slave-finished" => EventKind::SlaveFinished,
            "local-merge" => EventKind::SiteMerged,
            "site-finished" => EventKind::SiteFinished,
            "global-reduction" => EventKind::GlobalReduction,
            "run-finished" => EventKind::RunFinished,
            other => return Err(format!("unknown event kind '{other}'")),
        };
        let site = match j.get("site").and_then(Json::as_str) {
            None => None,
            Some(text) => Some(SiteId::parse(text).ok_or_else(|| format!("bad site '{text}'"))?),
        };
        let mut e = Event::at(at_ns, kind);
        e.dur_ns = u64_of(j, "dur_ns").unwrap_or(0);
        e.site = site;
        e.worker = u64_of(j, "worker").map(|w| w as u32);
        e.chunk = u64_of(j, "chunk").map(|c| ChunkId(c as u32));
        e.span = u64_of(j, "span");
        e.parent = u64_of(j, "parent");
        e.seq = u64_of(j, "seq").unwrap_or(0);
        Ok(e)
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:>12.6}s", ns_to_secs(self.at_ns))?;
        if let Some(site) = self.site {
            write!(f, " {site}")?;
        }
        if let Some(w) = self.worker {
            write!(f, "/w{w}")?;
        }
        write!(f, " {}", self.kind.display_name())?;
        if let Some(c) = self.chunk {
            write!(f, " {c}")?;
        }
        if self.dur_ns > 0 {
            write!(f, " ({:.6}s)", ns_to_secs(self.dur_ns))?;
        }
        Ok(())
    }
}

/// Where events go. Implementations must be cheap and thread-safe: slaves
/// call [`EventSink::record`] from hot loops.
pub trait EventSink: Send + Sync {
    /// Ingest one event.
    fn record(&self, event: Event);
}

/// The clonable telemetry handle the runtimes carry. Disabled by default:
/// `emit` is a single branch when no sink is attached.
///
/// Every clone of a handle shares one sequence counter: `emit` stamps each
/// delivered event with the next 1-based [`Event::seq`], so however many
/// threads and runtimes share the handle, the union of everything the sink
/// saw carries a gap-free sequence — the invariant `cloudburst check-json`
/// verifies on events JSONL to detect dropped events.
#[derive(Clone, Default)]
pub struct Telemetry {
    sink: Option<Arc<dyn EventSink>>,
    seq: Arc<std::sync::atomic::AtomicU64>,
}

impl Telemetry {
    /// The disabled handle (every emit is a no-op).
    #[must_use]
    pub fn off() -> Telemetry {
        Telemetry { sink: None, seq: Arc::default() }
    }

    /// A handle delivering every event to `sink`.
    #[must_use]
    pub fn to(sink: Arc<dyn EventSink>) -> Telemetry {
        Telemetry { sink: Some(sink), seq: Arc::default() }
    }

    /// A handle fanning out to several sinks (0 sinks = off, 1 = direct).
    #[must_use]
    pub fn fanout(mut sinks: Vec<Arc<dyn EventSink>>) -> Telemetry {
        match sinks.len() {
            0 => Telemetry::off(),
            1 => Telemetry::to(sinks.remove(0)),
            _ => Telemetry::to(Arc::new(Fanout { sinks })),
        }
    }

    /// True when a sink is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.sink.is_some()
    }

    /// Deliver one event (no-op when disabled), stamped with this handle
    /// family's next sequence number.
    #[inline]
    pub fn emit(&self, mut event: Event) {
        if let Some(sink) = &self.sink {
            event.seq = self.seq.fetch_add(1, std::sync::atomic::Ordering::Relaxed) + 1;
            sink.record(event);
        }
    }
}

impl fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(if self.is_enabled() { "Telemetry(on)" } else { "Telemetry(off)" })
    }
}

/// Delivers each event to every attached sink, in order.
struct Fanout {
    sinks: Vec<Arc<dyn EventSink>>,
}

impl EventSink for Fanout {
    fn record(&self, event: Event) {
        for sink in &self.sinks {
            sink.record(event);
        }
    }
}

/// An in-memory event recorder (the default sink for tests and the CLI).
#[derive(Default)]
pub struct Recorder {
    events: Mutex<Vec<Event>>,
}

impl Recorder {
    /// A fresh, empty recorder.
    #[must_use]
    pub fn new() -> Recorder {
        Recorder::default()
    }

    /// Copy out everything recorded so far.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        self.events.lock().clone()
    }

    /// Drain everything recorded so far.
    #[must_use]
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock())
    }

    /// Number of events recorded so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.lock().len()
    }

    /// True when nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.lock().is_empty()
    }
}

impl EventSink for Recorder {
    fn record(&self, event: Event) {
        self.events.lock().push(event);
    }
}

/// The always-on flight recorder: a bounded ring-buffer sink that keeps
/// the last `capacity` events and overwrites the oldest beyond that.
///
/// The slot vector is allocated once up front; steady-state recording is a
/// `memcpy` into a preallocated slot under an uncontended `parking_lot`
/// mutex — no allocation, no unbounded growth — so it can tee alongside
/// every other sink for the whole run and still cost nothing measurable.
/// [`FlightRecorder::snapshot`] reconstructs the window oldest-first on
/// demand; that is what `/debug/events` serves and what the black-box
/// crash dump writes.
pub struct FlightRecorder {
    ring: Mutex<Ring>,
    capacity: usize,
    total: std::sync::atomic::AtomicU64,
}

struct Ring {
    /// Grows to `capacity` once (preallocated), then stays put.
    slots: Vec<Event>,
    /// Overwrite cursor: index of the oldest slot once the ring is full.
    next: usize,
}

impl FlightRecorder {
    /// A recorder keeping the last `capacity` events (0 disables recording).
    #[must_use]
    pub fn new(capacity: usize) -> FlightRecorder {
        FlightRecorder {
            ring: Mutex::new(Ring { slots: Vec::with_capacity(capacity), next: 0 }),
            capacity,
            total: std::sync::atomic::AtomicU64::new(0),
        }
    }

    /// The fixed window size.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (== `capacity` once the ring has wrapped).
    #[must_use]
    pub fn len(&self) -> usize {
        self.ring.lock().slots.len()
    }

    /// True while nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Every event ever offered, including those already overwritten.
    #[must_use]
    pub fn total_recorded(&self) -> u64 {
        self.total.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// The current window, oldest first.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Event> {
        let ring = self.ring.lock();
        if ring.slots.len() < self.capacity {
            return ring.slots.clone();
        }
        let mut out = Vec::with_capacity(ring.slots.len());
        out.extend_from_slice(&ring.slots[ring.next..]);
        out.extend_from_slice(&ring.slots[..ring.next]);
        out
    }

    /// The newest `n` events of the window, oldest of those first.
    #[must_use]
    pub fn last(&self, n: usize) -> Vec<Event> {
        let mut window = self.snapshot();
        let keep = window.len().saturating_sub(n);
        window.drain(..keep);
        window
    }
}

impl EventSink for FlightRecorder {
    fn record(&self, event: Event) {
        if self.capacity == 0 {
            return;
        }
        self.total.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        let mut ring = self.ring.lock();
        if ring.slots.len() < self.capacity {
            ring.slots.push(event);
        } else {
            let at = ring.next;
            ring.slots[at] = event;
            ring.next = (at + 1) % self.capacity;
        }
    }
}

impl fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("total_recorded", &self.total_recorded())
            .finish()
    }
}

/// A streaming JSONL event-log sink: each event is serialized and written
/// as one line the moment it is recorded, through a line-buffered writer,
/// so a crashed run's `--events-out` log is complete up to the final whole
/// record instead of losing everything buffered for an end-of-run dump.
///
/// [`JsonlSink::flush`] is exposed for the panic hook; dropping the sink
/// flushes too.
pub struct JsonlSink {
    inner: Mutex<JsonlInner>,
    path: std::path::PathBuf,
}

struct JsonlInner {
    out: std::io::LineWriter<std::fs::File>,
    /// Reused serialization buffer: one line, no per-event allocation.
    buf: String,
}

impl JsonlSink {
    /// Create (truncate) `path` and stream events into it.
    ///
    /// # Errors
    /// Propagates the file-creation failure.
    pub fn create(path: impl AsRef<std::path::Path>) -> std::io::Result<JsonlSink> {
        let path = path.as_ref().to_path_buf();
        let file = std::fs::File::create(&path)?;
        Ok(JsonlSink {
            inner: Mutex::new(JsonlInner {
                out: std::io::LineWriter::new(file),
                buf: String::new(),
            }),
            path,
        })
    }

    /// Where the log is being written.
    #[must_use]
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }

    /// Push everything buffered to the OS (idempotent; used by the
    /// panic/black-box hook).
    pub fn flush(&self) {
        use std::io::Write;
        let _ = self.inner.lock().out.flush();
    }
}

impl EventSink for JsonlSink {
    fn record(&self, event: Event) {
        use std::io::Write;
        let mut inner = self.inner.lock();
        let JsonlInner { out, buf } = &mut *inner;
        buf.clear();
        event.to_json().write(buf);
        buf.push('\n');
        let _ = out.write_all(buf.as_bytes());
    }
}

impl Drop for JsonlSink {
    fn drop(&mut self) {
        self.flush();
    }
}

/// Console verbosity for [`ConsoleSink`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LogLevel {
    /// Only fault-path events (reaps, evacuations, speculation, retries).
    Info,
    /// Every event.
    Debug,
}

impl LogLevel {
    /// Parse a CLI spelling (`info` / `debug`; `off` maps to `None`).
    #[must_use]
    pub fn parse(text: &str) -> Option<Option<LogLevel>> {
        match text {
            "off" => Some(None),
            "info" => Some(Some(LogLevel::Info)),
            "debug" => Some(Some(LogLevel::Debug)),
            _ => None,
        }
    }
}

/// Streams events to stderr as they happen, filtered by [`LogLevel`].
///
/// Lines go through one shared, buffered writer behind a single mutex —
/// not `eprintln!` — so `--log-level debug` on a chaos run pays one lock
/// and a `memcpy` per event instead of a syscall, and a flurry of slave
/// events can't interleave mid-line. The buffer is flushed when the sink
/// is dropped (and whenever it fills).
pub struct ConsoleSink {
    level: LogLevel,
    out: Mutex<std::io::BufWriter<std::io::Stderr>>,
}

impl ConsoleSink {
    /// A console sink at the given verbosity.
    #[must_use]
    pub fn new(level: LogLevel) -> ConsoleSink {
        ConsoleSink { level, out: Mutex::new(std::io::BufWriter::new(std::io::stderr())) }
    }
}

impl EventSink for ConsoleSink {
    fn record(&self, event: Event) {
        if self.level == LogLevel::Debug || event.kind.is_noteworthy() {
            use std::io::Write;
            let mut out = self.out.lock();
            let _ = writeln!(out, "[telemetry] {event}");
        }
    }
}

impl Drop for ConsoleSink {
    fn drop(&mut self) {
        use std::io::Write;
        let _ = self.out.lock().flush();
    }
}

/// Serialize events as JSONL (one JSON object per line) — the event-log
/// artifact behind the CLI's `--events-out`.
#[must_use]
pub fn events_to_jsonl(events: &[Event]) -> String {
    let mut out = String::new();
    for e in events {
        e.to_json().write(&mut out);
        out.push('\n');
    }
    out
}

/// Export events as a Chrome `trace_event` document (the JSON object form,
/// `{"traceEvents": [...]}`). Open the file in `chrome://tracing` or
/// Perfetto: each site is a process, each slave a thread-track, the pool /
/// control plane is track 0.
///
/// Pool-side events (grants, steals, speculations, reaps, completions)
/// carry a site but no worker; the exporter attributes them to the slave
/// track that actually executed the chunk — the next `JobStarted` for the
/// same `(site, chunk)` for grant-like events, the latest preceding one for
/// outcome-like events — so a chaos run's steals, lease reaps and
/// speculative launches land on the swimlane of the slave they concern.
#[must_use]
pub fn chrome_trace(events: &[Event]) -> Json {
    // (site, chunk) -> sorted (start time, worker) pairs, for attribution.
    let mut starts: BTreeMap<(SiteId, ChunkId), Vec<(u64, u32)>> = BTreeMap::new();
    for e in events {
        if let (EventKind::JobStarted { .. }, Some(site), Some(w), Some(c)) =
            (e.kind, e.site, e.worker, e.chunk)
        {
            starts.entry((site, c)).or_default().push((e.at_ns, w));
        }
    }
    for v in starts.values_mut() {
        v.sort_unstable();
    }
    let attribute = |e: &Event| -> Option<u32> {
        if e.worker.is_some() {
            return e.worker;
        }
        let runs = starts.get(&(e.site?, e.chunk?))?;
        let forward = matches!(e.kind, EventKind::JobGranted { .. });
        let picked = if forward {
            // Grant-like: the execution this grant caused starts at/after it.
            runs.iter().find(|(at, _)| *at >= e.at_ns).or_else(|| runs.last())
        } else {
            // Outcome-like: concerns the latest execution already started.
            runs.iter().rev().find(|(at, _)| *at <= e.at_ns).or_else(|| runs.first())
        };
        picked.map(|&(_, w)| w)
    };

    let mut rows = Vec::new();
    let mut lanes: BTreeMap<(u64, u64), ()> = BTreeMap::new();
    for e in events {
        // Head/run-scoped events (no site) live in process 0.
        let pid = e.site.map_or(0, |s| u64::from(s.0) + 1);
        let tid = attribute(e).map_or(0, |w| u64::from(w) + 1);
        lanes.entry((pid, tid)).or_insert(());
        let mut row = Json::obj()
            .field("name", Json::Str(e.kind.display_name().into()))
            .field("cat", Json::Str(e.kind.category().into()))
            .field("pid", Json::U64(pid))
            .field("tid", Json::U64(tid))
            .field("ts", Json::F64(e.at_ns as f64 / 1000.0));
        if e.dur_ns > 0 {
            row = row
                .field("ph", Json::Str("X".into()))
                .field("dur", Json::F64(e.dur_ns as f64 / 1000.0));
        } else {
            row = row.field("ph", Json::Str("i".into())).field("s", Json::Str("t".into()));
        }
        let mut args = Json::obj();
        if let Some(c) = e.chunk {
            args = args.field("chunk", Json::U64(u64::from(c.0)));
        }
        for (k, v) in e.payload() {
            args = args.field(k, v);
        }
        rows.push(row.field("args", args));
    }
    // Metadata rows naming each process (site) and thread (slave) track.
    for &(pid, tid) in lanes.keys() {
        if tid == 0 {
            let name = if pid == 0 {
                "head".to_owned()
            } else {
                format!("site {}", SiteId(pid as u16 - 1))
            };
            rows.push(meta_row("process_name", pid, 0, &name));
            rows.push(meta_row("thread_name", pid, 0, "control"));
        } else {
            rows.push(meta_row("thread_name", pid, tid, &format!("slave {}", tid - 1)));
        }
    }
    Json::obj()
        .field("traceEvents", Json::Arr(rows))
        .field("displayTimeUnit", Json::Str("ms".into()))
}

fn meta_row(what: &str, pid: u64, tid: u64, name: &str) -> Json {
    Json::obj()
        .field("name", Json::Str(what.into()))
        .field("ph", Json::Str("M".into()))
        .field("pid", Json::U64(pid))
        .field("tid", Json::U64(tid))
        .field("args", Json::obj().field("name", Json::Str(name.into())))
}

/// Derive the paper-shaped [`RunReport`] from an event stream.
///
/// This is the aggregator consumer: it rebuilds per-slave processing /
/// retrieval sums and finish times from `job-processed` / `chunk-fetched` /
/// `slave-finished` events, per-site job counts and fault counters from the
/// pool's grant / completion / reap / evacuation events, then feeds them
/// through [`crate::stats::assemble_sites`] — the *same* arithmetic the
/// live runtimes use — so the derived report must match the legacy
/// accumulators up to nanosecond timestamp quantization.
#[must_use]
pub fn derive_report(events: &[Event], env: &str) -> RunReport {
    #[derive(Default)]
    struct Slave {
        processing: f64,
        retrieval: f64,
        finish: f64,
    }
    let mut slaves: BTreeMap<(SiteId, u32), Slave> = BTreeMap::new();
    let mut merges: BTreeMap<SiteId, f64> = BTreeMap::new();
    let mut site_finish: BTreeMap<SiteId, f64> = BTreeMap::new();
    let mut counts: BTreeMap<SiteId, SiteJobCounts> = BTreeMap::new();
    let mut remote_bytes: BTreeMap<SiteId, u64> = BTreeMap::new();
    let mut retries: BTreeMap<SiteId, u64> = BTreeMap::new();
    let mut faults = FaultCounters::default();
    let mut global_reduction = 0.0;
    let mut total_time = 0.0f64;

    for e in events {
        let site = e.site;
        match e.kind {
            EventKind::ChunkFetched { bytes, remote, retries: r } => {
                if let (Some(s), Some(w)) = (site, e.worker) {
                    slaves.entry((s, w)).or_default().retrieval += ns_to_secs(e.dur_ns);
                    if remote {
                        *remote_bytes.entry(s).or_insert(0) += bytes;
                    }
                    *retries.entry(s).or_insert(0) += r;
                }
            }
            EventKind::JobProcessed => {
                if let (Some(s), Some(w)) = (site, e.worker) {
                    slaves.entry((s, w)).or_default().processing += ns_to_secs(e.dur_ns);
                }
            }
            EventKind::SlaveFinished => {
                if let (Some(s), Some(w)) = (site, e.worker) {
                    let sl = slaves.entry((s, w)).or_default();
                    sl.finish = sl.finish.max(ns_to_secs(e.at_ns));
                }
            }
            EventKind::SiteMerged => {
                if let Some(s) = site {
                    *merges.entry(s).or_insert(0.0) += ns_to_secs(e.dur_ns);
                }
            }
            EventKind::SiteFinished => {
                if let Some(s) = site {
                    let f = site_finish.entry(s).or_insert(0.0);
                    *f = f.max(ns_to_secs(e.at_ns));
                }
            }
            EventKind::JobCompleted { merged, late, stolen } => {
                if !merged {
                    faults.duplicate_completions += 1;
                } else {
                    if late {
                        faults.late_completions += 1;
                    }
                    if let Some(s) = site {
                        let c = counts.entry(s).or_default();
                        if stolen {
                            c.stolen += 1;
                        } else {
                            c.local += 1;
                        }
                    }
                }
            }
            EventKind::LostResult { stolen } => {
                faults.lost_results += 1;
                if let Some(s) = site {
                    let c = counts.entry(s).or_default();
                    if stolen {
                        c.stolen -= 1;
                    } else {
                        c.local -= 1;
                    }
                }
            }
            EventKind::JobGranted { speculative, .. } => {
                if speculative {
                    faults.speculative_grants += 1;
                }
            }
            EventKind::SpeculationResolved { won } => {
                if won {
                    faults.speculative_wins += 1;
                } else {
                    faults.speculative_losses += 1;
                }
            }
            EventKind::LeaseReaped => faults.lease_expiries += 1,
            EventKind::JobEvacuated => faults.evacuated_jobs += 1,
            EventKind::JobAbandoned => {
                if let Some(c) = e.chunk {
                    faults.abandoned_jobs.push(AbandonedJob { chunk: c, last_site: site });
                }
            }
            EventKind::GlobalReduction => global_reduction += ns_to_secs(e.dur_ns),
            EventKind::RunFinished => total_time = total_time.max(ns_to_secs(e.at_ns)),
            EventKind::JobStarted { .. }
            | EventKind::StorageRetry { .. }
            | EventKind::JobFailed
            | EventKind::SiteEvacuated
            | EventKind::Heartbeat
            | EventKind::MetricsSnapshot { .. }
            | EventKind::HealthTransition { .. } => {}
        }
    }

    let mut samples: BTreeMap<SiteId, SiteSample> = BTreeMap::new();
    for (&site, &finish) in &site_finish {
        samples.insert(
            site,
            SiteSample {
                slaves: Vec::new(),
                local_merge: merges.get(&site).copied().unwrap_or(0.0),
                finish,
                jobs: counts.get(&site).copied().unwrap_or_default(),
                remote_bytes: remote_bytes.get(&site).copied().unwrap_or(0),
                retries: retries.get(&site).copied().unwrap_or(0),
            },
        );
    }
    for ((site, _), sl) in &slaves {
        if let Some(sample) = samples.get_mut(site) {
            sample.slaves.push(SlaveSample {
                processing: sl.processing,
                retrieval: sl.retrieval,
                finish: sl.finish,
            });
        }
    }
    RunReport {
        env: env.to_owned(),
        sites: crate::stats::assemble_sites(&samples),
        global_reduction,
        total_time,
        faults,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_events() -> Vec<Event> {
        let local = SiteId::LOCAL;
        let cloud = SiteId::CLOUD;
        let c0 = ChunkId(0);
        let c1 = ChunkId(1);
        vec![
            Event::at(0, EventKind::JobGranted { stolen: false, speculative: false })
                .site(local)
                .chunk(c0),
            Event::at(10, EventKind::JobStarted { stolen: false }).site(local).worker(0).chunk(c0),
            Event::span(10, 300, EventKind::ChunkFetched { bytes: 64, remote: false, retries: 1 })
                .site(local)
                .worker(0)
                .chunk(c0),
            Event::span(310, 700, EventKind::JobProcessed).site(local).worker(0).chunk(c0),
            Event::at(5, EventKind::JobGranted { stolen: true, speculative: false })
                .site(cloud)
                .chunk(c1),
            Event::at(20, EventKind::JobStarted { stolen: true }).site(cloud).worker(1).chunk(c1),
            Event::span(20, 400, EventKind::ChunkFetched { bytes: 128, remote: true, retries: 0 })
                .site(cloud)
                .worker(1)
                .chunk(c1),
            Event::at(1200, EventKind::LeaseReaped).site(cloud).chunk(c1),
            Event::at(1300, EventKind::JobCompleted { merged: true, late: true, stolen: true })
                .site(cloud)
                .chunk(c1),
            Event::at(1050, EventKind::JobCompleted { merged: true, late: false, stolen: false })
                .site(local)
                .chunk(c0),
            Event::at(1400, EventKind::SlaveFinished).site(local).worker(0),
            Event::at(1500, EventKind::SlaveFinished).site(cloud).worker(1),
            Event::span(1500, 100, EventKind::SiteMerged).site(local),
            Event::at(1600, EventKind::SiteFinished).site(local),
            Event::at(1700, EventKind::SiteFinished).site(cloud),
            Event::span(1700, 200, EventKind::GlobalReduction),
            Event::at(1900, EventKind::RunFinished),
        ]
    }

    #[test]
    fn events_round_trip_through_jsonl() {
        let mut events = sample_events();
        // Exercise the causal fields and a stamped sequence too.
        events[0] = events[0].span_id(7).cause(3);
        for (i, e) in events.iter_mut().enumerate() {
            e.seq = i as u64 + 1;
        }
        for e in &events {
            let line = e.to_json().to_text();
            let back = Event::from_json(&Json::parse(&line).expect("line parses"))
                .expect("event parses back");
            assert_eq!(back, *e, "round trip diverged for {line}");
        }
    }

    #[test]
    fn from_json_rejects_junk() {
        let missing = Json::parse(r#"{"kind":"heartbeat"}"#).unwrap();
        assert!(Event::from_json(&missing).unwrap_err().contains("at_ns"));
        let unknown = Json::parse(r#"{"at_ns":1,"kind":"warp-drive"}"#).unwrap();
        assert!(Event::from_json(&unknown).unwrap_err().contains("warp-drive"));
        let bad_site = Json::parse(r#"{"at_ns":1,"kind":"heartbeat","site":"mars"}"#).unwrap();
        assert!(Event::from_json(&bad_site).unwrap_err().contains("mars"));
    }

    #[test]
    fn emit_stamps_a_shared_gap_free_sequence() {
        let rec = Arc::new(Recorder::new());
        let t = Telemetry::to(rec.clone());
        let t2 = t.clone(); // clones share the counter
        t.emit(Event::at(1, EventKind::Heartbeat));
        t2.emit(Event::at(2, EventKind::Heartbeat));
        t.emit(Event::at(3, EventKind::Heartbeat));
        let seqs: Vec<u64> = rec.snapshot().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![1, 2, 3]);
        // A fresh handle starts its own sequence; off handles stamp nothing.
        let rec2 = Arc::new(Recorder::new());
        Telemetry::to(rec2.clone()).emit(Event::at(9, EventKind::Heartbeat));
        assert_eq!(rec2.snapshot()[0].seq, 1);
    }

    #[test]
    fn jsonl_lines_each_parse() {
        let text = events_to_jsonl(&sample_events());
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), sample_events().len());
        for line in lines {
            let j = Json::parse(line).expect("line parses");
            assert!(j.get("kind").is_some());
            assert!(j.get("at_ns").is_some());
        }
    }

    #[test]
    fn chrome_trace_is_valid_and_attributes_pool_events_to_slave_tracks() {
        let doc = chrome_trace(&sample_events());
        let reparsed = Json::parse(&doc.to_text()).expect("trace parses");
        let rows = reparsed.get("traceEvents").unwrap().as_arr().unwrap();
        // The steal grant for chunk1 must land on cloud's slave-1 track.
        let steal = rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some("steal"))
            .expect("steal event present");
        assert_eq!(steal.get("pid").unwrap().as_f64(), Some(f64::from(SiteId::CLOUD.0) + 1.0));
        assert_eq!(steal.get("tid").unwrap().as_f64(), Some(2.0), "slave 1 => tid 2");
        // The lease reap is outcome-like: attributed to the same track.
        let reap = rows
            .iter()
            .find(|r| r.get("name").and_then(Json::as_str) == Some("lease-reap"))
            .expect("reap event present");
        assert_eq!(reap.get("tid").unwrap().as_f64(), Some(2.0));
        // Spans carry ph=X with a duration; instants carry ph=i.
        let fetch =
            rows.iter().find(|r| r.get("name").and_then(Json::as_str) == Some("fetch")).unwrap();
        assert_eq!(fetch.get("ph").unwrap().as_str(), Some("X"));
        assert!(fetch.get("dur").unwrap().as_f64().unwrap() > 0.0);
        // Track-naming metadata is present.
        assert!(rows.iter().any(|r| r.get("ph").and_then(Json::as_str) == Some("M")));
    }

    #[test]
    fn derive_report_rebuilds_counts_faults_and_times() {
        let report = derive_report(&sample_events(), "test-env");
        assert_eq!(report.env, "test-env");
        assert_eq!(report.sites[&SiteId::LOCAL].jobs.local, 1);
        assert_eq!(report.sites[&SiteId::CLOUD].jobs.stolen, 1);
        assert_eq!(report.sites[&SiteId::LOCAL].retries, 1);
        assert_eq!(report.sites[&SiteId::CLOUD].remote_bytes, 128);
        assert_eq!(report.faults.lease_expiries, 1);
        assert_eq!(report.faults.late_completions, 1);
        assert!((report.global_reduction - 200e-9).abs() < 1e-15);
        assert!((report.total_time - 1900e-9).abs() < 1e-15);
        // Breakdown honors the shared assembly: local site waits for cloud.
        let local = &report.sites[&SiteId::LOCAL];
        assert!((local.breakdown.processing - 700e-9).abs() < 1e-15);
        assert!((local.idle - 100e-9).abs() < 1e-15);
    }

    #[test]
    fn telemetry_handle_is_cheap_and_fans_out() {
        let off = Telemetry::off();
        assert!(!off.is_enabled());
        off.emit(Event::at(1, EventKind::Heartbeat)); // no-op, no panic
        assert_eq!(format!("{off:?}"), "Telemetry(off)");

        let a = Arc::new(Recorder::new());
        let b = Arc::new(Recorder::new());
        let t = Telemetry::fanout(vec![a.clone(), b.clone()]);
        assert!(t.is_enabled());
        assert_eq!(format!("{t:?}"), "Telemetry(on)");
        let t2 = t.clone();
        t2.emit(Event::at(7, EventKind::Heartbeat).site(SiteId::LOCAL));
        assert_eq!(a.len(), 1);
        assert_eq!(b.snapshot(), a.snapshot());
        assert_eq!(a.take().len(), 1);
        assert!(a.is_empty());
    }

    #[test]
    fn log_level_parsing_and_noteworthiness() {
        assert_eq!(LogLevel::parse("off"), Some(None));
        assert_eq!(LogLevel::parse("info"), Some(Some(LogLevel::Info)));
        assert_eq!(LogLevel::parse("debug"), Some(Some(LogLevel::Debug)));
        assert_eq!(LogLevel::parse("verbose"), None);
        assert!(EventKind::LeaseReaped.is_noteworthy());
        assert!(EventKind::SpeculationResolved { won: true }.is_noteworthy());
        assert!(!EventKind::JobProcessed.is_noteworthy());
        assert!(!EventKind::JobGranted { stolen: true, speculative: false }.is_noteworthy());
    }

    #[test]
    fn timestamp_conversions_round_trip() {
        assert_eq!(secs_to_ns(0.0), 0);
        assert_eq!(secs_to_ns(-1.0), 0);
        assert_eq!(secs_to_ns(f64::NAN), 0);
        assert_eq!(secs_to_ns(1.5), 1_500_000_000);
        let s = 123.456_789;
        assert!((ns_to_secs(secs_to_ns(s)) - s).abs() < 1e-9);
    }

    #[test]
    fn health_transition_round_trips_and_classifies() {
        use crate::health::HealthDetector;
        let kind = EventKind::HealthTransition {
            detector: HealthDetector::ReapStorm,
            tripped: true,
            value: 7.5,
            threshold: 2.0,
        };
        assert_eq!(kind.label(), "health-transition");
        assert_eq!(kind.display_name(), "health-trip");
        assert_eq!(kind.category(), "health");
        assert!(kind.is_noteworthy());
        let cleared = EventKind::HealthTransition {
            detector: HealthDetector::QueueStall,
            tripped: false,
            value: 3.0,
            threshold: 1.0,
        };
        assert_eq!(cleared.display_name(), "health-clear");
        for k in [kind, cleared] {
            let e = Event::at(42, k);
            let line = e.to_json().to_text();
            let back = Event::from_json(&Json::parse(&line).expect("parses")).expect("round trip");
            assert_eq!(back, e, "diverged for {line}");
        }
        let bad = Json::parse(r#"{"at_ns":1,"kind":"health-transition","detector":"x"}"#).unwrap();
        assert!(Event::from_json(&bad).unwrap_err().contains("unknown health detector"));
    }

    #[test]
    fn flight_recorder_keeps_the_last_capacity_events_in_order() {
        let fr = FlightRecorder::new(4);
        assert!(fr.is_empty());
        for i in 0..10u64 {
            fr.record(Event::at(i, EventKind::Heartbeat));
        }
        assert_eq!(fr.capacity(), 4);
        assert_eq!(fr.len(), 4);
        assert_eq!(fr.total_recorded(), 10);
        let at: Vec<u64> = fr.snapshot().iter().map(|e| e.at_ns).collect();
        assert_eq!(at, vec![6, 7, 8, 9], "window is the last 4, oldest first");
        let tail: Vec<u64> = fr.last(2).iter().map(|e| e.at_ns).collect();
        assert_eq!(tail, vec![8, 9]);
        // last(n) with n beyond the window is just the window.
        assert_eq!(fr.last(100).len(), 4);
        // Capacity 0 records nothing and never panics.
        let off = FlightRecorder::new(0);
        off.record(Event::at(1, EventKind::Heartbeat));
        assert!(off.snapshot().is_empty());
    }

    #[test]
    fn jsonl_sink_streams_whole_lines_immediately() {
        let dir = std::env::temp_dir().join(format!("cb-jsonl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let sink = JsonlSink::create(&path).expect("create log");
        assert_eq!(sink.path(), path.as_path());
        sink.record(Event::at(1, EventKind::Heartbeat));
        sink.record(Event::at(2, EventKind::RunFinished));
        // Line-buffered: both records are on disk *before* drop/flush.
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            Event::from_json(&Json::parse(line).expect("line parses")).expect("event parses");
        }
        sink.flush(); // idempotent
        drop(sink);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn display_names_distinguish_grant_flavors() {
        assert_eq!(
            EventKind::JobGranted { stolen: false, speculative: false }.display_name(),
            "grant"
        );
        assert_eq!(
            EventKind::JobGranted { stolen: true, speculative: false }.display_name(),
            "steal"
        );
        assert_eq!(
            EventKind::JobGranted { stolen: true, speculative: true }.display_name(),
            "speculate"
        );
        assert_eq!(EventKind::LeaseReaped.display_name(), "lease-reap");
    }
}
