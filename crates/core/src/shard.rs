//! Sharded, thread-safe façade over the job pool for grant rates far past
//! the single-mutex design.
//!
//! The classic deployment wraps [`JobPool`] in one mutex and pays a lock
//! acquisition plus an `O(files)` policy scan *per grant* — microseconds
//! that do not matter at the paper's 96-job scale and dominate everything
//! at millions of tiny jobs. [`ShardedPool`] splits the *selection* of jobs
//! from the *registration* of their leases:
//!
//! * every data-home site gets a lock-free shard (a crossbeam
//!   [`SegQueue`]) holding its pending job ids in physical order, so the
//!   common case — a site draining its own data — pops candidates without
//!   any lock and takes the pool mutex **once per batch** to register the
//!   leases ([`JobPool::assign_ids`], which skips the policy scan because
//!   the shard already made the locality decision);
//! * work stealing happens only on local exhaustion, from the deepest
//!   other shard, capped at [`STEAL_BATCH_MAX`] and gated by the same
//!   rate-aware condition as the legacy path;
//! * everything rare — speculation, coded replica grants, the terminal
//!   verdict — falls through to the legacy [`JobPool::request_for_at`]
//!   under the lock, so those semantics are inherited, not re-implemented.
//!
//! Shard entries may go **stale**: a job granted through the legacy path,
//! completed late, or abandoned stays in its shard queue until popped and
//! is then skipped by `assign_ids`'s pending check. Conversely every job
//! the pool re-queues (failure, lease reap, evacuation) is replayed onto
//! its home shard through the pool's requeue log, so the invariant that
//! drives correctness is one-directional: *a shard always contains at
//! least the pending jobs of its site.* Shards drained dry therefore prove
//! the pending pool is empty, and the slow path's terminal verdict is
//! sound.
//!
//! All fault-tolerance operations (`complete`/`fail`/`reap`/`evacuate`)
//! delegate to the inner pool under the mutex, so leases, exactly-once
//! dedup, replica fencing and evacuation behave identically to the
//! unsharded pool — the property `core/tests/pool_shard_props.rs` checks
//! under random interleavings.

use crate::pool::{Completion, JobBatch, JobPool, STEAL_BATCH_MAX};
use crate::types::{ChunkId, SiteId};
use crossbeam::queue::SegQueue;
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// One site's lock-free queue of (probably) pending job ids.
#[derive(Default)]
struct Shard {
    q: SegQueue<ChunkId>,
    /// Entries currently queued (stale ones included) — a cheap victim-
    /// selection signal, not an exact pending count.
    len: AtomicUsize,
    /// Jobs stolen out of this shard by other sites.
    stolen_from: AtomicU64,
}

impl Shard {
    fn push(&self, id: ChunkId) {
        self.q.push(id);
        self.len.fetch_add(1, Ordering::Relaxed);
    }

    fn push_all(&self, ids: &[ChunkId]) {
        for &id in ids {
            self.push(id);
        }
    }

    /// Pop up to `max` entries. Each entry is popped exactly once across
    /// all threads, so `len` never underflows.
    fn pop_up_to(&self, max: usize) -> Vec<ChunkId> {
        let mut ids = Vec::new();
        while ids.len() < max {
            match self.q.pop() {
                Some(id) => {
                    self.len.fetch_sub(1, Ordering::Relaxed);
                    ids.push(id);
                }
                None => break,
            }
        }
        ids
    }

    fn len(&self) -> usize {
        self.len.load(Ordering::Relaxed)
    }
}

/// A thread-safe, per-site-sharded wrapper around [`JobPool`] (see the
/// module docs for the design).
pub struct ShardedPool {
    inner: Mutex<JobPool>,
    shards: BTreeMap<SiteId, Shard>,
}

impl ShardedPool {
    /// Wrap `pool`, seeding one shard per data-home site with its pending
    /// jobs in physical order.
    #[must_use]
    pub fn new(mut pool: JobPool) -> ShardedPool {
        pool.set_shard_log(true);
        let mut shards: BTreeMap<SiteId, Shard> = BTreeMap::new();
        for (site, ids) in pool.pending_ids_by_site() {
            let shard = shards.entry(site).or_default();
            shard.push_all(&ids);
        }
        ShardedPool { inner: Mutex::new(pool), shards }
    }

    /// Unwrap the inner pool (for end-of-run report assembly).
    #[must_use]
    pub fn into_inner(self) -> JobPool {
        let mut pool = self.inner.into_inner();
        pool.set_shard_log(false);
        pool
    }

    /// Run `f` against the inner pool under the lock, replaying any jobs it
    /// re-queued back onto their home shards.
    pub fn with<T>(&self, f: impl FnOnce(&mut JobPool) -> T) -> T {
        let mut inner = self.inner.lock();
        let out = f(&mut inner);
        Self::push_requeued(&self.shards, &mut inner);
        out
    }

    /// Replay the pool's requeue log onto the home shards. Called with the
    /// lock held after every mutating delegate, so re-queued jobs are
    /// poppable again before the lock is released.
    fn push_requeued(shards: &BTreeMap<SiteId, Shard>, inner: &mut JobPool) {
        for id in inner.take_requeued() {
            if let Some(shard) = shards.get(&inner.home_of(id)) {
                shard.push(id);
            }
        }
    }

    /// Grant up to `max` jobs to `site`: lock-free pops from the site's own
    /// shard first, a capped steal from the deepest other shard on local
    /// exhaustion, and the legacy request path (speculation, coded
    /// replicas, terminal detection) when every shard is dry. `max == 0`
    /// reports the terminal state without granting.
    pub fn get_jobs(&self, site: SiteId, max: usize, now: f64) -> JobBatch {
        // Pop local candidates before taking the pool lock: the hot path
        // costs a few lock-free pops plus one short critical section that
        // registers the whole batch.
        let local = self.shards.get(&site).map_or_else(Vec::new, |sh| sh.pop_up_to(max));
        let mut inner = self.inner.lock();
        if max == 0 || inner.is_dead(site) {
            if let Some(sh) = self.shards.get(&site) {
                sh.push_all(&local); // untouched — still pending
            }
            return JobBatch::empty(inner.all_done());
        }
        let mut ids = local;
        loop {
            if !ids.is_empty() {
                let batch = inner.assign_ids(site, &ids, false, now);
                Self::push_requeued(&self.shards, &mut inner);
                if !batch.is_empty() {
                    return batch;
                }
            }
            // All candidates were stale; keep draining the local shard.
            ids = match self.shards.get(&site) {
                Some(sh) => sh.pop_up_to(max),
                None => Vec::new(),
            };
            if ids.is_empty() {
                break;
            }
        }
        // Local exhaustion: steal from the deepest other shard, in grants
        // capped like the legacy path and gated by the same rate condition.
        let steal_cap = max.min(STEAL_BATCH_MAX);
        let mut victims: Vec<(SiteId, &Shard)> =
            self.shards.iter().map(|(&s, sh)| (s, sh)).filter(|&(s, _)| s != site).collect();
        victims.sort_by_key(|&(s, sh)| (std::cmp::Reverse(sh.len()), s));
        for (owner, shard) in victims {
            if shard.len() == 0 || !inner.steal_pays_off(site, owner) {
                continue;
            }
            loop {
                let ids = shard.pop_up_to(steal_cap);
                if ids.is_empty() {
                    break;
                }
                let batch = inner.assign_ids(site, &ids, true, now);
                Self::push_requeued(&self.shards, &mut inner);
                if !batch.is_empty() {
                    shard.stolen_from.fetch_add(batch.len() as u64, Ordering::Relaxed);
                    return batch;
                }
            }
        }
        // Every shard is dry, so nothing is pending (shards are supersets
        // of the pending pool): the legacy path handles speculation, coded
        // replicas and the terminal verdict.
        let batch = inner.request_for_at(site, now);
        Self::push_requeued(&self.shards, &mut inner);
        batch
    }

    /// The legacy single-request grant path (v1 wire peers), under the lock.
    pub fn request_for_at(&self, site: SiteId, now: f64) -> JobBatch {
        self.with(|p| p.request_for_at(site, now))
    }

    /// Delegate of [`JobPool::complete_at`].
    pub fn complete_at(&self, job: ChunkId, site: SiteId, now: f64) -> Completion {
        self.with(|p| p.complete_at(job, site, now))
    }

    /// Delegate of [`JobPool::fail`].
    pub fn fail(&self, job: ChunkId, site: SiteId) -> bool {
        self.with(|p| p.fail(job, site))
    }

    /// Delegate of [`JobPool::reap_expired`]; re-queued jobs land back on
    /// their home shards before this returns.
    pub fn reap_expired(&self, now: f64) -> Vec<(ChunkId, SiteId)> {
        self.with(|p| p.reap_expired(now))
    }

    /// Delegate of [`JobPool::evacuate`].
    pub fn evacuate(&self, site: SiteId) {
        self.with(|p| p.evacuate(site));
    }

    /// Delegate of [`JobPool::all_done`].
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.inner.lock().all_done()
    }

    /// Current queued entries per shard (stale entries included).
    #[must_use]
    pub fn shard_depths(&self) -> BTreeMap<SiteId, usize> {
        self.shards.iter().map(|(&s, sh)| (s, sh.len())).collect()
    }

    /// Jobs stolen out of each site's shard so far.
    #[must_use]
    pub fn stolen_from(&self) -> BTreeMap<SiteId, u64> {
        self.shards.iter().map(|(&s, sh)| (s, sh.stolen_from.load(Ordering::Relaxed))).collect()
    }

    /// A point-in-time snapshot of both layers — the lock-free shard
    /// queues (depths, steal counters) and the inner pool's grant state —
    /// for `/debug/pool` on a reactor head and the black-box dump.
    #[must_use]
    pub fn introspect(&self) -> ShardIntrospection {
        ShardIntrospection {
            depths: self.shard_depths(),
            stolen_from: self.stolen_from(),
            pool: self.inner.lock().introspect(),
        }
    }
}

/// A point-in-time snapshot of a [`ShardedPool`]: per-shard queue depths
/// and steal counters over the inner pool's [`PoolIntrospection`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardIntrospection {
    /// Current queued entries per shard (stale entries included).
    pub depths: BTreeMap<SiteId, usize>,
    /// Jobs stolen out of each site's shard so far.
    pub stolen_from: BTreeMap<SiteId, u64>,
    /// The inner pool's grant state.
    pub pool: crate::pool::PoolIntrospection,
}

impl ShardIntrospection {
    /// Serialize as the reactor-head `/debug/pool` JSON object: the inner
    /// pool document plus a `shards` array.
    #[must_use]
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let shards = self
            .depths
            .iter()
            .map(|(site, &depth)| {
                Json::obj()
                    .field("site", Json::Str(site.to_string()))
                    .field("depth", Json::U64(depth as u64))
                    .field(
                        "stolen_from",
                        Json::U64(self.stolen_from.get(site).copied().unwrap_or(0)),
                    )
            })
            .collect();
        self.pool.to_json().field("shards", Json::Arr(shards))
    }
}

impl std::fmt::Debug for ShardedPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardedPool").field("depths", &self.shard_depths()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DataIndex;
    use crate::layout::LayoutParams;
    use crate::pool::BatchPolicy;
    use crate::types::ChunkId;
    use std::collections::BTreeSet;

    fn index(
        n_files: u64,
        chunks_per_file: u64,
        split: impl FnMut(crate::types::FileId) -> SiteId,
    ) -> DataIndex {
        let total = n_files * chunks_per_file * 4;
        DataIndex::build(
            total,
            LayoutParams { unit_size: 8, units_per_chunk: 4, n_files: n_files as u32 },
            split,
        )
        .unwrap()
    }

    fn two_site_pool() -> ShardedPool {
        let idx = index(4, 8, |f| if f.0 < 2 { SiteId::LOCAL } else { SiteId::CLOUD });
        ShardedPool::new(JobPool::from_index(&idx, BatchPolicy::Fixed(4)))
    }

    #[test]
    fn grants_local_jobs_without_stealing_first() {
        let pool = two_site_pool();
        let batch = pool.get_jobs(SiteId::LOCAL, 4, 0.0);
        assert_eq!(batch.len(), 4);
        assert!(!batch.stolen);
        assert!(batch.jobs.iter().all(|j| j.site == SiteId::LOCAL));
    }

    #[test]
    fn every_job_granted_exactly_once_across_both_sites() {
        let pool = two_site_pool();
        let mut seen: BTreeSet<ChunkId> = BTreeSet::new();
        let mut grants = 0usize;
        for round in 0.. {
            let site = if round % 2 == 0 { SiteId::LOCAL } else { SiteId::CLOUD };
            let batch = pool.get_jobs(site, 3, round as f64 * 0.001);
            if batch.is_empty() {
                if batch.terminal {
                    break;
                }
                continue;
            }
            grants += 1;
            for j in &batch.jobs {
                assert!(seen.insert(j.id), "{} granted twice", j.id);
                assert!(pool.complete_at(j.id, site, round as f64 * 0.001).is_merged());
            }
        }
        assert_eq!(seen.len(), 32);
        assert!(grants >= 32 / 3);
        assert!(pool.all_done());
    }

    #[test]
    fn steals_are_capped_and_flagged() {
        let pool = two_site_pool();
        // Drain LOCAL's own shard completely.
        loop {
            let b = pool.get_jobs(SiteId::LOCAL, 16, 0.0);
            if b.stolen || b.is_empty() {
                // First stolen batch: local exhausted.
                assert!(b.stolen, "local exhaustion must steal, not stall");
                assert!(b.len() <= STEAL_BATCH_MAX);
                assert!(b.jobs.iter().all(|j| j.site == SiteId::CLOUD));
                break;
            }
            for j in &b.jobs {
                let _ = pool.complete_at(j.id, SiteId::LOCAL, 0.0);
            }
        }
        assert!(pool.stolen_from()[&SiteId::CLOUD] >= 1);
        assert_eq!(pool.stolen_from()[&SiteId::LOCAL], 0);
    }

    #[test]
    fn failed_jobs_return_to_their_home_shard() {
        let pool = two_site_pool();
        let batch = pool.get_jobs(SiteId::LOCAL, 2, 0.0);
        let depth_after_grant = pool.shard_depths()[&SiteId::LOCAL];
        assert!(pool.fail(batch.jobs[0].id, SiteId::LOCAL));
        assert_eq!(pool.shard_depths()[&SiteId::LOCAL], depth_after_grant + 1);
        // The re-queued job is grantable again through the fast path.
        let again = pool.get_jobs(SiteId::LOCAL, 16, 0.0);
        assert!(again.jobs.iter().any(|j| j.id == batch.jobs[0].id));
    }

    #[test]
    fn dead_site_gets_empty_grants_and_its_pops_are_returned() {
        let pool = two_site_pool();
        pool.evacuate(SiteId::CLOUD);
        let before = pool.shard_depths()[&SiteId::CLOUD];
        let batch = pool.get_jobs(SiteId::CLOUD, 8, 0.0);
        assert!(batch.is_empty());
        assert!(!batch.terminal);
        assert_eq!(pool.shard_depths()[&SiteId::CLOUD], before, "pops must be handed back");
    }

    #[test]
    fn stale_entries_are_skipped_not_double_granted() {
        let pool = two_site_pool();
        // Grant through the legacy path: the granted ids stay queued in the
        // shard as stale entries.
        let legacy = pool.request_for_at(SiteId::LOCAL, 0.0);
        assert!(!legacy.is_empty());
        let legacy_ids: BTreeSet<ChunkId> = legacy.jobs.iter().map(|j| j.id).collect();
        // The sharded path must never re-grant them.
        let mut seen: BTreeSet<ChunkId> = BTreeSet::new();
        loop {
            let b = pool.get_jobs(SiteId::LOCAL, 64, 0.0);
            if b.is_empty() {
                break;
            }
            for j in &b.jobs {
                assert!(!legacy_ids.contains(&j.id), "{} granted twice", j.id);
                assert!(seen.insert(j.id));
                let _ = pool.complete_at(j.id, SiteId::LOCAL, 0.0);
            }
        }
    }

    #[test]
    fn introspection_tracks_grants_depths_and_steals() {
        let pool = two_site_pool();
        let snap = pool.introspect();
        assert_eq!(snap.pool.pending, 32);
        assert_eq!(snap.pool.in_flight, 0);
        assert_eq!(snap.depths[&SiteId::LOCAL] + snap.depths[&SiteId::CLOUD], 32);
        let batch = pool.get_jobs(SiteId::LOCAL, 4, 0.0);
        for j in batch.jobs.iter().take(2) {
            let _ = pool.complete_at(j.id, SiteId::LOCAL, 0.0);
        }
        let snap = pool.introspect();
        assert_eq!(snap.pool.in_flight, 2);
        assert_eq!(snap.pool.completed, 2);
        assert_eq!(snap.pool.per_site[&SiteId::LOCAL].leases, 2);
        assert_eq!(snap.pool.per_site[&SiteId::LOCAL].completed, 2);
        assert!(!snap.pool.all_done);
        // The JSON shape /debug/pool serves: pool fields + shards array.
        let text = snap.to_json().to_text();
        for key in ["\"pending\"", "\"in_flight\"", "\"sites\"", "\"shards\"", "\"stolen_from\""] {
            assert!(text.contains(key), "introspection JSON is missing {key}: {text}");
        }
        crate::json::Json::parse(&text).expect("introspection JSON parses");
    }

    #[test]
    fn zero_max_reports_terminal_state_without_granting() {
        let idx = index(1, 2, |_| SiteId::LOCAL);
        let pool = ShardedPool::new(JobPool::from_index(&idx, BatchPolicy::Fixed(8)));
        assert!(!pool.get_jobs(SiteId::LOCAL, 0, 0.0).terminal);
        let b = pool.get_jobs(SiteId::LOCAL, 8, 0.0);
        for j in &b.jobs {
            let _ = pool.complete_at(j.id, SiteId::LOCAL, 0.0);
        }
        let probe = pool.get_jobs(SiteId::LOCAL, 0, 0.0);
        assert!(probe.is_empty() && probe.terminal);
    }
}
