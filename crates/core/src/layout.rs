//! Data organization metadata: files → chunks → units (paper §III-B).
//!
//! The dataset is divided into *files* (unit of placement and of the
//! contention heuristic), each file into logical *chunks* (sized to the
//! memory available on a compute unit; one chunk == one job), and each chunk
//! into fixed-size *units* — the smallest atomically processable elements.
//! Units are further grouped at run time into cache-sized *unit groups*
//! before being handed to the reduction layer.

use crate::types::{ByteSize, ChunkId, FileId, SiteId};
use serde::{Deserialize, Serialize};

/// Layout metadata for one file of the dataset.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FileMeta {
    /// The file's identifier.
    pub id: FileId,
    /// Site whose storage currently hosts the file.
    pub site: SiteId,
    /// Total byte length of the file.
    pub len: ByteSize,
    /// Ids of the chunks stored in this file, in physical order.
    pub chunks: Vec<ChunkId>,
}

/// Layout metadata for one chunk (the job granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChunkMeta {
    /// The chunk's identifier (also its job id).
    pub id: ChunkId,
    /// File the chunk physically lives in.
    pub file: FileId,
    /// Byte offset of the chunk within its file.
    pub offset: ByteSize,
    /// Byte length of the chunk.
    pub len: ByteSize,
    /// Number of data units in the chunk (`len == n_units * unit_size`).
    pub n_units: u64,
    /// Site whose storage hosts the chunk (same as its file's site).
    pub site: SiteId,
}

impl ChunkMeta {
    /// Whether the chunk is local to `site` (no inter-site retrieval needed).
    #[must_use]
    pub fn is_local_to(&self, site: SiteId) -> bool {
        self.site == site
    }

    /// End offset (exclusive) of the chunk within its file.
    #[must_use]
    pub fn end(&self) -> ByteSize {
        self.offset + self.len
    }
}

/// Parameters controlling how a dataset is cut into files/chunks/units.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayoutParams {
    /// Size in bytes of one data unit (one record).
    pub unit_size: u32,
    /// Target units per chunk (chunk byte size = `units_per_chunk * unit_size`),
    /// chosen from the memory available on compute units.
    pub units_per_chunk: u64,
    /// Number of files the dataset is split into.
    pub n_files: u32,
}

impl LayoutParams {
    /// Chunk size in bytes implied by the parameters.
    #[must_use]
    pub fn chunk_bytes(&self) -> ByteSize {
        self.units_per_chunk * ByteSize::from(self.unit_size)
    }

    /// Validate the parameters, returning a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        if self.unit_size == 0 {
            return Err("unit_size must be non-zero".into());
        }
        if self.units_per_chunk == 0 {
            return Err("units_per_chunk must be non-zero".into());
        }
        if self.n_files == 0 {
            return Err("n_files must be non-zero".into());
        }
        Ok(())
    }
}

/// How many units to hand to the reduction layer at a time so that the
/// working set (group plus the reduction object) stays cache resident
/// (paper: "the data units maximize the cache utilization").
#[must_use]
pub fn cache_sized_group(unit_size: u32, cache_bytes: u64, robj_bytes: u64) -> u64 {
    let budget = cache_bytes.saturating_sub(robj_bytes).max(u64::from(unit_size));
    (budget / u64::from(unit_size)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_meta_locality_and_end() {
        let c = ChunkMeta {
            id: ChunkId(0),
            file: FileId(0),
            offset: 128,
            len: 256,
            n_units: 8,
            site: SiteId::CLOUD,
        };
        assert!(c.is_local_to(SiteId::CLOUD));
        assert!(!c.is_local_to(SiteId::LOCAL));
        assert_eq!(c.end(), 384);
    }

    #[test]
    fn layout_params_chunk_bytes() {
        let p = LayoutParams { unit_size: 32, units_per_chunk: 1024, n_files: 4 };
        assert_eq!(p.chunk_bytes(), 32 * 1024);
        assert!(p.validate().is_ok());
    }

    #[test]
    fn layout_params_validation_rejects_zeroes() {
        let ok = LayoutParams { unit_size: 8, units_per_chunk: 2, n_files: 1 };
        assert!(ok.validate().is_ok());
        assert!(LayoutParams { unit_size: 0, ..ok }.validate().is_err());
        assert!(LayoutParams { units_per_chunk: 0, ..ok }.validate().is_err());
        assert!(LayoutParams { n_files: 0, ..ok }.validate().is_err());
    }

    #[test]
    fn cache_group_fits_cache_minus_robj() {
        // 32 KiB cache, 8 KiB robj, 64 B units -> (32-8)KiB / 64 = 384 units.
        assert_eq!(cache_sized_group(64, 32 * 1024, 8 * 1024), 384);
    }

    #[test]
    fn cache_group_is_at_least_one_unit() {
        // robj larger than cache must still make forward progress.
        assert_eq!(cache_sized_group(64, 1024, 4096), 1);
        assert_eq!(cache_sized_group(4096, 1024, 0), 1);
    }
}
