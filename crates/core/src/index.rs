//! The data index: the metadata file the head node reads to generate the job
//! pool (paper §III-B, "Data Organization").
//!
//! "A data index file is generated after analyzing the data set. It holds
//! metadata such as physical locations (data files), starting offset
//! addresses, size of chunks and number of data units inside the chunks."

use crate::layout::{ChunkMeta, FileMeta, LayoutParams};
use crate::types::{ByteSize, ChunkId, FileId, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Complete layout metadata for one dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DataIndex {
    /// Layout parameters the dataset was organized with.
    pub params: LayoutParams,
    /// Per-file metadata, indexed by `FileId.0`.
    pub files: Vec<FileMeta>,
    /// Per-chunk metadata, indexed by `ChunkId.0` (dense, file order).
    pub chunks: Vec<ChunkMeta>,
}

impl DataIndex {
    /// Build an index for a dataset of `total_units` units, split evenly into
    /// `params.n_files` files of whole chunks, with each file placed by
    /// `place(file) -> SiteId`.
    ///
    /// The last chunk of the last file absorbs any remainder units, so every
    /// unit belongs to exactly one chunk.
    pub fn build(
        total_units: u64,
        params: LayoutParams,
        mut place: impl FnMut(FileId) -> SiteId,
    ) -> Result<DataIndex, String> {
        params.validate()?;
        if total_units == 0 {
            return Err("dataset must contain at least one unit".into());
        }
        let upc = params.units_per_chunk;
        let n_chunks = total_units.div_ceil(upc);
        let n_files = u64::from(params.n_files).min(n_chunks);
        // Chunks per file, first `extra` files get one more.
        let base = n_chunks / n_files;
        let extra = n_chunks % n_files;

        let mut files = Vec::with_capacity(n_files as usize);
        let mut chunks = Vec::with_capacity(n_chunks as usize);
        let mut next_chunk: u32 = 0;
        let mut units_left = total_units;
        for f in 0..n_files {
            let file_id = FileId(f as u32);
            let site = place(file_id);
            let n_in_file = base + u64::from(f < extra);
            let mut offset: ByteSize = 0;
            let mut ids = Vec::with_capacity(n_in_file as usize);
            for _ in 0..n_in_file {
                let n_units = upc.min(units_left);
                units_left -= n_units;
                let len = n_units * ByteSize::from(params.unit_size);
                let id = ChunkId(next_chunk);
                next_chunk += 1;
                ids.push(id);
                chunks.push(ChunkMeta { id, file: file_id, offset, len, n_units, site });
                offset += len;
            }
            files.push(FileMeta { id: file_id, site, len: offset, chunks: ids });
        }
        debug_assert_eq!(units_left, 0);
        let idx = DataIndex { params, files, chunks };
        idx.validate()?;
        Ok(idx)
    }

    /// Total number of chunks (== jobs).
    #[must_use]
    pub fn n_chunks(&self) -> usize {
        self.chunks.len()
    }

    /// Total number of data units across all chunks.
    #[must_use]
    pub fn total_units(&self) -> u64 {
        self.chunks.iter().map(|c| c.n_units).sum()
    }

    /// Total dataset size in bytes.
    #[must_use]
    pub fn total_bytes(&self) -> ByteSize {
        self.chunks.iter().map(|c| c.len).sum()
    }

    /// Metadata for a chunk.
    #[must_use]
    pub fn chunk(&self, id: ChunkId) -> &ChunkMeta {
        &self.chunks[id.0 as usize]
    }

    /// Metadata for a file.
    #[must_use]
    pub fn file(&self, id: FileId) -> &FileMeta {
        &self.files[id.0 as usize]
    }

    /// Number of chunks hosted at each site.
    #[must_use]
    pub fn chunks_per_site(&self) -> BTreeMap<SiteId, usize> {
        let mut m = BTreeMap::new();
        for c in &self.chunks {
            *m.entry(c.site).or_insert(0) += 1;
        }
        m
    }

    /// Fraction of bytes hosted at `site`.
    #[must_use]
    pub fn byte_fraction_at(&self, site: SiteId) -> f64 {
        let total = self.total_bytes();
        if total == 0 {
            return 0.0;
        }
        let at: ByteSize = self.chunks.iter().filter(|c| c.site == site).map(|c| c.len).sum();
        at as f64 / total as f64
    }

    /// Check internal consistency: dense chunk ids in file order, chunk/file
    /// site agreement, contiguous non-overlapping chunk ranges per file, and
    /// file lengths matching their chunks.
    pub fn validate(&self) -> Result<(), String> {
        for (i, c) in self.chunks.iter().enumerate() {
            if c.id.0 as usize != i {
                return Err(format!("chunk ids not dense at position {i}"));
            }
            if c.len != c.n_units * ByteSize::from(self.params.unit_size) {
                return Err(format!("{}: len != n_units * unit_size", c.id));
            }
            if c.n_units == 0 {
                return Err(format!("{}: empty chunk", c.id));
            }
        }
        for (i, f) in self.files.iter().enumerate() {
            if f.id.0 as usize != i {
                return Err(format!("file ids not dense at position {i}"));
            }
            let mut offset = 0;
            for &cid in &f.chunks {
                let c = self.chunk(cid);
                if c.file != f.id {
                    return Err(format!("{cid} listed in {} but points at {}", f.id, c.file));
                }
                if c.site != f.site {
                    return Err(format!("{cid} site differs from its file's site"));
                }
                if c.offset != offset {
                    return Err(format!("{cid}: offset {} but expected {offset}", c.offset));
                }
                offset = c.end();
            }
            if f.len != offset {
                return Err(format!("{}: len {} but chunks cover {offset}", f.id, f.len));
            }
        }
        let listed: usize = self.files.iter().map(|f| f.chunks.len()).sum();
        if listed != self.chunks.len() {
            return Err("some chunks belong to no file".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn params(unit: u32, upc: u64, nf: u32) -> LayoutParams {
        LayoutParams { unit_size: unit, units_per_chunk: upc, n_files: nf }
    }

    /// Replicates the paper's setup: 12 GB in 32 files, 96 jobs total.
    #[test]
    fn paper_scale_index_has_96_jobs_in_32_files() {
        // 96 chunks of 128 MiB = 12 GiB; unit = 64 B.
        let upc = (128 * 1024 * 1024) / 64;
        let total_units = 96 * upc;
        let idx = DataIndex::build(total_units, params(64, upc, 32), |_| SiteId::LOCAL).unwrap();
        assert_eq!(idx.n_chunks(), 96);
        assert_eq!(idx.files.len(), 32);
        assert_eq!(idx.total_bytes(), 12 * 1024 * 1024 * 1024);
        assert!(idx.files.iter().all(|f| f.chunks.len() == 3));
    }

    #[test]
    fn remainder_units_form_a_short_final_chunk() {
        let idx = DataIndex::build(10, params(4, 4, 2), |_| SiteId::LOCAL).unwrap();
        // 10 units / 4 per chunk = 3 chunks (4, 4, 2 units).
        assert_eq!(idx.n_chunks(), 3);
        assert_eq!(idx.total_units(), 10);
        assert_eq!(idx.chunks[2].n_units, 2);
        assert_eq!(idx.total_bytes(), 40);
    }

    #[test]
    fn more_files_than_chunks_collapses_file_count() {
        let idx = DataIndex::build(3, params(4, 1, 8), |_| SiteId::LOCAL).unwrap();
        assert_eq!(idx.n_chunks(), 3);
        assert_eq!(idx.files.len(), 3);
    }

    #[test]
    fn placement_controls_site_fractions() {
        // 8 files, first 4 local, last 4 cloud -> 50/50 split by bytes.
        let idx = DataIndex::build(64, params(8, 2, 8), |f| {
            if f.0 < 4 {
                SiteId::LOCAL
            } else {
                SiteId::CLOUD
            }
        })
        .unwrap();
        assert!((idx.byte_fraction_at(SiteId::LOCAL) - 0.5).abs() < 1e-9);
        assert!((idx.byte_fraction_at(SiteId::CLOUD) - 0.5).abs() < 1e-9);
        let per = idx.chunks_per_site();
        assert_eq!(per[&SiteId::LOCAL], per[&SiteId::CLOUD]);
    }

    #[test]
    fn build_rejects_empty_dataset() {
        assert!(DataIndex::build(0, params(4, 4, 2), |_| SiteId::LOCAL).is_err());
    }

    #[test]
    fn validate_catches_site_mismatch() {
        let mut idx = DataIndex::build(8, params(4, 2, 2), |_| SiteId::LOCAL).unwrap();
        idx.chunks[0].site = SiteId::CLOUD;
        assert!(idx.validate().is_err());
    }

    #[test]
    fn validate_catches_len_mismatch() {
        let mut idx = DataIndex::build(8, params(4, 2, 2), |_| SiteId::LOCAL).unwrap();
        idx.chunks[1].len += 1;
        assert!(idx.validate().is_err());
    }

    #[test]
    fn chunk_and_file_accessors_agree() {
        let idx = DataIndex::build(32, params(4, 2, 4), |_| SiteId::LOCAL).unwrap();
        for f in &idx.files {
            for &cid in &f.chunks {
                assert_eq!(idx.chunk(cid).file, f.id);
            }
        }
    }
}
