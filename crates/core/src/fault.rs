//! The failure model shared by every runtime: job leases, heartbeat
//! liveness, and the deterministic chaos plan.
//!
//! The paper's premise is elastic, revocable cloud resources (spot
//! instances, S3 over a WAN), so the middleware must treat *slaves dying
//! mid-job*, *whole sites being revoked mid-run*, and *bursty transient
//! storage errors* as ordinary events rather than aborts. Everything in this
//! module is pure data + deterministic arithmetic: the threaded runtime, the
//! TCP deployment mode, and the discrete-event simulator all consume the
//! same [`FaultPlan`], which is what makes failure experiments replayable —
//! the same seed produces the same faults, in virtual or real time.

use crate::types::{ChunkId, Seconds, SiteId};
use serde::{Deserialize, Serialize};

/// How job leases are sized (pool-clock seconds).
///
/// Every granted job carries a deadline. Until the head has observed a
/// site's processing rate the deadline is `now + base`; afterwards it is
/// `now + clamp(multiplier × ewma_job_duration(site), min, max)`, so slow
/// sites get proportionally longer leases and a dead worker's jobs are
/// reclaimed after a few multiples of a *normal* job, not a worst-case
/// constant.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LeaseConfig {
    /// Lease length before any duration sample exists for the site.
    pub base: Seconds,
    /// Multiple of the site's observed mean job duration.
    pub multiplier: f64,
    /// Shortest lease ever granted.
    pub min: Seconds,
    /// Longest lease ever granted.
    pub max: Seconds,
}

impl Default for LeaseConfig {
    fn default() -> Self {
        LeaseConfig { base: 30.0, multiplier: 4.0, min: 0.5, max: 300.0 }
    }
}

impl LeaseConfig {
    /// The lease duration for a site whose mean job duration is `ewma`
    /// (`None` until the first completion).
    #[must_use]
    pub fn lease_for(&self, ewma: Option<Seconds>) -> Seconds {
        match ewma {
            Some(d) => (self.multiplier * d).clamp(self.min, self.max),
            None => self.base,
        }
    }
}

/// Master → head liveness beacons (real wall-clock seconds).
///
/// In channel mode masters emit explicit heartbeat messages; in TCP mode the
/// beacon is a ping frame and the detector is the head's per-connection read
/// timeout. Either way, a site silent for longer than `timeout` is declared
/// dead and evacuated.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatConfig {
    /// How often a master beacons when otherwise idle.
    pub interval: Seconds,
    /// Silence after which the head evacuates the site.
    pub timeout: Seconds,
}

impl Default for HeartbeatConfig {
    fn default() -> Self {
        HeartbeatConfig { interval: 0.5, timeout: 2.0 }
    }
}

/// One site revoked at a point in time (a "spot revocation").
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SiteOutage {
    /// The site that dies.
    pub site: SiteId,
    /// Seconds after the run starts (virtual time in the simulator, real
    /// time in the threaded runtimes).
    pub at: Seconds,
}

/// One worker slowed down — the straggler generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowWorker {
    /// Site of the slowed worker.
    pub site: SiteId,
    /// Worker index within the site (`0..cores`).
    pub worker: u32,
    /// Extra seconds this worker spends per job.
    pub delay_per_job: Seconds,
}

/// A whole site degraded by a rate factor — the site-wide straggler
/// generator the coded-redundancy ablation injects.
///
/// Unlike [`SlowWorker`]'s additive per-job delay, a slow site multiplies
/// every fetch and processing duration at the site by `factor`, modelling a
/// congested WAN link or an oversubscribed cloud zone rather than one bad
/// worker.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SlowSite {
    /// The degraded site.
    pub site: SiteId,
    /// Multiplier on the site's fetch/process durations (`>= 1.0` slows it
    /// down; `1.0` is a no-op).
    pub factor: f64,
}

/// One worker that dies after taking its n-th job.
///
/// The crash happens *on take*: the worker exits holding a granted,
/// unreported job, which only lease reaping can recover. Work the worker
/// already completed (and had acknowledged) stays merged.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WorkerCrash {
    /// Site of the crashing worker.
    pub site: SiteId,
    /// Worker index within the site (`0..cores`).
    pub worker: u32,
    /// How many jobs the worker finishes before dying on its next take.
    pub after_jobs: u64,
}

/// A seeded, fully deterministic fault-injection plan.
///
/// The plan is data; each runtime interprets it at its own notion of time.
/// Replaying the same plan against the same environment produces the same
/// faults — and in the simulator, bit-identical reports.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    /// Seed for every probabilistic decision in the plan.
    pub seed: u64,
    /// Probability that any single storage range read fails transiently
    /// (connection reset). Decided per `(file, offset, attempt)`, so retries
    /// of the same range re-roll deterministically.
    pub storage_error_rate: f64,
    /// Cap on consecutive injected failures for one range, so a bounded
    /// retry budget always eventually succeeds. Zero means unlimited.
    pub storage_max_consecutive: u32,
    /// At most one whole-site revocation.
    pub site_outage: Option<SiteOutage>,
    /// Workers slowed per job (straggler injection).
    pub slow_workers: Vec<SlowWorker>,
    /// Whole sites degraded by a rate factor (site-wide stragglers).
    #[serde(default)]
    pub slow_sites: Vec<SlowSite>,
    /// Workers that crash after n jobs.
    pub worker_crash: Vec<WorkerCrash>,
}

impl FaultPlan {
    /// An empty plan with a seed: no faults until fields are filled in.
    #[must_use]
    pub fn seeded(seed: u64) -> FaultPlan {
        FaultPlan { seed, storage_max_consecutive: 2, ..FaultPlan::default() }
    }

    /// True when the plan injects nothing at all.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.storage_error_rate <= 0.0
            && self.site_outage.is_none()
            && self.slow_workers.is_empty()
            && self.slow_sites.iter().all(|s| s.factor <= 1.0)
            && self.worker_crash.is_empty()
    }

    /// Whether `site` is revoked at time `now`.
    #[must_use]
    pub fn site_dead(&self, site: SiteId, now: Seconds) -> bool {
        matches!(self.site_outage, Some(o) if o.site == site && now >= o.at)
    }

    /// Extra per-job delay for `worker` at `site` (0 when not slowed).
    #[must_use]
    pub fn worker_delay(&self, site: SiteId, worker: u32) -> Seconds {
        self.slow_workers
            .iter()
            .find(|s| s.site == site && s.worker == worker)
            .map_or(0.0, |s| s.delay_per_job)
    }

    /// The rate factor degrading `site` (1.0 when not slowed).
    #[must_use]
    pub fn site_slowdown(&self, site: SiteId) -> f64 {
        self.slow_sites.iter().find(|s| s.site == site).map_or(1.0, |s| s.factor.max(1.0))
    }

    /// After how many jobs `worker` at `site` crashes (None = never).
    #[must_use]
    pub fn crash_after(&self, site: SiteId, worker: u32) -> Option<u64> {
        self.worker_crash
            .iter()
            .find(|c| c.site == site && c.worker == worker)
            .map(|c| c.after_jobs)
    }

    /// Deterministic verdict: does the `attempt`-th read of the range at
    /// `(file, offset)` fail transiently under this plan?
    #[must_use]
    pub fn storage_read_fails(&self, file: u32, offset: u64, attempt: u32) -> bool {
        if self.storage_error_rate <= 0.0 {
            return false;
        }
        if self.storage_max_consecutive > 0 && attempt >= self.storage_max_consecutive {
            return false;
        }
        let h = det_hash(&[self.seed, 0x5707_AE5E, u64::from(file), offset, u64::from(attempt)]);
        det_unit(h) < self.storage_error_rate
    }
}

/// Mix words into one deterministic 64-bit hash (splitmix64 over a fold).
/// Shared by the chaos layer and the storage retry jitter so every
/// probabilistic decision is a pure function of the plan seed.
#[must_use]
pub fn det_hash(words: &[u64]) -> u64 {
    let mut state: u64 = 0x9E37_79B9_7F4A_7C15;
    for &w in words {
        state ^= w.wrapping_add(0x9E37_79B9_7F4A_7C15);
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        state = z ^ (z >> 31);
    }
    state
}

/// Map a hash to the unit interval `[0, 1)`.
#[must_use]
pub fn det_unit(h: u64) -> f64 {
    (h >> 11) as f64 / (1u64 << 53) as f64
}

/// A job permanently given up, with the site that last failed it (None when
/// it was never assigned, e.g. stranded by a total evacuation).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AbandonedJob {
    /// The abandoned chunk.
    pub chunk: ChunkId,
    /// The site whose failure (or death) doomed it, when known.
    pub last_site: Option<SiteId>,
}

impl std::fmt::Display for AbandonedJob {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.last_site {
            Some(s) => write!(f, "{} (last failed by {s})", self.chunk),
            None => write!(f, "{} (never assigned)", self.chunk),
        }
    }
}

/// Fault-tolerance accounting the pool maintains; lands in
/// [`RunReport`](crate::stats::RunReport) and [`HeadReport`]s so failure
/// experiments can assert exactly what happened.
///
/// The exactly-once invariant is checkable from these counters: merged
/// completions equal the chunk count, and every surplus execution shows up
/// in `duplicate_completions`.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultCounters {
    /// Leases that expired and were reaped by the head.
    pub lease_expiries: u64,
    /// In-flight assignments revoked by site evacuation.
    pub evacuated_jobs: u64,
    /// Completed jobs whose results died with an evacuated site and were
    /// re-queued for re-execution.
    pub lost_results: u64,
    /// Speculative re-executions granted for straggler jobs.
    pub speculative_grants: u64,
    /// Speculative executions whose result won the completion race and was
    /// the one merged.
    #[serde(default)]
    pub speculative_wins: u64,
    /// Speculative executions released without merging — preempted by the
    /// original worker, reaped, evacuated, or failed.
    #[serde(default)]
    pub speculative_losses: u64,
    /// Replica executions granted under coded redundancy (`r > 1`): an idle
    /// site proactively picked up a copy of a job in flight elsewhere.
    #[serde(default)]
    pub replica_grants: u64,
    /// Replica executions that completed first and were the copy merged.
    #[serde(default)]
    pub replica_wins: u64,
    /// Sibling replica executions fenced (released unmerged) because another
    /// copy of the same chunk completed first.
    #[serde(default)]
    pub replica_fences: u64,
    /// Evacuation-triggered re-executions that read their chunk from a local
    /// replica instead of re-fetching it over the WAN (`r > 1` only).
    #[serde(default)]
    pub saved_refetches: u64,
    /// Completions rejected because another execution already merged the
    /// chunk (or the reporter was already declared dead).
    pub duplicate_completions: u64,
    /// Completions accepted from a site whose lease had already been
    /// reaped — the original worker won the race after all.
    pub late_completions: u64,
    /// Jobs permanently abandoned, with the site that last failed each.
    pub abandoned_jobs: Vec<AbandonedJob>,
}

impl FaultCounters {
    /// True when no fault-path event occurred at all.
    #[must_use]
    pub fn is_quiet(&self) -> bool {
        self.lease_expiries == 0
            && self.evacuated_jobs == 0
            && self.lost_results == 0
            && self.speculative_grants == 0
            && self.speculative_wins == 0
            && self.speculative_losses == 0
            && self.replica_grants == 0
            && self.replica_wins == 0
            && self.replica_fences == 0
            && self.saved_refetches == 0
            && self.duplicate_completions == 0
            && self.late_completions == 0
            && self.abandoned_jobs.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn det_hash_is_stable_and_sensitive() {
        let a = det_hash(&[1, 2, 3]);
        assert_eq!(a, det_hash(&[1, 2, 3]), "same words, same hash");
        assert_ne!(a, det_hash(&[1, 2, 4]));
        assert_ne!(a, det_hash(&[3, 2, 1]));
        let u = det_unit(a);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn lease_scales_with_observed_rate() {
        let c = LeaseConfig { base: 30.0, multiplier: 4.0, min: 0.5, max: 10.0 };
        assert_eq!(c.lease_for(None), 30.0);
        assert_eq!(c.lease_for(Some(1.0)), 4.0);
        assert_eq!(c.lease_for(Some(0.01)), 0.5, "clamped to min");
        assert_eq!(c.lease_for(Some(100.0)), 10.0, "clamped to max");
    }

    #[test]
    fn storage_failures_are_deterministic_and_bounded() {
        let mut plan = FaultPlan::seeded(7);
        plan.storage_error_rate = 0.5;
        plan.storage_max_consecutive = 2;
        let mut failures = 0;
        for file in 0..64u32 {
            for attempt in 0..4u32 {
                let v = plan.storage_read_fails(file, 0, attempt);
                assert_eq!(v, plan.storage_read_fails(file, 0, attempt), "deterministic");
                if attempt >= 2 {
                    assert!(!v, "capped after max_consecutive attempts");
                }
                failures += u64::from(v);
            }
        }
        assert!(failures > 0, "a 50% rate must fail somewhere in 128 rolls");
    }

    #[test]
    fn site_outage_applies_from_its_time() {
        let plan = FaultPlan {
            site_outage: Some(SiteOutage { site: SiteId::CLOUD, at: 2.0 }),
            ..FaultPlan::seeded(1)
        };
        assert!(!plan.site_dead(SiteId::CLOUD, 1.9));
        assert!(plan.site_dead(SiteId::CLOUD, 2.0));
        assert!(!plan.site_dead(SiteId::LOCAL, 5.0));
    }

    #[test]
    fn worker_lookups_match_specs() {
        let plan = FaultPlan {
            slow_workers: vec![SlowWorker { site: SiteId::LOCAL, worker: 1, delay_per_job: 0.5 }],
            worker_crash: vec![WorkerCrash { site: SiteId::CLOUD, worker: 0, after_jobs: 3 }],
            ..FaultPlan::seeded(1)
        };
        assert!(!plan.is_empty());
        assert_eq!(plan.worker_delay(SiteId::LOCAL, 1), 0.5);
        assert_eq!(plan.worker_delay(SiteId::LOCAL, 0), 0.0);
        assert_eq!(plan.crash_after(SiteId::CLOUD, 0), Some(3));
        assert_eq!(plan.crash_after(SiteId::CLOUD, 1), None);
        assert!(FaultPlan::seeded(9).is_empty());
    }

    #[test]
    fn site_slowdown_defaults_to_unity_and_clamps_below_one() {
        let plan = FaultPlan {
            slow_sites: vec![
                SlowSite { site: SiteId::CLOUD, factor: 4.0 },
                SlowSite { site: SiteId::LOCAL, factor: 0.5 },
            ],
            ..FaultPlan::seeded(2)
        };
        assert!(!plan.is_empty());
        assert_eq!(plan.site_slowdown(SiteId::CLOUD), 4.0);
        assert_eq!(plan.site_slowdown(SiteId::LOCAL), 1.0, "speedups are clamped away");
        assert_eq!(plan.site_slowdown(SiteId(7)), 1.0);
        // A no-op slowdown alone leaves the plan empty.
        let noop = FaultPlan {
            slow_sites: vec![SlowSite { site: SiteId::CLOUD, factor: 1.0 }],
            ..FaultPlan::seeded(2)
        };
        assert!(noop.is_empty());
    }
}
