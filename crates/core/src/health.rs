//! Streaming health detectors over a live run's telemetry and metrics.
//!
//! The sampler thread (or any periodic observer) folds each tick's counter
//! snapshot into a [`HealthSample`] and feeds it to a [`HealthMonitor`]. The
//! monitor runs five streaming anomaly detectors — straggler-ETA blowout,
//! shard-imbalance ratio, lease-reap storm, WAN fetch-latency regression
//! against the run's own baseline, and queue stall — each with trip/clear
//! hysteresis so a single noisy tick never flaps the verdict. Every state
//! change emits a typed [`EventKind::HealthTransition`] telemetry event and
//! is appended to an in-memory timeline that the `/healthz` endpoint and the
//! black-box crash dump serialize as JSON.

use crate::json::Json;
use crate::telemetry::{Event, EventKind, Telemetry};

/// The anomaly detectors the health plane runs, in display order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum HealthDetector {
    /// Slowest site's per-core completion rate fell far below the mean.
    Straggler,
    /// Max shard queue depth far exceeds the mean depth.
    ShardImbalance,
    /// Lease reaps per second above threshold (mass worker loss or
    /// deadlines sized far too tight).
    ReapStorm,
    /// Per-job WAN fetch latency regressed against this run's own
    /// first-window baseline.
    WanRegression,
    /// Outstanding work exists but nothing completed this tick.
    QueueStall,
}

impl HealthDetector {
    /// Every detector, in display order.
    pub const ALL: [HealthDetector; 5] = [
        HealthDetector::Straggler,
        HealthDetector::ShardImbalance,
        HealthDetector::ReapStorm,
        HealthDetector::WanRegression,
        HealthDetector::QueueStall,
    ];

    /// Stable machine-readable name, used in events, JSON, and metrics.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            HealthDetector::Straggler => "straggler-eta",
            HealthDetector::ShardImbalance => "shard-imbalance",
            HealthDetector::ReapStorm => "lease-reap-storm",
            HealthDetector::WanRegression => "wan-regression",
            HealthDetector::QueueStall => "queue-stall",
        }
    }

    /// Inverse of [`HealthDetector::label`].
    #[must_use]
    pub fn parse(s: &str) -> Option<HealthDetector> {
        HealthDetector::ALL.into_iter().find(|d| d.label() == s)
    }

    fn index(self) -> usize {
        match self {
            HealthDetector::Straggler => 0,
            HealthDetector::ShardImbalance => 1,
            HealthDetector::ReapStorm => 2,
            HealthDetector::WanRegression => 3,
            HealthDetector::QueueStall => 4,
        }
    }
}

/// Thresholds and hysteresis widths for the detectors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthConfig {
    /// Trip [`HealthDetector::Straggler`] when the slowest site's per-core
    /// rate is below this fraction of the mean per-core rate.
    pub straggler_ratio: f64,
    /// Trip [`HealthDetector::ShardImbalance`] when max/mean shard depth
    /// exceeds this ratio.
    pub imbalance_ratio: f64,
    /// Trip [`HealthDetector::ReapStorm`] when lease reaps per second
    /// exceed this rate.
    pub reaps_per_sec: f64,
    /// Trip [`HealthDetector::WanRegression`] when per-job WAN fetch
    /// latency exceeds this multiple of the run's baseline window.
    pub wan_factor: f64,
    /// Consecutive bad ticks before a detector trips.
    pub trip_after: u32,
    /// Consecutive good ticks before a tripped detector clears.
    pub clear_after: u32,
}

impl Default for HealthConfig {
    fn default() -> HealthConfig {
        HealthConfig {
            straggler_ratio: 0.5,
            imbalance_ratio: 4.0,
            reaps_per_sec: 2.0,
            wan_factor: 2.0,
            trip_after: 2,
            clear_after: 2,
        }
    }
}

impl HealthConfig {
    /// Parse a `--health` spec: comma-separated `key=value` clauses over
    /// `straggler`, `imbalance`, `reaps`, `wan`, `trip`, `clear`. Unset
    /// keys keep their defaults.
    ///
    /// # Errors
    /// Unknown keys and unparseable values are rejected with a message
    /// naming the offending clause.
    pub fn parse_spec(spec: &str) -> Result<HealthConfig, String> {
        let mut config = HealthConfig::default();
        for clause in spec.split(',').map(str::trim).filter(|c| !c.is_empty()) {
            let (key, value) = clause
                .split_once('=')
                .ok_or_else(|| format!("health clause `{clause}`: expected key=value"))?;
            let f = || {
                value
                    .parse::<f64>()
                    .map_err(|_| format!("health clause `{clause}`: bad number `{value}`"))
            };
            match key {
                "straggler" => config.straggler_ratio = f()?,
                "imbalance" => config.imbalance_ratio = f()?,
                "reaps" => config.reaps_per_sec = f()?,
                "wan" => config.wan_factor = f()?,
                "trip" => {
                    config.trip_after = value
                        .parse()
                        .map_err(|_| format!("health clause `{clause}`: bad count `{value}`"))?;
                }
                "clear" => {
                    config.clear_after = value
                        .parse()
                        .map_err(|_| format!("health clause `{clause}`: bad count `{value}`"))?;
                }
                other => return Err(format!("unknown health key `{other}`")),
            }
        }
        if config.trip_after == 0 || config.clear_after == 0 {
            return Err("health trip/clear counts must be >= 1".to_owned());
        }
        Ok(config)
    }
}

/// One tick's worth of run signals, as cumulative counters plus current
/// gauges; the monitor differentiates across consecutive samples itself.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HealthSample {
    /// Nanoseconds since the run epoch.
    pub at_ns: u64,
    /// Jobs granted but not yet completed, plus queued jobs.
    pub outstanding: u64,
    /// Cumulative completed jobs.
    pub completions: u64,
    /// Cumulative lease reaps.
    pub lease_reaps: u64,
    /// Current per-shard queue depths (order is irrelevant).
    pub shard_depths: Vec<u64>,
    /// Per-core completion rates of the active sites over the last tick
    /// (jobs/sec/core); sites with zero cores are excluded by the caller.
    pub site_rates: Vec<f64>,
    /// Cumulative WAN (cloud) fetch busy seconds.
    pub wan_fetch_secs: f64,
    /// Cumulative WAN (cloud) fetch requests.
    pub wan_fetch_jobs: u64,
}

/// One recorded detector state change.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HealthTransitionRecord {
    /// Nanoseconds since the run epoch, from the triggering sample.
    pub at_ns: u64,
    /// Which detector changed state.
    pub detector: HealthDetector,
    /// `true` = tripped, `false` = cleared.
    pub tripped: bool,
    /// The observed value that drove the transition.
    pub value: f64,
    /// The configured threshold the value was compared against.
    pub threshold: f64,
}

impl HealthTransitionRecord {
    /// Serialize as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::obj()
            .field("at_ns", Json::U64(self.at_ns))
            .field("detector", Json::Str(self.detector.label().to_owned()))
            .field("tripped", Json::Bool(self.tripped))
            .field("value", Json::F64(self.value))
            .field("threshold", Json::F64(self.threshold))
    }
}

/// Per-detector hysteresis state.
#[derive(Debug, Clone, Copy, Default)]
struct DetectorState {
    tripped: bool,
    consecutive_bad: u32,
    consecutive_good: u32,
    trips: u64,
    last_value: f64,
    last_threshold: f64,
}

/// One detector's instantaneous reading on a tick.
#[derive(Debug, Clone, Copy)]
struct Reading {
    bad: bool,
    value: f64,
    threshold: f64,
}

/// Minimum jobs a WAN window must contain before its mean latency is
/// trusted — as the regression baseline or as a comparison window.
const WAN_MIN_JOBS: u64 = 8;
/// Minimum max-depth before shard imbalance is considered meaningful;
/// a 4-vs-0 split on a draining queue is noise, not skew.
const IMBALANCE_MIN_DEPTH: u64 = 8;

/// Streaming monitor: folds [`HealthSample`]s, runs every detector with
/// hysteresis, emits [`EventKind::HealthTransition`] events, and keeps the
/// timeline + current verdict for `/healthz` and the black-box dump.
#[derive(Debug)]
pub struct HealthMonitor {
    config: HealthConfig,
    telemetry: Telemetry,
    states: [DetectorState; 5],
    timeline: Vec<HealthTransitionRecord>,
    prev: Option<HealthSample>,
    wan_baseline: Option<f64>,
    ticks: u64,
}

impl HealthMonitor {
    /// A monitor with the given thresholds, emitting transitions through
    /// `telemetry` (pass [`Telemetry::off`] to keep it silent).
    #[must_use]
    pub fn new(config: HealthConfig, telemetry: Telemetry) -> HealthMonitor {
        HealthMonitor {
            config,
            telemetry,
            states: [DetectorState::default(); 5],
            timeline: Vec::new(),
            prev: None,
            wan_baseline: None,
            ticks: 0,
        }
    }

    /// Fold one tick. The first sample only seeds the deltas; detectors
    /// start judging from the second sample on.
    pub fn observe(&mut self, sample: &HealthSample) {
        self.ticks += 1;
        let Some(prev) = self.prev.replace(sample.clone()) else {
            return;
        };
        let dt = (sample.at_ns.saturating_sub(prev.at_ns)) as f64 / 1e9;
        if dt <= 0.0 {
            return;
        }
        let readings = [
            (HealthDetector::Straggler, self.straggler(sample)),
            (HealthDetector::ShardImbalance, self.imbalance(sample)),
            (HealthDetector::ReapStorm, self.reap_storm(&prev, sample, dt)),
            (HealthDetector::WanRegression, self.wan_regression(&prev, sample)),
            (HealthDetector::QueueStall, self.queue_stall(&prev, sample)),
        ];
        for (detector, reading) in readings {
            self.fold(detector, reading, sample.at_ns);
        }
    }

    fn straggler(&self, s: &HealthSample) -> Reading {
        let rates: Vec<f64> = s.site_rates.iter().copied().filter(|r| r.is_finite()).collect();
        let n = rates.len();
        if n < 2 || s.outstanding == 0 {
            return Reading { bad: false, value: 1.0, threshold: self.config.straggler_ratio };
        }
        let mean = rates.iter().sum::<f64>() / n as f64;
        let min = rates.iter().copied().fold(f64::INFINITY, f64::min);
        let ratio = if mean > 0.0 { min / mean } else { 1.0 };
        Reading {
            bad: mean > 0.0 && ratio < self.config.straggler_ratio,
            value: ratio,
            threshold: self.config.straggler_ratio,
        }
    }

    fn imbalance(&self, s: &HealthSample) -> Reading {
        let n = s.shard_depths.len();
        let max = s.shard_depths.iter().copied().max().unwrap_or(0);
        if n < 2 || max < IMBALANCE_MIN_DEPTH {
            return Reading { bad: false, value: 1.0, threshold: self.config.imbalance_ratio };
        }
        let mean = s.shard_depths.iter().sum::<u64>() as f64 / n as f64;
        let ratio = if mean > 0.0 { max as f64 / mean } else { n as f64 };
        Reading {
            bad: ratio > self.config.imbalance_ratio,
            value: ratio,
            threshold: self.config.imbalance_ratio,
        }
    }

    fn reap_storm(&self, prev: &HealthSample, s: &HealthSample, dt: f64) -> Reading {
        let rate = s.lease_reaps.saturating_sub(prev.lease_reaps) as f64 / dt;
        Reading {
            bad: rate > self.config.reaps_per_sec,
            value: rate,
            threshold: self.config.reaps_per_sec,
        }
    }

    fn wan_regression(&mut self, prev: &HealthSample, s: &HealthSample) -> Reading {
        let threshold = self.config.wan_factor;
        let jobs = s.wan_fetch_jobs.saturating_sub(prev.wan_fetch_jobs);
        if jobs < WAN_MIN_JOBS {
            return Reading { bad: false, value: 1.0, threshold };
        }
        let secs = (s.wan_fetch_secs - prev.wan_fetch_secs).max(0.0);
        let per_job = secs / jobs as f64;
        let Some(baseline) = self.wan_baseline else {
            // First trustworthy window becomes the run's own baseline.
            self.wan_baseline = Some(per_job.max(1e-9));
            return Reading { bad: false, value: 1.0, threshold };
        };
        let factor = per_job / baseline;
        Reading { bad: factor > threshold, value: factor, threshold }
    }

    fn queue_stall(&self, prev: &HealthSample, s: &HealthSample) -> Reading {
        let completed = s.completions.saturating_sub(prev.completions);
        Reading {
            bad: s.outstanding > 0 && completed == 0,
            value: completed as f64,
            threshold: 1.0,
        }
    }

    fn fold(&mut self, detector: HealthDetector, r: Reading, at_ns: u64) {
        let config = self.config;
        let state = &mut self.states[detector.index()];
        state.last_value = r.value;
        state.last_threshold = r.threshold;
        if r.bad {
            state.consecutive_bad += 1;
            state.consecutive_good = 0;
        } else {
            state.consecutive_good += 1;
            state.consecutive_bad = 0;
        }
        let flip = if state.tripped {
            state.consecutive_good >= config.clear_after
        } else {
            state.consecutive_bad >= config.trip_after
        };
        if !flip {
            return;
        }
        state.tripped = !state.tripped;
        if state.tripped {
            state.trips += 1;
        }
        let record = HealthTransitionRecord {
            at_ns,
            detector,
            tripped: state.tripped,
            value: r.value,
            threshold: r.threshold,
        };
        self.timeline.push(record);
        self.telemetry.emit(Event::at(
            at_ns,
            EventKind::HealthTransition {
                detector,
                tripped: record.tripped,
                value: record.value,
                threshold: record.threshold,
            },
        ));
    }

    /// Currently tripped detectors, in display order.
    #[must_use]
    pub fn tripped(&self) -> Vec<HealthDetector> {
        HealthDetector::ALL.into_iter().filter(|d| self.states[d.index()].tripped).collect()
    }

    /// `true` while no detector is tripped.
    #[must_use]
    pub fn is_healthy(&self) -> bool {
        self.states.iter().all(|s| !s.tripped)
    }

    /// Total trips across every detector over the run's lifetime.
    #[must_use]
    pub fn total_trips(&self) -> u64 {
        self.states.iter().map(|s| s.trips).sum()
    }

    /// Every recorded transition, oldest first.
    #[must_use]
    pub fn timeline(&self) -> &[HealthTransitionRecord] {
        &self.timeline
    }

    /// The machine-readable `/healthz` verdict.
    #[must_use]
    pub fn verdict_json(&self) -> Json {
        let detectors = HealthDetector::ALL
            .into_iter()
            .map(|d| {
                let s = self.states[d.index()];
                Json::obj()
                    .field("detector", Json::Str(d.label().to_owned()))
                    .field("tripped", Json::Bool(s.tripped))
                    .field("trips", Json::U64(s.trips))
                    .field("value", Json::F64(s.last_value))
                    .field("threshold", Json::F64(s.last_threshold))
            })
            .collect();
        Json::obj()
            .field(
                "status",
                Json::Str(if self.is_healthy() { "healthy" } else { "degraded" }.to_owned()),
            )
            .field("ticks", Json::U64(self.ticks))
            .field("total_trips", Json::U64(self.total_trips()))
            .field("detectors", Json::Arr(detectors))
    }

    /// The full health document: verdict plus transition timeline — the
    /// shape written to the black box as `health.json`.
    #[must_use]
    pub fn to_json(&self) -> Json {
        self.verdict_json().field(
            "timeline",
            Json::Arr(self.timeline.iter().map(HealthTransitionRecord::to_json).collect()),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::Recorder;
    use std::sync::Arc;

    fn sample(at_secs: u64, outstanding: u64, completions: u64) -> HealthSample {
        HealthSample {
            at_ns: at_secs * 1_000_000_000,
            outstanding,
            completions,
            ..HealthSample::default()
        }
    }

    #[test]
    fn queue_stall_trips_after_hysteresis_and_clears_after_hysteresis() {
        let recorder = Arc::new(Recorder::new());
        let mut m = HealthMonitor::new(HealthConfig::default(), Telemetry::to(recorder.clone()));
        m.observe(&sample(0, 10, 0)); // seeds deltas only
        m.observe(&sample(1, 10, 0)); // bad x1 — below trip_after
        assert!(m.is_healthy(), "one bad tick must not trip");
        m.observe(&sample(2, 10, 0)); // bad x2 — trips
        assert_eq!(m.tripped(), vec![HealthDetector::QueueStall]);
        m.observe(&sample(3, 5, 5)); // good x1 — still tripped
        assert!(!m.is_healthy(), "one good tick must not clear");
        m.observe(&sample(4, 0, 10)); // good x2 — clears
        assert!(m.is_healthy());
        assert_eq!(m.total_trips(), 1);
        // Exactly two transitions, trip then clear, both as telemetry events.
        let events = recorder.snapshot();
        assert_eq!(events.len(), 2);
        assert!(matches!(
            events[0].kind,
            EventKind::HealthTransition { detector: HealthDetector::QueueStall, tripped: true, .. }
        ));
        assert!(matches!(
            events[1].kind,
            EventKind::HealthTransition {
                detector: HealthDetector::QueueStall,
                tripped: false,
                ..
            }
        ));
        assert_eq!(m.timeline().len(), 2);
    }

    #[test]
    fn straggler_trips_on_sustained_slow_site_and_ignores_single_site() {
        let mut m = HealthMonitor::new(HealthConfig::default(), Telemetry::off());
        let tick = |at: u64, rates: Vec<f64>| HealthSample {
            at_ns: at * 1_000_000_000,
            outstanding: 100,
            completions: at * 10,
            site_rates: rates,
            ..HealthSample::default()
        };
        m.observe(&tick(0, vec![10.0, 10.0]));
        m.observe(&tick(1, vec![10.0, 1.0]));
        m.observe(&tick(2, vec![10.0, 1.0]));
        assert!(m.tripped().contains(&HealthDetector::Straggler), "1 vs 10 per-core must trip");
        // A single active site can never be a straggler relative to itself.
        let mut single = HealthMonitor::new(HealthConfig::default(), Telemetry::off());
        single.observe(&tick(0, vec![1.0]));
        single.observe(&tick(1, vec![1.0]));
        single.observe(&tick(2, vec![1.0]));
        assert!(single.is_healthy());
    }

    #[test]
    fn shard_imbalance_needs_nontrivial_depth() {
        let mut m = HealthMonitor::new(HealthConfig::default(), Telemetry::off());
        let tick = |at: u64, depths: Vec<u64>| HealthSample {
            at_ns: at * 1_000_000_000,
            outstanding: 100,
            completions: at,
            shard_depths: depths,
            ..HealthSample::default()
        };
        // max/mean is bounded by the shard count, so skew only registers
        // across several shards — the regime the sharded pool runs in.
        m.observe(&tick(0, vec![4, 0, 0, 0, 0]));
        m.observe(&tick(1, vec![4, 0, 0, 0, 0]));
        m.observe(&tick(2, vec![4, 0, 0, 0, 0]));
        assert!(m.is_healthy(), "shallow queues are noise, not skew");
        m.observe(&tick(3, vec![400, 2, 2, 2, 2]));
        m.observe(&tick(4, vec![400, 2, 2, 2, 2]));
        assert!(m.tripped().contains(&HealthDetector::ShardImbalance));
    }

    #[test]
    fn reap_storm_rate_is_per_second_not_per_tick() {
        let mut m = HealthMonitor::new(HealthConfig::default(), Telemetry::off());
        let tick = |at_ns: u64, reaps: u64| HealthSample {
            at_ns,
            outstanding: 10,
            completions: at_ns / 1_000_000,
            lease_reaps: reaps,
            ..HealthSample::default()
        };
        // 1 reap per 250 ms tick = 4/sec > default 2/sec.
        m.observe(&tick(0, 0));
        m.observe(&tick(250_000_000, 1));
        m.observe(&tick(500_000_000, 2));
        assert!(m.tripped().contains(&HealthDetector::ReapStorm));
        // 1 reap per 1 s tick = 1/sec stays healthy.
        let mut calm = HealthMonitor::new(HealthConfig::default(), Telemetry::off());
        calm.observe(&tick(0, 0));
        calm.observe(&tick(1_000_000_000, 1));
        calm.observe(&tick(2_000_000_000, 2));
        assert!(calm.is_healthy());
    }

    #[test]
    fn wan_regression_is_judged_against_the_runs_own_baseline() {
        let mut m = HealthMonitor::new(HealthConfig::default(), Telemetry::off());
        let tick = |at: u64, jobs: u64, secs: f64| HealthSample {
            at_ns: at * 1_000_000_000,
            outstanding: 100,
            completions: at,
            wan_fetch_jobs: jobs,
            wan_fetch_secs: secs,
            ..HealthSample::default()
        };
        m.observe(&tick(0, 0, 0.0));
        m.observe(&tick(1, 100, 0.4)); // baseline window: 4 ms/job
        m.observe(&tick(2, 200, 0.8)); // 4 ms/job — healthy
        assert!(m.is_healthy());
        m.observe(&tick(3, 300, 1.8)); // 10 ms/job = 2.5x baseline, bad x1
        m.observe(&tick(4, 400, 2.8)); // bad x2 — trips
        assert!(m.tripped().contains(&HealthDetector::WanRegression));
        // Tiny windows are never judged (nor do they seed the baseline).
        let mut sparse = HealthMonitor::new(HealthConfig::default(), Telemetry::off());
        sparse.observe(&tick(0, 0, 0.0));
        sparse.observe(&tick(1, 2, 10.0));
        sparse.observe(&tick(2, 4, 20.0));
        assert!(sparse.is_healthy());
    }

    #[test]
    fn verdict_and_timeline_serialize_with_the_expected_keys() {
        let mut m = HealthMonitor::new(HealthConfig::default(), Telemetry::off());
        m.observe(&sample(0, 10, 0));
        m.observe(&sample(1, 10, 0));
        m.observe(&sample(2, 10, 0));
        let text = m.to_json().to_text();
        for key in
            ["\"status\"", "\"degraded\"", "\"detectors\"", "\"timeline\"", "\"queue-stall\""]
        {
            assert!(text.contains(key), "health document is missing {key}: {text}");
        }
    }

    #[test]
    fn spec_parser_overrides_only_named_keys_and_rejects_junk() {
        let c = HealthConfig::parse_spec("straggler=0.25,trip=3").expect("valid spec");
        assert!((c.straggler_ratio - 0.25).abs() < 1e-12);
        assert_eq!(c.trip_after, 3);
        assert_eq!(c.clear_after, HealthConfig::default().clear_after);
        assert!((c.wan_factor - HealthConfig::default().wan_factor).abs() < 1e-12);
        assert!(HealthConfig::parse_spec("bogus=1").is_err());
        assert!(HealthConfig::parse_spec("straggler=abc").is_err());
        assert!(HealthConfig::parse_spec("trip=0").is_err());
        assert_eq!(
            HealthConfig::parse_spec("").expect("empty = defaults"),
            HealthConfig::default()
        );
    }

    #[test]
    fn detector_labels_round_trip_through_parse() {
        for d in HealthDetector::ALL {
            assert_eq!(HealthDetector::parse(d.label()), Some(d));
        }
        assert_eq!(HealthDetector::parse("nope"), None);
    }
}
