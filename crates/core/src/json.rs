//! A minimal, dependency-free JSON value with a writer and a parser.
//!
//! The workspace deliberately carries no `serde_json`; the telemetry
//! consumers (JSONL event logs, Chrome `trace_event` exports, `--stats-out`
//! run artifacts) need only a small, predictable subset of JSON, and the
//! parser exists so tooling (tests, `cloudburst check-json`) can verify
//! that every artifact the framework emits is well-formed without shelling
//! out to an external interpreter.

use std::fmt;

/// A JSON value.
///
/// Numbers are split into unsigned integers (ids, byte counts, nanosecond
/// timestamps — kept exact) and floats (seconds, rates). Object keys keep
/// insertion order so emitted artifacts are deterministic.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer, serialized without a decimal point.
    U64(u64),
    /// A float; non-finite values serialize as `null`.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object builder.
    #[must_use]
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append `key: value` to an object (panics on non-objects — a misuse,
    /// not a data error).
    #[must_use]
    pub fn field(mut self, key: &str, value: Json) -> Json {
        match &mut self {
            Json::Obj(fields) => fields.push((key.to_owned(), value)),
            _ => panic!("Json::field on a non-object"),
        }
        self
    }

    /// Look up a key in an object (`None` for non-objects/missing keys).
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The elements of an array (`None` for non-arrays).
    #[must_use]
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The string payload (`None` for non-strings).
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload as `f64` (`None` for non-numbers).
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::U64(n) => Some(*n as f64),
            Json::F64(x) => Some(*x),
            _ => None,
        }
    }

    /// Serialize into `out`.
    pub fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                use fmt::Write as _;
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.write(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Serialize to a fresh string.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    /// Parse a complete JSON document (trailing whitespace allowed, trailing
    /// garbage rejected).
    ///
    /// # Errors
    /// Returns a message with the byte offset of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }
}

/// Write `s` as a quoted JSON string with the mandatory escapes.
fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                use fmt::Write as _;
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn err(&self, what: &str) -> String {
        format!("{what} at byte {}", self.pos)
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.bytes.get(self.pos) == Some(&b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected `{}`", b as char)))
        }
    }

    fn lit(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.bytes.get(self.pos) {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]`")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            fields.push((key, self.value()?));
            self.skip_ws();
            match self.bytes.get(self.pos) {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected `,` or `}`")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("invalid \\u escape"))?;
                            // Surrogates are not recombined: telemetry never
                            // emits them, and a replacement char keeps the
                            // parser total for validation purposes.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so byte
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        if !float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Json::U64(n));
            }
        }
        text.parse::<f64>().map(Json::F64).map_err(|_| format!("invalid number at byte {start}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_reparses_nested_values() {
        let v = Json::obj()
            .field("name", Json::Str("env-50/50".into()))
            .field("jobs", Json::U64(96))
            .field("sync", Json::F64(0.125))
            .field("sites", Json::Arr(vec![Json::Str("local".into()), Json::Str("cloud".into())]))
            .field("chaos", Json::Null)
            .field("ok", Json::Bool(true));
        let text = v.to_text();
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn escapes_control_and_quote_characters() {
        let v = Json::Str("a\"b\\c\nd\u{1}".into());
        let text = v.to_text();
        assert_eq!(text, r#""a\"b\\c\nd\u0001""#);
        assert_eq!(Json::parse(&text).unwrap(), v);
    }

    #[test]
    fn large_u64_survives_exactly() {
        let v = Json::U64(u64::MAX);
        assert_eq!(Json::parse(&v.to_text()).unwrap(), v);
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Json::F64(f64::NAN).to_text(), "null");
        assert_eq!(Json::F64(f64::INFINITY).to_text(), "null");
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,]", "{\"a\":}", "tru", "1 2", "\"abc", "{\"a\" 1}"] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn accepts_whitespace_and_unicode_escapes() {
        let v = Json::parse(" { \"k\" : [ 1 , -2.5e3 , \"\\u00e9\" ] } ").unwrap();
        let arr = v.get("k").unwrap().as_arr().unwrap();
        assert_eq!(arr[0], Json::U64(1));
        assert_eq!(arr[1], Json::F64(-2500.0));
        assert_eq!(arr[2], Json::Str("é".into()));
    }

    #[test]
    fn get_and_accessors_cover_misses() {
        let v = Json::obj().field("x", Json::U64(3));
        assert!(v.get("y").is_none());
        assert_eq!(v.get("x").unwrap().as_f64(), Some(3.0));
        assert!(Json::Null.get("x").is_none());
        assert!(Json::U64(1).as_str().is_none());
        assert!(Json::Str("s".into()).as_arr().is_none());
    }
}
