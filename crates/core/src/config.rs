//! Environment configurations — the five setups of the paper's evaluation
//! (§IV-B) plus the scalability sweep (§IV-C).
//!
//! | Env        | Data (local/S3) | Cores (local/cloud)          |
//! |------------|-----------------|------------------------------|
//! | env-local  | 100% / 0%       | 32 / 0                       |
//! | env-cloud  | 0% / 100%       | 0 / 32 (44 for kmeans)       |
//! | env-50/50  | 50% / 50%       | 16 / 16 (22 for kmeans)      |
//! | env-33/67  | 33% / 67%       | 16 / 16 (22 for kmeans)      |
//! | env-17/83  | 17% / 83%       | 16 / 16 (22 for kmeans)      |
//!
//! k-means gets extra cloud cores because one EC2 core delivers less compute
//! than one cluster core; the paper empirically equalized aggregate
//! throughput ("22 cores resulted in a more equal comparison with 16 cluster
//! nodes due to the compute intensive nature of kmeans").

use crate::types::SiteId;
use serde::{Deserialize, Serialize};

/// Resources and data placement for one experiment environment.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EnvConfig {
    /// Display label, e.g. `env-33/67`.
    pub name: String,
    /// Fraction of the dataset hosted at the local cluster (the rest is in
    /// cloud storage).
    pub local_data_fraction: f64,
    /// Worker cores at the local cluster.
    pub local_cores: u32,
    /// Worker cores at the cloud.
    pub cloud_cores: u32,
}

impl EnvConfig {
    /// # Panics
    /// Panics if the fraction is outside `[0, 1]` or no cores are given.
    #[must_use]
    pub fn new(
        name: &str,
        local_data_fraction: f64,
        local_cores: u32,
        cloud_cores: u32,
    ) -> EnvConfig {
        assert!((0.0..=1.0).contains(&local_data_fraction), "data fraction must be within [0, 1]");
        assert!(local_cores + cloud_cores > 0, "need at least one core");
        EnvConfig { name: name.to_owned(), local_data_fraction, local_cores, cloud_cores }
    }

    /// Cores at `site`.
    #[must_use]
    pub fn cores_at(&self, site: SiteId) -> u32 {
        match site {
            SiteId::LOCAL => self.local_cores,
            SiteId::CLOUD => self.cloud_cores,
            _ => 0,
        }
    }

    /// Total cores across sites.
    #[must_use]
    pub fn total_cores(&self) -> u32 {
        self.local_cores + self.cloud_cores
    }

    /// Sites that have at least one core.
    #[must_use]
    pub fn active_sites(&self) -> Vec<SiteId> {
        let mut v = Vec::new();
        if self.local_cores > 0 {
            v.push(SiteId::LOCAL);
        }
        if self.cloud_cores > 0 {
            v.push(SiteId::CLOUD);
        }
        v
    }

    /// True when compute spans both sites (a genuine cloud-bursting run).
    #[must_use]
    pub fn is_hybrid(&self) -> bool {
        self.local_cores > 0 && self.cloud_cores > 0
    }
}

/// The five environments of §IV-B for an application that splits cores
/// evenly (knn, pagerank): hybrid envs get `(half, half)` cores.
#[must_use]
pub fn paper_envs_even(total_cores: u32) -> Vec<EnvConfig> {
    let half = total_cores / 2;
    vec![
        EnvConfig::new("env-local", 1.0, total_cores, 0),
        EnvConfig::new("env-cloud", 0.0, 0, total_cores),
        EnvConfig::new("env-50/50", 0.50, half, half),
        EnvConfig::new("env-33/67", 0.33, half, half),
        EnvConfig::new("env-17/83", 0.17, half, half),
    ]
}

/// The five environments for kmeans: the cloud side gets
/// `cloud_equalized` cores (paper: 44 centralized / 22 hybrid vs 32/16
/// cluster cores) to equalize aggregate throughput.
#[must_use]
pub fn paper_envs_kmeans(local_total: u32, cloud_equalized: u32) -> Vec<EnvConfig> {
    let lh = local_total / 2;
    let ch = cloud_equalized / 2;
    vec![
        EnvConfig::new("env-local", 1.0, local_total, 0),
        EnvConfig::new("env-cloud", 0.0, 0, cloud_equalized),
        EnvConfig::new("env-50/50", 0.50, lh, ch),
        EnvConfig::new("env-33/67", 0.33, lh, ch),
        EnvConfig::new("env-17/83", 0.17, lh, ch),
    ]
}

/// The scalability sweep of §IV-C: all data in cloud storage, `(m, m)`
/// cores for each `m` in `steps`.
#[must_use]
pub fn scalability_envs(steps: &[u32]) -> Vec<EnvConfig> {
    steps.iter().map(|&m| EnvConfig::new(&format!("({m},{m})"), 0.0, m, m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_envs_have_expected_shapes() {
        let envs = paper_envs_even(32);
        assert_eq!(envs.len(), 5);
        assert_eq!(envs[0].cores_at(SiteId::LOCAL), 32);
        assert_eq!(envs[0].cores_at(SiteId::CLOUD), 0);
        assert!(!envs[0].is_hybrid());
        assert!(envs[2].is_hybrid());
        assert_eq!(envs[2].local_cores, 16);
        assert_eq!(envs[4].local_data_fraction, 0.17);
        assert!(envs.iter().skip(2).all(|e| e.total_cores() == 32));
    }

    #[test]
    fn kmeans_envs_equalize_cloud_cores() {
        let envs = paper_envs_kmeans(32, 44);
        assert_eq!(envs[1].cloud_cores, 44);
        assert_eq!(envs[2].local_cores, 16);
        assert_eq!(envs[2].cloud_cores, 22);
    }

    #[test]
    fn scalability_envs_put_all_data_in_cloud() {
        let envs = scalability_envs(&[4, 8, 16, 32]);
        assert_eq!(envs.len(), 4);
        assert!(envs.iter().all(|e| e.local_data_fraction == 0.0));
        assert_eq!(envs[3].name, "(32,32)");
        assert_eq!(envs[3].total_cores(), 64);
    }

    #[test]
    fn active_sites_reflect_core_placement() {
        assert_eq!(EnvConfig::new("x", 1.0, 4, 0).active_sites(), vec![SiteId::LOCAL]);
        assert_eq!(EnvConfig::new("x", 0.0, 0, 4).active_sites(), vec![SiteId::CLOUD]);
        assert_eq!(
            EnvConfig::new("x", 0.5, 4, 4).active_sites(),
            vec![SiteId::LOCAL, SiteId::CLOUD]
        );
    }

    #[test]
    #[should_panic(expected = "within [0, 1]")]
    fn rejects_bad_fraction() {
        let _ = EnvConfig::new("bad", 1.5, 1, 1);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn rejects_zero_cores() {
        let _ = EnvConfig::new("bad", 0.5, 0, 0);
    }
}
