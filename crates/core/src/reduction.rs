//! The Generalized Reduction programming model (paper §III-A).
//!
//! The API has two phases:
//!
//! * **Local reduction** — `proc(e)`: each data element is processed and
//!   folded into the *reduction object* immediately, before the next element
//!   is touched. Map, combine, and reduce are fused, so no intermediate
//!   `(key, value)` pairs are materialized, sorted, grouped, or shuffled.
//! * **Global reduction** — after all elements are processed, the reduction
//!   objects from all workers/sites are merged (an all-to-all collective or a
//!   user-defined function) into the final result.
//!
//! Correctness contract (paper): "The result of this processing must be
//! independent of the order in which data elements are processed" — i.e.
//! [`Merge`] must be commutative and associative with respect to
//! `local_reduce`, and the property tests in this workspace check exactly
//! that for every shipped application and combiner.

use crate::types::Seconds;

/// Pairwise combination of two partial results — the global-reduction step.
///
/// Implementations must be **associative** and **commutative** up to the
/// application's notion of equivalence, or the final result would depend on
/// the nondeterministic processing order.
pub trait Merge {
    /// Fold `other` into `self`.
    fn merge(&mut self, other: Self);
}

/// An accumulator for generalized reduction.
///
/// "This data structure is designed by the application developer. However,
/// memory allocation and access operations to this object are managed by the
/// middleware for efficiency."
pub trait ReductionObject: Merge + Send + 'static {
    /// Size of the object when transferred between sites, in bytes. Used to
    /// charge the inter-cluster link during global reduction (the paper's
    /// pagerank robj is ~3 MB and dominates its sync time).
    fn byte_size(&self) -> usize;
}

/// A data-analysis application written against the Generalized Reduction API.
///
/// Applications provide: the reduction object, how to decode a chunk of raw
/// bytes into data units, and the `proc(e)` local reduction. The runtime
/// owns everything else: chunk retrieval, cache-sized unit grouping, worker
/// scheduling, and the global reduction.
pub trait Reduction: Send + Sync {
    /// One decoded data unit (the smallest atomically processed element).
    type Item: Send;
    /// The accumulator type.
    type RObj: ReductionObject;

    /// A fresh, empty reduction object ("initially declared by the
    /// programmer"; allocated by the middleware per worker).
    fn make_robj(&self) -> Self::RObj;

    /// Size in bytes of one encoded data unit.
    fn unit_size(&self) -> usize;

    /// Decode a chunk's raw bytes into data units, appending to `out`.
    /// `chunk.len()` is always a multiple of [`Reduction::unit_size`].
    fn decode(&self, chunk: &[u8], out: &mut Vec<Self::Item>);

    /// `proc(e)`: process one data element and fold it into `robj`.
    fn local_reduce(&self, robj: &mut Self::RObj, item: &Self::Item);

    /// Process a cache-sized group of units. The default folds items one by
    /// one; applications may override for vectorized inner loops.
    fn reduce_group(&self, robj: &mut Self::RObj, items: &[Self::Item]) {
        for item in items {
            self.local_reduce(robj, item);
        }
    }

    /// Optional cost-model hint: seconds of compute per unit on a reference
    /// core. Used only by the paper-scale simulator; the threaded runtime
    /// measures real time. `None` means "calibrate by measurement".
    fn compute_hint(&self) -> Option<Seconds> {
        None
    }
}

/// Sequentially process a whole dataset (all chunks, in order) on one core —
/// the reference oracle used by tests and the centralized baseline.
pub fn reduce_serial<R: Reduction>(
    app: &R,
    chunks: impl IntoIterator<Item = impl AsRef<[u8]>>,
) -> R::RObj {
    let mut robj = app.make_robj();
    let mut items = Vec::new();
    for chunk in chunks {
        items.clear();
        app.decode(chunk.as_ref(), &mut items);
        app.reduce_group(&mut robj, &items);
    }
    robj
}

/// Merge an iterator of partial reduction objects into one (the global
/// reduction collective). Returns `None` for an empty iterator.
pub fn global_reduce<R: ReductionObject>(parts: impl IntoIterator<Item = R>) -> Option<R> {
    let mut iter = parts.into_iter();
    let mut acc = iter.next()?;
    for part in iter {
        acc.merge(part);
    }
    Some(acc)
}

/// Merge partial reduction objects with a parallel binary reduction tree:
/// each round pairs adjacent survivors `(0,1), (2,3), …` and merges the
/// pairs concurrently, so a site with `w` workers combines in `⌈log₂ w⌉`
/// rounds of wall time instead of `w − 1` sequential merges. The tree shape
/// depends only on `parts.len()`, never on thread timing, so runs with the
/// same per-worker partials merge identically. Two or fewer parts fall back
/// to the linear fold — no threads spawned.
pub fn tree_reduce<R: ReductionObject>(mut parts: Vec<R>) -> Option<R> {
    while parts.len() > 2 {
        // An odd tail survives the round untouched and re-enters at the end,
        // keeping the pairing deterministic.
        let carry = (parts.len() % 2 == 1).then(|| parts.pop().expect("non-empty"));
        let mut merged: Vec<R> = Vec::with_capacity(parts.len() / 2 + 1);
        std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(parts.len() / 2);
            let mut it = parts.drain(..);
            while let (Some(mut a), Some(b)) = (it.next(), it.next()) {
                handles.push(scope.spawn(move || {
                    a.merge(b);
                    a
                }));
            }
            drop(it);
            merged.extend(handles.into_iter().map(|h| h.join().expect("merge thread panicked")));
        });
        merged.extend(carry);
        parts = merged;
    }
    global_reduce(parts)
}

/// Coded global reduction: merge the partial reduction objects from any
/// *surviving* replica set. Under coded redundancy each job's result may be
/// produced by several sites; a straggling or evacuated site simply
/// contributes `None` and — because every chunk's work exists on another
/// replica — the survivors alone still cover the whole dataset. Survivors
/// are combined with the same deterministic binary tree as
/// [`tree_reduce`], so the result is bit-exact with the fault-free run.
/// Returns `None` when no partial survived at all.
pub fn coded_combine<R: ReductionObject>(parts: impl IntoIterator<Item = Option<R>>) -> Option<R> {
    tree_reduce(parts.into_iter().flatten().collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal app: units are little-endian u32s, robj is their sum.
    struct SumApp;

    #[derive(Debug, PartialEq, Eq)]
    struct SumObj(u64);

    impl Merge for SumObj {
        fn merge(&mut self, other: Self) {
            self.0 += other.0;
        }
    }
    impl ReductionObject for SumObj {
        fn byte_size(&self) -> usize {
            8
        }
    }
    impl Reduction for SumApp {
        type Item = u32;
        type RObj = SumObj;
        fn make_robj(&self) -> SumObj {
            SumObj(0)
        }
        fn unit_size(&self) -> usize {
            4
        }
        fn decode(&self, chunk: &[u8], out: &mut Vec<u32>) {
            out.extend(chunk.chunks_exact(4).map(|b| u32::from_le_bytes(b.try_into().unwrap())));
        }
        fn local_reduce(&self, robj: &mut SumObj, item: &u32) {
            robj.0 += u64::from(*item);
        }
    }

    fn encode(vals: &[u32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    #[test]
    fn serial_reduction_sums_all_chunks() {
        let chunks = [encode(&[1, 2, 3]), encode(&[10, 20])];
        let robj = reduce_serial(&SumApp, &chunks);
        assert_eq!(robj, SumObj(36));
    }

    #[test]
    fn global_reduce_merges_partials() {
        let merged = global_reduce([SumObj(5), SumObj(7), SumObj(1)]).unwrap();
        assert_eq!(merged, SumObj(13));
    }

    #[test]
    fn global_reduce_of_nothing_is_none() {
        assert!(global_reduce(std::iter::empty::<SumObj>()).is_none());
    }

    #[test]
    fn tree_reduce_matches_linear_fold_at_every_width() {
        for n in 0..=17u64 {
            let parts: Vec<SumObj> = (1..=n).map(SumObj).collect();
            let linear = global_reduce((1..=n).map(SumObj));
            assert_eq!(tree_reduce(parts), linear, "width {n}");
        }
    }

    #[test]
    fn split_processing_equals_serial() {
        // Process the same units in two partitions and merge: must equal the
        // one-pass result (the order-independence contract).
        let all = [3u32, 1, 4, 1, 5, 9, 2, 6];
        let serial = reduce_serial(&SumApp, [encode(&all)]);
        let a = reduce_serial(&SumApp, [encode(&all[..3])]);
        let b = reduce_serial(&SumApp, [encode(&all[3..])]);
        let merged = global_reduce([a, b]).unwrap();
        assert_eq!(serial, merged);
    }

    #[test]
    fn coded_combine_skips_dead_replicas() {
        // Two of four replica slots survived; the merge covers them only.
        let merged = coded_combine([Some(SumObj(5)), None, Some(SumObj(7)), None]).unwrap();
        assert_eq!(merged, SumObj(12));
        assert!(coded_combine::<SumObj>([None, None]).is_none());
        // All-survivor combine equals the plain global reduction.
        let all = coded_combine((1..=9u64).map(SumObj).map(Some));
        assert_eq!(all, global_reduce((1..=9u64).map(SumObj)));
    }

    #[test]
    fn reduce_group_default_matches_item_loop() {
        let app = SumApp;
        let mut g = app.make_robj();
        app.reduce_group(&mut g, &[1, 2, 3, 4]);
        let mut s = app.make_robj();
        for i in [1u32, 2, 3, 4] {
            app.local_reduce(&mut s, &i);
        }
        assert_eq!(g, s);
    }
}
