//! Execution statistics in the exact shape the paper reports.
//!
//! Figures 3 and 4 decompose overall execution time into **processing**,
//! **data retrieval**, and **sync**; Table II additionally reports the
//! **global reduction** time, per-site **idle** time, and the **total
//! slowdown** vs. the centralized baseline; Table I reports per-site job
//! counts including stolen jobs.

use crate::fault::FaultCounters;
use crate::json::Json;
use crate::pool::SiteJobCounts;
use crate::types::{Seconds, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::AddAssign;

/// Stacked-bar decomposition of one site's (or one run's) execution time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Time spent in the reduction layer (`proc(e)` over unit groups).
    pub processing: Seconds,
    /// Time spent reading/retrieving chunks (local disk or remote store).
    pub retrieval: Seconds,
    /// Barrier wait + reduction-object exchange + waiting for the other
    /// cluster to finish ("sync. time" in the figures).
    pub sync: Seconds,
}

impl Breakdown {
    /// Total execution time represented by this breakdown.
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.processing + self.retrieval + self.sync
    }

    /// Fraction of total time spent in sync (paper quotes e.g. "0.1% to
    /// 0.3%" for knn scalability).
    #[must_use]
    pub fn sync_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.sync / t
        } else {
            0.0
        }
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.processing += rhs.processing;
        self.retrieval += rhs.retrieval;
        self.sync += rhs.sync;
    }
}

/// Everything measured for one site during one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteStats {
    /// Per-core-averaged breakdown for the site's stacked bar.
    pub breakdown: Breakdown,
    /// Wall-clock (or virtual) time from start until the site finished its
    /// last job and local combination.
    pub finish_time: Seconds,
    /// Time the site idled at the end waiting for the other cluster
    /// (Table II "Idle Time").
    pub idle: Seconds,
    /// Jobs processed, split into local vs stolen (Table I).
    pub jobs: SiteJobCounts,
    /// Bytes fetched from remote storage by this site's workers.
    pub remote_bytes: u64,
    /// Transient storage-read failures this site's workers absorbed by
    /// retrying below the chunk level (never surfaced to the head).
    pub retries: u64,
}

/// The complete result record for one run — one bar of Fig. 3/4 plus its
/// rows in Tables I and II.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Label of the environment configuration (e.g. `env-33/67`).
    pub env: String,
    /// Per-site statistics.
    pub sites: BTreeMap<SiteId, SiteStats>,
    /// Elapsed time of the global reduction phase (Table II).
    pub global_reduction: Seconds,
    /// End-to-end execution time.
    pub total_time: Seconds,
    /// Fault-tolerance accounting: lease expiries, evacuations, speculative
    /// re-executions, deduplicated completions. All-zero on a clean run.
    pub faults: FaultCounters,
}

impl RunReport {
    /// The overall stacked-bar breakdown: the maximum-finishing site's bar
    /// plus the global reduction folded into sync, which is how the paper's
    /// figures present a run.
    #[must_use]
    pub fn overall_breakdown(&self) -> Breakdown {
        let mut b = self
            .sites
            .values()
            .max_by(|a, b| a.finish_time.total_cmp(&b.finish_time))
            .map(|s| s.breakdown)
            .unwrap_or_default();
        b.sync += self.global_reduction;
        b
    }

    /// Total slowdown of this run relative to a baseline run (Table II),
    /// in seconds: `self.total_time - baseline.total_time`.
    #[must_use]
    pub fn slowdown_vs(&self, baseline: &RunReport) -> Seconds {
        self.total_time - baseline.total_time
    }

    /// Slowdown as a fraction of the baseline total (paper: "the ratios of
    /// total slowdown with respect to the total execution times are 1.7%,
    /// 15.4% and 45.9%...").
    #[must_use]
    pub fn slowdown_ratio_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.total_time > 0.0 {
            (self.total_time - baseline.total_time) / baseline.total_time
        } else {
            0.0
        }
    }

    /// Total jobs processed across sites.
    #[must_use]
    pub fn total_jobs(&self) -> u64 {
        self.sites.values().map(|s| s.jobs.total()).sum()
    }

    /// Total stolen jobs across sites.
    #[must_use]
    pub fn total_stolen(&self) -> u64 {
        self.sites.values().map(|s| s.jobs.stolen).sum()
    }

    /// Total transient storage-read retries absorbed below the chunk level
    /// across sites.
    #[must_use]
    pub fn total_retries(&self) -> u64 {
        self.sites.values().map(|s| s.retries).sum()
    }
}

/// Scaling efficiency between a run on `n` cores and a run on `2n` cores:
/// `t_n / (2 * t_2n)`. A value of 1.0 is perfect linear scaling; the paper
/// reports an average of 81% per core-doubling.
#[must_use]
pub fn doubling_efficiency(t_small: Seconds, t_double: Seconds) -> f64 {
    if t_double > 0.0 {
        t_small / (2.0 * t_double)
    } else {
        0.0
    }
}

/// Raw per-slave measurements feeding [`assemble_sites`].
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SlaveSample {
    /// Seconds the slave spent in the reduction layer.
    pub processing: Seconds,
    /// Seconds the slave spent retrieving chunks.
    pub retrieval: Seconds,
    /// Run-clock time at which the slave processed its last job and exited.
    pub finish: Seconds,
}

/// Raw per-site measurements feeding [`assemble_sites`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SiteSample {
    /// One sample per slave thread at the site.
    pub slaves: Vec<SlaveSample>,
    /// Seconds the site spent combining its workers' objects into one.
    pub local_merge: Seconds,
    /// Run-clock time at which the site finished everything, local
    /// combination included.
    pub finish: Seconds,
    /// Jobs the site was credited with (local vs stolen).
    pub jobs: SiteJobCounts,
    /// Bytes the site's workers fetched from remote storage.
    pub remote_bytes: u64,
    /// Transient storage-read failures absorbed below the chunk level.
    pub retries: u64,
}

/// Assemble per-site [`SiteStats`] from raw samples — the single place the
/// paper's time decomposition is computed.
///
/// Per site: `processing` and `retrieval` are per-core means; `sync` is the
/// mean intra-site barrier (waiting for the slowest sibling slave) plus the
/// local combination plus the end-of-run idle wait for the slowest *site*.
/// Both threaded runtimes and the telemetry aggregator
/// ([`crate::telemetry::derive_report`]) call this, which is what makes the
/// event-derived report provably equal to the live accumulators.
#[must_use]
pub fn assemble_sites(samples: &BTreeMap<SiteId, SiteSample>) -> BTreeMap<SiteId, SiteStats> {
    let compute_finish = samples.values().map(|s| s.finish).fold(0.0_f64, f64::max);
    let mut sites = BTreeMap::new();
    for (&site, sample) in samples {
        let n = sample.slaves.len().max(1) as f64;
        let site_compute_finish = sample.slaves.iter().map(|s| s.finish).fold(0.0_f64, f64::max);
        let mean_proc = sample.slaves.iter().map(|s| s.processing).sum::<f64>() / n;
        let mean_retr = sample.slaves.iter().map(|s| s.retrieval).sum::<f64>() / n;
        // Intra-site barrier: the average wait for the slowest sibling.
        let mean_barrier =
            sample.slaves.iter().map(|s| site_compute_finish - s.finish).sum::<f64>() / n;
        let idle = compute_finish - sample.finish;
        sites.insert(
            site,
            SiteStats {
                breakdown: Breakdown {
                    processing: mean_proc,
                    retrieval: mean_retr,
                    sync: mean_barrier + sample.local_merge + idle,
                },
                finish_time: sample.finish,
                idle,
                jobs: sample.jobs,
                remote_bytes: sample.remote_bytes,
                retries: sample.retries,
            },
        );
    }
    sites
}

/// Serialize a [`Breakdown`] as a JSON object.
#[must_use]
pub fn breakdown_to_json(b: &Breakdown) -> Json {
    Json::obj()
        .field("processing", Json::F64(b.processing))
        .field("retrieval", Json::F64(b.retrieval))
        .field("sync", Json::F64(b.sync))
}

/// Serialize [`FaultCounters`] as a JSON object.
#[must_use]
pub fn faults_to_json(f: &FaultCounters) -> Json {
    let abandoned = f
        .abandoned_jobs
        .iter()
        .map(|a| {
            Json::obj()
                .field("chunk", Json::U64(u64::from(a.chunk.0)))
                .field("last_site", a.last_site.map_or(Json::Null, |s| Json::Str(s.to_string())))
        })
        .collect();
    Json::obj()
        .field("lease_expiries", Json::U64(f.lease_expiries))
        .field("evacuated_jobs", Json::U64(f.evacuated_jobs))
        .field("lost_results", Json::U64(f.lost_results))
        .field("speculative_grants", Json::U64(f.speculative_grants))
        .field("speculative_wins", Json::U64(f.speculative_wins))
        .field("speculative_losses", Json::U64(f.speculative_losses))
        .field("replica_grants", Json::U64(f.replica_grants))
        .field("replica_wins", Json::U64(f.replica_wins))
        .field("replica_fences", Json::U64(f.replica_fences))
        .field("saved_refetches", Json::U64(f.saved_refetches))
        .field("duplicate_completions", Json::U64(f.duplicate_completions))
        .field("late_completions", Json::U64(f.late_completions))
        .field("abandoned", Json::Arr(abandoned))
}

/// Serialize a full [`RunReport`] as machine-readable JSON — the payload of
/// the CLI's `--stats-out` and the bench figure artifacts.
#[must_use]
pub fn report_to_json(r: &RunReport) -> Json {
    let sites = r
        .sites
        .iter()
        .map(|(site, s)| {
            Json::obj()
                .field("site", Json::Str(site.to_string()))
                .field("breakdown", breakdown_to_json(&s.breakdown))
                .field("finish_time", Json::F64(s.finish_time))
                .field("idle", Json::F64(s.idle))
                .field("jobs_local", Json::U64(s.jobs.local))
                .field("jobs_stolen", Json::U64(s.jobs.stolen))
                .field("remote_bytes", Json::U64(s.remote_bytes))
                .field("retries", Json::U64(s.retries))
        })
        .collect();
    Json::obj()
        .field("env", Json::Str(r.env.clone()))
        .field("total_time", Json::F64(r.total_time))
        .field("global_reduction", Json::F64(r.global_reduction))
        .field("overall", breakdown_to_json(&r.overall_breakdown()))
        .field("total_jobs", Json::U64(r.total_jobs()))
        .field("total_stolen", Json::U64(r.total_stolen()))
        .field("total_retries", Json::U64(r.total_retries()))
        .field("sites", Json::Arr(sites))
        .field("faults", faults_to_json(&r.faults))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(finish: Seconds, proc_: Seconds, retr: Seconds, sync: Seconds) -> SiteStats {
        SiteStats {
            breakdown: Breakdown { processing: proc_, retrieval: retr, sync },
            finish_time: finish,
            ..SiteStats::default()
        }
    }

    #[test]
    fn breakdown_total_and_sync_fraction() {
        let b = Breakdown { processing: 6.0, retrieval: 3.0, sync: 1.0 };
        assert_eq!(b.total(), 10.0);
        assert!((b.sync_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(Breakdown::default().sync_fraction(), 0.0);
    }

    #[test]
    fn breakdown_add_assign_accumulates() {
        let mut a = Breakdown { processing: 1.0, retrieval: 2.0, sync: 3.0 };
        a += Breakdown { processing: 0.5, retrieval: 0.5, sync: 0.5 };
        assert_eq!(a.total(), 7.5);
    }

    #[test]
    fn overall_breakdown_uses_slowest_site_plus_global_reduction() {
        let mut r = RunReport { global_reduction: 2.0, ..RunReport::default() };
        r.sites.insert(SiteId::LOCAL, stats(10.0, 7.0, 2.0, 1.0));
        r.sites.insert(SiteId::CLOUD, stats(12.0, 5.0, 6.0, 1.0));
        let b = r.overall_breakdown();
        assert_eq!(b.processing, 5.0); // cloud site finished last
        assert_eq!(b.sync, 3.0); // 1.0 + global reduction
    }

    #[test]
    fn slowdown_ratio_matches_definition() {
        let base = RunReport { total_time: 100.0, ..RunReport::default() };
        let run = RunReport { total_time: 115.5, ..RunReport::default() };
        assert!((run.slowdown_vs(&base) - 15.5).abs() < 1e-12);
        assert!((run.slowdown_ratio_vs(&base) - 0.155).abs() < 1e-12);
    }

    #[test]
    fn slowdown_ratio_of_zero_baseline_is_zero() {
        let base = RunReport::default();
        let run = RunReport { total_time: 5.0, ..RunReport::default() };
        assert_eq!(run.slowdown_ratio_vs(&base), 0.0);
    }

    #[test]
    fn job_totals_aggregate_sites() {
        let mut r = RunReport::default();
        r.sites.insert(
            SiteId::LOCAL,
            SiteStats { jobs: SiteJobCounts { local: 48, stolen: 9 }, ..SiteStats::default() },
        );
        r.sites.insert(
            SiteId::CLOUD,
            SiteStats { jobs: SiteJobCounts { local: 39, stolen: 0 }, ..SiteStats::default() },
        );
        assert_eq!(r.total_jobs(), 96);
        assert_eq!(r.total_stolen(), 9);
    }

    #[test]
    fn doubling_efficiency_is_one_for_perfect_scaling() {
        assert!((doubling_efficiency(10.0, 5.0) - 1.0).abs() < 1e-12);
        // 81% efficiency: doubling cores gives 1.62x speedup.
        assert!((doubling_efficiency(10.0, 10.0 / 1.62) - 0.81).abs() < 1e-12);
        assert_eq!(doubling_efficiency(10.0, 0.0), 0.0);
    }

    #[test]
    fn assemble_sites_computes_the_paper_decomposition() {
        let mut samples = BTreeMap::new();
        samples.insert(
            SiteId::LOCAL,
            SiteSample {
                slaves: vec![
                    SlaveSample { processing: 4.0, retrieval: 1.0, finish: 8.0 },
                    SlaveSample { processing: 6.0, retrieval: 3.0, finish: 10.0 },
                ],
                local_merge: 0.5,
                finish: 10.5,
                jobs: SiteJobCounts { local: 5, stolen: 1 },
                remote_bytes: 256,
                retries: 2,
            },
        );
        samples.insert(
            SiteId::CLOUD,
            SiteSample {
                slaves: vec![SlaveSample { processing: 2.0, retrieval: 9.0, finish: 11.0 }],
                local_merge: 0.0,
                finish: 12.0,
                jobs: SiteJobCounts { local: 4, stolen: 0 },
                remote_bytes: 0,
                retries: 0,
            },
        );
        let sites = assemble_sites(&samples);
        let local = &sites[&SiteId::LOCAL];
        assert!((local.breakdown.processing - 5.0).abs() < 1e-12, "mean over 2 slaves");
        assert!((local.breakdown.retrieval - 2.0).abs() < 1e-12);
        // barrier = ((10-8)+(10-10))/2 = 1.0; idle = 12 - 10.5 = 1.5.
        assert!((local.idle - 1.5).abs() < 1e-12);
        assert!((local.breakdown.sync - (1.0 + 0.5 + 1.5)).abs() < 1e-12);
        let cloud = &sites[&SiteId::CLOUD];
        assert_eq!(cloud.idle, 0.0, "slowest site never idles");
        assert_eq!(cloud.jobs.total(), 4);
    }

    #[test]
    fn assemble_sites_tolerates_a_slaveless_site() {
        let mut samples = BTreeMap::new();
        samples.insert(SiteId::LOCAL, SiteSample { finish: 1.0, ..SiteSample::default() });
        let sites = assemble_sites(&samples);
        assert_eq!(sites[&SiteId::LOCAL].breakdown.processing, 0.0);
    }

    #[test]
    fn report_json_round_trips_and_carries_the_tables() {
        let mut r = RunReport {
            env: "env-50/50".into(),
            global_reduction: 0.25,
            total_time: 12.5,
            ..RunReport::default()
        };
        r.faults.lease_expiries = 3;
        r.faults.abandoned_jobs.push(crate::fault::AbandonedJob {
            chunk: crate::types::ChunkId(7),
            last_site: Some(SiteId::CLOUD),
        });
        r.sites.insert(
            SiteId::LOCAL,
            SiteStats {
                breakdown: Breakdown { processing: 6.0, retrieval: 3.0, sync: 1.0 },
                finish_time: 10.0,
                idle: 0.5,
                jobs: SiteJobCounts { local: 48, stolen: 9 },
                remote_bytes: 4096,
                retries: 2,
            },
        );
        let j = report_to_json(&r);
        let text = j.to_text();
        let back = Json::parse(&text).expect("stats JSON parses");
        assert_eq!(back.get("env").unwrap().as_str(), Some("env-50/50"));
        assert_eq!(back.get("total_jobs").unwrap().as_f64(), Some(57.0));
        let sites = back.get("sites").unwrap().as_arr().unwrap();
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].get("jobs_stolen").unwrap().as_f64(), Some(9.0));
        let faults = back.get("faults").unwrap();
        assert_eq!(faults.get("lease_expiries").unwrap().as_f64(), Some(3.0));
        let abandoned = faults.get("abandoned").unwrap().as_arr().unwrap();
        assert_eq!(abandoned[0].get("last_site").unwrap().as_str(), Some("cloud"));
    }
}
