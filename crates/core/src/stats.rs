//! Execution statistics in the exact shape the paper reports.
//!
//! Figures 3 and 4 decompose overall execution time into **processing**,
//! **data retrieval**, and **sync**; Table II additionally reports the
//! **global reduction** time, per-site **idle** time, and the **total
//! slowdown** vs. the centralized baseline; Table I reports per-site job
//! counts including stolen jobs.

use crate::fault::FaultCounters;
use crate::pool::SiteJobCounts;
use crate::types::{Seconds, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::AddAssign;

/// Stacked-bar decomposition of one site's (or one run's) execution time.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Breakdown {
    /// Time spent in the reduction layer (`proc(e)` over unit groups).
    pub processing: Seconds,
    /// Time spent reading/retrieving chunks (local disk or remote store).
    pub retrieval: Seconds,
    /// Barrier wait + reduction-object exchange + waiting for the other
    /// cluster to finish ("sync. time" in the figures).
    pub sync: Seconds,
}

impl Breakdown {
    /// Total execution time represented by this breakdown.
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.processing + self.retrieval + self.sync
    }

    /// Fraction of total time spent in sync (paper quotes e.g. "0.1% to
    /// 0.3%" for knn scalability).
    #[must_use]
    pub fn sync_fraction(&self) -> f64 {
        let t = self.total();
        if t > 0.0 {
            self.sync / t
        } else {
            0.0
        }
    }
}

impl AddAssign for Breakdown {
    fn add_assign(&mut self, rhs: Self) {
        self.processing += rhs.processing;
        self.retrieval += rhs.retrieval;
        self.sync += rhs.sync;
    }
}

/// Everything measured for one site during one run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SiteStats {
    /// Per-core-averaged breakdown for the site's stacked bar.
    pub breakdown: Breakdown,
    /// Wall-clock (or virtual) time from start until the site finished its
    /// last job and local combination.
    pub finish_time: Seconds,
    /// Time the site idled at the end waiting for the other cluster
    /// (Table II "Idle Time").
    pub idle: Seconds,
    /// Jobs processed, split into local vs stolen (Table I).
    pub jobs: SiteJobCounts,
    /// Bytes fetched from remote storage by this site's workers.
    pub remote_bytes: u64,
    /// Transient storage-read failures this site's workers absorbed by
    /// retrying below the chunk level (never surfaced to the head).
    pub retries: u64,
}

/// The complete result record for one run — one bar of Fig. 3/4 plus its
/// rows in Tables I and II.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Label of the environment configuration (e.g. `env-33/67`).
    pub env: String,
    /// Per-site statistics.
    pub sites: BTreeMap<SiteId, SiteStats>,
    /// Elapsed time of the global reduction phase (Table II).
    pub global_reduction: Seconds,
    /// End-to-end execution time.
    pub total_time: Seconds,
    /// Fault-tolerance accounting: lease expiries, evacuations, speculative
    /// re-executions, deduplicated completions. All-zero on a clean run.
    pub faults: FaultCounters,
}

impl RunReport {
    /// The overall stacked-bar breakdown: the maximum-finishing site's bar
    /// plus the global reduction folded into sync, which is how the paper's
    /// figures present a run.
    #[must_use]
    pub fn overall_breakdown(&self) -> Breakdown {
        let mut b = self
            .sites
            .values()
            .max_by(|a, b| a.finish_time.total_cmp(&b.finish_time))
            .map(|s| s.breakdown)
            .unwrap_or_default();
        b.sync += self.global_reduction;
        b
    }

    /// Total slowdown of this run relative to a baseline run (Table II),
    /// in seconds: `self.total_time - baseline.total_time`.
    #[must_use]
    pub fn slowdown_vs(&self, baseline: &RunReport) -> Seconds {
        self.total_time - baseline.total_time
    }

    /// Slowdown as a fraction of the baseline total (paper: "the ratios of
    /// total slowdown with respect to the total execution times are 1.7%,
    /// 15.4% and 45.9%...").
    #[must_use]
    pub fn slowdown_ratio_vs(&self, baseline: &RunReport) -> f64 {
        if baseline.total_time > 0.0 {
            (self.total_time - baseline.total_time) / baseline.total_time
        } else {
            0.0
        }
    }

    /// Total jobs processed across sites.
    #[must_use]
    pub fn total_jobs(&self) -> u64 {
        self.sites.values().map(|s| s.jobs.total()).sum()
    }

    /// Total stolen jobs across sites.
    #[must_use]
    pub fn total_stolen(&self) -> u64 {
        self.sites.values().map(|s| s.jobs.stolen).sum()
    }

    /// Total transient storage-read retries absorbed below the chunk level
    /// across sites.
    #[must_use]
    pub fn total_retries(&self) -> u64 {
        self.sites.values().map(|s| s.retries).sum()
    }
}

/// Scaling efficiency between a run on `n` cores and a run on `2n` cores:
/// `t_n / (2 * t_2n)`. A value of 1.0 is perfect linear scaling; the paper
/// reports an average of 81% per core-doubling.
#[must_use]
pub fn doubling_efficiency(t_small: Seconds, t_double: Seconds) -> f64 {
    if t_double > 0.0 {
        t_small / (2.0 * t_double)
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(finish: Seconds, proc_: Seconds, retr: Seconds, sync: Seconds) -> SiteStats {
        SiteStats {
            breakdown: Breakdown { processing: proc_, retrieval: retr, sync },
            finish_time: finish,
            ..SiteStats::default()
        }
    }

    #[test]
    fn breakdown_total_and_sync_fraction() {
        let b = Breakdown { processing: 6.0, retrieval: 3.0, sync: 1.0 };
        assert_eq!(b.total(), 10.0);
        assert!((b.sync_fraction() - 0.1).abs() < 1e-12);
        assert_eq!(Breakdown::default().sync_fraction(), 0.0);
    }

    #[test]
    fn breakdown_add_assign_accumulates() {
        let mut a = Breakdown { processing: 1.0, retrieval: 2.0, sync: 3.0 };
        a += Breakdown { processing: 0.5, retrieval: 0.5, sync: 0.5 };
        assert_eq!(a.total(), 7.5);
    }

    #[test]
    fn overall_breakdown_uses_slowest_site_plus_global_reduction() {
        let mut r = RunReport { global_reduction: 2.0, ..RunReport::default() };
        r.sites.insert(SiteId::LOCAL, stats(10.0, 7.0, 2.0, 1.0));
        r.sites.insert(SiteId::CLOUD, stats(12.0, 5.0, 6.0, 1.0));
        let b = r.overall_breakdown();
        assert_eq!(b.processing, 5.0); // cloud site finished last
        assert_eq!(b.sync, 3.0); // 1.0 + global reduction
    }

    #[test]
    fn slowdown_ratio_matches_definition() {
        let base = RunReport { total_time: 100.0, ..RunReport::default() };
        let run = RunReport { total_time: 115.5, ..RunReport::default() };
        assert!((run.slowdown_vs(&base) - 15.5).abs() < 1e-12);
        assert!((run.slowdown_ratio_vs(&base) - 0.155).abs() < 1e-12);
    }

    #[test]
    fn slowdown_ratio_of_zero_baseline_is_zero() {
        let base = RunReport::default();
        let run = RunReport { total_time: 5.0, ..RunReport::default() };
        assert_eq!(run.slowdown_ratio_vs(&base), 0.0);
    }

    #[test]
    fn job_totals_aggregate_sites() {
        let mut r = RunReport::default();
        r.sites.insert(
            SiteId::LOCAL,
            SiteStats { jobs: SiteJobCounts { local: 48, stolen: 9 }, ..SiteStats::default() },
        );
        r.sites.insert(
            SiteId::CLOUD,
            SiteStats { jobs: SiteJobCounts { local: 39, stolen: 0 }, ..SiteStats::default() },
        );
        assert_eq!(r.total_jobs(), 96);
        assert_eq!(r.total_stolen(), 9);
    }

    #[test]
    fn doubling_efficiency_is_one_for_perfect_scaling() {
        assert!((doubling_efficiency(10.0, 5.0) - 1.0).abs() < 1e-12);
        // 81% efficiency: doubling cores gives 1.62x speedup.
        assert!((doubling_efficiency(10.0, 10.0 / 1.62) - 0.81).abs() < 1e-12);
        assert_eq!(doubling_efficiency(10.0, 0.0), 0.0);
    }
}
