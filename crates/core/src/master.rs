//! The per-site master's local job pool (paper §III-B).
//!
//! "The master monitors the cluster's job pool, and when it senses that it is
//! depleted, it will request a new group of jobs from the head. After the
//! master receives the set of jobs, they are added into the pool, and
//! assigned to the requesting slaves individually."
//!
//! Like [`crate::pool::JobPool`], this is pure logic: the threaded runtime
//! wraps it in a mutex and performs the actual head RPC; the simulator drives
//! it directly and charges virtual time for the RPC.

use crate::layout::ChunkMeta;
use crate::pool::JobBatch;
use crate::types::{ChunkId, SiteId};
use std::collections::VecDeque;

/// One job as held by a master: the chunk plus whether it was stolen from a
/// remote site (and therefore needs remote retrieval).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocalJob {
    /// The chunk to retrieve and process.
    pub chunk: ChunkMeta,
    /// True when the chunk's home site is not this master's site.
    pub stolen: bool,
    /// Causal span the head allocated for this execution (0 = untracked);
    /// the slave stamps it on every event of the job's lifecycle.
    pub span: u64,
}

/// State of a [`MasterPool::take`] request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Take {
    /// A job to process.
    Job(LocalJob),
    /// Pool empty but the head may still have jobs: the caller must refill.
    NeedRefill,
    /// The head has confirmed there is no work left anywhere.
    Drained,
}

/// The master's site-local pool of granted-but-unprocessed jobs.
#[derive(Debug, Clone)]
pub struct MasterPool {
    site: SiteId,
    queue: VecDeque<LocalJob>,
    /// Request a refill when the queue shrinks to this many jobs, so slaves
    /// rarely block on the head round-trip.
    low_watermark: usize,
    /// Set when the head returned an empty batch: no more work exists.
    drained: bool,
    /// Refill requests issued (control-traffic accounting).
    refills: u64,
    /// Jobs handed to slaves.
    dispatched: u64,
}

impl MasterPool {
    /// An empty pool for `site` that asks for more work once its queue
    /// shrinks to `low_watermark` jobs.
    #[must_use]
    pub fn new(site: SiteId, low_watermark: usize) -> MasterPool {
        MasterPool {
            site,
            queue: VecDeque::new(),
            low_watermark,
            drained: false,
            refills: 0,
            dispatched: 0,
        }
    }

    /// The site this master manages.
    #[must_use]
    pub fn site(&self) -> SiteId {
        self.site
    }

    /// Jobs currently queued at this master.
    #[must_use]
    pub fn queued(&self) -> usize {
        self.queue.len()
    }

    /// Whether the pool is at or below its low watermark and has not yet been
    /// told the head is empty. The runtime should issue a head request when
    /// this returns true.
    #[must_use]
    pub fn needs_refill(&self) -> bool {
        !self.drained && self.queue.len() <= self.low_watermark
    }

    /// Add a batch granted by the head.
    ///
    /// An empty **terminal** batch marks the pool as drained: the head has
    /// guaranteed no work will ever appear again. An empty *non*-terminal
    /// batch leaves the pool as-is — in-flight jobs elsewhere may still fail
    /// and be requeued, so the caller should poll again after a short
    /// backoff.
    pub fn refill(&mut self, batch: JobBatch) {
        self.refills += 1;
        if batch.is_empty() {
            if batch.terminal {
                self.drained = true;
            }
            return;
        }
        for (i, chunk) in batch.jobs.iter().enumerate() {
            self.queue.push_back(LocalJob {
                chunk: *chunk,
                stolen: batch.stolen,
                span: batch.span_of(i),
            });
        }
    }

    /// Hand the next job to a slave.
    pub fn take(&mut self) -> Take {
        if let Some(job) = self.queue.pop_front() {
            self.dispatched += 1;
            return Take::Job(job);
        }
        if self.drained {
            Take::Drained
        } else {
            Take::NeedRefill
        }
    }

    /// True once the head reported no remaining work **and** the local queue
    /// has been fully handed out.
    #[must_use]
    pub fn is_drained(&self) -> bool {
        self.drained && self.queue.is_empty()
    }

    /// Remove and return every queued-but-undispatched job, so a master
    /// shutting down early (all its slaves gone) can hand them back to the
    /// head instead of stranding them in the assigned state forever.
    pub fn drain_queued(&mut self) -> Vec<LocalJob> {
        self.queue.drain(..).collect()
    }

    /// Drop every queued-but-undispatched job in `revoked` — the head
    /// reaped their leases (or evacuated a site), so this prefetched credit
    /// is dead: dispatching it would only burn a slave on a result the
    /// dedup verdict will discard. Returns how many jobs were dropped.
    pub fn drop_revoked(&mut self, revoked: &[ChunkId]) -> usize {
        let before = self.queue.len();
        self.queue.retain(|j| !revoked.contains(&j.chunk.id));
        before - self.queue.len()
    }

    /// Number of head refill requests issued so far.
    #[must_use]
    pub fn refill_count(&self) -> u64 {
        self.refills
    }

    /// Number of jobs dispatched to slaves so far.
    #[must_use]
    pub fn dispatched(&self) -> u64 {
        self.dispatched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::index::DataIndex;
    use crate::layout::LayoutParams;

    fn some_batch(n: u64, stolen: bool) -> JobBatch {
        let idx = DataIndex::build(
            n * 2,
            LayoutParams { unit_size: 1, units_per_chunk: 2, n_files: 1 },
            |_| SiteId::CLOUD,
        )
        .unwrap();
        let spans = (1..=idx.chunks.len() as u64).collect();
        JobBatch { jobs: idx.chunks.clone(), spans, stolen, terminal: false }
    }

    #[test]
    fn empty_pool_requests_refill_then_serves() {
        let mut mp = MasterPool::new(SiteId::LOCAL, 1);
        assert_eq!(mp.take(), Take::NeedRefill);
        mp.refill(some_batch(3, false));
        assert!(matches!(mp.take(), Take::Job(j) if !j.stolen));
        assert_eq!(mp.queued(), 2);
        assert_eq!(mp.dispatched(), 1);
    }

    #[test]
    fn stolen_flag_propagates_to_jobs() {
        let mut mp = MasterPool::new(SiteId::LOCAL, 0);
        mp.refill(some_batch(1, true));
        assert!(matches!(mp.take(), Take::Job(j) if j.stolen));
    }

    #[test]
    fn spans_propagate_in_grant_order_and_default_to_zero() {
        let mut mp = MasterPool::new(SiteId::LOCAL, 0);
        mp.refill(some_batch(2, false));
        assert!(matches!(mp.take(), Take::Job(j) if j.span == 1));
        assert!(matches!(mp.take(), Take::Job(j) if j.span == 2));
        // A batch without span tracking yields span 0 (untracked).
        let mut bare = some_batch(1, false);
        bare.spans.clear();
        mp.refill(bare);
        assert!(matches!(mp.take(), Take::Job(j) if j.span == 0));
    }

    #[test]
    fn low_watermark_triggers_early_refill() {
        let mut mp = MasterPool::new(SiteId::LOCAL, 2);
        mp.refill(some_batch(4, false));
        assert!(!mp.needs_refill());
        let _ = mp.take();
        let _ = mp.take(); // 2 left == watermark
        assert!(mp.needs_refill());
    }

    #[test]
    fn empty_refill_drains_pool() {
        let mut mp = MasterPool::new(SiteId::CLOUD, 0);
        mp.refill(some_batch(1, false));
        mp.refill(JobBatch::empty(true));
        assert!(!mp.is_drained(), "queued job still to be handed out");
        assert!(matches!(mp.take(), Take::Job(_)));
        assert_eq!(mp.take(), Take::Drained);
        assert!(mp.is_drained());
        assert!(!mp.needs_refill(), "drained pool must not request refills");
    }

    #[test]
    fn empty_nonterminal_refill_does_not_drain() {
        let mut mp = MasterPool::new(SiteId::LOCAL, 0);
        mp.refill(JobBatch::empty(false));
        assert!(!mp.is_drained());
        assert_eq!(mp.take(), Take::NeedRefill, "must keep polling");
        mp.refill(JobBatch::empty(true));
        assert_eq!(mp.take(), Take::Drained);
    }

    #[test]
    fn drop_revoked_removes_only_undispatched_jobs() {
        let mut mp = MasterPool::new(SiteId::LOCAL, 0);
        mp.refill(some_batch(3, false));
        let first = match mp.take() {
            Take::Job(j) => j.chunk.id,
            other => panic!("expected a job, got {other:?}"),
        };
        // The dispatched job is out of the queue: revoking it is a no-op.
        assert_eq!(mp.drop_revoked(&[first]), 0);
        assert_eq!(mp.queued(), 2);
        // Revoking one of the two still-queued jobs drops exactly that one.
        let target = mp.queue.front().copied().unwrap().chunk.id;
        assert_eq!(mp.drop_revoked(&[target]), 1);
        assert_eq!(mp.queued(), 1);
        assert!(matches!(mp.take(), Take::Job(j) if j.chunk.id != target));
    }

    #[test]
    fn refill_count_tracks_requests() {
        let mut mp = MasterPool::new(SiteId::LOCAL, 0);
        mp.refill(some_batch(1, false));
        mp.refill(some_batch(1, false));
        assert_eq!(mp.refill_count(), 2);
    }
}
