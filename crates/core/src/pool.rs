//! The global job pool and the head node's assignment policy (paper §III-B).
//!
//! One job corresponds to one chunk. Masters request *batches* of jobs on
//! demand; the head grants:
//!
//! 1. **Local jobs first** — a group of *consecutive* jobs from a file hosted
//!    at the requesting site, "because it allows the compute units to
//!    sequentially read jobs from the files".
//! 2. **Remote jobs ("job stealing") once local jobs are exhausted** — chosen
//!    "from files which the minimum number of nodes are currently
//!    processing", minimizing file contention between clusters.
//!
//! The pool is pure single-threaded logic: the threaded runtime wraps it in a
//! mutex, the discrete-event simulator drives it directly. This guarantees
//! both runtimes execute the *same* policy.

use crate::index::DataIndex;
use crate::layout::ChunkMeta;
use crate::types::{ChunkId, FileId, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};

/// Largest batch ever granted for cross-site (stolen) jobs.
pub const STEAL_BATCH_MAX: usize = 2;

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Pending,
    Assigned(SiteId),
    Done(SiteId),
    /// Permanently given up after exhausting retry attempts.
    Abandoned,
}

/// A batch of jobs granted to one site.
#[derive(Debug, Clone, PartialEq)]
pub struct JobBatch {
    /// Chunks to process, in physical (sequential-read) order.
    pub jobs: Vec<ChunkMeta>,
    /// True when the jobs' home site differs from the processing site.
    pub stolen: bool,
    /// True when the head guarantees no further work will ever appear:
    /// every job is finished or permanently abandoned. An empty,
    /// *non*-terminal batch means "nothing right now, but in-flight jobs
    /// could still fail and be requeued — poll again".
    pub terminal: bool,
}

impl JobBatch {
    /// An empty batch with the given terminal flag.
    #[must_use]
    pub fn empty(terminal: bool) -> JobBatch {
        JobBatch { jobs: Vec::new(), stolen: false, terminal }
    }
}

impl JobBatch {
    /// True when the batch grants no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of jobs granted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }
}

/// How many jobs to grant per request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Always grant up to `n` jobs.
    Fixed(usize),
    /// Grant `pending / (divisor)` jobs, clamped to `[min, max]`. Large
    /// batches early (sequential reads, low control traffic), small batches
    /// near the end (fine-grained balancing, bounded idle tail).
    Adaptive {
        /// Pending-count divisor.
        divisor: usize,
        /// Smallest batch ever granted.
        min: usize,
        /// Largest batch ever granted.
        max: usize,
    },
}

impl BatchPolicy {
    /// Paper-like default: adaptive with a tail of single jobs.
    #[must_use]
    pub fn default_adaptive(n_sites: usize) -> BatchPolicy {
        BatchPolicy::Adaptive { divisor: 4 * n_sites.max(1), min: 1, max: 8 }
    }

    /// Number of jobs to grant given the current pending count.
    #[must_use]
    pub fn batch_size(&self, pending: usize) -> usize {
        match *self {
            BatchPolicy::Fixed(n) => n.max(1),
            BatchPolicy::Adaptive { divisor, min, max } => {
                (pending / divisor.max(1)).clamp(min.max(1), max.max(1))
            }
        }
    }
}

/// Per-site bookkeeping the pool maintains for reporting (Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteJobCounts {
    /// Jobs this site processed whose data was hosted at the site.
    pub local: u64,
    /// Jobs this site processed whose data had to be fetched remotely.
    pub stolen: u64,
}

impl SiteJobCounts {
    /// Total jobs this site processed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.local + self.stolen
    }
}

/// The head node's global job pool.
#[derive(Debug, Clone)]
pub struct JobPool {
    chunks: Vec<ChunkMeta>,
    state: Vec<JobState>,
    /// Pending chunks per file, front = lowest id (physical order).
    pending_by_file: Vec<VecDeque<ChunkId>>,
    file_site: Vec<SiteId>,
    /// Jobs from each file currently assigned (in flight). This is the
    /// "number of nodes currently processing" signal of the heuristic.
    readers: Vec<u32>,
    pending_total: usize,
    done_total: usize,
    batch_policy: BatchPolicy,
    counts: BTreeMap<SiteId, SiteJobCounts>,
    /// Estimated end-to-end cost (seconds) for each site to process one
    /// *stolen* job: remote retrieval plus processing. Zero disables the
    /// rate-aware steal condition for that site.
    steal_cost: BTreeMap<SiteId, f64>,
    /// Completions per site, for online processing-rate estimation.
    rate_completed: BTreeMap<SiteId, u64>,
    /// Latest timestamp observed from callers (seconds since run start).
    now: f64,
    /// Per-job processing attempts (for fault-tolerant requeueing).
    attempts: Vec<u8>,
    /// Attempts after which a failing job is abandoned.
    max_attempts: u8,
    /// Jobs permanently abandoned.
    abandoned_total: usize,
    /// Failures reported per site.
    failures: BTreeMap<SiteId, u64>,
    /// Jobs currently assigned to each processing site.
    assigned_to: BTreeMap<SiteId, usize>,
}

impl JobPool {
    /// Build the pool from a data index ("the head node ... reads the index
    /// file in order to generate the job pool").
    #[must_use]
    pub fn from_index(index: &DataIndex, batch_policy: BatchPolicy) -> JobPool {
        let n_files = index.files.len();
        let mut pending_by_file = vec![VecDeque::new(); n_files];
        for c in &index.chunks {
            pending_by_file[c.file.0 as usize].push_back(c.id);
        }
        JobPool {
            chunks: index.chunks.clone(),
            state: vec![JobState::Pending; index.chunks.len()],
            pending_by_file,
            file_site: index.files.iter().map(|f| f.site).collect(),
            readers: vec![0; n_files],
            pending_total: index.chunks.len(),
            done_total: 0,
            batch_policy,
            counts: BTreeMap::new(),
            steal_cost: BTreeMap::new(),
            rate_completed: BTreeMap::new(),
            now: 0.0,
            attempts: vec![0; index.chunks.len()],
            max_attempts: 3,
            abandoned_total: 0,
            failures: BTreeMap::new(),
            assigned_to: BTreeMap::new(),
        }
    }

    /// Set how many processing attempts a job gets before being abandoned
    /// (default 3; minimum 1).
    pub fn set_max_attempts(&mut self, n: u8) {
        self.max_attempts = n.max(1);
    }

    /// Enable rate-aware stealing for `site` (paper abstract: "Our
    /// middleware considers the rate of processing together with
    /// distribution of data to decide on the optimal processing of data").
    ///
    /// `cost` is the estimated end-to-end seconds for `site` to fetch and
    /// process one stolen job. A steal is granted only while the data-local
    /// site's backlog would take longer than `cost` to drain at its observed
    /// processing rate — otherwise stealing a tail job over the slow
    /// inter-site path finishes *later* than simply letting the owner drain.
    pub fn set_steal_cost(&mut self, site: SiteId, cost: f64) {
        self.steal_cost.insert(site, cost);
    }

    /// Total number of jobs.
    #[must_use]
    pub fn n_jobs(&self) -> usize {
        self.chunks.len()
    }

    /// Jobs not yet assigned.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending_total
    }

    /// Jobs fully processed.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.done_total
    }

    /// True when every job has been processed or permanently abandoned.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.done_total + self.abandoned_total == self.chunks.len()
    }

    /// Jobs currently assigned but neither completed nor failed.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.chunks.len() - self.pending_total - self.done_total - self.abandoned_total
    }

    /// Jobs permanently abandoned after exhausting their attempts.
    #[must_use]
    pub fn abandoned(&self) -> usize {
        self.abandoned_total
    }

    /// Failure reports per site.
    #[must_use]
    pub fn failure_counts(&self) -> &BTreeMap<SiteId, u64> {
        &self.failures
    }

    /// The empty grant, terminal only when no work can ever appear again.
    fn empty_grant(&self) -> JobBatch {
        JobBatch::empty(self.all_done())
    }

    /// True when the pool still has unassigned jobs hosted at `site`.
    #[must_use]
    pub fn has_local_pending(&self, site: SiteId) -> bool {
        self.pending_by_file
            .iter()
            .zip(&self.file_site)
            .any(|(q, &s)| s == site && !q.is_empty())
    }

    /// Per-site processed/stolen counts (Table I data).
    #[must_use]
    pub fn site_counts(&self) -> &BTreeMap<SiteId, SiteJobCounts> {
        &self.counts
    }

    /// Handle a master's job request: grant a batch for `site`, or an empty
    /// batch when no pending jobs remain anywhere (or stealing would not
    /// pay off).
    pub fn request(&mut self, site: SiteId) -> JobBatch {
        let want = self.batch_policy.batch_size(self.pending_total);
        // Phase 1: local jobs, consecutive within one file.
        if let Some(file) = self.pick_local_file(site) {
            return self.grant_from_file(file, want, false);
        }
        // Phase 2: steal from the remote file with the fewest readers.
        // Stolen jobs ride the slow inter-site path, so grants are kept
        // fine-grained: a site that over-commits to remote retrieval would
        // starve the (faster) data-local site of its own pending jobs.
        if let Some(file) = self.pick_steal_file(site) {
            if self.steal_pays_off(site, self.file_site[file.0 as usize]) {
                return self.grant_from_file(file, want.min(STEAL_BATCH_MAX), true);
            }
        }
        self.empty_grant()
    }

    /// Report that `site` failed to process `job` (retrieval error, worker
    /// crash). The job returns to the pending pool for reassignment — to any
    /// site — unless it has exhausted its attempts, in which case it is
    /// permanently abandoned. Returns `true` when the job was requeued.
    ///
    /// # Panics
    /// Panics if the job was not assigned to `site`.
    pub fn fail(&mut self, job: ChunkId, site: SiteId) -> bool {
        let i = job.0 as usize;
        assert_eq!(
            self.state[i],
            JobState::Assigned(site),
            "{job} failed by {site} but not assigned to it"
        );
        let file = self.chunks[i].file.0 as usize;
        self.readers[file] -= 1;
        *self.assigned_to.entry(site).or_insert(1) -= 1;
        *self.failures.entry(site).or_insert(0) += 1;
        self.attempts[i] += 1;
        if self.attempts[i] >= self.max_attempts {
            self.state[i] = JobState::Abandoned;
            self.abandoned_total += 1;
            return false;
        }
        self.state[i] = JobState::Pending;
        self.pending_total += 1;
        // Re-insert in physical order so consecutive-batch grants stay
        // consecutive.
        let q = &mut self.pending_by_file[file];
        let pos = q.partition_point(|&c| c < job);
        q.insert(pos, job);
        true
    }

    /// The rate-aware steal condition: worth stealing only while the owner
    /// site's pending backlog outlasts the thief's end-to-end steal cost.
    fn steal_pays_off(&self, thief: SiteId, owner: SiteId) -> bool {
        let cost = self.steal_cost.get(&thief).copied().unwrap_or(0.0);
        if cost <= 0.0 || self.now <= 0.0 {
            return true; // rate awareness disabled or no signal yet
        }
        let done = self.rate_completed.get(&owner).copied().unwrap_or(0);
        if done == 0 {
            return true; // owner rate unknown; assume stealing helps
        }
        let rate = done as f64 / self.now;
        let pending: usize = self
            .pending_by_file
            .iter()
            .zip(&self.file_site)
            .filter(|(_, &s)| s == owner)
            .map(|(q, _)| q.len())
            .sum();
        // The owner's true remaining work also includes its in-flight jobs
        // (half-done on average); ignoring them makes the estimate stop
        // stealing too early and strands the thief idle over the tail.
        let in_flight = self.assigned_to.get(&owner).copied().unwrap_or(0);
        let backlog = pending as f64 + 0.5 * in_flight as f64;
        backlog / rate > cost
    }

    /// [`JobPool::request`] with the caller's clock, feeding the online
    /// rate estimator. Both runtimes use this form; `request_for` is the
    /// rate-blind wrapper.
    pub fn request_for_at(&mut self, site: SiteId, now: f64) -> JobBatch {
        self.now = self.now.max(now);
        self.request_for(site)
    }

    /// [`JobPool::complete`] with the caller's clock.
    pub fn complete_at(&mut self, job: ChunkId, site: SiteId, now: f64) {
        self.now = self.now.max(now);
        *self.rate_completed.entry(site).or_insert(0) += 1;
        self.complete(job, site);
    }

    /// Mark one job finished. `site` is the site that processed it.
    ///
    /// # Panics
    /// Panics if the job was not assigned to `site` — a protocol violation.
    pub fn complete(&mut self, job: ChunkId, site: SiteId) {
        let i = job.0 as usize;
        assert_eq!(
            self.state[i],
            JobState::Assigned(site),
            "{job} completed by {site} but not assigned to it"
        );
        self.state[i] = JobState::Done(site);
        self.done_total += 1;
        let file = self.chunks[i].file.0 as usize;
        self.readers[file] -= 1;
        *self.assigned_to.entry(site).or_insert(1) -= 1;
        let entry = self.counts.entry(site).or_default();
        if self.chunks[i].site == site {
            entry.local += 1;
        } else {
            entry.stolen += 1;
        }
    }

    /// Local file to serve next: the site's file with the most pending jobs,
    /// preferring files already being read by someone (keeps streams long),
    /// tie-broken by file id for determinism.
    fn pick_local_file(&self, site: SiteId) -> Option<FileId> {
        self.pending_by_file
            .iter()
            .enumerate()
            .filter(|(f, q)| self.file_site[*f] == site && !q.is_empty())
            .max_by_key(|(f, q)| (q.len(), std::cmp::Reverse(*f)))
            .map(|(f, _)| FileId(f as u32))
    }

    /// Remote file to steal from: fewest current readers, then most pending,
    /// then lowest id ("chosen from files which the minimum number of nodes
    /// are currently processing").
    fn pick_steal_file(&self, site: SiteId) -> Option<FileId> {
        self.pending_by_file
            .iter()
            .enumerate()
            .filter(|(f, q)| self.file_site[*f] != site && !q.is_empty())
            .min_by_key(|(f, q)| (self.readers[*f], std::cmp::Reverse(q.len()), *f))
            .map(|(f, _)| FileId(f as u32))
    }

    /// Grant up to `want` *consecutive* jobs from the front of `file`'s
    /// pending queue.
    fn grant_from_file(&mut self, file: FileId, want: usize, stolen: bool) -> JobBatch {
        let q = &mut self.pending_by_file[file.0 as usize];
        let mut jobs = Vec::with_capacity(want.min(q.len()));
        while jobs.len() < want {
            let Some(id) = q.front().copied() else { break };
            // Keep the run physically consecutive: stop at a gap.
            if let Some(last) = jobs.last() {
                let last: &ChunkMeta = last;
                if id != last.id.next() {
                    break;
                }
            }
            q.pop_front();
            jobs.push(self.chunks[id.0 as usize]);
        }
        JobBatch { jobs, stolen, terminal: false }
    }

    /// Record that `batch` is now owned by `site`. Split from `request` so
    /// the policy methods stay pure; `request_for` combines both.
    fn assign_to(&mut self, batch: &JobBatch, site: SiteId) {
        for j in &batch.jobs {
            let i = j.id.0 as usize;
            debug_assert_eq!(self.state[i], JobState::Pending);
            self.state[i] = JobState::Assigned(site);
            self.readers[j.file.0 as usize] += 1;
            self.pending_total -= 1;
            *self.assigned_to.entry(site).or_insert(0) += 1;
        }
    }

    /// Request a batch for `site` and record the assignment.
    pub fn request_for(&mut self, site: SiteId) -> JobBatch {
        let batch = self.request(site);
        self.assign_to(&batch, site);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutParams;

    fn index(n_files: u32, chunks_per_file: u64, split: impl Fn(FileId) -> SiteId) -> DataIndex {
        let upc = 4;
        let total = u64::from(n_files) * chunks_per_file * upc;
        DataIndex::build(
            total,
            LayoutParams { unit_size: 8, units_per_chunk: upc, n_files },
            split,
        )
        .unwrap()
    }

    fn half_split(f: FileId) -> SiteId {
        if f.0 < 2 { SiteId::LOCAL } else { SiteId::CLOUD }
    }

    #[test]
    fn grants_local_jobs_first() {
        let idx = index(4, 3, half_split);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(2));
        let b = pool.request_for(SiteId::LOCAL);
        assert!(!b.stolen);
        assert!(b.jobs.iter().all(|c| c.site == SiteId::LOCAL));
    }

    #[test]
    fn batches_are_consecutive_chunks_of_one_file() {
        let idx = index(2, 6, |_| SiteId::LOCAL);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(4));
        let b = pool.request_for(SiteId::LOCAL);
        assert_eq!(b.len(), 4);
        let file = b.jobs[0].file;
        for w in b.jobs.windows(2) {
            assert_eq!(w[0].file, file);
            assert_eq!(w[1].id, w[0].id.next());
            assert_eq!(w[1].offset, w[0].end());
        }
    }

    #[test]
    fn steals_only_after_local_exhausted() {
        let idx = index(2, 2, |f| if f.0 == 0 { SiteId::LOCAL } else { SiteId::CLOUD });
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(2));
        let b1 = pool.request_for(SiteId::LOCAL);
        assert!(!b1.stolen);
        assert_eq!(b1.len(), 2);
        let b2 = pool.request_for(SiteId::LOCAL);
        assert!(b2.stolen, "local jobs exhausted; must steal");
        assert!(b2.jobs.iter().all(|c| c.site == SiteId::CLOUD));
    }

    #[test]
    fn steal_prefers_file_with_fewest_readers() {
        // Two cloud files; the cloud site is actively reading file2.
        let idx = index(4, 2, half_split); // files 0,1 local; 2,3 cloud
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(1));
        // Cloud takes one job -> becomes a reader of one of its files.
        let cb = pool.request_for(SiteId::CLOUD);
        let busy_file = cb.jobs[0].file;
        // Drain local jobs.
        while pool.has_local_pending(SiteId::LOCAL) {
            let b = pool.request_for(SiteId::LOCAL);
            for j in &b.jobs {
                pool.complete(j.id, SiteId::LOCAL);
            }
        }
        // First steal must avoid the file the cloud is reading.
        let sb = pool.request_for(SiteId::LOCAL);
        assert!(sb.stolen);
        assert_ne!(sb.jobs[0].file, busy_file);
    }

    #[test]
    fn every_job_processed_exactly_once_two_sites() {
        let idx = index(4, 3, half_split);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(2));
        let mut turn = 0;
        let sites = [SiteId::LOCAL, SiteId::CLOUD];
        let mut seen = vec![0u32; idx.n_chunks()];
        while !pool.all_done() {
            let site = sites[turn % 2];
            turn += 1;
            let b = pool.request_for(site);
            for j in &b.jobs {
                seen[j.id.0 as usize] += 1;
                pool.complete(j.id, site);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        let counts = pool.site_counts();
        let total: u64 = counts.values().map(SiteJobCounts::total).sum();
        assert_eq!(total, idx.n_chunks() as u64);
    }

    #[test]
    fn stolen_counts_match_remote_processing() {
        // All data on the cloud; the local site processes everything.
        let idx = index(2, 4, |_| SiteId::CLOUD);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(3));
        while !pool.all_done() {
            let b = pool.request_for(SiteId::LOCAL);
            assert!(b.stolen);
            for j in &b.jobs {
                pool.complete(j.id, SiteId::LOCAL);
            }
        }
        let c = pool.site_counts()[&SiteId::LOCAL];
        assert_eq!(c.local, 0);
        assert_eq!(c.stolen, 8);
    }

    #[test]
    fn empty_batch_when_drained() {
        let idx = index(1, 1, |_| SiteId::LOCAL);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(8));
        let b = pool.request_for(SiteId::LOCAL);
        assert_eq!(b.len(), 1);
        let b2 = pool.request_for(SiteId::LOCAL);
        assert!(b2.is_empty());
        let b3 = pool.request_for(SiteId::CLOUD);
        assert!(b3.is_empty());
    }

    #[test]
    #[should_panic(expected = "not assigned")]
    fn completing_unassigned_job_panics() {
        let idx = index(1, 2, |_| SiteId::LOCAL);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(1));
        pool.complete(ChunkId(0), SiteId::LOCAL);
    }

    #[test]
    fn adaptive_batches_shrink_toward_tail() {
        let p = BatchPolicy::Adaptive { divisor: 8, min: 1, max: 8 };
        assert_eq!(p.batch_size(96), 8);
        assert_eq!(p.batch_size(32), 4);
        assert_eq!(p.batch_size(8), 1);
        assert_eq!(p.batch_size(0), 1);
    }

    #[test]
    fn fixed_policy_never_grants_zero() {
        assert_eq!(BatchPolicy::Fixed(0).batch_size(10), 1);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::index::DataIndex;
    use crate::layout::LayoutParams;

    fn pool(n_chunks: u64, max_attempts: u8) -> JobPool {
        let idx = DataIndex::build(
            n_chunks * 2,
            LayoutParams { unit_size: 1, units_per_chunk: 2, n_files: 2 },
            |_| SiteId::LOCAL,
        )
        .unwrap();
        let mut p = JobPool::from_index(&idx, BatchPolicy::Fixed(2));
        p.set_max_attempts(max_attempts);
        p
    }

    #[test]
    fn failed_job_is_requeued_and_completes_later() {
        let mut p = pool(4, 3);
        let b = p.request_for(SiteId::LOCAL);
        let victim = b.jobs[0].id;
        assert!(p.fail(victim, SiteId::LOCAL), "first failure requeues");
        assert_eq!(p.in_flight(), b.len() - 1);
        for j in &b.jobs[1..] {
            p.complete(j.id, SiteId::LOCAL);
        }
        // Drain the rest; the victim must come back.
        let mut saw_victim = false;
        while !p.all_done() {
            let b = p.request_for(SiteId::CLOUD);
            for j in &b.jobs {
                saw_victim |= j.id == victim;
                p.complete(j.id, SiteId::CLOUD);
            }
        }
        assert!(saw_victim, "requeued job must be granted again");
        assert_eq!(p.abandoned(), 0);
        assert_eq!(p.failure_counts()[&SiteId::LOCAL], 1);
    }

    #[test]
    fn requeued_job_keeps_physical_order() {
        let mut p = pool(4, 5);
        let b = p.request_for(SiteId::LOCAL);
        // Fail both; they go back in id order regardless of failure order.
        assert!(p.fail(b.jobs[1].id, SiteId::LOCAL));
        assert!(p.fail(b.jobs[0].id, SiteId::LOCAL));
        let again = p.request_for(SiteId::LOCAL);
        assert!(again.jobs.windows(2).all(|w| w[1].id == w[0].id.next()));
    }

    #[test]
    fn exhausted_attempts_abandon_the_job() {
        let mut p = pool(1, 2);
        for round in 0..2 {
            let b = p.request_for(SiteId::LOCAL);
            assert_eq!(b.len(), 1, "round {round}");
            let requeued = p.fail(b.jobs[0].id, SiteId::LOCAL);
            assert_eq!(requeued, round == 0);
        }
        assert!(p.all_done(), "abandoned jobs count toward completion");
        assert_eq!(p.abandoned(), 1);
        assert!(p.request_for(SiteId::LOCAL).terminal);
    }

    #[test]
    fn empty_grant_is_nonterminal_while_jobs_in_flight() {
        let mut p = pool(1, 3);
        let b = p.request_for(SiteId::LOCAL);
        assert_eq!(b.len(), 1);
        // Nothing pending, but the job is in flight: not terminal.
        let empty = p.request_for(SiteId::CLOUD);
        assert!(empty.is_empty());
        assert!(!empty.terminal, "in-flight job could still fail and requeue");
        p.complete(b.jobs[0].id, SiteId::LOCAL);
        assert!(p.request_for(SiteId::CLOUD).terminal);
    }

    #[test]
    #[should_panic(expected = "not assigned")]
    fn failing_unassigned_job_panics() {
        let mut p = pool(2, 3);
        p.fail(ChunkId(0), SiteId::LOCAL);
    }
}
