//! The global job pool and the head node's assignment policy (paper §III-B).
//!
//! One job corresponds to one chunk. Masters request *batches* of jobs on
//! demand; the head grants:
//!
//! 1. **Local jobs first** — a group of *consecutive* jobs from a file hosted
//!    at the requesting site, "because it allows the compute units to
//!    sequentially read jobs from the files".
//! 2. **Remote jobs ("job stealing") once local jobs are exhausted** — chosen
//!    "from files which the minimum number of nodes are currently
//!    processing", minimizing file contention between clusters.
//!
//! On top of assignment the pool owns the fault-tolerance state machine:
//!
//! * every grant is a **lease** — when [`LeaseConfig`] is enabled the job
//!   carries a deadline sized from the site's observed job duration, and
//!   [`JobPool::reap_expired`] reclaims silent jobs for reassignment;
//! * a job may have up to two **concurrent assignees** (the original plus a
//!   speculative re-execution of a tail straggler); the first completion
//!   wins and [`Completion`] tells the caller which executions to cancel;
//! * duplicate, late and zombie completions are **deduplicated** so each
//!   chunk merges into the global reduction object *exactly once*;
//! * [`JobPool::evacuate`] handles whole-site death (spot revocation): it
//!   revokes the site's in-flight jobs *and* re-queues the jobs whose
//!   results died in the site's unreduced robj.
//!
//! The pool is pure single-threaded logic: the threaded runtime wraps it in a
//! mutex, the discrete-event simulator drives it directly. This guarantees
//! both runtimes execute the *same* policy.

use crate::fault::{AbandonedJob, FaultCounters, LeaseConfig};
use crate::index::DataIndex;
use crate::layout::ChunkMeta;
use crate::metrics::{Counter, Gauge, Metrics};
use crate::telemetry::{secs_to_ns, Event, EventKind, Telemetry};
use crate::types::{ChunkId, FileId, SiteId};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// Largest batch ever granted for cross-site (stolen) jobs.
pub const STEAL_BATCH_MAX: usize = 2;

/// Most concurrent executions of one job (original + one speculative copy).
pub const MAX_ASSIGNEES: usize = 2;

/// Lifecycle of one job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum JobState {
    Pending,
    /// One or more sites hold a lease on the job (see `Pool::assignees`).
    Assigned,
    Done(SiteId),
    /// Permanently given up after exhausting retry attempts.
    Abandoned,
}

/// One live lease on a job.
#[derive(Debug, Clone, Copy)]
struct Assignee {
    site: SiteId,
    /// Pool-clock time of the grant (for straggler ordering).
    assigned_at: f64,
    /// Pool-clock time after which the lease may be reaped.
    deadline: f64,
    /// True for a speculative copy of an in-flight straggler (win/loss
    /// accounting needs to know which execution was the gamble).
    speculative: bool,
    /// True for a proactive replica granted under coded redundancy
    /// (`r > 1`); the first completed copy fences its siblings.
    replica: bool,
    /// Causal span id allocated at grant time; every telemetry event of
    /// this execution — on the head *and*, via [`JobBatch::spans`], on the
    /// processing site — carries it.
    span: u64,
}

/// What happened to a completion report — the dedup verdict.
///
/// The runtimes acknowledge completions with this, and only `Merged`
/// completions may fold a worker's scratch result into its site robj; that
/// is what makes "each chunk reduced exactly once" hold under retries,
/// speculation and evacuation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Completion {
    /// First completion of the chunk: the result must be merged. Any other
    /// site listed in `preempted` held a now-revoked lease on the same job
    /// and should abort its redundant execution.
    Merged {
        /// Sites whose concurrent executions of this job just lost the race.
        preempted: Vec<SiteId>,
    },
    /// The chunk was already merged (or the reporter was already declared
    /// dead); the result must be discarded.
    Duplicate,
}

impl Completion {
    /// True when the result was accepted for merging.
    #[must_use]
    pub fn is_merged(&self) -> bool {
        matches!(self, Completion::Merged { .. })
    }
}

/// A batch of jobs granted to one site.
#[derive(Debug, Clone, PartialEq)]
pub struct JobBatch {
    /// Chunks to process, in physical (sequential-read) order.
    pub jobs: Vec<ChunkMeta>,
    /// Causal span id per granted job, parallel to `jobs` (0 = untracked).
    /// Allocated by the pool at grant time and propagated — across the TCP
    /// wire included — so the slave-side events of an execution join the
    /// head-side grant/completion events in one DAG.
    pub spans: Vec<u64>,
    /// True when the jobs' home site differs from the processing site.
    pub stolen: bool,
    /// True when the head guarantees no further work will ever appear:
    /// every job is finished or permanently abandoned. An empty,
    /// *non*-terminal batch means "nothing right now, but in-flight jobs
    /// could still fail and be requeued — poll again".
    pub terminal: bool,
}

impl JobBatch {
    /// An empty batch with the given terminal flag.
    #[must_use]
    pub fn empty(terminal: bool) -> JobBatch {
        JobBatch { jobs: Vec::new(), spans: Vec::new(), stolen: false, terminal }
    }

    /// The span granted for `jobs[i]`, 0 when the batch predates tracking
    /// (hand-built in tests, or decoded from an older peer).
    #[must_use]
    pub fn span_of(&self, i: usize) -> u64 {
        self.spans.get(i).copied().unwrap_or(0)
    }
}

impl JobBatch {
    /// True when the batch grants no jobs.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Number of jobs granted.
    #[must_use]
    pub fn len(&self) -> usize {
        self.jobs.len()
    }
}

/// How many jobs to grant per request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum BatchPolicy {
    /// Always grant up to `n` jobs.
    Fixed(usize),
    /// Grant `pending / (divisor)` jobs, clamped to `[min, max]`. Large
    /// batches early (sequential reads, low control traffic), small batches
    /// near the end (fine-grained balancing, bounded idle tail).
    Adaptive {
        /// Pending-count divisor.
        divisor: usize,
        /// Smallest batch ever granted.
        min: usize,
        /// Largest batch ever granted.
        max: usize,
    },
}

impl BatchPolicy {
    /// Paper-like default: adaptive with a tail of single jobs.
    #[must_use]
    pub fn default_adaptive(n_sites: usize) -> BatchPolicy {
        BatchPolicy::Adaptive { divisor: 4 * n_sites.max(1), min: 1, max: 8 }
    }

    /// Number of jobs to grant given the current pending count.
    #[must_use]
    pub fn batch_size(&self, pending: usize) -> usize {
        match *self {
            BatchPolicy::Fixed(n) => n.max(1),
            BatchPolicy::Adaptive { divisor, min, max } => {
                (pending / divisor.max(1)).clamp(min.max(1), max.max(1))
            }
        }
    }
}

/// Per-site bookkeeping the pool maintains for reporting (Table I).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SiteJobCounts {
    /// Jobs this site processed whose data was hosted at the site.
    pub local: u64,
    /// Jobs this site processed whose data had to be fetched remotely.
    pub stolen: u64,
}

impl SiteJobCounts {
    /// Total jobs this site processed.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.local + self.stolen
    }
}

/// Live-metrics handles for the pool's accounting paths, cached per site so
/// an enabled increment is one `BTreeMap` lookup plus a relaxed atomic add.
/// With metrics disabled every recording method is a single branch.
#[derive(Debug, Clone, Default)]
struct PoolMetrics {
    handle: Metrics,
    grants: BTreeMap<SiteId, Counter>,
    steals: BTreeMap<SiteId, Counter>,
    speculations: BTreeMap<SiteId, Counter>,
    merged_local: BTreeMap<SiteId, Counter>,
    merged_stolen: BTreeMap<SiteId, Counter>,
    lost_local: BTreeMap<SiteId, Counter>,
    lost_stolen: BTreeMap<SiteId, Counter>,
    duplicates: BTreeMap<SiteId, Counter>,
    reaps: BTreeMap<SiteId, Counter>,
    failures: BTreeMap<SiteId, Counter>,
    evacuated: BTreeMap<SiteId, Counter>,
    replica_grants: BTreeMap<SiteId, Counter>,
    replica_wins: BTreeMap<SiteId, Counter>,
    replica_fences: BTreeMap<SiteId, Counter>,
    saved_refetches: BTreeMap<SiteId, Counter>,
    /// Pending jobs per data-home site — one gauge per shard, so a scrape
    /// (or `--watch`) shows shard imbalance, not just the global backlog.
    queue_depth: BTreeMap<SiteId, Gauge>,
    /// Jobs stolen *out of* a site's shard (by home site) — the per-shard
    /// steal rate; the thief side is counted in `steals`.
    stolen_from: BTreeMap<SiteId, Counter>,
    in_flight: Gauge,
}

impl PoolMetrics {
    fn new(handle: Metrics) -> PoolMetrics {
        let in_flight =
            handle.gauge("cloudburst_pool_in_flight", "Jobs currently leased to some site.", &[]);
        PoolMetrics { handle, in_flight, ..PoolMetrics::default() }
    }

    /// Get-or-create the queue-depth gauge of one shard (data-home site).
    fn depth_gauge<'a>(
        map: &'a mut BTreeMap<SiteId, Gauge>,
        handle: &Metrics,
        site: SiteId,
    ) -> &'a Gauge {
        map.entry(site).or_insert_with(|| {
            handle.gauge(
                "cloudburst_pool_queue_depth",
                "Jobs waiting in the head's pool by data-home site (shard depth).",
                &[("site", &site.to_string())],
            )
        })
    }

    /// Get-or-create the per-site series of a counter family.
    fn site<'a>(
        map: &'a mut BTreeMap<SiteId, Counter>,
        handle: &Metrics,
        name: &str,
        help: &str,
        site: SiteId,
    ) -> &'a Counter {
        map.entry(site)
            .or_insert_with(|| handle.counter(name, help, &[("site", &site.to_string())]))
    }

    fn granted(&mut self, site: SiteId, home: SiteId, stolen: bool, speculative: bool) {
        if !self.handle.is_enabled() {
            return;
        }
        Self::site(
            &mut self.grants,
            &self.handle,
            "cloudburst_pool_grants_total",
            "Job leases granted by the head (speculative copies included).",
            site,
        )
        .inc();
        if stolen {
            Self::site(
                &mut self.steals,
                &self.handle,
                "cloudburst_pool_steals_total",
                "Cross-site (stolen) job grants.",
                site,
            )
            .inc();
            Self::site(
                &mut self.stolen_from,
                &self.handle,
                "cloudburst_pool_shard_stolen_from_total",
                "Jobs stolen out of a site's shard by other sites.",
                home,
            )
            .inc();
        }
        if speculative {
            Self::site(
                &mut self.speculations,
                &self.handle,
                "cloudburst_pool_speculations_total",
                "Speculative straggler re-executions granted.",
                site,
            )
            .inc();
        }
    }

    fn merged(&mut self, site: SiteId, stolen: bool) {
        if !self.handle.is_enabled() {
            return;
        }
        let map = if stolen { &mut self.merged_stolen } else { &mut self.merged_local };
        let kind = if stolen { "stolen" } else { "local" };
        map.entry(site)
            .or_insert_with(|| {
                self.handle.counter(
                    "cloudburst_pool_jobs_merged_total",
                    "Completions accepted for merging, by processing site and job kind.",
                    &[("site", &site.to_string()), ("kind", kind)],
                )
            })
            .inc();
    }

    fn lost(&mut self, site: SiteId, stolen: bool) {
        if !self.handle.is_enabled() {
            return;
        }
        let map = if stolen { &mut self.lost_stolen } else { &mut self.lost_local };
        let kind = if stolen { "stolen" } else { "local" };
        map.entry(site)
            .or_insert_with(|| {
                self.handle.counter(
                    "cloudburst_pool_results_lost_total",
                    "Merged results that died with an evacuated site's robj.",
                    &[("site", &site.to_string()), ("kind", kind)],
                )
            })
            .inc();
    }

    fn duplicate(&mut self, site: SiteId) {
        if !self.handle.is_enabled() {
            return;
        }
        Self::site(
            &mut self.duplicates,
            &self.handle,
            "cloudburst_pool_duplicate_completions_total",
            "Completion reports discarded by the dedup verdict.",
            site,
        )
        .inc();
    }

    fn reaped(&mut self, site: SiteId) {
        if !self.handle.is_enabled() {
            return;
        }
        Self::site(
            &mut self.reaps,
            &self.handle,
            "cloudburst_pool_lease_reaps_total",
            "Silent leases reclaimed after their deadline.",
            site,
        )
        .inc();
    }

    fn failed(&mut self, site: SiteId) {
        if !self.handle.is_enabled() {
            return;
        }
        Self::site(
            &mut self.failures,
            &self.handle,
            "cloudburst_pool_failures_total",
            "Processing failures reported per site.",
            site,
        )
        .inc();
    }

    fn evacuated_job(&mut self, site: SiteId) {
        if !self.handle.is_enabled() {
            return;
        }
        Self::site(
            &mut self.evacuated,
            &self.handle,
            "cloudburst_pool_evacuated_jobs_total",
            "In-flight leases revoked by site evacuation.",
            site,
        )
        .inc();
    }

    fn replica_grant(&mut self, site: SiteId) {
        if !self.handle.is_enabled() {
            return;
        }
        Self::site(
            &mut self.replica_grants,
            &self.handle,
            "cloudburst_pool_replica_grants_total",
            "Proactive replica executions granted under coded redundancy.",
            site,
        )
        .inc();
    }

    fn replica_win(&mut self, site: SiteId) {
        if !self.handle.is_enabled() {
            return;
        }
        Self::site(
            &mut self.replica_wins,
            &self.handle,
            "cloudburst_pool_replica_wins_total",
            "Replica executions that completed first and were merged.",
            site,
        )
        .inc();
    }

    fn replica_fence(&mut self, site: SiteId) {
        if !self.handle.is_enabled() {
            return;
        }
        Self::site(
            &mut self.replica_fences,
            &self.handle,
            "cloudburst_pool_replica_fences_total",
            "Sibling executions fenced because a replica completed first.",
            site,
        )
        .inc();
    }

    fn saved_refetch(&mut self, site: SiteId) {
        if !self.handle.is_enabled() {
            return;
        }
        Self::site(
            &mut self.saved_refetches,
            &self.handle,
            "cloudburst_pool_saved_refetch_total",
            "Evacuation re-executions served from a local replica (no WAN re-fetch).",
            site,
        )
        .inc();
    }
}

/// One site's slice of a [`PoolIntrospection`] snapshot.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SitePoolIntrospection {
    /// Pending jobs whose data is homed at this site (its shard's backlog).
    pub queued: usize,
    /// In-flight leases this site is currently processing.
    pub leases: usize,
    /// Completions merged from this site so far (local + stolen).
    pub completed: u64,
    /// Processing failures this site has reported.
    pub failures: u64,
}

/// A point-in-time snapshot of the pool's grant state — the typed object
/// behind the `/debug/pool` endpoint and the black-box dump.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PoolIntrospection {
    /// Jobs not yet granted anywhere.
    pub pending: usize,
    /// Jobs granted but neither completed nor failed.
    pub in_flight: usize,
    /// Jobs fully processed.
    pub completed: usize,
    /// Jobs permanently abandoned.
    pub abandoned: usize,
    /// Every job is processed or abandoned.
    pub all_done: bool,
    /// Sites declared dead and evacuated.
    pub dead_sites: Vec<SiteId>,
    /// Per-site backlog/lease/completion slices.
    pub per_site: BTreeMap<SiteId, SitePoolIntrospection>,
}

impl PoolIntrospection {
    /// Serialize as the `/debug/pool` JSON object.
    #[must_use]
    pub fn to_json(&self) -> crate::json::Json {
        use crate::json::Json;
        let sites = self
            .per_site
            .iter()
            .map(|(site, s)| {
                Json::obj()
                    .field("site", Json::Str(site.to_string()))
                    .field("queued", Json::U64(s.queued as u64))
                    .field("leases", Json::U64(s.leases as u64))
                    .field("completed", Json::U64(s.completed))
                    .field("failures", Json::U64(s.failures))
            })
            .collect();
        Json::obj()
            .field("pending", Json::U64(self.pending as u64))
            .field("in_flight", Json::U64(self.in_flight as u64))
            .field("completed", Json::U64(self.completed as u64))
            .field("abandoned", Json::U64(self.abandoned as u64))
            .field("all_done", Json::Bool(self.all_done))
            .field(
                "dead_sites",
                Json::Arr(self.dead_sites.iter().map(|s| Json::Str(s.to_string())).collect()),
            )
            .field("sites", Json::Arr(sites))
    }
}

/// The head node's global job pool.
#[derive(Debug, Clone)]
pub struct JobPool {
    chunks: Vec<ChunkMeta>,
    state: Vec<JobState>,
    /// Live leases per job (at most [`MAX_ASSIGNEES`]).
    assignees: Vec<Vec<Assignee>>,
    /// Sites whose lease on the job was revoked (failed, reaped or
    /// evacuated) — their eventual reports are stale, not protocol errors.
    past: Vec<Vec<SiteId>>,
    /// Pending chunks per file, front = lowest id (physical order).
    pending_by_file: Vec<VecDeque<ChunkId>>,
    file_site: Vec<SiteId>,
    /// Jobs from each file currently assigned (in flight). This is the
    /// "number of nodes currently processing" signal of the heuristic.
    readers: Vec<u32>,
    pending_total: usize,
    done_total: usize,
    batch_policy: BatchPolicy,
    counts: BTreeMap<SiteId, SiteJobCounts>,
    /// Estimated end-to-end cost (seconds) for each site to process one
    /// *stolen* job: remote retrieval plus processing. Zero disables the
    /// rate-aware steal condition for that site.
    steal_cost: BTreeMap<SiteId, f64>,
    /// Completions per site, for online processing-rate estimation.
    rate_completed: BTreeMap<SiteId, u64>,
    /// Latest timestamp observed from callers (seconds since run start).
    now: f64,
    /// Per-job processing attempts (for fault-tolerant requeueing).
    attempts: Vec<u8>,
    /// Attempts after which a failing job is abandoned.
    max_attempts: u8,
    /// Jobs permanently abandoned.
    abandoned_total: usize,
    /// Failures reported per site.
    failures: BTreeMap<SiteId, u64>,
    /// Jobs currently assigned to each processing site.
    assigned_to: BTreeMap<SiteId, usize>,
    /// Lease sizing; `None` disables deadlines (infinite leases).
    lease: Option<LeaseConfig>,
    /// Whether tail stragglers may be speculatively re-executed.
    speculate: bool,
    /// Coded-redundancy replication factor; 1 (the default) disables
    /// proactive replica grants and is bit-exact with the classic pool.
    redundancy: u32,
    /// Exponentially-weighted mean job duration per site (lease sizing).
    ewma_dur: BTreeMap<SiteId, f64>,
    /// Sites declared dead and evacuated.
    dead_sites: BTreeSet<SiteId>,
    /// Next causal span id to allocate (1-based; 0 means "no span").
    next_span: u64,
    /// Fault-path accounting for the run report.
    faults: FaultCounters,
    /// Telemetry sink: every grant, completion verdict, reap, evacuation and
    /// abandonment is emitted here, stamped with the pool clock. Disabled by
    /// default (a single branch per would-be event).
    sink: Telemetry,
    /// Live metrics: grant/steal/completion counters and queue-depth gauges,
    /// incremented at the same points that feed the run-report accumulators
    /// so a scrape and `derive_report` agree exactly. Off by default.
    metrics: PoolMetrics,
    /// When present, every job returned to the pending pool (failure
    /// requeue, lease reap, evacuation) is also appended here, so the
    /// sharded wrapper ([`crate::shard::ShardedPool`]) can push it back onto
    /// the owning site's lock-free shard queue. `None` (the default) is the
    /// classic unsharded pool, byte-for-byte.
    shard_log: Option<Vec<ChunkId>>,
}

impl JobPool {
    /// Build the pool from a data index ("the head node ... reads the index
    /// file in order to generate the job pool").
    #[must_use]
    pub fn from_index(index: &DataIndex, batch_policy: BatchPolicy) -> JobPool {
        let n_files = index.files.len();
        let mut pending_by_file = vec![VecDeque::new(); n_files];
        for c in &index.chunks {
            pending_by_file[c.file.0 as usize].push_back(c.id);
        }
        let n = index.chunks.len();
        JobPool {
            chunks: index.chunks.clone(),
            state: vec![JobState::Pending; n],
            assignees: vec![Vec::new(); n],
            past: vec![Vec::new(); n],
            pending_by_file,
            file_site: index.files.iter().map(|f| f.site).collect(),
            readers: vec![0; n_files],
            pending_total: n,
            done_total: 0,
            batch_policy,
            counts: BTreeMap::new(),
            steal_cost: BTreeMap::new(),
            rate_completed: BTreeMap::new(),
            now: 0.0,
            attempts: vec![0; n],
            max_attempts: 3,
            abandoned_total: 0,
            failures: BTreeMap::new(),
            assigned_to: BTreeMap::new(),
            lease: None,
            speculate: false,
            redundancy: 1,
            ewma_dur: BTreeMap::new(),
            dead_sites: BTreeSet::new(),
            next_span: 1,
            faults: FaultCounters::default(),
            sink: Telemetry::off(),
            metrics: PoolMetrics::default(),
            shard_log: None,
        }
    }

    /// Attach a telemetry sink: pool-side events (grants, steals,
    /// speculative launches, completion verdicts, reaps, evacuations,
    /// abandonments) are emitted to it, timestamped with the pool clock.
    /// Because all three runtimes — channel, TCP, and the discrete-event
    /// simulator — drive this same pool, one sink covers them all.
    pub fn set_sink(&mut self, sink: Telemetry) {
        self.sink = sink;
    }

    /// Attach a live-metrics handle: grants, steals, speculative launches,
    /// completion verdicts, reaps, failures and evacuations increment
    /// per-site counters, and queue-depth / in-flight gauges track the
    /// pool's backlog. Increments happen at the same code points that feed
    /// the run-report accumulators, so scrape totals and the end-of-run
    /// report agree exactly.
    pub fn set_metrics(&mut self, metrics: Metrics) {
        self.metrics = PoolMetrics::new(metrics);
        if self.metrics.handle.is_enabled() {
            // Pre-create one depth gauge per data-home site so every shard
            // shows up in a scrape from the first sample on — a site whose
            // backlog is zero is a signal, not a missing series.
            let sites: BTreeSet<SiteId> = self.file_site.iter().copied().collect();
            for site in sites {
                let map = &mut self.metrics.queue_depth;
                let _ = PoolMetrics::depth_gauge(map, &self.metrics.handle, site);
            }
        }
        self.sync_depth();
    }

    /// Refresh the backlog gauges: one queue-depth gauge per shard
    /// (data-home site) plus the global in-flight count (no-op while
    /// metrics are off).
    fn sync_depth(&self) {
        if !self.metrics.handle.is_enabled() {
            return;
        }
        let mut depth: BTreeMap<SiteId, i64> = BTreeMap::new();
        for (q, &site) in self.pending_by_file.iter().zip(&self.file_site) {
            *depth.entry(site).or_insert(0) += q.len() as i64;
        }
        for (site, gauge) in &self.metrics.queue_depth {
            gauge.set(depth.get(site).copied().unwrap_or(0));
        }
        self.metrics.in_flight.set(self.in_flight() as i64);
    }

    /// The pool clock as an event timestamp.
    fn now_ns(&self) -> u64 {
        secs_to_ns(self.now)
    }

    /// Set how many processing attempts a job gets before being abandoned
    /// (default 3; minimum 1).
    pub fn set_max_attempts(&mut self, n: u8) {
        self.max_attempts = n.max(1);
    }

    /// Enable job leases: grants carry deadlines sized by `config` and
    /// [`JobPool::reap_expired`] reclaims expired ones.
    pub fn set_lease(&mut self, config: LeaseConfig) {
        self.lease = Some(config);
    }

    /// Enable or disable speculative re-execution of tail stragglers.
    pub fn set_speculation(&mut self, on: bool) {
        self.speculate = on;
    }

    /// Set the coded-redundancy replication factor. With `r > 1` an idle
    /// site may be granted a proactive *replica* of an in-flight job it
    /// holds data for; the first completed copy is merged and fences its
    /// siblings through the exactly-once dedup path. `r <= 1` (the
    /// default) leaves the pool bit-exact with the classic behavior.
    pub fn set_redundancy(&mut self, r: u32) {
        self.redundancy = r.max(1);
    }

    /// Enable rate-aware stealing for `site` (paper abstract: "Our
    /// middleware considers the rate of processing together with
    /// distribution of data to decide on the optimal processing of data").
    ///
    /// `cost` is the estimated end-to-end seconds for `site` to fetch and
    /// process one stolen job. A steal is granted only while the data-local
    /// site's backlog would take longer than `cost` to drain at its observed
    /// processing rate — otherwise stealing a tail job over the slow
    /// inter-site path finishes *later* than simply letting the owner drain.
    pub fn set_steal_cost(&mut self, site: SiteId, cost: f64) {
        self.steal_cost.insert(site, cost);
    }

    /// Total number of jobs.
    #[must_use]
    pub fn n_jobs(&self) -> usize {
        self.chunks.len()
    }

    /// Jobs not yet assigned.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending_total
    }

    /// Jobs fully processed.
    #[must_use]
    pub fn completed(&self) -> usize {
        self.done_total
    }

    /// True when every job has been processed or permanently abandoned.
    #[must_use]
    pub fn all_done(&self) -> bool {
        self.done_total + self.abandoned_total == self.chunks.len()
    }

    /// Jobs currently assigned but neither completed nor failed.
    #[must_use]
    pub fn in_flight(&self) -> usize {
        self.chunks.len() - self.pending_total - self.done_total - self.abandoned_total
    }

    /// Jobs permanently abandoned after exhausting their attempts.
    #[must_use]
    pub fn abandoned(&self) -> usize {
        self.abandoned_total
    }

    /// The abandoned jobs with the site that last failed each.
    #[must_use]
    pub fn abandoned_jobs(&self) -> &[AbandonedJob] {
        &self.faults.abandoned_jobs
    }

    /// Failure reports per site.
    #[must_use]
    pub fn failure_counts(&self) -> &BTreeMap<SiteId, u64> {
        &self.failures
    }

    /// Fault-path accounting so far.
    #[must_use]
    pub fn faults(&self) -> &FaultCounters {
        &self.faults
    }

    /// Sites that have been declared dead and evacuated.
    #[must_use]
    pub fn dead_sites(&self) -> Vec<SiteId> {
        self.dead_sites.iter().copied().collect()
    }

    /// Whether `site` has been evacuated.
    #[must_use]
    pub fn is_dead(&self, site: SiteId) -> bool {
        self.dead_sites.contains(&site)
    }

    /// Sites currently holding a lease on `job` (test/diagnostic aid).
    #[must_use]
    pub fn assignees_of(&self, job: ChunkId) -> Vec<SiteId> {
        self.assignees[job.0 as usize].iter().map(|a| a.site).collect()
    }

    /// The empty grant, terminal only when no work can ever appear again.
    fn empty_grant(&self) -> JobBatch {
        JobBatch::empty(self.all_done())
    }

    /// True when the pool still has unassigned jobs hosted at `site`.
    #[must_use]
    pub fn has_local_pending(&self, site: SiteId) -> bool {
        self.pending_by_file.iter().zip(&self.file_site).any(|(q, &s)| s == site && !q.is_empty())
    }

    /// Per-site processed/stolen counts (Table I data).
    #[must_use]
    pub fn site_counts(&self) -> &BTreeMap<SiteId, SiteJobCounts> {
        &self.counts
    }

    /// A point-in-time snapshot of the pool's grant state, for the
    /// `/debug/pool` endpoint and the black-box dump. Read-only and cheap:
    /// one pass over the per-file queues plus a few map copies.
    #[must_use]
    pub fn introspect(&self) -> PoolIntrospection {
        let mut per_site: BTreeMap<SiteId, SitePoolIntrospection> = BTreeMap::new();
        for (q, &site) in self.pending_by_file.iter().zip(&self.file_site) {
            per_site.entry(site).or_default().queued += q.len();
        }
        for (&site, &leases) in &self.assigned_to {
            per_site.entry(site).or_default().leases = leases;
        }
        for (&site, counts) in &self.counts {
            per_site.entry(site).or_default().completed = counts.total();
        }
        for (&site, &failures) in &self.failures {
            per_site.entry(site).or_default().failures = failures;
        }
        PoolIntrospection {
            pending: self.pending_total,
            in_flight: self.in_flight(),
            completed: self.done_total,
            abandoned: self.abandoned_total,
            all_done: self.all_done(),
            dead_sites: self.dead_sites(),
            per_site,
        }
    }

    /// Handle a master's job request: grant a batch for `site`, or an empty
    /// batch when no pending jobs remain anywhere (or stealing would not
    /// pay off).
    pub fn request(&mut self, site: SiteId) -> JobBatch {
        if self.dead_sites.contains(&site) {
            return self.empty_grant();
        }
        let want = self.batch_policy.batch_size(self.pending_total);
        // Phase 1: local jobs, consecutive within one file.
        if let Some(file) = self.pick_local_file(site) {
            return self.grant_from_file(file, want, false);
        }
        // Phase 2: steal from the remote file with the fewest readers.
        // Stolen jobs ride the slow inter-site path, so grants are kept
        // fine-grained: a site that over-commits to remote retrieval would
        // starve the (faster) data-local site of its own pending jobs.
        if let Some(file) = self.pick_steal_file(site) {
            if self.steal_pays_off(site, self.file_site[file.0 as usize]) {
                return self.grant_from_file(file, want.min(STEAL_BATCH_MAX), true);
            }
        }
        self.empty_grant()
    }

    /// Whether `site` ever held (or still holds) a lease on job `i`, or
    /// finished it — i.e. a report from `site` is stale rather than a
    /// protocol violation.
    fn knows_site(&self, i: usize, site: SiteId) -> bool {
        self.assignees[i].iter().any(|a| a.site == site)
            || self.past[i].contains(&site)
            || self.state[i] == JobState::Done(site)
    }

    /// Drop `site`'s live lease on job `i`, fixing the reader and in-flight
    /// accounting. Returns the released lease, `None` when `site` held no
    /// lease.
    fn release_assignee(&mut self, i: usize, site: SiteId) -> Option<Assignee> {
        let pos = self.assignees[i].iter().position(|a| a.site == site)?;
        let released = self.assignees[i].remove(pos);
        self.readers[self.chunks[i].file.0 as usize] -= 1;
        *self.assigned_to.entry(site).or_insert(1) -= 1;
        Some(released)
    }

    /// Allocate a fresh causal span id for one job execution.
    fn alloc_span(&mut self) -> u64 {
        let span = self.next_span;
        self.next_span += 1;
        span
    }

    /// Account (and emit) a speculative execution that was released without
    /// its result merging: preempted, reaped, evacuated, failed, abandoned.
    fn speculation_lost(&mut self, i: usize, site: SiteId, span: u64) {
        self.faults.speculative_losses += 1;
        self.sink.emit(
            Event::at(self.now_ns(), EventKind::SpeculationResolved { won: false })
                .site(site)
                .chunk(self.chunks[i].id)
                .span_id(span),
        );
    }

    /// Under coded redundancy every surviving site holds a local copy of
    /// the evacuated site's data, so an evacuation-forced re-execution is
    /// served without a WAN re-fetch — count the save.
    fn refetch_saved(&mut self, site: SiteId) {
        if self.redundancy > 1 {
            self.faults.saved_refetches += 1;
            self.metrics.saved_refetch(site);
        }
    }

    /// Put job `i` back on its file's pending queue, in physical order so
    /// consecutive-batch grants stay consecutive.
    fn requeue(&mut self, i: usize) {
        self.state[i] = JobState::Pending;
        self.pending_total += 1;
        let job = self.chunks[i].id;
        let q = &mut self.pending_by_file[self.chunks[i].file.0 as usize];
        let pos = q.partition_point(|&c| c < job);
        q.insert(pos, job);
        if let Some(log) = &mut self.shard_log {
            log.push(job);
        }
        self.sync_depth();
    }

    /// Permanently give up on job `i`.
    fn abandon(&mut self, i: usize, last_site: Option<SiteId>) {
        self.state[i] = JobState::Abandoned;
        self.abandoned_total += 1;
        self.faults.abandoned_jobs.push(AbandonedJob { chunk: self.chunks[i].id, last_site });
        let mut e = Event::at(self.now_ns(), EventKind::JobAbandoned).chunk(self.chunks[i].id);
        if let Some(site) = last_site {
            e = e.site(site);
        }
        self.sink.emit(e);
        self.sync_depth();
    }

    /// Report that `site` failed to process `job` (retrieval error, worker
    /// crash). The job returns to the pending pool for reassignment — to any
    /// site — unless it has exhausted its attempts, in which case it is
    /// permanently abandoned. Stale reports (the lease was already reaped,
    /// the site evacuated, or another execution already finished the job)
    /// are ignored. Returns `true` unless the job was abandoned.
    ///
    /// # Panics
    /// Panics if `site` never held a lease on the job.
    pub fn fail(&mut self, job: ChunkId, site: SiteId) -> bool {
        let i = job.0 as usize;
        if let Some(released) = self.release_assignee(i, site) {
            *self.failures.entry(site).or_insert(0) += 1;
            self.attempts[i] = self.attempts[i].saturating_add(1);
            self.past[i].push(site);
            self.metrics.failed(site);
            self.sink.emit(
                Event::at(self.now_ns(), EventKind::JobFailed)
                    .site(site)
                    .chunk(job)
                    .span_id(released.span),
            );
            if released.speculative {
                self.speculation_lost(i, site, released.span);
            }
            if self.assignees[i].is_empty() {
                if self.attempts[i] >= self.max_attempts {
                    self.abandon(i, Some(site));
                    return false;
                }
                self.requeue(i);
            }
            return true;
        }
        assert!(self.knows_site(i, site), "{job} failed by {site} but not assigned to it");
        true // stale report from a reaped/preempted/evacuated execution
    }

    /// Reclaim every lease whose deadline has passed: the silent execution
    /// is written off (its site moves to the job's past, so a late result is
    /// still accepted) and the job is re-queued once no live lease remains.
    /// Jobs that exhaust their attempts through expiries are abandoned.
    ///
    /// Returns the reaped `(job, site)` pairs so the caller can cancel the
    /// orphaned executions. No-op while leases are disabled.
    pub fn reap_expired(&mut self, now: f64) -> Vec<(ChunkId, SiteId)> {
        self.now = self.now.max(now);
        if self.lease.is_none() {
            return Vec::new();
        }
        let mut reaped = Vec::new();
        for i in 0..self.state.len() {
            if self.state[i] != JobState::Assigned {
                continue;
            }
            let expired: Vec<(SiteId, bool, u64)> = self.assignees[i]
                .iter()
                .filter(|a| a.deadline <= now)
                .map(|a| (a.site, a.speculative, a.span))
                .collect();
            for (site, speculative, span) in expired {
                self.release_assignee(i, site);
                self.past[i].push(site);
                self.faults.lease_expiries += 1;
                self.attempts[i] = self.attempts[i].saturating_add(1);
                self.metrics.reaped(site);
                self.sink.emit(
                    Event::at(self.now_ns(), EventKind::LeaseReaped)
                        .site(site)
                        .chunk(self.chunks[i].id)
                        .span_id(span),
                );
                if speculative {
                    self.speculation_lost(i, site, span);
                }
                reaped.push((self.chunks[i].id, site));
            }
            if self.state[i] == JobState::Assigned && self.assignees[i].is_empty() {
                if self.attempts[i] >= self.max_attempts {
                    self.abandon(i, self.past[i].last().copied());
                } else {
                    self.requeue(i);
                }
            }
        }
        reaped
    }

    /// Declare `site` dead and evacuate it (idempotent). Its in-flight
    /// leases are revoked and, because a site's completed results live in
    /// its not-yet-reduced robj, its **completed** jobs are re-queued for
    /// re-execution too. The site gets only empty grants from now on, and
    /// its late reports are treated as stale.
    pub fn evacuate(&mut self, site: SiteId) {
        if !self.dead_sites.insert(site) {
            return;
        }
        self.sink.emit(Event::at(self.now_ns(), EventKind::SiteEvacuated).site(site));
        for i in 0..self.state.len() {
            let state = self.state[i];
            match state {
                JobState::Assigned => {
                    let Some(released) = self.release_assignee(i, site) else { continue };
                    self.past[i].push(site);
                    self.faults.evacuated_jobs += 1;
                    self.metrics.evacuated_job(site);
                    self.sink.emit(
                        Event::at(self.now_ns(), EventKind::JobEvacuated)
                            .site(site)
                            .chunk(self.chunks[i].id)
                            .span_id(released.span),
                    );
                    if released.speculative {
                        self.speculation_lost(i, site, released.span);
                    }
                    if self.assignees[i].is_empty() {
                        self.requeue(i);
                        self.refetch_saved(site);
                    }
                }
                JobState::Done(s) if s == site => {
                    // The merged result died with the site's robj.
                    self.done_total -= 1;
                    let stolen = self.chunks[i].site != site;
                    let entry = self.counts.entry(site).or_default();
                    if stolen {
                        entry.stolen -= 1;
                    } else {
                        entry.local -= 1;
                    }
                    if let Some(r) = self.rate_completed.get_mut(&site) {
                        *r = r.saturating_sub(1);
                    }
                    self.past[i].push(site);
                    self.faults.lost_results += 1;
                    self.metrics.lost(site, stolen);
                    self.sink.emit(
                        Event::at(self.now_ns(), EventKind::LostResult { stolen })
                            .site(site)
                            .chunk(self.chunks[i].id),
                    );
                    self.requeue(i);
                    self.refetch_saved(site);
                }
                _ => {}
            }
        }
    }

    /// Abandon every unfinished job (used when the run must end — e.g. every
    /// site able to reach the data is gone). Each job records the site that
    /// last held it, when any.
    pub fn abandon_unfinished(&mut self) {
        for i in 0..self.state.len() {
            match self.state[i] {
                JobState::Pending => {
                    let job = self.chunks[i].id;
                    let q = &mut self.pending_by_file[self.chunks[i].file.0 as usize];
                    if let Some(pos) = q.iter().position(|&c| c == job) {
                        q.remove(pos);
                    }
                    self.pending_total -= 1;
                    let last = self.past[i].last().copied();
                    self.abandon(i, last);
                }
                JobState::Assigned => {
                    let holders: Vec<(SiteId, bool, u64)> =
                        self.assignees[i].iter().map(|a| (a.site, a.speculative, a.span)).collect();
                    for &(site, speculative, span) in &holders {
                        self.release_assignee(i, site);
                        self.past[i].push(site);
                        if speculative {
                            self.speculation_lost(i, site, span);
                        }
                    }
                    self.abandon(i, holders.last().map(|&(s, _, _)| s));
                }
                _ => {}
            }
        }
    }

    /// The rate-aware steal condition: worth stealing only while the owner
    /// site's pending backlog outlasts the thief's end-to-end steal cost.
    pub(crate) fn steal_pays_off(&self, thief: SiteId, owner: SiteId) -> bool {
        if self.dead_sites.contains(&owner) {
            return true; // a dead owner will never drain its own backlog
        }
        let cost = self.steal_cost.get(&thief).copied().unwrap_or(0.0);
        if cost <= 0.0 || self.now <= 0.0 {
            return true; // rate awareness disabled or no signal yet
        }
        let done = self.rate_completed.get(&owner).copied().unwrap_or(0);
        if done == 0 {
            return true; // owner rate unknown; assume stealing helps
        }
        let rate = done as f64 / self.now;
        let pending: usize = self
            .pending_by_file
            .iter()
            .zip(&self.file_site)
            .filter(|(_, &s)| s == owner)
            .map(|(q, _)| q.len())
            .sum();
        // The owner's true remaining work also includes its in-flight jobs
        // (half-done on average); ignoring them makes the estimate stop
        // stealing too early and strands the thief idle over the tail.
        let in_flight = self.assigned_to.get(&owner).copied().unwrap_or(0);
        let backlog = pending as f64 + 0.5 * in_flight as f64;
        backlog / rate > cost
    }

    /// [`JobPool::request`] with the caller's clock, feeding the online
    /// rate estimator. Both runtimes use this form; `request_for` is the
    /// rate-blind wrapper.
    pub fn request_for_at(&mut self, site: SiteId, now: f64) -> JobBatch {
        self.now = self.now.max(now);
        self.request_for(site)
    }

    /// [`JobPool::complete`] with the caller's clock, feeding the rate and
    /// job-duration estimators on accepted completions.
    pub fn complete_at(&mut self, job: ChunkId, site: SiteId, now: f64) -> Completion {
        self.now = self.now.max(now);
        let sample = self.assignees[job.0 as usize]
            .iter()
            .find(|a| a.site == site)
            .map(|a| (now - a.assigned_at).max(0.0));
        let outcome = self.complete(job, site);
        if outcome.is_merged() {
            *self.rate_completed.entry(site).or_insert(0) += 1;
            if let Some(d) = sample {
                let e = self.ewma_dur.entry(site).or_insert(d);
                *e = 0.8 * *e + 0.2 * d;
            }
        }
        outcome
    }

    /// Mark one job finished. `site` is the site that processed it.
    ///
    /// Exactly one completion per chunk returns [`Completion::Merged`];
    /// every other report — from a preempted speculative copy, a reaped
    /// lease that was since re-executed, or an evacuated site — returns
    /// [`Completion::Duplicate`]. A *late* completion from a reaped lease
    /// whose job has not been re-completed yet is still accepted (the
    /// original worker won after all).
    ///
    /// # Panics
    /// Panics if `site` never held a lease on the job — a protocol
    /// violation.
    pub fn complete(&mut self, job: ChunkId, site: SiteId) -> Completion {
        let i = job.0 as usize;
        assert!(self.knows_site(i, site), "{job} completed by {site} but not assigned to it");
        let stolen = self.chunks[i].site != site;
        // A dead site's report is always discarded: its robj will never be
        // globally reduced, so merging there would lose the result.
        if self.dead_sites.contains(&site) {
            return self.duplicate_completion(job, site, stolen);
        }
        match self.state[i] {
            JobState::Done(_) | JobState::Abandoned => self.duplicate_completion(job, site, stolen),
            JobState::Assigned => {
                // Live lease: first finisher wins; revoke the rest. A reaped
                // lease finishing late while a re-execution still runs wins
                // the same way — accept the result, cancel the rerun.
                let winner = self.release_assignee(i, site);
                let winner_replica = winner.as_ref().is_some_and(|w| w.replica);
                let winner_span = winner.as_ref().map_or(0, |w| w.span);
                let losers: Vec<(SiteId, bool, bool, u64)> = self.assignees[i]
                    .iter()
                    .map(|a| (a.site, a.speculative, a.replica, a.span))
                    .collect();
                for &(s, speculative, replica, span) in &losers {
                    self.release_assignee(i, s);
                    self.past[i].push(s);
                    if speculative {
                        self.speculation_lost(i, s, span);
                    }
                    // A preemption inside a replica group is a fence: the
                    // first finished copy invalidates its siblings.
                    if replica || winner_replica {
                        self.faults.replica_fences += 1;
                        self.metrics.replica_fence(s);
                    }
                }
                let late = winner.is_none();
                if late {
                    self.faults.late_completions += 1;
                }
                self.finish(i, site);
                self.sink.emit(
                    Event::at(
                        self.now_ns(),
                        EventKind::JobCompleted { merged: true, late, stolen },
                    )
                    .site(site)
                    .chunk(job)
                    .span_id(winner_span),
                );
                if winner_replica {
                    self.faults.replica_wins += 1;
                    self.metrics.replica_win(site);
                }
                if winner.is_some_and(|w| w.speculative) {
                    self.faults.speculative_wins += 1;
                    self.sink.emit(
                        Event::at(self.now_ns(), EventKind::SpeculationResolved { won: true })
                            .site(site)
                            .chunk(job)
                            .span_id(winner_span),
                    );
                }
                Completion::Merged { preempted: losers.into_iter().map(|(s, _, _, _)| s).collect() }
            }
            JobState::Pending => {
                // Reaped lease finished before the job was re-granted:
                // accept the result and withdraw the pending re-execution.
                let q = &mut self.pending_by_file[self.chunks[i].file.0 as usize];
                if let Some(pos) = q.iter().position(|&c| c == job) {
                    q.remove(pos);
                }
                self.pending_total -= 1;
                self.faults.late_completions += 1;
                self.finish(i, site);
                self.sink.emit(
                    Event::at(
                        self.now_ns(),
                        EventKind::JobCompleted { merged: true, late: true, stolen },
                    )
                    .site(site)
                    .chunk(job),
                );
                Completion::Merged { preempted: Vec::new() }
            }
        }
    }

    /// Account (and emit) a completion report that must be discarded.
    fn duplicate_completion(&mut self, job: ChunkId, site: SiteId, stolen: bool) -> Completion {
        self.faults.duplicate_completions += 1;
        self.metrics.duplicate(site);
        self.sink.emit(
            Event::at(
                self.now_ns(),
                EventKind::JobCompleted { merged: false, late: false, stolen },
            )
            .site(site)
            .chunk(job),
        );
        Completion::Duplicate
    }

    /// Common completion bookkeeping once the dedup verdict is `Merged`.
    fn finish(&mut self, i: usize, site: SiteId) {
        self.state[i] = JobState::Done(site);
        self.done_total += 1;
        let local = self.chunks[i].site == site;
        let entry = self.counts.entry(site).or_default();
        if local {
            entry.local += 1;
        } else {
            entry.stolen += 1;
        }
        self.metrics.merged(site, !local);
        self.sync_depth();
    }

    /// Local file to serve next: the site's file with the most pending jobs,
    /// preferring files already being read by someone (keeps streams long),
    /// tie-broken by file id for determinism.
    fn pick_local_file(&self, site: SiteId) -> Option<FileId> {
        self.pending_by_file
            .iter()
            .enumerate()
            .filter(|(f, q)| self.file_site[*f] == site && !q.is_empty())
            .max_by_key(|(f, q)| (q.len(), std::cmp::Reverse(*f)))
            .map(|(f, _)| FileId(f as u32))
    }

    /// Remote file to steal from: fewest current readers, then most pending,
    /// then lowest id ("chosen from files which the minimum number of nodes
    /// are currently processing").
    fn pick_steal_file(&self, site: SiteId) -> Option<FileId> {
        self.pending_by_file
            .iter()
            .enumerate()
            .filter(|(f, q)| self.file_site[*f] != site && !q.is_empty())
            .min_by_key(|(f, q)| (self.readers[*f], std::cmp::Reverse(q.len()), *f))
            .map(|(f, _)| FileId(f as u32))
    }

    /// Grant up to `want` *consecutive* jobs from the front of `file`'s
    /// pending queue.
    fn grant_from_file(&mut self, file: FileId, want: usize, stolen: bool) -> JobBatch {
        let q = &mut self.pending_by_file[file.0 as usize];
        let mut jobs = Vec::with_capacity(want.min(q.len()));
        while jobs.len() < want {
            let Some(id) = q.front().copied() else { break };
            // Keep the run physically consecutive: stop at a gap.
            if let Some(last) = jobs.last() {
                let last: &ChunkMeta = last;
                if id != last.id.next() {
                    break;
                }
            }
            q.pop_front();
            jobs.push(self.chunks[id.0 as usize]);
        }
        JobBatch { jobs, spans: Vec::new(), stolen, terminal: false }
    }

    /// The lease deadline for a fresh grant to `site` at the current clock.
    fn deadline_for(&self, site: SiteId) -> f64 {
        match self.lease {
            Some(cfg) => self.now + cfg.lease_for(self.ewma_dur.get(&site).copied()),
            None => f64::INFINITY,
        }
    }

    /// Record that `batch` is now owned by `site`, allocating one causal
    /// span per job (written back into `batch.spans` so the grant carries
    /// them to the processing site). Split from `request` so the policy
    /// methods stay pure; `request_for` combines both.
    fn assign_to(&mut self, batch: &mut JobBatch, site: SiteId) {
        let deadline = self.deadline_for(site);
        batch.spans.clear();
        for k in 0..batch.jobs.len() {
            let j = batch.jobs[k];
            let i = j.id.0 as usize;
            debug_assert_eq!(self.state[i], JobState::Pending);
            self.state[i] = JobState::Assigned;
            let span = self.alloc_span();
            batch.spans.push(span);
            self.assignees[i].push(Assignee {
                site,
                assigned_at: self.now,
                deadline,
                speculative: false,
                replica: false,
                span,
            });
            self.readers[j.file.0 as usize] += 1;
            self.pending_total -= 1;
            *self.assigned_to.entry(site).or_insert(0) += 1;
            self.metrics.granted(site, j.site, batch.stolen, false);
            self.sink.emit(
                Event::at(
                    self.now_ns(),
                    EventKind::JobGranted { stolen: batch.stolen, speculative: false },
                )
                .site(site)
                .chunk(j.id)
                .span_id(span),
            );
        }
        if !batch.is_empty() {
            self.sync_depth();
        }
    }

    /// The straggler to duplicate for an otherwise-idle `site`: the oldest
    /// in-flight job with fewer than `cap` live leases, all held by
    /// *different* sites. Cross-site only — a second copy behind the same
    /// master shares the straggler's fate too often to pay off. Speculation
    /// uses `cap = MAX_ASSIGNEES`; coded replica grants widen the cap to
    /// the replication factor.
    fn pick_duplicate_target(&self, site: SiteId, cap: usize) -> Option<usize> {
        (0..self.state.len())
            .filter(|&i| self.state[i] == JobState::Assigned)
            .filter(|&i| {
                !self.assignees[i].is_empty()
                    && self.assignees[i].len() < cap
                    && self.assignees[i].iter().all(|a| a.site != site)
            })
            .min_by(|&a, &b| {
                let ta = self.assignees[a][0].assigned_at;
                let tb = self.assignees[b][0].assigned_at;
                ta.partial_cmp(&tb).unwrap().then(self.chunks[a].id.cmp(&self.chunks[b].id))
            })
    }

    /// Hand `site` an extra copy of in-flight job `i` (a speculative
    /// re-execution or a coded replica) and return the one-job batch. The
    /// copy gets a fresh span whose *parent* is the oldest live execution's
    /// span — the replica/speculation lineage edge of the run DAG.
    fn grant_duplicate(&mut self, i: usize, site: SiteId, speculative: bool) -> JobBatch {
        let deadline = self.deadline_for(site);
        let parent = self.assignees[i].first().map_or(0, |a| a.span);
        let span = self.alloc_span();
        self.assignees[i].push(Assignee {
            site,
            assigned_at: self.now,
            deadline,
            speculative,
            replica: !speculative,
            span,
        });
        self.readers[self.chunks[i].file.0 as usize] += 1;
        *self.assigned_to.entry(site).or_insert(0) += 1;
        let stolen = self.chunks[i].site != site;
        if speculative {
            self.faults.speculative_grants += 1;
        } else {
            self.faults.replica_grants += 1;
            self.metrics.replica_grant(site);
        }
        self.metrics.granted(site, self.chunks[i].site, stolen, speculative);
        self.sink.emit(
            Event::at(self.now_ns(), EventKind::JobGranted { stolen, speculative })
                .site(site)
                .chunk(self.chunks[i].id)
                .span_id(span)
                .cause(parent),
        );
        JobBatch { jobs: vec![self.chunks[i]], spans: vec![span], stolen, terminal: false }
    }

    /// Request a batch for `site` and record the assignment. When the pool
    /// has nothing pending but stragglers are in flight, the idle site is
    /// handed a duplicate of the oldest straggler instead of an empty poll —
    /// a speculative copy when speculation is enabled, a proactive replica
    /// when coded redundancy (`r > 1`) is — first completion wins either
    /// way.
    pub fn request_for(&mut self, site: SiteId) -> JobBatch {
        let mut batch = self.request(site);
        self.assign_to(&mut batch, site);
        if batch.is_empty() && !batch.terminal && !self.dead_sites.contains(&site) {
            if self.speculate {
                if let Some(i) = self.pick_duplicate_target(site, MAX_ASSIGNEES) {
                    return self.grant_duplicate(i, site, true);
                }
            }
            if self.redundancy > 1 {
                let cap = MAX_ASSIGNEES.max(self.redundancy as usize);
                if let Some(i) = self.pick_duplicate_target(site, cap) {
                    return self.grant_duplicate(i, site, false);
                }
            }
        }
        batch
    }

    // ---- sharded-wrapper support (see `crate::shard::ShardedPool`) ----

    /// Turn the requeue log on or off. While on, every job returned to the
    /// pending pool is also recorded for [`JobPool::take_requeued`].
    pub(crate) fn set_shard_log(&mut self, on: bool) {
        self.shard_log = if on { Some(Vec::new()) } else { None };
    }

    /// Drain the requeue log: the jobs put back in the pending pool since
    /// the last call (failure requeues, lease reaps, evacuations).
    pub(crate) fn take_requeued(&mut self) -> Vec<ChunkId> {
        match &mut self.shard_log {
            Some(log) => std::mem::take(log),
            None => Vec::new(),
        }
    }

    /// The data-home site of `job`.
    pub(crate) fn home_of(&self, job: ChunkId) -> SiteId {
        self.chunks[job.0 as usize].site
    }

    /// Every pending job grouped by its data-home site, in physical order —
    /// the initial shard contents for the sharded wrapper.
    pub(crate) fn pending_ids_by_site(&self) -> BTreeMap<SiteId, Vec<ChunkId>> {
        let mut out: BTreeMap<SiteId, Vec<ChunkId>> = BTreeMap::new();
        for (q, &site) in self.pending_by_file.iter().zip(&self.file_site) {
            out.entry(site).or_default().extend(q.iter().copied());
        }
        for ids in out.values_mut() {
            ids.sort_unstable();
        }
        out
    }

    /// Grant the still-pending jobs among `ids` to `site` in one batch,
    /// advancing the pool clock to `now`.
    ///
    /// This is the registration half of a sharded grant: the caller already
    /// *selected* the jobs by popping them off a lock-free shard queue, so
    /// no policy scan runs here — each id is checked (a shard entry can be
    /// stale: the job may have completed late, been abandoned, or been
    /// granted through the legacy path since it was pushed), removed from
    /// its file's pending queue, and leased via the same bookkeeping as
    /// [`JobPool::request_for`] (spans, leases, telemetry, metrics). Stale
    /// ids are skipped silently; the returned batch may therefore be
    /// smaller than `ids`, or empty.
    pub(crate) fn assign_ids(
        &mut self,
        site: SiteId,
        ids: &[ChunkId],
        stolen: bool,
        now: f64,
    ) -> JobBatch {
        self.now = self.now.max(now);
        let mut jobs = Vec::with_capacity(ids.len());
        for &id in ids {
            let i = id.0 as usize;
            if self.state[i] != JobState::Pending {
                continue; // stale shard entry
            }
            let q = &mut self.pending_by_file[self.chunks[i].file.0 as usize];
            let pos = q.partition_point(|&c| c < id);
            if q.get(pos) == Some(&id) {
                q.remove(pos);
                jobs.push(self.chunks[i]);
            } else {
                debug_assert!(false, "{id} pending but missing from its file queue");
            }
        }
        let mut batch = JobBatch { jobs, spans: Vec::new(), stolen, terminal: false };
        self.assign_to(&mut batch, site);
        batch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layout::LayoutParams;

    fn index(n_files: u32, chunks_per_file: u64, split: impl Fn(FileId) -> SiteId) -> DataIndex {
        let upc = 4;
        let total = u64::from(n_files) * chunks_per_file * upc;
        DataIndex::build(total, LayoutParams { unit_size: 8, units_per_chunk: upc, n_files }, split)
            .unwrap()
    }

    fn half_split(f: FileId) -> SiteId {
        if f.0 < 2 {
            SiteId::LOCAL
        } else {
            SiteId::CLOUD
        }
    }

    #[test]
    fn grants_local_jobs_first() {
        let idx = index(4, 3, half_split);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(2));
        let b = pool.request_for(SiteId::LOCAL);
        assert!(!b.stolen);
        assert!(b.jobs.iter().all(|c| c.site == SiteId::LOCAL));
    }

    #[test]
    fn batches_are_consecutive_chunks_of_one_file() {
        let idx = index(2, 6, |_| SiteId::LOCAL);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(4));
        let b = pool.request_for(SiteId::LOCAL);
        assert_eq!(b.len(), 4);
        let file = b.jobs[0].file;
        for w in b.jobs.windows(2) {
            assert_eq!(w[0].file, file);
            assert_eq!(w[1].id, w[0].id.next());
            assert_eq!(w[1].offset, w[0].end());
        }
    }

    #[test]
    fn steals_only_after_local_exhausted() {
        let idx = index(2, 2, |f| if f.0 == 0 { SiteId::LOCAL } else { SiteId::CLOUD });
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(2));
        let b1 = pool.request_for(SiteId::LOCAL);
        assert!(!b1.stolen);
        assert_eq!(b1.len(), 2);
        let b2 = pool.request_for(SiteId::LOCAL);
        assert!(b2.stolen, "local jobs exhausted; must steal");
        assert!(b2.jobs.iter().all(|c| c.site == SiteId::CLOUD));
    }

    #[test]
    fn steal_prefers_file_with_fewest_readers() {
        // Two cloud files; the cloud site is actively reading file2.
        let idx = index(4, 2, half_split); // files 0,1 local; 2,3 cloud
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(1));
        // Cloud takes one job -> becomes a reader of one of its files.
        let cb = pool.request_for(SiteId::CLOUD);
        let busy_file = cb.jobs[0].file;
        // Drain local jobs.
        while pool.has_local_pending(SiteId::LOCAL) {
            let b = pool.request_for(SiteId::LOCAL);
            for j in &b.jobs {
                pool.complete(j.id, SiteId::LOCAL);
            }
        }
        // First steal must avoid the file the cloud is reading.
        let sb = pool.request_for(SiteId::LOCAL);
        assert!(sb.stolen);
        assert_ne!(sb.jobs[0].file, busy_file);
    }

    #[test]
    fn every_job_processed_exactly_once_two_sites() {
        let idx = index(4, 3, half_split);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(2));
        let mut turn = 0;
        let sites = [SiteId::LOCAL, SiteId::CLOUD];
        let mut seen = vec![0u32; idx.n_chunks()];
        while !pool.all_done() {
            let site = sites[turn % 2];
            turn += 1;
            let b = pool.request_for(site);
            for j in &b.jobs {
                seen[j.id.0 as usize] += 1;
                pool.complete(j.id, site);
            }
        }
        assert!(seen.iter().all(|&c| c == 1));
        let counts = pool.site_counts();
        let total: u64 = counts.values().map(SiteJobCounts::total).sum();
        assert_eq!(total, idx.n_chunks() as u64);
    }

    #[test]
    fn stolen_counts_match_remote_processing() {
        // All data on the cloud; the local site processes everything.
        let idx = index(2, 4, |_| SiteId::CLOUD);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(3));
        while !pool.all_done() {
            let b = pool.request_for(SiteId::LOCAL);
            assert!(b.stolen);
            for j in &b.jobs {
                pool.complete(j.id, SiteId::LOCAL);
            }
        }
        let c = pool.site_counts()[&SiteId::LOCAL];
        assert_eq!(c.local, 0);
        assert_eq!(c.stolen, 8);
    }

    #[test]
    fn empty_batch_when_drained() {
        let idx = index(1, 1, |_| SiteId::LOCAL);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(8));
        let b = pool.request_for(SiteId::LOCAL);
        assert_eq!(b.len(), 1);
        let b2 = pool.request_for(SiteId::LOCAL);
        assert!(b2.is_empty());
        let b3 = pool.request_for(SiteId::CLOUD);
        assert!(b3.is_empty());
    }

    #[test]
    #[should_panic(expected = "not assigned")]
    fn completing_unassigned_job_panics() {
        let idx = index(1, 2, |_| SiteId::LOCAL);
        let mut pool = JobPool::from_index(&idx, BatchPolicy::Fixed(1));
        pool.complete(ChunkId(0), SiteId::LOCAL);
    }

    #[test]
    fn adaptive_batches_shrink_toward_tail() {
        let p = BatchPolicy::Adaptive { divisor: 8, min: 1, max: 8 };
        assert_eq!(p.batch_size(96), 8);
        assert_eq!(p.batch_size(32), 4);
        assert_eq!(p.batch_size(8), 1);
        assert_eq!(p.batch_size(0), 1);
    }

    #[test]
    fn fixed_policy_never_grants_zero() {
        assert_eq!(BatchPolicy::Fixed(0).batch_size(10), 1);
    }
}

#[cfg(test)]
mod fault_tests {
    use super::*;
    use crate::index::DataIndex;
    use crate::layout::LayoutParams;

    fn pool(n_chunks: u64, max_attempts: u8) -> JobPool {
        let idx = DataIndex::build(
            n_chunks * 2,
            LayoutParams { unit_size: 1, units_per_chunk: 2, n_files: 2 },
            |_| SiteId::LOCAL,
        )
        .unwrap();
        let mut p = JobPool::from_index(&idx, BatchPolicy::Fixed(2));
        p.set_max_attempts(max_attempts);
        p
    }

    #[test]
    fn failed_job_is_requeued_and_completes_later() {
        let mut p = pool(4, 3);
        let b = p.request_for(SiteId::LOCAL);
        let victim = b.jobs[0].id;
        assert!(p.fail(victim, SiteId::LOCAL), "first failure requeues");
        assert_eq!(p.in_flight(), b.len() - 1);
        for j in &b.jobs[1..] {
            p.complete(j.id, SiteId::LOCAL);
        }
        // Drain the rest; the victim must come back.
        let mut saw_victim = false;
        while !p.all_done() {
            let b = p.request_for(SiteId::CLOUD);
            for j in &b.jobs {
                saw_victim |= j.id == victim;
                p.complete(j.id, SiteId::CLOUD);
            }
        }
        assert!(saw_victim, "requeued job must be granted again");
        assert_eq!(p.abandoned(), 0);
        assert_eq!(p.failure_counts()[&SiteId::LOCAL], 1);
    }

    #[test]
    fn requeued_job_keeps_physical_order() {
        let mut p = pool(4, 5);
        let b = p.request_for(SiteId::LOCAL);
        // Fail both; they go back in id order regardless of failure order.
        assert!(p.fail(b.jobs[1].id, SiteId::LOCAL));
        assert!(p.fail(b.jobs[0].id, SiteId::LOCAL));
        let again = p.request_for(SiteId::LOCAL);
        assert!(again.jobs.windows(2).all(|w| w[1].id == w[0].id.next()));
    }

    #[test]
    fn exhausted_attempts_abandon_the_job() {
        let mut p = pool(1, 2);
        for round in 0..2 {
            let b = p.request_for(SiteId::LOCAL);
            assert_eq!(b.len(), 1, "round {round}");
            let requeued = p.fail(b.jobs[0].id, SiteId::LOCAL);
            assert_eq!(requeued, round == 0);
        }
        assert!(p.all_done(), "abandoned jobs count toward completion");
        assert_eq!(p.abandoned(), 1);
        assert_eq!(p.abandoned_jobs().len(), 1);
        assert_eq!(p.abandoned_jobs()[0].last_site, Some(SiteId::LOCAL));
        assert!(p.request_for(SiteId::LOCAL).terminal);
    }

    #[test]
    fn empty_grant_is_nonterminal_while_jobs_in_flight() {
        let mut p = pool(1, 3);
        let b = p.request_for(SiteId::LOCAL);
        assert_eq!(b.len(), 1);
        // Nothing pending, but the job is in flight: not terminal.
        let empty = p.request_for(SiteId::CLOUD);
        assert!(empty.is_empty());
        assert!(!empty.terminal, "in-flight job could still fail and requeue");
        p.complete(b.jobs[0].id, SiteId::LOCAL);
        assert!(p.request_for(SiteId::CLOUD).terminal);
    }

    #[test]
    #[should_panic(expected = "not assigned")]
    fn failing_unassigned_job_panics() {
        let mut p = pool(2, 3);
        p.fail(ChunkId(0), SiteId::LOCAL);
    }
}

#[cfg(test)]
mod lease_tests {
    use super::*;
    use crate::fault::LeaseConfig;
    use crate::index::DataIndex;
    use crate::layout::LayoutParams;

    fn pool(n_chunks: u64) -> JobPool {
        // One file so consecutive-batch grants can cover any request size.
        let idx = DataIndex::build(
            n_chunks * 2,
            LayoutParams { unit_size: 1, units_per_chunk: 2, n_files: 1 },
            |_| SiteId::LOCAL,
        )
        .unwrap();
        JobPool::from_index(&idx, BatchPolicy::Fixed(2))
    }

    fn short_lease() -> LeaseConfig {
        LeaseConfig { base: 1.0, multiplier: 4.0, min: 0.5, max: 10.0 }
    }

    #[test]
    fn expired_lease_is_reaped_and_requeued() {
        let mut p = pool(1);
        p.set_lease(short_lease());
        let b = p.request_for_at(SiteId::LOCAL, 0.0);
        assert_eq!(b.len(), 1);
        assert!(p.reap_expired(0.5).is_empty(), "lease still live");
        let reaped = p.reap_expired(1.5);
        assert_eq!(reaped, vec![(b.jobs[0].id, SiteId::LOCAL)]);
        assert_eq!(p.pending(), 1, "job back in the pool");
        assert_eq!(p.faults().lease_expiries, 1);
        // Re-grant to another site; the grant must be the same chunk.
        let b2 = p.request_for_at(SiteId::CLOUD, 2.0);
        assert_eq!(b2.jobs[0].id, b.jobs[0].id);
        assert!(p.complete(b2.jobs[0].id, SiteId::CLOUD).is_merged());
    }

    #[test]
    fn late_completion_after_reap_still_merges_exactly_once() {
        let mut p = pool(1);
        p.set_lease(short_lease());
        let b = p.request_for_at(SiteId::LOCAL, 0.0);
        let job = b.jobs[0].id;
        p.reap_expired(5.0);
        // The written-off worker finishes after all, before any re-grant.
        assert!(p.complete_at(job, SiteId::LOCAL, 5.1).is_merged());
        assert_eq!(p.faults().late_completions, 1);
        assert!(p.all_done());
        assert_eq!(p.pending(), 0, "pending re-execution withdrawn");
        // Nothing left to grant.
        assert!(p.request_for_at(SiteId::CLOUD, 5.2).terminal);
    }

    #[test]
    fn late_completion_races_rerun_and_rerun_is_preempted() {
        let mut p = pool(1);
        p.set_lease(short_lease());
        let b = p.request_for_at(SiteId::LOCAL, 0.0);
        let job = b.jobs[0].id;
        p.reap_expired(5.0);
        let b2 = p.request_for_at(SiteId::CLOUD, 5.0);
        assert_eq!(b2.jobs[0].id, job, "reaped job re-granted");
        // Original worker reports first: accepted; rerun preempted.
        match p.complete_at(job, SiteId::LOCAL, 5.5) {
            Completion::Merged { preempted } => assert_eq!(preempted, vec![SiteId::CLOUD]),
            Completion::Duplicate => panic!("late completion must merge"),
        }
        // The rerun's own report is now a duplicate.
        assert_eq!(p.complete_at(job, SiteId::CLOUD, 6.0), Completion::Duplicate);
        assert_eq!(p.completed(), 1);
        assert_eq!(p.faults().duplicate_completions, 1);
    }

    #[test]
    fn speculative_copy_first_completion_wins() {
        let mut p = pool(2);
        p.set_lease(short_lease());
        p.set_speculation(true);
        let b = p.request_for_at(SiteId::LOCAL, 0.0);
        assert_eq!(b.len(), 2);
        p.complete_at(b.jobs[1].id, SiteId::LOCAL, 0.2);
        // Cloud polls with nothing pending: granted a speculative copy of
        // the straggler.
        let spec = p.request_for_at(SiteId::CLOUD, 0.3);
        assert_eq!(spec.len(), 1);
        assert_eq!(spec.jobs[0].id, b.jobs[0].id);
        assert!(spec.stolen);
        assert_eq!(p.faults().speculative_grants, 1);
        assert_eq!(p.assignees_of(b.jobs[0].id), vec![SiteId::LOCAL, SiteId::CLOUD]);
        // No third copy.
        assert!(p.request_for_at(SiteId::CLOUD, 0.4).is_empty());
        // Speculative copy finishes first; the straggler is preempted.
        match p.complete_at(b.jobs[0].id, SiteId::CLOUD, 0.5) {
            Completion::Merged { preempted } => assert_eq!(preempted, vec![SiteId::LOCAL]),
            Completion::Duplicate => panic!("first completion must merge"),
        }
        // The straggler eventually reports: duplicate, merged exactly once.
        assert_eq!(p.complete_at(b.jobs[0].id, SiteId::LOCAL, 9.0), Completion::Duplicate);
        assert!(p.all_done());
        assert_eq!(p.completed(), 2);
        // The gamble paid off; the preempted straggler was not speculative.
        assert_eq!(p.faults().speculative_wins, 1);
        assert_eq!(p.faults().speculative_losses, 0);
    }

    #[test]
    fn speculation_losses_are_counted_and_pool_events_tell_the_story() {
        use crate::telemetry::Recorder;
        use std::sync::Arc;

        let rec = Arc::new(Recorder::new());
        let mut p = pool(2);
        p.set_sink(Telemetry::to(rec.clone()));
        p.set_lease(short_lease());
        p.set_speculation(true);
        let b = p.request_for_at(SiteId::LOCAL, 0.0);
        p.complete_at(b.jobs[1].id, SiteId::LOCAL, 0.2);
        let spec = p.request_for_at(SiteId::CLOUD, 0.3);
        assert_eq!(spec.len(), 1);
        // This time the straggler beats its speculative copy: the copy is
        // preempted and the gamble is written off as a loss.
        assert!(p.complete_at(b.jobs[0].id, SiteId::LOCAL, 0.4).is_merged());
        assert_eq!(p.faults().speculative_wins, 0);
        assert_eq!(p.faults().speculative_losses, 1);

        let events = rec.take();
        let grants: Vec<bool> = events
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::JobGranted { speculative, .. } => Some(speculative),
                _ => None,
            })
            .collect();
        assert_eq!(grants, vec![false, false, true]);
        assert!(events.iter().any(|e| matches!(
            e.kind,
            EventKind::SpeculationResolved { won: false }
        ) && e.site == Some(SiteId::CLOUD)
            && e.chunk == Some(b.jobs[0].id)));
        let completions = events
            .iter()
            .filter(|e| matches!(e.kind, EventKind::JobCompleted { merged: true, .. }))
            .count();
        assert_eq!(completions, 2);
        // Pool events carry the virtual clock, scaled to nanoseconds.
        assert!(events.windows(2).all(|w| w[0].at_ns <= w[1].at_ns));
        assert_eq!(events.last().unwrap().at_ns, secs_to_ns(0.4));
    }

    #[test]
    fn reaping_a_speculative_lease_counts_a_loss() {
        let mut p = pool(2);
        p.set_lease(short_lease());
        p.set_speculation(true);
        let b = p.request_for_at(SiteId::LOCAL, 0.0);
        p.complete_at(b.jobs[1].id, SiteId::LOCAL, 0.2);
        let spec = p.request_for_at(SiteId::CLOUD, 0.3);
        assert_eq!(spec.len(), 1);
        // Both leases expire; only the speculative one counts as a loss.
        let reaped = p.reap_expired(1000.0);
        assert_eq!(reaped.len(), 2);
        assert_eq!(p.faults().speculative_losses, 1);
        assert_eq!(p.faults().speculative_wins, 0);
    }

    #[test]
    fn evacuation_requeues_in_flight_and_done_jobs() {
        let mut p = pool(4);
        let b1 = p.request_for(SiteId::CLOUD); // 2 jobs in flight at cloud
        p.complete(b1.jobs[0].id, SiteId::CLOUD); // 1 done at cloud
        let done_at_cloud = b1.jobs[0].id;
        let inflight_at_cloud = b1.jobs[1].id;
        let b2 = p.request_for(SiteId::LOCAL);
        assert_eq!(b2.len(), 2);
        p.evacuate(SiteId::CLOUD);
        p.evacuate(SiteId::CLOUD); // idempotent
                                   // Both the in-flight job and the done-but-unreduced job come back.
        assert_eq!(p.faults().evacuated_jobs, 1);
        assert_eq!(p.faults().lost_results, 1);
        assert_eq!(p.completed(), 0);
        assert_eq!(p.pending(), 2);
        assert!(p.is_dead(SiteId::CLOUD));
        // The dead site polls: empty, and its zombie reports are discarded.
        assert!(p.request_for(SiteId::CLOUD).is_empty());
        assert_eq!(p.complete(inflight_at_cloud, SiteId::CLOUD), Completion::Duplicate);
        // The survivor finishes its own grant and the re-queued jobs.
        for j in &b2.jobs {
            assert!(p.complete(j.id, SiteId::LOCAL).is_merged());
        }
        while !p.all_done() {
            let b = p.request_for(SiteId::LOCAL);
            for j in &b.jobs {
                assert!(p.complete(j.id, SiteId::LOCAL).is_merged());
            }
        }
        assert_eq!(p.completed(), 4);
        assert_eq!(p.abandoned(), 0);
        let seen_again = p.site_counts()[&SiteId::LOCAL];
        assert_eq!(seen_again.total(), 4);
        // The lost result was re-executed by the survivor, so the dead
        // site's counts are fully rolled back.
        assert!(p.site_counts()[&SiteId::CLOUD].total() == 0);
        assert_eq!(p.assignees_of(done_at_cloud), Vec::<SiteId>::new());
    }

    #[test]
    fn abandon_unfinished_records_last_sites() {
        let mut p = pool(2);
        let b = p.request_for(SiteId::LOCAL);
        assert_eq!(b.len(), 2);
        p.evacuate(SiteId::LOCAL);
        assert_eq!(p.pending(), 2);
        p.abandon_unfinished();
        assert!(p.all_done());
        assert_eq!(p.abandoned(), 2);
        for a in p.abandoned_jobs() {
            assert_eq!(a.last_site, Some(SiteId::LOCAL));
        }
    }

    #[test]
    fn leases_scale_with_observed_duration() {
        let mut p = pool(8);
        p.set_lease(LeaseConfig { base: 100.0, multiplier: 2.0, min: 0.1, max: 1000.0 });
        let b = p.request_for_at(SiteId::LOCAL, 0.0);
        for j in &b.jobs {
            p.complete_at(j.id, SiteId::LOCAL, 1.0); // ~1s jobs observed
        }
        let b2 = p.request_for_at(SiteId::LOCAL, 1.0);
        // With ~1s EWMA and multiplier 2, the lease is ~2s, far below base:
        // jobs granted now must be reapable shortly after, not in 100s.
        assert!(p.reap_expired(1.5).is_empty());
        let reaped = p.reap_expired(10.0);
        assert_eq!(reaped.len(), b2.len());
    }
}
#[cfg(test)]
mod redundancy_tests {
    use super::*;
    use crate::index::DataIndex;
    use crate::layout::LayoutParams;

    fn pool(n_chunks: u64) -> JobPool {
        let idx = DataIndex::build(
            n_chunks * 2,
            LayoutParams { unit_size: 1, units_per_chunk: 2, n_files: 1 },
            |_| SiteId::LOCAL,
        )
        .unwrap();
        JobPool::from_index(&idx, BatchPolicy::Fixed(2))
    }

    #[test]
    fn r1_never_grants_replicas() {
        let mut p = pool(1);
        p.set_redundancy(1);
        let b = p.request_for(SiteId::LOCAL);
        assert_eq!(b.len(), 1);
        // Idle poll while a job is in flight: empty at r=1, no replica.
        assert!(p.request_for(SiteId::CLOUD).is_empty());
        assert_eq!(p.faults().replica_grants, 0);
        p.complete(b.jobs[0].id, SiteId::LOCAL);
        assert_eq!(p.faults().replica_wins, 0);
        assert_eq!(p.faults().replica_fences, 0);
    }

    #[test]
    fn replica_first_completion_wins_and_fences_the_original() {
        let mut p = pool(1);
        p.set_redundancy(2);
        let b = p.request_for(SiteId::LOCAL);
        let job = b.jobs[0].id;
        // The idle site is handed a proactive replica, not an empty poll.
        let rep = p.request_for(SiteId::CLOUD);
        assert_eq!(rep.len(), 1);
        assert_eq!(rep.jobs[0].id, job);
        assert_eq!(p.faults().replica_grants, 1);
        // No third copy on a two-site testbed: both sites already hold one.
        assert!(p.request_for(SiteId::CLOUD).is_empty());
        // Replica finishes first: merged, and the original is fenced.
        match p.complete(job, SiteId::CLOUD) {
            Completion::Merged { preempted } => assert_eq!(preempted, vec![SiteId::LOCAL]),
            Completion::Duplicate => panic!("first replica completion must merge"),
        }
        assert_eq!(p.faults().replica_wins, 1);
        assert_eq!(p.faults().replica_fences, 1);
        // The fenced original reports late: duplicate, merged exactly once.
        assert_eq!(p.complete(job, SiteId::LOCAL), Completion::Duplicate);
        assert_eq!(p.completed(), 1);
        assert_eq!(p.faults().speculative_grants, 0, "replicas are not speculation");
    }

    #[test]
    fn original_first_completion_fences_the_replica() {
        let mut p = pool(1);
        p.set_redundancy(2);
        let b = p.request_for(SiteId::LOCAL);
        let job = b.jobs[0].id;
        assert_eq!(p.request_for(SiteId::CLOUD).len(), 1);
        match p.complete(job, SiteId::LOCAL) {
            Completion::Merged { preempted } => assert_eq!(preempted, vec![SiteId::CLOUD]),
            Completion::Duplicate => panic!("original completion must merge"),
        }
        assert_eq!(p.faults().replica_wins, 0);
        assert_eq!(p.faults().replica_fences, 1, "the replica sibling was fenced");
        assert_eq!(p.complete(job, SiteId::CLOUD), Completion::Duplicate);
    }

    #[test]
    fn evacuation_under_redundancy_counts_saved_refetches() {
        let mut p = pool(2);
        p.set_redundancy(2);
        let b = p.request_for(SiteId::CLOUD);
        assert_eq!(b.len(), 2);
        p.complete(b.jobs[0].id, SiteId::CLOUD); // one done, one in flight
        p.evacuate(SiteId::CLOUD);
        // Both the revoked in-flight job and the lost done result requeue,
        // and each re-execution is served from a local replica: two saves.
        assert_eq!(p.pending(), 2);
        assert_eq!(p.faults().saved_refetches, 2);
        while !p.all_done() {
            let b = p.request_for(SiteId::LOCAL);
            for j in &b.jobs {
                assert!(p.complete(j.id, SiteId::LOCAL).is_merged());
            }
        }
        assert_eq!(p.completed(), 2);
    }

    #[test]
    fn evacuation_at_r1_saves_nothing() {
        let mut p = pool(2);
        let b = p.request_for(SiteId::CLOUD);
        p.complete(b.jobs[0].id, SiteId::CLOUD);
        p.evacuate(SiteId::CLOUD);
        assert_eq!(p.pending(), 2);
        assert_eq!(p.faults().saved_refetches, 0, "r=1 re-executions re-fetch");
    }
}
