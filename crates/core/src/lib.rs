//! # cloudburst-core
//!
//! The core of **cloudburst**, a framework for data-intensive computing with
//! cloud bursting — a Rust reproduction of Bicer, Chiu & Agrawal (SC 2011).
//!
//! This crate holds everything both runtimes (the threaded
//! `cloudburst-cluster` runtime and the paper-scale discrete-event simulator
//! in `cloudburst-sim`) share:
//!
//! * the **Generalized Reduction** programming model ([`reduction`]) — a
//!   MapReduce variant that fuses map, combine and reduce into a single
//!   `proc(e)` step over a mergeable *reduction object*, avoiding the
//!   intermediate-pair memory, sorting, grouping and shuffling costs of
//!   classic MapReduce;
//! * the ready-made accumulator library ([`combiners`]) and the
//!   closure-based application builder ([`closure`]);
//! * the **files → chunks → units** data-organization model ([`layout`],
//!   [`index`]);
//! * the head node's global **job pool** with locality-aware consecutive
//!   batching and inter-cluster **work stealing** ([`pool`]), the sharded
//!   lock-free façade that takes the same policy to millions-of-jobs grant
//!   rates ([`shard`]), and the per-site master pool ([`master`]);
//! * the experiment **environment configurations** ([`config`]) and the
//!   **statistics model** matching the paper's figures and tables
//!   ([`stats`]);
//! * the **failure model** ([`fault`]): job leases, heartbeat liveness and
//!   the deterministic chaos-injection plan shared by the threaded runtime,
//!   the TCP deployment and the simulator;
//! * the **telemetry layer** ([`telemetry`]): a typed event taxonomy with a
//!   lock-cheap sink trait, JSONL / Chrome-trace exporters, and an
//!   aggregator that re-derives the paper-shaped statistics from the event
//!   stream — plus the dependency-free JSON value ([`json`]) the exporters
//!   and the `--stats-out` artifacts are written with;
//! * the **live metrics layer** ([`metrics`]): sharded atomic counters,
//!   gauges and bounded log-linear histograms behind a one-branch-when-off
//!   handle, with a Prometheus text-exposition registry, a strict
//!   exposition parser/validator, and a dependency-free `/metrics` HTTP
//!   listener;
//! * the **health plane** ([`health`]): streaming anomaly detectors
//!   (straggler, shard imbalance, lease-reap storm, WAN regression, queue
//!   stall) with trip/clear hysteresis feeding the `/healthz` endpoint,
//!   typed `health-transition` telemetry events, and the black-box crash
//!   dump;
//! * the **causal analysis layer** ([`analysis`]): span-DAG reconstruction
//!   from any events JSONL, critical-path extraction, an exhaustive
//!   makespan attribution (WAN fetch / local fetch / compute / pool wait /
//!   recovery / reduction / idle), and cross-run benchmark diffing — the
//!   engine behind `cloudburst explain` and `cloudburst bench-diff`.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod closure;
pub mod combiners;
pub mod config;
pub mod fault;
pub mod health;
pub mod index;
pub mod json;
pub mod layout;
pub mod master;
pub mod metrics;
pub mod pool;
pub mod reduction;
pub mod shard;
pub mod stats;
pub mod telemetry;
pub mod types;

pub use analysis::{
    analyze, check_sequence, diff_benchmarks, parse_events_jsonl, Attribution, BenchDelta,
    Direction, PathSegment, RunAnalysis, SeqCheck, SpanDag, SpanNode,
};
pub use closure::{from_fns, FnReduction};
pub use config::EnvConfig;
pub use fault::{
    AbandonedJob, FaultCounters, FaultPlan, HeartbeatConfig, LeaseConfig, SiteOutage, SlowSite,
    SlowWorker, WorkerCrash,
};
pub use health::{
    HealthConfig, HealthDetector, HealthMonitor, HealthSample, HealthTransitionRecord,
};
pub use index::DataIndex;
pub use json::Json;
pub use layout::{ChunkMeta, FileMeta, LayoutParams};
pub use master::{LocalJob, MasterPool, Take};
pub use metrics::{
    check_monotonic, http_get, http_get_status, parse_exposition, Counter, Exposition, Gauge,
    Histogram, MetricKind, Metrics, MetricsServer, Registry, RouteHandler, RouteResponse, Sample,
};
pub use pool::Completion;
pub use pool::{
    BatchPolicy, JobBatch, JobPool, PoolIntrospection, SiteJobCounts, SitePoolIntrospection,
};
pub use reduction::{
    coded_combine, global_reduce, reduce_serial, tree_reduce, Merge, Reduction, ReductionObject,
};
pub use shard::{ShardIntrospection, ShardedPool};
pub use stats::{
    assemble_sites, doubling_efficiency, report_to_json, Breakdown, RunReport, SiteSample,
    SiteStats, SlaveSample,
};
pub use telemetry::{
    chrome_trace, derive_report, events_to_jsonl, ns_between, ns_since, ns_to_secs, secs_to_ns,
    ConsoleSink, Event, EventKind, EventSink, FlightRecorder, JsonlSink, LogLevel, Recorder,
    Telemetry,
};
pub use types::{ByteSize, ChunkId, FileId, JobId, NodeId, Seconds, SiteId};
