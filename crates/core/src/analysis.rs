//! Causal run analysis: span DAG reconstruction, critical-path extraction,
//! and makespan attribution — the engine behind `cloudburst explain` and
//! `cloudburst bench-diff`.
//!
//! The paper's evaluation reasons about *where the time went* — retrieval
//! vs. processing vs. synchronization stacked bars (Fig. 5-8) — but those
//! are per-site sums, not causes: they cannot say whether a slow run was
//! slow because the WAN was saturated, because workers starved waiting for
//! grants, or because recovery re-executed half the chunks. This module
//! answers that question from the event stream alone:
//!
//! * [`SpanDag`] rebuilds the causal graph from any events JSONL (a real
//!   threaded run, a TCP deployment, or the simulator — they share one
//!   taxonomy): one node per job *execution* (the span ids the head's pool
//!   allocates at grant time), with replica/speculation lineage edges from
//!   each duplicate grant to the execution it raced.
//! * [`analyze`] walks backward from `run-finished` through the critical
//!   chain — the last site to finish, that site's last slave — and
//!   partitions the whole makespan into seven exhaustive categories
//!   ([`Attribution`]): WAN fetch, local fetch, compute, pool wait,
//!   recovery, reduction, and idle. The categories are carved from ordered,
//!   clamped boundaries plus an interval sweep over the critical slave's
//!   lane, so they sum to the makespan *by construction*; the busy segments
//!   of that walk are the critical path, whose length can never exceed the
//!   makespan.
//! * [`diff_benchmarks`] compares two benchmark artifacts leaf-by-leaf and
//!   flags regressions on metrics with a known "better" direction — the
//!   cross-run gate `verify.sh` runs against the committed baseline.
//!
//! One classification rule deserves a callout: a `chunk-fetched` event is
//! counted as **WAN-class** when it was remote *or* when the fetching site
//! is not the local cluster. In the paper's testbed the cloud site's
//! storage *is* S3 — a cloud worker's "local" read still crosses the S3
//! front-end (30 ms TTFB, shared host cap), which is exactly the cost cloud
//! bursting pays for elasticity. Only campus-cluster reads ride the LAN.

use crate::json::Json;
use crate::telemetry::{ns_to_secs, Event, EventKind};
use crate::types::{ChunkId, Seconds, SiteId};
use std::collections::BTreeMap;

/// Parse an events JSONL document (the `--events-out` artifact) into typed
/// events. Lines whose `kind` is unknown are skipped and counted — a reader
/// built against an older taxonomy degrades gracefully — but structurally
/// broken lines are hard errors.
///
/// # Errors
/// Returns `line N: <what>` for unparsable JSON or a malformed event.
pub fn parse_events_jsonl(text: &str) -> Result<(Vec<Event>, usize), String> {
    let mut events = Vec::new();
    let mut skipped = 0usize;
    for (i, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        let j = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match Event::from_json(&j) {
            Ok(e) => events.push(e),
            Err(e) if e.starts_with("unknown event kind") => skipped += 1,
            Err(e) => return Err(format!("line {}: {e}", i + 1)),
        }
    }
    Ok((events, skipped))
}

/// Result of a delivery-sequence audit ([`check_sequence`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeqCheck {
    /// Events carrying a stamped (nonzero) sequence number.
    pub stamped: usize,
    /// The highest sequence number seen (0 when nothing was stamped).
    pub max: u64,
}

/// Audit the per-sink delivery sequence of an event stream.
///
/// [`crate::telemetry::Telemetry::emit`] stamps each delivered event with
/// the next 1-based sequence number, so the stamped values of a complete
/// artifact form exactly `{1..=max}` — as a *set*: racing emitters are
/// stamped before they enqueue, so recorded order may interleave. A gap
/// proves events were dropped between emission and the file; a duplicate
/// proves corruption. Streams with no stamped events (legacy artifacts)
/// pass vacuously with `stamped == 0`.
///
/// # Errors
/// Names the first duplicate or the first missing sequence number.
pub fn check_sequence(events: &[Event]) -> Result<SeqCheck, String> {
    let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).filter(|&s| s > 0).collect();
    if seqs.is_empty() {
        return Ok(SeqCheck { stamped: 0, max: 0 });
    }
    seqs.sort_unstable();
    for w in seqs.windows(2) {
        if w[1] == w[0] {
            return Err(format!("duplicate sequence number {}", w[0]));
        }
    }
    let max = *seqs.last().expect("non-empty");
    if seqs.len() as u64 != max {
        for (expect, &s) in (1u64..).zip(seqs.iter()) {
            if s != expect {
                let missing = s - expect;
                return Err(format!(
                    "sequence gap before {s}: {missing} event{} missing (first is {expect})",
                    if missing == 1 { "" } else { "s" }
                ));
            }
        }
    }
    Ok(SeqCheck { stamped: seqs.len(), max })
}

/// One job execution in the causal graph: everything stamped with one span
/// id, from the head's grant to the final verdict.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanNode {
    /// The span id (allocated by the pool at grant time).
    pub span: u64,
    /// The execution this one was caused by (speculation/replica lineage).
    pub parent: Option<u64>,
    /// The processing site, when any tagged event carried it.
    pub site: Option<SiteId>,
    /// The chunk being executed.
    pub chunk: Option<ChunkId>,
    /// Earliest event timestamp (ns).
    pub first_ns: u64,
    /// Latest event end (ns, span durations included).
    pub last_ns: u64,
    /// Events stamped with this span.
    pub events: u32,
    /// True when this execution's result was accepted for merging.
    pub merged: bool,
}

/// The causal DAG of one run: span-id keyed executions with lineage edges.
#[derive(Debug, Clone, Default)]
pub struct SpanDag {
    /// All tracked executions, keyed by span id.
    pub nodes: BTreeMap<u64, SpanNode>,
}

impl SpanDag {
    /// Reconstruct the DAG from an event stream (events without a span tag
    /// — run-scoped phases, heartbeats, legacy artifacts — are ignored).
    #[must_use]
    pub fn from_events(events: &[Event]) -> SpanDag {
        let mut nodes: BTreeMap<u64, SpanNode> = BTreeMap::new();
        for e in events {
            let Some(span) = e.span else { continue };
            let node = nodes.entry(span).or_insert(SpanNode {
                span,
                parent: None,
                site: None,
                chunk: None,
                first_ns: e.at_ns,
                last_ns: 0,
                events: 0,
                merged: false,
            });
            node.events += 1;
            node.first_ns = node.first_ns.min(e.at_ns);
            node.last_ns = node.last_ns.max(e.at_ns + e.dur_ns);
            if e.parent.is_some() {
                node.parent = e.parent;
            }
            if e.site.is_some() {
                node.site = e.site;
            }
            if e.chunk.is_some() {
                node.chunk = e.chunk;
            }
            if let EventKind::JobCompleted { merged: true, .. } = e.kind {
                node.merged = true;
            }
        }
        SpanDag { nodes }
    }

    /// Number of tracked executions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when no event carried a span (untracked/legacy stream).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Executions launched as duplicates of another (speculative copies and
    /// proactive replicas) — the nodes with a lineage edge.
    #[must_use]
    pub fn duplicates(&self) -> usize {
        self.nodes.values().filter(|n| n.parent.is_some()).count()
    }

    /// Longest lineage chain, in nodes (1 = no re-executions anywhere; 0
    /// for an empty DAG). Bounded by the node count, so a malformed parent
    /// cycle cannot hang the walk.
    #[must_use]
    pub fn depth(&self) -> usize {
        let cap = self.nodes.len();
        let mut best = 0usize;
        for node in self.nodes.values() {
            let mut len = 1usize;
            let mut cur = node.parent;
            while let Some(p) = cur {
                if len > cap {
                    break; // cycle guard
                }
                match self.nodes.get(&p) {
                    Some(n) => {
                        len += 1;
                        cur = n.parent;
                    }
                    None => break, // parent outside the recorded window
                }
            }
            best = best.max(len);
        }
        best
    }
}

/// Where the makespan went: seven exhaustive categories that sum to
/// [`Attribution::makespan`] by construction (up to float rounding).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Attribution {
    /// End-to-end run time (seconds) being attributed.
    pub makespan: Seconds,
    /// Critical-lane time retrieving over WAN-class storage (the inter-site
    /// link, or any cloud-site read — cloud storage is S3).
    pub wan_fetch: Seconds,
    /// Critical-lane time retrieving from campus-cluster (LAN) storage.
    pub local_fetch: Seconds,
    /// Critical-lane time inside the reduction processing chunks.
    pub compute: Seconds,
    /// Critical-lane gaps with no fault activity: waiting on grants and the
    /// master RPC (includes pipeline ramp-up).
    pub pool_wait: Seconds,
    /// Critical-lane gaps overlapping fault activity: lease reaps,
    /// evacuations, storage retries, lost speculation — re-execution tax.
    pub recovery: Seconds,
    /// Local site merge plus the global reduction tail.
    pub reduction: Seconds,
    /// Inter-phase slack: the critical worker waiting for the merge, or the
    /// critical site waiting for global reduction to start.
    pub idle: Seconds,
}

impl Attribution {
    /// Total across all categories; equals [`Attribution::makespan`] up to
    /// float rounding.
    #[must_use]
    pub fn total(&self) -> Seconds {
        self.wan_fetch
            + self.local_fetch
            + self.compute
            + self.pool_wait
            + self.recovery
            + self.reduction
            + self.idle
    }

    /// True when the categories account for the makespan within tolerance —
    /// the self-check `cloudburst explain` gates on.
    #[must_use]
    pub fn agrees(&self) -> bool {
        (self.total() - self.makespan).abs() <= self.makespan.abs() * 1e-6 + 1e-9
    }

    /// Every `(category, seconds)` pair, in declaration order.
    #[must_use]
    pub fn parts(&self) -> [(&'static str, Seconds); 7] {
        [
            ("wan_fetch", self.wan_fetch),
            ("local_fetch", self.local_fetch),
            ("compute", self.compute),
            ("pool_wait", self.pool_wait),
            ("recovery", self.recovery),
            ("reduction", self.reduction),
            ("idle", self.idle),
        ]
    }

    /// The largest category — the verdict's headline.
    #[must_use]
    pub fn dominant(&self) -> (&'static str, Seconds) {
        let mut best = ("idle", f64::NEG_INFINITY);
        for (name, secs) in self.parts() {
            if secs > best.1 {
                best = (name, secs);
            }
        }
        best
    }

    /// The machine-readable form (category keys are deliberately not bench
    /// metric names, so `bench-diff` treats them as informational).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj().field("makespan", Json::F64(self.makespan));
        for (name, secs) in self.parts() {
            j = j.field(name, Json::F64(secs));
        }
        j
    }
}

/// One segment of the critical path (seconds, `[start, end)`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PathSegment {
    /// Segment start, seconds since the run epoch.
    pub start: Seconds,
    /// Segment end.
    pub end: Seconds,
    /// Attribution category of the segment (`compute`, `wan_fetch`,
    /// `local_fetch`, or `reduction` — the path keeps busy work only).
    pub category: &'static str,
}

/// Everything `cloudburst explain` reports about one run.
#[derive(Debug, Clone)]
pub struct RunAnalysis {
    /// The makespan attribution.
    pub attribution: Attribution,
    /// The last site to finish — the one the run waited for.
    pub critical_site: Option<SiteId>,
    /// The critical site's last slave to finish.
    pub critical_worker: Option<u32>,
    /// Busy segments of the critical chain, in time order.
    pub critical_path: Vec<PathSegment>,
    /// The reconstructed causal DAG.
    pub dag: SpanDag,
    /// Events analyzed.
    pub events: usize,
}

impl RunAnalysis {
    /// Total busy time on the critical path; provably ≤ the makespan since
    /// the path holds disjoint sub-intervals of `[0, makespan]`.
    #[must_use]
    pub fn critical_path_secs(&self) -> Seconds {
        self.critical_path.iter().map(|s| s.end - s.start).sum()
    }

    /// The machine-readable form (the `--json` artifact of `explain`).
    #[must_use]
    pub fn to_json(&self) -> Json {
        let (dominant, dominant_secs) = self.attribution.dominant();
        Json::obj()
            .field("events", Json::U64(self.events as u64))
            .field("attribution", self.attribution.to_json())
            .field("attribution_total", Json::F64(self.attribution.total()))
            .field("dominant", Json::Str(dominant.into()))
            .field("dominant_share", Json::F64(share(dominant_secs, self.attribution.makespan)))
            .field(
                "critical_site",
                self.critical_site.map_or(Json::Null, |s| Json::Str(s.to_string())),
            )
            .field(
                "critical_worker",
                self.critical_worker.map_or(Json::Null, |w| Json::U64(u64::from(w))),
            )
            .field(
                "critical_path",
                Json::obj()
                    .field("segments", Json::U64(self.critical_path.len() as u64))
                    .field("busy", Json::F64(self.critical_path_secs())),
            )
            .field(
                "spans",
                Json::obj()
                    .field("tracked", Json::U64(self.dag.len() as u64))
                    .field("duplicates", Json::U64(self.dag.duplicates() as u64))
                    .field("lineage_depth", Json::U64(self.dag.depth() as u64)),
            )
    }
}

fn share(part: Seconds, whole: Seconds) -> f64 {
    if whole > 0.0 {
        part / whole
    } else {
        0.0
    }
}

/// True for kinds that witness fault-path activity; a critical-lane gap
/// containing one is attributed to recovery rather than pool wait.
fn is_fault(kind: EventKind) -> bool {
    matches!(
        kind,
        EventKind::LeaseReaped
            | EventKind::JobEvacuated
            | EventKind::SiteEvacuated
            | EventKind::LostResult { .. }
            | EventKind::JobFailed
            | EventKind::JobAbandoned
            | EventKind::StorageRetry { .. }
            | EventKind::SpeculationResolved { won: false }
    )
}

/// Reconstruct one run from its event stream and attribute the makespan.
///
/// The walk is backward from the end of the run through ordered, clamped
/// boundaries `0 ≤ worker_end ≤ merge_start ≤ site_end ≤ reduction_start ≤
/// makespan`:
///
/// * `[reduction_start, makespan]` — global reduction;
/// * `[site_end, reduction_start]` — idle (the critical site waiting for
///   the phase barrier);
/// * `[merge_start, site_end]` — the site's local merge (reduction);
/// * `[worker_end, merge_start]` — idle (merge waits on other slaves);
/// * `[0, worker_end]` — the critical slave's lane, swept interval by
///   interval: processing wins over fetch when they overlap (pipelining —
///   only *exposed* fetch time is charged), WAN-class fetch over LAN fetch,
///   and uncovered gaps become recovery (fault events inside) or pool wait.
///
/// Because the boundaries are clamped into order and the sweep is
/// exhaustive over the lane, the categories sum to the makespan exactly.
///
/// # Errors
/// Fails on an empty stream — there is nothing to attribute.
pub fn analyze(events: &[Event]) -> Result<RunAnalysis, String> {
    if events.is_empty() {
        return Err("no events to analyze".to_owned());
    }
    let end_ns =
        events.iter().map(|e| e.at_ns + e.dur_ns).max().expect("non-empty stream has a max");
    let makespan_ns = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::RunFinished))
        .map(|e| e.at_ns)
        .max()
        .unwrap_or(end_ns);
    let makespan = ns_to_secs(makespan_ns);

    let reduction_start = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::GlobalReduction))
        .map(|e| ns_to_secs(e.at_ns))
        .fold(f64::NEG_INFINITY, f64::max)
        .clamp(0.0, makespan);
    let reduction_start = if reduction_start.is_finite() { reduction_start } else { makespan };

    // The critical site: the one whose completion the run waited for.
    let critical_site = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SiteFinished))
        .max_by_key(|e| e.at_ns)
        .and_then(|e| e.site);
    let at_crit_site = |e: &&Event| critical_site.is_none() || e.site == critical_site;
    let site_end = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SiteFinished))
        .filter(at_crit_site)
        .map(|e| ns_to_secs(e.at_ns))
        .fold(f64::NEG_INFINITY, f64::max)
        .clamp(0.0, reduction_start);
    let site_end = if site_end.is_finite() { site_end } else { reduction_start };
    let merge_start = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SiteMerged))
        .filter(at_crit_site)
        .map(|e| ns_to_secs(e.at_ns))
        .fold(f64::NEG_INFINITY, f64::max)
        .clamp(0.0, site_end);
    let merge_start = if merge_start.is_finite() { merge_start } else { site_end };

    // The critical slave: the last one to finish at the critical site.
    let critical_finish = events
        .iter()
        .filter(|e| matches!(e.kind, EventKind::SlaveFinished))
        .filter(at_crit_site)
        .max_by_key(|e| e.at_ns);
    let critical_worker = critical_finish.and_then(|e| e.worker);
    let worker_end =
        critical_finish.map_or(merge_start, |e| ns_to_secs(e.at_ns)).clamp(0.0, merge_start);

    // ---- The critical slave's lane: an exhaustive interval sweep. ----
    // Priorities: compute(0) wins over exposed WAN fetch(1) over LAN
    // fetch(2); the numbering doubles as the sweep's tie-break.
    let on_lane = |e: &&Event| {
        (critical_site.is_none() || e.site == critical_site)
            && (critical_worker.is_none() || e.worker == critical_worker)
    };
    let mut lane: Vec<(f64, f64, u8)> = Vec::new();
    for e in events.iter().filter(on_lane) {
        let prio = match e.kind {
            EventKind::JobProcessed => 0,
            // Cloud-site storage is S3: every cloud read is WAN-class even
            // when it never crossed the inter-site link (module docs).
            EventKind::ChunkFetched { remote, .. } => {
                if remote || e.site != Some(SiteId::LOCAL) {
                    1
                } else {
                    2
                }
            }
            _ => continue,
        };
        let start = ns_to_secs(e.at_ns).max(0.0);
        let end = ns_to_secs(e.at_ns + e.dur_ns).min(worker_end);
        if end > start {
            lane.push((start, end, prio));
        }
    }
    let mut faults: Vec<f64> =
        events.iter().filter(|e| is_fault(e.kind)).map(|e| ns_to_secs(e.at_ns)).collect();
    faults.sort_unstable_by(f64::total_cmp);
    let fault_within = |a: f64, b: f64| {
        let from = faults.partition_point(|&t| t < a);
        faults.get(from).is_some_and(|&t| t <= b)
    };

    let mut cuts: Vec<f64> = vec![0.0, worker_end];
    for &(s, e, _) in &lane {
        cuts.push(s);
        cuts.push(e);
    }
    cuts.sort_unstable_by(f64::total_cmp);
    cuts.dedup();

    let mut attribution = Attribution { makespan, ..Attribution::default() };
    let mut path: Vec<PathSegment> = Vec::new();
    let push_segment = |path: &mut Vec<PathSegment>, start: f64, end: f64, cat| {
        // Coalesce with the previous segment when the category continues.
        if let Some(last) = path.last_mut() {
            if last.category == cat && (start - last.end).abs() <= 1e-12 {
                last.end = end;
                return;
            }
        }
        path.push(PathSegment { start, end, category: cat });
    };
    for w in cuts.windows(2) {
        let (a, b) = (w[0], w[1]);
        if b <= a || a >= worker_end {
            continue;
        }
        let mid = 0.5 * (a + b);
        let covering =
            lane.iter().filter(|&&(s, e, _)| s <= mid && mid < e).map(|&(_, _, p)| p).min();
        let len = b - a;
        match covering {
            Some(0) => {
                attribution.compute += len;
                push_segment(&mut path, a, b, "compute");
            }
            Some(1) => {
                attribution.wan_fetch += len;
                push_segment(&mut path, a, b, "wan_fetch");
            }
            Some(_) => {
                attribution.local_fetch += len;
                push_segment(&mut path, a, b, "local_fetch");
            }
            None if fault_within(a, b) => attribution.recovery += len,
            None => attribution.pool_wait += len,
        }
    }

    // ---- The phase boundaries above the lane. ----
    attribution.idle += merge_start - worker_end;
    attribution.reduction += site_end - merge_start;
    if site_end > merge_start {
        push_segment(&mut path, merge_start, site_end, "reduction");
    }
    attribution.idle += reduction_start - site_end;
    attribution.reduction += makespan - reduction_start;
    if makespan > reduction_start {
        push_segment(&mut path, reduction_start, makespan, "reduction");
    }

    Ok(RunAnalysis {
        attribution,
        critical_site,
        critical_worker,
        critical_path: path,
        dag: SpanDag::from_events(events),
        events: events.len(),
    })
}

/// Whether a smaller or larger value of a benchmark leaf is an improvement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Latencies, runtimes, overhead ratios: smaller is better.
    LowerBetter,
    /// Speedups: larger is better.
    HigherBetter,
    /// Descriptive values (counts, configuration): never gated.
    Neutral,
}

/// The direction of one leaf, decided by the *last* key on its path, so
/// nested shapes like `fetch_seconds.p99` or `depths[0].seconds` gate on
/// the leaf metric, not the grouping.
fn direction_of(key: &str) -> Direction {
    match key {
        "seconds" | "p50" | "p95" | "p99" | "metrics_overhead" => Direction::LowerBetter,
        "speedup" => Direction::HigherBetter,
        _ => Direction::Neutral,
    }
}

/// One numeric leaf present in both benchmark artifacts.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    /// Dotted/indexed path of the leaf (e.g. `depths[0].seconds`).
    pub path: String,
    /// The baseline value.
    pub old: f64,
    /// The candidate value.
    pub new: f64,
    /// Whether smaller or larger is better here.
    pub direction: Direction,
}

impl BenchDelta {
    /// Fractional change relative to the baseline (`0.1` = +10%); ±∞ when
    /// the baseline is zero and the candidate is not.
    #[must_use]
    pub fn change(&self) -> f64 {
        if self.old == 0.0 {
            if self.new == 0.0 {
                0.0
            } else {
                f64::INFINITY * self.new.signum()
            }
        } else {
            (self.new - self.old) / self.old.abs()
        }
    }

    /// True when the leaf moved in its "worse" direction by more than
    /// `threshold` (fractional: `0.1` = 10%).
    #[must_use]
    pub fn is_regression(&self, threshold: f64) -> bool {
        match self.direction {
            Direction::LowerBetter => self.change() > threshold,
            Direction::HigherBetter => self.change() < -threshold,
            Direction::Neutral => false,
        }
    }

    /// The effective regression threshold for this leaf, given the
    /// caller's base threshold. Histogram-derived quantile leaves
    /// (`p50`/`p95`/`p99`) are quantized to ~7–10%-wide buckets and sample
    /// real per-chunk scheduling tails, so a one-bucket move is
    /// measurement granularity rather than a regression: they gate at no
    /// less than 25% (two-plus buckets). Every other leaf gates at the
    /// base threshold.
    #[must_use]
    pub fn gate_threshold(&self, base: f64) -> f64 {
        let leaf = self.path.rsplit('.').next().unwrap_or("");
        if matches!(leaf, "p50" | "p95" | "p99") {
            base.max(0.25)
        } else {
            base
        }
    }
}

/// Compare two benchmark artifacts leaf-by-leaf. Only numeric leaves
/// reachable in **both** documents are compared (a renamed or added metric
/// is not a regression); array elements pair by index. The caller filters
/// with [`BenchDelta::is_regression`].
#[must_use]
pub fn diff_benchmarks(old: &Json, new: &Json) -> Vec<BenchDelta> {
    fn walk(old: &Json, new: &Json, path: &str, key: &str, out: &mut Vec<BenchDelta>) {
        match (old, new) {
            (Json::Obj(fields), Json::Obj(_)) => {
                for (k, ov) in fields {
                    if let Some(nv) = new.get(k) {
                        let sub = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                        walk(ov, nv, &sub, k, out);
                    }
                }
            }
            (Json::Arr(o), Json::Arr(n)) => {
                for (i, (ov, nv)) in o.iter().zip(n.iter()).enumerate() {
                    walk(ov, nv, &format!("{path}[{i}]"), key, out);
                }
            }
            _ => {
                if let (Some(a), Some(b)) = (old.as_f64(), new.as_f64()) {
                    out.push(BenchDelta {
                        path: path.to_owned(),
                        old: a,
                        new: b,
                        direction: direction_of(key),
                    });
                }
            }
        }
    }
    let mut out = Vec::new();
    walk(old, new, "", "", &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::telemetry::secs_to_ns;

    /// A two-site run shaped like the paper's: cloud is the critical site
    /// (its reads are S3 = WAN-class), one slave per site, a local merge
    /// and a global reduction tail.
    fn sample_run() -> Vec<Event> {
        let s = secs_to_ns;
        let cloud = SiteId::CLOUD;
        let local = SiteId::LOCAL;
        let tag =
            |e: Event, site, w, c, span| e.site(site).worker(w).chunk(ChunkId(c)).span_id(span);
        vec![
            // Local worker: one LAN fetch + compute, finishes early.
            tag(
                Event::span(
                    s(0.1),
                    s(0.2),
                    EventKind::ChunkFetched { bytes: 64, remote: false, retries: 0 },
                ),
                local,
                0,
                0,
                1,
            ),
            tag(Event::span(s(0.3), s(0.5), EventKind::JobProcessed), local, 0, 0, 1),
            Event::at(s(0.8), EventKind::SlaveFinished).site(local).worker(0),
            Event::span(s(0.8), s(0.1), EventKind::SiteMerged).site(local),
            Event::at(s(0.9), EventKind::SiteFinished).site(local),
            // Cloud worker: startup wait, S3 fetch, compute, a recovery
            // stall (lease reap lands inside it), then a second chunk.
            tag(
                Event::span(
                    s(0.5),
                    s(1.0),
                    EventKind::ChunkFetched { bytes: 64, remote: false, retries: 0 },
                ),
                cloud,
                0,
                1,
                2,
            ),
            tag(Event::span(s(1.5), s(0.5), EventKind::JobProcessed), cloud, 0, 1, 2),
            Event::at(s(2.2), EventKind::LeaseReaped).site(cloud).chunk(ChunkId(2)).span_id(3),
            tag(
                Event::span(
                    s(2.5),
                    s(0.5),
                    EventKind::ChunkFetched { bytes: 64, remote: true, retries: 0 },
                ),
                cloud,
                0,
                2,
                4,
            ),
            tag(Event::span(s(3.0), s(0.5), EventKind::JobProcessed), cloud, 0, 2, 4),
            Event::at(s(3.5), EventKind::SlaveFinished).site(cloud).worker(0),
            Event::span(s(3.6), s(0.2), EventKind::SiteMerged).site(cloud),
            Event::at(s(3.8), EventKind::SiteFinished).site(cloud),
            Event::span(s(3.8), s(0.2), EventKind::GlobalReduction),
            Event::at(s(4.0), EventKind::RunFinished),
        ]
    }

    #[test]
    fn attribution_sums_to_makespan_and_finds_the_critical_chain() {
        let run = analyze(&sample_run()).unwrap();
        let a = run.attribution;
        assert!((a.makespan - 4.0).abs() < 1e-9);
        assert!(a.agrees(), "total {} vs makespan {}", a.total(), a.makespan);
        assert_eq!(run.critical_site, Some(SiteId::CLOUD));
        assert_eq!(run.critical_worker, Some(0));
        // Lane arithmetic: 0.5 pool wait (no faults before the first
        // fetch), 1.5 WAN-class fetch (both cloud reads), 1.0 compute,
        // 0.5 recovery (the reap lands inside the [2.0, 2.5] gap), then
        // 0.1 idle until the merge, 0.2 local merge, 0.2 global reduction.
        assert!((a.pool_wait - 0.5).abs() < 1e-9, "pool_wait {}", a.pool_wait);
        assert!((a.wan_fetch - 1.5).abs() < 1e-9, "wan_fetch {}", a.wan_fetch);
        assert!((a.compute - 1.0).abs() < 1e-9, "compute {}", a.compute);
        assert!((a.recovery - 0.5).abs() < 1e-9, "recovery {}", a.recovery);
        assert!((a.idle - 0.1).abs() < 1e-9, "idle {}", a.idle);
        assert!((a.reduction - 0.4).abs() < 1e-9, "reduction {}", a.reduction);
        assert_eq!(a.local_fetch, 0.0, "cloud reads are never LAN-class");
        assert_eq!(a.dominant().0, "wan_fetch");
        // The critical path is busy time only, so it can't exceed the
        // makespan; here it excludes exactly the waits (0.5 + 0.5 + 0.1).
        assert!(run.critical_path_secs() <= a.makespan);
        assert!((run.critical_path_secs() - 2.9).abs() < 1e-9);
        assert!(run.critical_path.windows(2).all(|w| w[0].end <= w[1].start + 1e-12));
    }

    #[test]
    fn dag_reconstructs_lineage() {
        let mut events = sample_run();
        // A speculative copy of span 2, granted as its child.
        events.push(
            Event::at(secs_to_ns(2.0), EventKind::JobGranted { stolen: true, speculative: true })
                .site(SiteId::LOCAL)
                .chunk(ChunkId(1))
                .span_id(9)
                .cause(2),
        );
        let dag = SpanDag::from_events(&events);
        assert_eq!(dag.len(), 5, "spans 1,2,3,4,9");
        assert_eq!(dag.duplicates(), 1);
        assert_eq!(dag.depth(), 2, "9 -> 2");
        assert_eq!(dag.nodes[&9].parent, Some(2));
        assert_eq!(dag.nodes[&9].chunk, Some(ChunkId(1)));
        assert!(!dag.nodes[&9].merged);
    }

    #[test]
    fn analyze_handles_empty_and_reduction_only_streams() {
        assert!(analyze(&[]).is_err());
        // A stream with no worker events at all still attributes cleanly.
        let events = vec![
            Event::span(0, secs_to_ns(1.0), EventKind::GlobalReduction),
            Event::at(secs_to_ns(1.0), EventKind::RunFinished),
        ];
        let run = analyze(&events).unwrap();
        assert!(run.attribution.agrees());
        assert!((run.attribution.reduction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jsonl_parse_skips_unknown_kinds_but_rejects_garbage() {
        let text =
            "\n{\"at_ns\":5,\"kind\":\"heartbeat\"}\n{\"at_ns\":6,\"kind\":\"quantum-leap\"}\n";
        let (events, skipped) = parse_events_jsonl(text).unwrap();
        assert_eq!(events.len(), 1);
        assert_eq!(skipped, 1);
        assert!(parse_events_jsonl("not json\n").unwrap_err().contains("line 1"));
        assert!(parse_events_jsonl("{\"kind\":\"heartbeat\"}\n").unwrap_err().contains("at_ns"));
    }

    #[test]
    fn sequence_audit_finds_gaps_and_duplicates() {
        let ev = |seq| {
            let mut e = Event::at(1, EventKind::Heartbeat);
            e.seq = seq;
            e
        };
        // Unstamped stream: passes vacuously.
        let ok = check_sequence(&[ev(0), ev(0)]).unwrap();
        assert_eq!(ok, SeqCheck { stamped: 0, max: 0 });
        // Complete but out of recorded order: the *set* is what matters.
        let ok = check_sequence(&[ev(2), ev(1), ev(3)]).unwrap();
        assert_eq!(ok, SeqCheck { stamped: 3, max: 3 });
        assert!(check_sequence(&[ev(1), ev(3)]).unwrap_err().contains("gap"));
        assert!(check_sequence(&[ev(1), ev(1)]).unwrap_err().contains("duplicate"));
        assert!(check_sequence(&[ev(2), ev(3)]).unwrap_err().contains("gap"));
    }

    fn bench_doc(seconds: f64, speedup: f64) -> Json {
        Json::obj()
            .field("chunks", Json::U64(48))
            .field(
                "depths",
                Json::Arr(vec![Json::obj()
                    .field("depth", Json::U64(1))
                    .field("seconds", Json::F64(seconds))]),
            )
            .field("speedup", Json::F64(speedup))
            .field("fetch_seconds", Json::obj().field("p99", Json::F64(0.01)))
    }

    #[test]
    fn bench_diff_flags_regressions_in_both_directions() {
        let base = bench_doc(1.0, 1.4);
        // 20% slower and a speedup collapse: two regressions at 10%.
        let worse = bench_doc(1.2, 1.1);
        let deltas = diff_benchmarks(&base, &worse);
        let regressions: Vec<&BenchDelta> =
            deltas.iter().filter(|d| d.is_regression(0.10)).collect();
        assert_eq!(regressions.len(), 2);
        assert_eq!(regressions[0].path, "depths[0].seconds");
        assert!((regressions[0].change() - 0.2).abs() < 1e-9);
        assert_eq!(regressions[1].path, "speedup");
        // Improvements and within-threshold noise pass.
        let better = bench_doc(0.9, 1.5);
        assert!(diff_benchmarks(&base, &better).iter().all(|d| !d.is_regression(0.10)));
        let noise = bench_doc(1.05, 1.4);
        assert!(diff_benchmarks(&base, &noise).iter().all(|d| !d.is_regression(0.10)));
        // Neutral keys (counts) never gate, even when they change wildly.
        let mut counted = bench_doc(1.0, 1.4);
        if let Json::Obj(fields) = &mut counted {
            fields[0].1 = Json::U64(9000);
        }
        assert!(diff_benchmarks(&base, &counted).iter().all(|d| !d.is_regression(0.10)));
        // A leaf missing from one side is not compared at all.
        let partial = Json::obj().field("speedup", Json::F64(1.4));
        assert_eq!(diff_benchmarks(&base, &partial).len(), 1);
    }

    #[test]
    fn quantile_leaves_gate_at_a_bucket_aware_threshold() {
        // A one-bucket (~10%) move on a histogram quantile is measurement
        // granularity; the widened gate only trips past two-plus buckets.
        let q = BenchDelta {
            path: "process_seconds.p99".into(),
            old: 0.00944,
            new: 0.01153,
            direction: Direction::LowerBetter,
        };
        assert_eq!(q.gate_threshold(0.10), 0.25);
        assert!(q.is_regression(0.10), "raw 10% would flag the bucket move");
        assert!(!q.is_regression(q.gate_threshold(0.10)), "bucket-aware gate must not");
        let big = BenchDelta { new: 0.00944 * 1.4, ..q.clone() };
        assert!(big.is_regression(big.gate_threshold(0.10)), "a 40% move is a real regression");
        // Non-quantile leaves keep the caller's threshold.
        let s = BenchDelta {
            path: "depths[0].seconds".into(),
            old: 1.0,
            new: 1.2,
            direction: Direction::LowerBetter,
        };
        assert_eq!(s.gate_threshold(0.10), 0.10);
        // A base threshold looser than the bucket floor wins.
        assert_eq!(q.gate_threshold(0.5), 0.5);
    }

    #[test]
    fn bench_delta_change_handles_zero_baselines() {
        let d =
            BenchDelta { path: "x".into(), old: 0.0, new: 0.0, direction: Direction::LowerBetter };
        assert_eq!(d.change(), 0.0);
        assert!(!d.is_regression(0.1));
        let d = BenchDelta { new: 1.0, ..d };
        assert!(d.change().is_infinite());
        assert!(d.is_regression(0.1));
    }
}
