//! A library of ready-made reduction objects (paper §III-A: "A user can
//! choose from one of the several common combination functions already
//! implemented in the generalized reduction system library (such as
//! aggregation, concatenation, etc.), or they can provide one of their own").
//!
//! Every type here implements [`Merge`] (associative + commutative) and
//! [`ReductionObject`], so it can be used directly as an application's
//! accumulator or composed into larger ones (tuples of reduction objects
//! merge component-wise).

use crate::reduction::{Merge, ReductionObject};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::hash::Hash;
use std::mem;
use std::ops::AddAssign;

// ---------------------------------------------------------------------------
// Scalar aggregation
// ---------------------------------------------------------------------------

/// Sum of numeric contributions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Sum<T>(pub T);

impl<T: AddAssign> Merge for Sum<T> {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

impl<T: AddAssign + Send + 'static> ReductionObject for Sum<T> {
    fn byte_size(&self) -> usize {
        mem::size_of::<T>()
    }
}

/// Count of observed elements.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Count(pub u64);

impl Count {
    /// Record one more element.
    pub fn bump(&mut self) {
        self.0 += 1;
    }
}

impl Merge for Count {
    fn merge(&mut self, other: Self) {
        self.0 += other.0;
    }
}

impl ReductionObject for Count {
    fn byte_size(&self) -> usize {
        8
    }
}

/// Running minimum and maximum.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct MinMax<T> {
    /// Smallest value observed so far, if any.
    pub min: Option<T>,
    /// Largest value observed so far, if any.
    pub max: Option<T>,
}

impl<T: PartialOrd + Copy> MinMax<T> {
    /// Fold one value into the running extremes.
    pub fn observe(&mut self, v: T) {
        match self.min {
            Some(m) if m <= v => {}
            _ => self.min = Some(v),
        }
        match self.max {
            Some(m) if m >= v => {}
            _ => self.max = Some(v),
        }
    }
}

impl<T: PartialOrd + Copy> Merge for MinMax<T> {
    fn merge(&mut self, other: Self) {
        if let Some(v) = other.min {
            self.observe(v);
        }
        if let Some(v) = other.max {
            self.observe(v);
        }
    }
}

impl<T: PartialOrd + Copy + Send + 'static> ReductionObject for MinMax<T> {
    fn byte_size(&self) -> usize {
        2 * mem::size_of::<Option<T>>()
    }
}

/// Arithmetic mean via (sum, count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct Mean {
    /// Sum of all observations.
    pub sum: f64,
    /// Number of observations.
    pub count: u64,
}

impl Mean {
    /// Fold one value into the running mean.
    pub fn observe(&mut self, v: f64) {
        self.sum += v;
        self.count += 1;
    }

    /// The mean, or `None` before any observation.
    #[must_use]
    pub fn value(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

impl Merge for Mean {
    fn merge(&mut self, other: Self) {
        self.sum += other.sum;
        self.count += other.count;
    }
}

impl ReductionObject for Mean {
    fn byte_size(&self) -> usize {
        16
    }
}

// ---------------------------------------------------------------------------
// Vector / array aggregation
// ---------------------------------------------------------------------------

/// Element-wise vector addition — the accumulator shape of k-means (per-
/// centroid coordinate sums) and PageRank (per-page rank mass).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VecAdd(pub Vec<f64>);

impl VecAdd {
    /// A zero vector of dimension `n`.
    #[must_use]
    pub fn zeros(n: usize) -> VecAdd {
        VecAdd(vec![0.0; n])
    }
}

impl Merge for VecAdd {
    /// # Panics
    /// Panics when the dimensions differ: merging accumulators of different
    /// shapes is an application bug, not a recoverable condition.
    fn merge(&mut self, other: Self) {
        assert_eq!(self.0.len(), other.0.len(), "VecAdd dimension mismatch");
        for (a, b) in self.0.iter_mut().zip(other.0) {
            *a += b;
        }
    }
}

impl ReductionObject for VecAdd {
    fn byte_size(&self) -> usize {
        self.0.len() * 8
    }
}

/// Fixed-bin histogram over `[lo, hi)`; out-of-range values clamp to the
/// edge bins.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Inclusive lower bound of the binned range.
    pub lo: f64,
    /// Exclusive upper bound of the binned range.
    pub hi: f64,
    /// Observation counts per bin.
    pub bins: Vec<u64>,
}

impl Histogram {
    /// # Panics
    /// Panics if `n_bins == 0` or `lo >= hi`.
    #[must_use]
    pub fn new(lo: f64, hi: f64, n_bins: usize) -> Histogram {
        assert!(n_bins > 0, "histogram needs at least one bin");
        assert!(lo < hi, "histogram range must be non-empty");
        Histogram { lo, hi, bins: vec![0; n_bins] }
    }

    /// Fold one value into its bin (clamping to the edge bins).
    pub fn observe(&mut self, v: f64) {
        let n = self.bins.len();
        let t = (v - self.lo) / (self.hi - self.lo);
        let i = ((t * n as f64).floor() as i64).clamp(0, n as i64 - 1) as usize;
        self.bins[i] += 1;
    }

    /// Total number of observations.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.bins.iter().sum()
    }
}

impl Merge for Histogram {
    /// # Panics
    /// Panics when bin layouts differ.
    fn merge(&mut self, other: Self) {
        assert_eq!(self.bins.len(), other.bins.len(), "histogram bin-count mismatch");
        assert_eq!((self.lo, self.hi), (other.lo, other.hi), "histogram range mismatch");
        for (a, b) in self.bins.iter_mut().zip(other.bins) {
            *a += b;
        }
    }
}

impl ReductionObject for Histogram {
    fn byte_size(&self) -> usize {
        16 + self.bins.len() * 8
    }
}

// ---------------------------------------------------------------------------
// Concatenation and selection
// ---------------------------------------------------------------------------

/// Concatenation of per-worker results (order is unspecified, matching the
/// unordered processing contract).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Concat<T>(pub Vec<T>);

impl<T> Merge for Concat<T> {
    fn merge(&mut self, other: Self) {
        self.0.extend(other.0);
    }
}

impl<T: Send + 'static> ReductionObject for Concat<T> {
    fn byte_size(&self) -> usize {
        self.0.len() * mem::size_of::<T>()
    }
}

/// The `k` smallest elements seen — the accumulator shape of k-nearest
/// neighbors (elements are `(distance, id)` pairs).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopK<T: Ord> {
    k: usize,
    /// Invariant: sorted ascending, `len() <= k`.
    items: Vec<T>,
}

impl<T: Ord> TopK<T> {
    /// # Panics
    /// Panics if `k == 0`.
    #[must_use]
    pub fn new(k: usize) -> TopK<T> {
        assert!(k > 0, "TopK needs k >= 1");
        TopK { k, items: Vec::with_capacity(k + 1) }
    }

    /// The bound `k`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Current best elements, ascending.
    #[must_use]
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Offer one element; kept only if among the `k` smallest so far.
    pub fn observe(&mut self, v: T) {
        if self.items.len() == self.k {
            if let Some(last) = self.items.last() {
                if v >= *last {
                    return;
                }
            }
        }
        let pos = self.items.partition_point(|x| *x < v);
        self.items.insert(pos, v);
        self.items.truncate(self.k);
    }

    /// Consume and return the best elements, ascending.
    #[must_use]
    pub fn into_sorted(self) -> Vec<T> {
        self.items
    }
}

impl<T: Ord> Merge for TopK<T> {
    /// # Panics
    /// Panics when the two accumulators disagree on `k`.
    fn merge(&mut self, other: Self) {
        assert_eq!(self.k, other.k, "TopK k mismatch");
        for v in other.items {
            self.observe(v);
        }
    }
}

impl<T: Ord + Send + 'static> ReductionObject for TopK<T> {
    fn byte_size(&self) -> usize {
        8 + self.items.len() * mem::size_of::<T>()
    }
}

// ---------------------------------------------------------------------------
// Keyed aggregation
// ---------------------------------------------------------------------------

/// Keyed merge: a map whose values are themselves mergeable — the general
/// substitute for MapReduce's shuffle-by-key (e.g. wordcount uses
/// `MergeMap<String, Count>`).
#[derive(Debug, Clone, PartialEq)]
pub struct MergeMap<K: Eq + Hash, V: Merge>(pub HashMap<K, V>);

impl<K: Eq + Hash, V: Merge> Default for MergeMap<K, V> {
    fn default() -> Self {
        MergeMap(HashMap::new())
    }
}

impl<K: Eq + Hash, V: Merge> MergeMap<K, V> {
    /// Fold `value` into the entry for `key`.
    pub fn observe(&mut self, key: K, value: V) {
        use std::collections::hash_map::Entry;
        match self.0.entry(key) {
            Entry::Occupied(mut e) => e.get_mut().merge(value),
            Entry::Vacant(e) => {
                e.insert(value);
            }
        }
    }
}

impl<K: Eq + Hash, V: Merge> Merge for MergeMap<K, V> {
    fn merge(&mut self, other: Self) {
        for (k, v) in other.0 {
            self.observe(k, v);
        }
    }
}

impl<K, V> ReductionObject for MergeMap<K, V>
where
    K: Eq + Hash + Send + 'static,
    V: Merge + Send + 'static,
{
    fn byte_size(&self) -> usize {
        self.0.len() * (mem::size_of::<K>() + mem::size_of::<V>())
    }
}

// ---------------------------------------------------------------------------
// Composition
// ---------------------------------------------------------------------------

impl<A: Merge, B: Merge> Merge for (A, B) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
    }
}

impl<A: ReductionObject, B: ReductionObject> ReductionObject for (A, B) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size()
    }
}

impl<A: Merge, B: Merge, C: Merge> Merge for (A, B, C) {
    fn merge(&mut self, other: Self) {
        self.0.merge(other.0);
        self.1.merge(other.1);
        self.2.merge(other.2);
    }
}

impl<A: ReductionObject, B: ReductionObject, C: ReductionObject> ReductionObject for (A, B, C) {
    fn byte_size(&self) -> usize {
        self.0.byte_size() + self.1.byte_size() + self.2.byte_size()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_count_merge() {
        let mut s = Sum(3u64);
        s.merge(Sum(4));
        assert_eq!(s, Sum(7));
        let mut c = Count(2);
        c.bump();
        c.merge(Count(5));
        assert_eq!(c, Count(8));
    }

    #[test]
    fn minmax_tracks_extremes_across_merges() {
        let mut a = MinMax::default();
        a.observe(3.0);
        a.observe(-1.0);
        let mut b = MinMax::default();
        b.observe(10.0);
        a.merge(b);
        assert_eq!(a.min, Some(-1.0));
        assert_eq!(a.max, Some(10.0));
    }

    #[test]
    fn minmax_empty_merge_is_identity() {
        let mut a = MinMax::default();
        a.observe(5i32);
        let before = a;
        a.merge(MinMax::default());
        assert_eq!(a, before);
    }

    #[test]
    fn mean_of_split_streams_matches_whole() {
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let mut whole = Mean::default();
        xs.iter().for_each(|&x| whole.observe(x));
        let mut a = Mean::default();
        let mut b = Mean::default();
        xs[..2].iter().for_each(|&x| a.observe(x));
        xs[2..].iter().for_each(|&x| b.observe(x));
        a.merge(b);
        assert_eq!(a.value(), whole.value());
        assert_eq!(a.value(), Some(3.5));
    }

    #[test]
    fn mean_empty_has_no_value() {
        assert_eq!(Mean::default().value(), None);
    }

    #[test]
    fn vecadd_merges_elementwise() {
        let mut a = VecAdd(vec![1.0, 2.0]);
        a.merge(VecAdd(vec![10.0, 20.0]));
        assert_eq!(a.0, vec![11.0, 22.0]);
        assert_eq!(a.byte_size(), 16);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn vecadd_rejects_shape_mismatch() {
        VecAdd::zeros(2).merge(VecAdd::zeros(3));
    }

    #[test]
    fn histogram_bins_and_clamps() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        h.observe(0.0); // bin 0
        h.observe(9.99); // bin 4
        h.observe(-3.0); // clamp -> bin 0
        h.observe(42.0); // clamp -> bin 4
        h.observe(5.0); // bin 2
        assert_eq!(h.bins, vec![2, 0, 1, 0, 2]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn histogram_merge_adds_bins() {
        let mut a = Histogram::new(0.0, 1.0, 2);
        a.observe(0.1);
        let mut b = Histogram::new(0.0, 1.0, 2);
        b.observe(0.9);
        b.observe(0.2);
        a.merge(b);
        assert_eq!(a.bins, vec![2, 1]);
    }

    #[test]
    #[should_panic(expected = "range mismatch")]
    fn histogram_merge_rejects_different_ranges() {
        Histogram::new(0.0, 1.0, 2).merge(Histogram::new(0.0, 2.0, 2));
    }

    #[test]
    fn concat_appends() {
        let mut a = Concat(vec![1, 2]);
        a.merge(Concat(vec![3]));
        assert_eq!(a.0.len(), 3);
    }

    #[test]
    fn topk_keeps_k_smallest() {
        let mut t = TopK::new(3);
        for v in [9, 1, 8, 2, 7, 3] {
            t.observe(v);
        }
        assert_eq!(t.items(), &[1, 2, 3]);
    }

    #[test]
    fn topk_merge_equals_single_stream() {
        let vals = [5, 3, 8, 1, 9, 2, 7, 4, 6, 0];
        let mut whole = TopK::new(4);
        vals.iter().for_each(|&v| whole.observe(v));
        let mut a = TopK::new(4);
        let mut b = TopK::new(4);
        vals[..5].iter().for_each(|&v| a.observe(v));
        vals[5..].iter().for_each(|&v| b.observe(v));
        a.merge(b);
        assert_eq!(a.items(), whole.items());
        assert_eq!(a.into_sorted(), vec![0, 1, 2, 3]);
    }

    #[test]
    fn topk_duplicate_values_are_kept() {
        let mut t = TopK::new(3);
        for v in [2, 2, 2, 1] {
            t.observe(v);
        }
        assert_eq!(t.items(), &[1, 2, 2]);
    }

    #[test]
    fn mergemap_wordcount_style() {
        let mut a: MergeMap<&str, Count> = MergeMap::default();
        a.observe("cloud", Count(1));
        a.observe("burst", Count(1));
        let mut b: MergeMap<&str, Count> = MergeMap::default();
        b.observe("cloud", Count(2));
        a.merge(b);
        assert_eq!(a.0["cloud"], Count(3));
        assert_eq!(a.0["burst"], Count(1));
    }

    #[test]
    fn tuples_merge_componentwise() {
        let mut t = (Sum(1u64), Count(1));
        t.merge((Sum(2), Count(3)));
        assert_eq!(t, (Sum(3), Count(4)));
        let mut t3 = (Sum(1u64), Count(0), Mean::default());
        t3.merge((Sum(1), Count(1), Mean { sum: 2.0, count: 1 }));
        assert_eq!(t3.1, Count(1));
        assert_eq!(t3.2.value(), Some(2.0));
    }
}
