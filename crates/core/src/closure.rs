//! Define a Generalized Reduction application from plain closures — the
//! quickest way to put a one-off analysis on the framework without writing
//! a struct and trait impl.
//!
//! ```
//! use cloudburst_core::closure::from_fns;
//! use cloudburst_core::combiners::Sum;
//! use cloudburst_core::reduce_serial;
//!
//! // Sum all little-endian u32 records.
//! let app = from_fns(
//!     4,
//!     || Sum(0u64),
//!     |chunk, out: &mut Vec<u32>| {
//!         out.extend(chunk.chunks_exact(4).map(|b| u32::from_le_bytes(b.try_into().unwrap())));
//!     },
//!     |acc, item| acc.0 += u64::from(*item),
//! );
//! let bytes: Vec<u8> = [1u32, 2, 3].iter().flat_map(|v| v.to_le_bytes()).collect();
//! assert_eq!(reduce_serial(&app, [bytes.as_slice()]).0, 6);
//! ```

use crate::reduction::{Reduction, ReductionObject};

/// A [`Reduction`] assembled from closures. Build with [`from_fns`].
pub struct FnReduction<Item, RObj, Make, Decode, Reduce> {
    unit_size: usize,
    make: Make,
    decode: Decode,
    reduce: Reduce,
    _marker: std::marker::PhantomData<fn() -> (Item, RObj)>,
}

/// Assemble a [`Reduction`] from its three moving parts: a reduction-object
/// constructor, a chunk decoder, and the `proc(e)` step.
///
/// All closures must be `Send + Sync` (they are shared across worker
/// threads) and the item/robj types follow the usual framework bounds.
pub fn from_fns<Item, RObj, Make, Decode, Reduce>(
    unit_size: usize,
    make: Make,
    decode: Decode,
    reduce: Reduce,
) -> FnReduction<Item, RObj, Make, Decode, Reduce>
where
    Item: Send,
    RObj: ReductionObject,
    Make: Fn() -> RObj + Send + Sync,
    Decode: Fn(&[u8], &mut Vec<Item>) + Send + Sync,
    Reduce: Fn(&mut RObj, &Item) + Send + Sync,
{
    assert!(unit_size > 0, "unit size must be non-zero");
    FnReduction { unit_size, make, decode, reduce, _marker: std::marker::PhantomData }
}

impl<Item, RObj, Make, Decode, Reduce> Reduction for FnReduction<Item, RObj, Make, Decode, Reduce>
where
    Item: Send,
    RObj: ReductionObject,
    Make: Fn() -> RObj + Send + Sync,
    Decode: Fn(&[u8], &mut Vec<Item>) + Send + Sync,
    Reduce: Fn(&mut RObj, &Item) + Send + Sync,
{
    type Item = Item;
    type RObj = RObj;

    fn make_robj(&self) -> RObj {
        (self.make)()
    }

    fn unit_size(&self) -> usize {
        self.unit_size
    }

    fn decode(&self, chunk: &[u8], out: &mut Vec<Item>) {
        (self.decode)(chunk, out);
    }

    fn local_reduce(&self, robj: &mut RObj, item: &Item) {
        (self.reduce)(robj, item);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::combiners::{Count, Histogram, MinMax};
    use crate::reduction::{global_reduce, reduce_serial};

    fn f32_records(vals: &[f32]) -> Vec<u8> {
        vals.iter().flat_map(|v| v.to_le_bytes()).collect()
    }

    fn decode_f32(chunk: &[u8], out: &mut Vec<f32>) {
        out.extend(chunk.chunks_exact(4).map(|b| f32::from_le_bytes(b.try_into().unwrap())));
    }

    #[test]
    fn closure_app_counts_records() {
        let app = from_fns(4, || Count(0), decode_f32, |c: &mut Count, _| c.bump());
        let data = f32_records(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(reduce_serial(&app, [data.as_slice()]).0, 5);
    }

    #[test]
    fn closure_app_composes_with_combiners() {
        let app = from_fns(
            4,
            || (MinMax::default(), Histogram::new(0.0, 10.0, 5)),
            decode_f32,
            |(mm, h): &mut (MinMax<f32>, Histogram), &v| {
                mm.observe(v);
                h.observe(f64::from(v));
            },
        );
        let data = f32_records(&[1.0, 9.0, 4.0, 4.5]);
        let robj = reduce_serial(&app, [data.as_slice()]);
        assert_eq!(robj.0.min, Some(1.0));
        assert_eq!(robj.0.max, Some(9.0));
        assert_eq!(robj.1.total(), 4);
    }

    #[test]
    fn closure_app_split_merge_matches_serial() {
        let app = from_fns(4, || Count(0), decode_f32, |c: &mut Count, _| c.bump());
        let data = f32_records(&[0.0; 64]);
        let whole = reduce_serial(&app, [data.as_slice()]);
        let a = reduce_serial(&app, [&data[..128]]);
        let b = reduce_serial(&app, [&data[128..]]);
        assert_eq!(global_reduce([a, b]).unwrap(), whole);
    }

    #[test]
    fn closure_app_runs_on_worker_threads() {
        // The Send + Sync bounds must actually hold for scoped threads.
        let app = from_fns(4, || Count(0), decode_f32, |c: &mut Count, _| c.bump());
        let data = f32_records(&[0.0; 100]);
        let halves: Vec<&[u8]> = data.chunks(200).collect();
        let counts: Vec<Count> = std::thread::scope(|s| {
            halves
                .iter()
                .map(|chunk| s.spawn(|| reduce_serial(&app, [*chunk])))
                .collect::<Vec<_>>()
                .into_iter()
                .map(|h| h.join().unwrap())
                .collect()
        });
        assert_eq!(global_reduce(counts).unwrap().0, 100);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_unit_size_rejected() {
        let _ = from_fns(0, || Count(0), decode_f32, |c: &mut Count, _| c.bump());
    }
}
