//! Live run metrics: sharded atomic counters, gauges, and log-linear
//! (HDR-style) latency histograms, exposed through a registry that renders
//! Prometheus text exposition format 0.0.4.
//!
//! Telemetry (`crate::telemetry`) records *every* event; that is the right
//! shape for traces and post-hoc analysis but the wrong one for a live
//! operator view of a long run — per-event logs grow without bound and
//! answering "what is the steal rate right now" means replaying the log.
//! This module keeps *aggregates* instead, with the same cost discipline as
//! the telemetry handle:
//!
//! * **disabled = one branch.** Every instrument handle is an
//!   `Option<Arc<..>>`; a run built with [`Metrics::off`] pays a single
//!   well-predicted `None` test per would-be increment.
//! * **enabled = lock-free.** Counters are sharded across cache-line-padded
//!   atomics indexed by a per-thread shard id, so concurrent slaves never
//!   contend on one line; histograms are two relaxed `fetch_add`s.
//! * **bounded memory.** A histogram is a fixed 496-bucket log-linear grid
//!   (exact below 16, then 8 sub-buckets per power of two — ≤ 12.5%
//!   relative error) totalling ~4 KB regardless of how many values it
//!   absorbs.
//!
//! Registration (cold path) goes through [`Registry`], which deduplicates
//! by `(name, labels)` so re-registering returns the *same* instrument —
//! iterative applications accumulate across `run_hybrid` calls instead of
//! emitting duplicate series. [`Registry::render`] produces deterministic,
//! sorted exposition text; [`parse_exposition`] is the matching strict
//! parser/validator used by `cloudburst check-metrics` and the proptests.
//! [`MetricsServer`] is a dependency-free `/metrics` HTTP listener.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io::{self, Read as _, Write as _};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

// ---------------------------------------------------------------------------
// Sharded counters
// ---------------------------------------------------------------------------

/// Number of counter shards; a power of two so the thread id maps with a
/// mask. 16 shards × 64 B = 1 KB per counter, enough to keep a machine's
/// worth of slave threads off each other's cache lines.
const SHARDS: usize = 16;

/// One cache line holding one shard's partial count.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

static NEXT_THREAD: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Each thread gets a fixed shard assigned round-robin at first use.
    static THREAD_SHARD: usize = NEXT_THREAD.fetch_add(1, Ordering::Relaxed) & (SHARDS - 1);
}

#[inline]
fn thread_shard() -> usize {
    THREAD_SHARD.with(|s| *s)
}

/// Shared state of one counter series.
struct CounterCore {
    shards: [PaddedU64; SHARDS],
    /// Multiplier applied when rendering (1.0 for plain counts; 1e-9 for
    /// counters that accumulate nanoseconds but expose seconds).
    scale: f64,
}

impl CounterCore {
    fn new(scale: f64) -> CounterCore {
        CounterCore { shards: Default::default(), scale }
    }

    fn total(&self) -> u64 {
        self.shards.iter().map(|s| s.0.load(Ordering::Relaxed)).sum()
    }
}

/// A monotonically increasing counter. Cloning is cheap (an `Arc`); a
/// default-constructed or [`Counter::noop`] handle ignores increments.
#[derive(Clone, Default)]
pub struct Counter(Option<Arc<CounterCore>>);

impl Counter {
    /// A disabled counter: `add` is a single branch.
    #[must_use]
    pub fn noop() -> Counter {
        Counter(None)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(core) = &self.0 {
            core.shards[thread_shard()].0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current total across all shards (0 for a no-op handle).
    #[must_use]
    pub fn value(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.total())
    }
}

impl std::fmt::Debug for Counter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Counter({})", self.value())
    }
}

/// An instantaneous value (queue depth, pipeline occupancy).
#[derive(Clone, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// A disabled gauge.
    #[must_use]
    pub fn noop() -> Gauge {
        Gauge(None)
    }

    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Add `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        if let Some(g) = &self.0 {
            g.fetch_add(d, Ordering::Relaxed);
        }
    }

    /// Current value (0 for a no-op handle).
    #[must_use]
    pub fn value(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

impl std::fmt::Debug for Gauge {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Gauge({})", self.value())
    }
}

// ---------------------------------------------------------------------------
// Log-linear histograms
// ---------------------------------------------------------------------------

/// Total buckets in the fixed log-linear grid: values 0..15 get exact
/// buckets, then every power of two up to `u64::MAX` is split into 8 linear
/// sub-buckets (HDR-histogram style), bounding relative error at 12.5%.
pub const HISTOGRAM_BUCKETS: usize = 16 + 60 * 8;

/// Bucket index of a raw value.
#[inline]
#[must_use]
pub fn bucket_index(v: u64) -> usize {
    if v < 16 {
        v as usize
    } else {
        let msb = 63 - v.leading_zeros() as usize; // >= 4
        16 + (msb - 4) * 8 + ((v >> (msb - 3)) & 7) as usize
    }
}

/// Inclusive upper bound of bucket `i` (the `le` boundary of the grid).
#[must_use]
pub fn bucket_upper(i: usize) -> u64 {
    assert!(i < HISTOGRAM_BUCKETS, "bucket index {i} out of range");
    if i < 16 {
        i as u64
    } else {
        let oct = (i - 16) / 8 + 4;
        let sub = ((i - 16) % 8) as u128;
        let step = 1u128 << (oct - 3);
        let upper = (1u128 << oct) + (sub + 1) * step - 1;
        u64::try_from(upper).unwrap_or(u64::MAX)
    }
}

/// Shared state of one histogram series.
struct HistogramCore {
    counts: Vec<AtomicU64>,
    sum: AtomicU64,
    /// Render-time multiplier (1e-9 for nanosecond-recorded, seconds-exposed
    /// latency histograms).
    scale: f64,
}

impl HistogramCore {
    fn new(scale: f64) -> HistogramCore {
        HistogramCore {
            counts: (0..HISTOGRAM_BUCKETS).map(|_| AtomicU64::new(0)).collect(),
            sum: AtomicU64::new(0),
            scale,
        }
    }

    fn snapshot(&self) -> (Vec<u64>, u64) {
        let counts = self.counts.iter().map(|c| c.load(Ordering::Relaxed)).collect();
        (counts, self.sum.load(Ordering::Relaxed))
    }
}

/// A bounded-memory latency/size distribution. Recording is two relaxed
/// atomic adds; quantile queries walk the 496-bucket grid.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl Histogram {
    /// A disabled histogram.
    #[must_use]
    pub fn noop() -> Histogram {
        Histogram(None)
    }

    /// Record a raw value.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(core) = &self.0 {
            core.counts[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
            core.sum.fetch_add(v, Ordering::Relaxed);
        }
    }

    /// Record a duration in seconds as nanoseconds (the convention for all
    /// `*_seconds` histograms: raw unit ns, render scale 1e-9).
    #[inline]
    pub fn observe_secs(&self, secs: f64) {
        if self.0.is_some() {
            let ns = if secs <= 0.0 { 0 } else { (secs * 1e9).min(u64::MAX as f64) as u64 };
            self.observe(ns);
        }
    }

    /// Number of recorded values.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.snapshot().0.iter().sum())
    }

    /// Sum of recorded values in render units (e.g. seconds).
    #[must_use]
    pub fn sum(&self) -> f64 {
        self.0.as_ref().map_or(0.0, |c| c.sum.load(Ordering::Relaxed) as f64 * c.scale)
    }

    /// Raw-unit quantile estimate: the upper bound of the bucket holding the
    /// rank-`ceil(q·count)` value (0 when empty). Error ≤ one sub-bucket,
    /// i.e. ≤ 12.5% relative.
    #[must_use]
    pub fn quantile_raw(&self, q: f64) -> u64 {
        let Some(core) = &self.0 else { return 0 };
        let (counts, _) = core.snapshot();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let rank = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, c) in counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return bucket_upper(i);
            }
        }
        bucket_upper(HISTOGRAM_BUCKETS - 1)
    }

    /// Quantile in render units (seconds for `*_seconds` histograms).
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        let scale = self.0.as_ref().map_or(1.0, |c| c.scale);
        self.quantile_raw(q) as f64 * scale
    }

    /// Fold another histogram's counts into this one (shard merge). Both
    /// share the fixed grid, so merge-of-shards equals the whole.
    pub fn merge_from(&self, other: &Histogram) {
        let (Some(dst), Some(src)) = (&self.0, &other.0) else { return };
        let (counts, sum) = src.snapshot();
        for (i, c) in counts.into_iter().enumerate() {
            if c > 0 {
                dst.counts[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        dst.sum.fetch_add(sum, Ordering::Relaxed);
    }
}

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Histogram(count={})", self.count())
    }
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// The kind of a metric family, as rendered in `# TYPE`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing.
    Counter,
    /// Instantaneous value.
    Gauge,
    /// Bucketed distribution.
    Histogram,
}

impl MetricKind {
    fn type_name(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

type LabelSet = Vec<(String, String)>;

enum Instrument {
    Counter(Arc<CounterCore>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

struct Family {
    help: String,
    kind: MetricKind,
    series: BTreeMap<LabelSet, Instrument>,
}

/// One sample contributed by a [`Registry::register_collector`] closure —
/// a pull-based bridge for foreign atomics (store counters, link stats)
/// that are not registry instruments.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Family name (without label braces).
    pub name: String,
    /// `# HELP` text for the family.
    pub help: String,
    /// Counter or gauge (collector histograms are not supported).
    pub kind: MetricKind,
    /// Label pairs, unsorted (the registry sorts them).
    pub labels: Vec<(String, String)>,
    /// Current value.
    pub value: f64,
}

type Collector = Box<dyn Fn() -> Vec<Sample> + Send + Sync>;

/// The metric store behind an enabled [`Metrics`] handle: families of
/// labeled series plus pull-based collectors, rendered on demand.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
    collectors: Mutex<BTreeMap<String, Collector>>,
}

fn canon_labels(labels: &[(&str, &str)]) -> LabelSet {
    let mut v: LabelSet = labels.iter().map(|(k, v)| ((*k).to_owned(), (*v).to_owned())).collect();
    v.sort();
    v
}

fn valid_name(name: &str) -> bool {
    !name.is_empty()
        && name.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b':')
        && !name.as_bytes()[0].is_ascii_digit()
}

impl Registry {
    /// A fresh, empty registry.
    #[must_use]
    pub fn new() -> Registry {
        Registry::default()
    }

    fn instrument<T>(
        &self,
        name: &str,
        help: &str,
        kind: MetricKind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Instrument,
        get: impl FnOnce(&Instrument) -> Option<T>,
    ) -> T {
        assert!(valid_name(name), "invalid metric name `{name}`");
        let mut families = self.families.lock();
        let family = families.entry(name.to_owned()).or_insert_with(|| Family {
            help: help.to_owned(),
            kind,
            series: BTreeMap::new(),
        });
        assert!(
            family.kind == kind,
            "metric `{name}` registered as {:?} and {kind:?}",
            family.kind
        );
        let entry = family.series.entry(canon_labels(labels)).or_insert_with(make);
        get(entry).expect("series kind matches family kind")
    }

    fn counter_scaled(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Counter {
        Counter(Some(self.instrument(
            name,
            help,
            MetricKind::Counter,
            labels,
            || Instrument::Counter(Arc::new(CounterCore::new(scale))),
            |i| match i {
                Instrument::Counter(c) => Some(Arc::clone(c)),
                _ => None,
            },
        )))
    }

    fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        Gauge(Some(self.instrument(
            name,
            help,
            MetricKind::Gauge,
            labels,
            || Instrument::Gauge(Arc::new(AtomicI64::new(0))),
            |i| match i {
                Instrument::Gauge(g) => Some(Arc::clone(g)),
                _ => None,
            },
        )))
    }

    fn histogram_scaled(
        &self,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        scale: f64,
    ) -> Histogram {
        Histogram(Some(self.instrument(
            name,
            help,
            MetricKind::Histogram,
            labels,
            || Instrument::Histogram(Arc::new(HistogramCore::new(scale))),
            |i| match i {
                Instrument::Histogram(h) => Some(Arc::clone(h)),
                _ => None,
            },
        )))
    }

    /// Install (or replace) the named pull-based collector. Keying by name
    /// lets iterative runs re-register their collectors without stacking
    /// duplicate series.
    pub fn register_collector(
        &self,
        key: &str,
        collect: impl Fn() -> Vec<Sample> + Send + Sync + 'static,
    ) {
        self.collectors.lock().insert(key.to_owned(), Box::new(collect));
    }

    /// Current value of every series, flattened — the machine-readable twin
    /// of [`Registry::render`], used by the live watch and the sampler.
    #[must_use]
    pub fn snapshot(&self) -> Vec<Sample> {
        let mut out = Vec::new();
        {
            let families = self.families.lock();
            for (name, family) in families.iter() {
                for (labels, inst) in &family.series {
                    let value = match inst {
                        Instrument::Counter(c) => c.total() as f64 * c.scale,
                        Instrument::Gauge(g) => g.load(Ordering::Relaxed) as f64,
                        // Histograms flatten to their count; quantiles are
                        // read through the `Histogram` handle instead.
                        Instrument::Histogram(h) => h.snapshot().0.iter().sum::<u64>() as f64,
                    };
                    out.push(Sample {
                        name: name.clone(),
                        help: family.help.clone(),
                        kind: family.kind,
                        labels: labels.clone(),
                        value,
                    });
                }
            }
        }
        let collectors = self.collectors.lock();
        for collect in collectors.values() {
            out.extend(collect());
        }
        out
    }

    /// Render Prometheus text exposition format 0.0.4: `# HELP`/`# TYPE`
    /// once per family, series sorted, histograms as cumulative
    /// `_bucket`/`_sum`/`_count`. Deterministic for a fixed metric state.
    #[must_use]
    pub fn render(&self) -> String {
        // Merge instrument families with collector samples (summing any
        // duplicate series so the output never repeats a series key).
        struct RFamily {
            help: String,
            kind: MetricKind,
            scalars: BTreeMap<LabelSet, f64>,
            /// bucket counts, scaled sum, le-bound scale.
            hists: BTreeMap<LabelSet, (Vec<u64>, f64, f64)>,
        }
        let mut render: BTreeMap<String, RFamily> = BTreeMap::new();
        {
            let families = self.families.lock();
            for (name, family) in families.iter() {
                let rf = render.entry(name.clone()).or_insert_with(|| RFamily {
                    help: family.help.clone(),
                    kind: family.kind,
                    scalars: BTreeMap::new(),
                    hists: BTreeMap::new(),
                });
                for (labels, inst) in &family.series {
                    match inst {
                        Instrument::Counter(c) => {
                            *rf.scalars.entry(labels.clone()).or_insert(0.0) +=
                                c.total() as f64 * c.scale;
                        }
                        Instrument::Gauge(g) => {
                            *rf.scalars.entry(labels.clone()).or_insert(0.0) +=
                                g.load(Ordering::Relaxed) as f64;
                        }
                        Instrument::Histogram(h) => {
                            let (counts, sum) = h.snapshot();
                            rf.hists
                                .insert(labels.clone(), (counts, sum as f64 * h.scale, h.scale));
                        }
                    }
                }
            }
        }
        {
            let collectors = self.collectors.lock();
            for collect in collectors.values() {
                for s in collect() {
                    if !valid_name(&s.name) || s.kind == MetricKind::Histogram {
                        continue;
                    }
                    let rf = render.entry(s.name.clone()).or_insert_with(|| RFamily {
                        help: s.help.clone(),
                        kind: s.kind,
                        scalars: BTreeMap::new(),
                        hists: BTreeMap::new(),
                    });
                    let labels: LabelSet = {
                        let mut l = s.labels.clone();
                        l.sort();
                        l
                    };
                    *rf.scalars.entry(labels).or_insert(0.0) += s.value;
                }
            }
        }

        let mut out = String::new();
        for (name, rf) in &render {
            let _ = writeln!(out, "# HELP {name} {}", escape_help(&rf.help));
            let _ = writeln!(out, "# TYPE {name} {}", rf.kind.type_name());
            for (labels, value) in &rf.scalars {
                let _ =
                    writeln!(out, "{name}{} {}", render_labels(labels, None), fmt_value(*value));
            }
            for (labels, (counts, sum, hist_scale)) in &rf.hists {
                let mut cumulative = 0u64;
                for (i, c) in counts.iter().enumerate() {
                    if *c == 0 {
                        continue;
                    }
                    cumulative += c;
                    let le = bucket_upper(i) as f64 * hist_scale;
                    let _ = writeln!(
                        out,
                        "{name}_bucket{} {cumulative}",
                        render_labels(labels, Some(&fmt_value(le)))
                    );
                }
                let total: u64 = counts.iter().sum();
                let _ =
                    writeln!(out, "{name}_bucket{} {total}", render_labels(labels, Some("+Inf")));
                let _ =
                    writeln!(out, "{name}_sum{} {}", render_labels(labels, None), fmt_value(*sum));
                let _ = writeln!(out, "{name}_count{} {total}", render_labels(labels, None));
            }
        }
        out
    }
}

fn escape_help(help: &str) -> String {
    help.replace('\\', "\\\\").replace('\n', "\\n")
}

fn escape_label_value(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn render_labels(labels: &LabelSet, le: Option<&str>) -> String {
    if labels.is_empty() && le.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label_value(v))).collect();
    if let Some(le) = le {
        parts.push(format!("le=\"{le}\""));
    }
    format!("{{{}}}", parts.join(","))
}

fn fmt_value(v: f64) -> String {
    if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v}")
    }
}

// ---------------------------------------------------------------------------
// The handle
// ---------------------------------------------------------------------------

/// The cheap, cloneable metrics handle threaded through the runtime — the
/// metrics twin of [`crate::telemetry::Telemetry`]. Disabled ([`Metrics::off`])
/// it is a `None` and every instrument it hands out is a no-op.
#[derive(Clone, Default)]
pub struct Metrics {
    registry: Option<Arc<Registry>>,
}

impl Metrics {
    /// The disabled handle: instruments cost one branch.
    #[must_use]
    pub fn off() -> Metrics {
        Metrics { registry: None }
    }

    /// An enabled handle over a fresh registry.
    #[must_use]
    pub fn on() -> Metrics {
        Metrics { registry: Some(Arc::new(Registry::new())) }
    }

    /// An enabled handle over an existing registry.
    #[must_use]
    pub fn with_registry(registry: Arc<Registry>) -> Metrics {
        Metrics { registry: Some(registry) }
    }

    /// Whether a registry is attached.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.registry.is_some()
    }

    /// The attached registry, if any.
    #[must_use]
    pub fn registry(&self) -> Option<Arc<Registry>> {
        self.registry.clone()
    }

    /// Get-or-create a counter series.
    #[must_use]
    pub fn counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.registry {
            Some(r) => r.counter_scaled(name, help, labels, 1.0),
            None => Counter::noop(),
        }
    }

    /// Get-or-create a counter that accumulates nanoseconds and renders
    /// seconds (name it `*_seconds_total`; feed it with [`Counter::add`] of
    /// nanosecond values).
    #[must_use]
    pub fn time_counter(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match &self.registry {
            Some(r) => r.counter_scaled(name, help, labels, 1e-9),
            None => Counter::noop(),
        }
    }

    /// Get-or-create a gauge series.
    #[must_use]
    pub fn gauge(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match &self.registry {
            Some(r) => r.gauge(name, help, labels),
            None => Gauge::noop(),
        }
    }

    /// Get-or-create a latency histogram recording nanoseconds and rendering
    /// seconds (name it `*_seconds`; feed it with [`Histogram::observe_secs`]).
    #[must_use]
    pub fn histogram(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Histogram {
        match &self.registry {
            Some(r) => r.histogram_scaled(name, help, labels, 1e-9),
            None => Histogram::noop(),
        }
    }

    /// Install a keyed pull-based collector (no-op when disabled).
    pub fn register_collector(
        &self,
        key: &str,
        collect: impl Fn() -> Vec<Sample> + Send + Sync + 'static,
    ) {
        if let Some(r) = &self.registry {
            r.register_collector(key, collect);
        }
    }
}

impl std::fmt::Debug for Metrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Metrics({})", if self.is_enabled() { "on" } else { "off" })
    }
}

// ---------------------------------------------------------------------------
// Exposition parsing / validation
// ---------------------------------------------------------------------------

/// One parsed series: canonical `name{k="v",...}` key plus value.
#[derive(Debug, Clone, Default)]
pub struct Exposition {
    /// Family name → declared `# TYPE`.
    pub types: BTreeMap<String, String>,
    /// Canonical series key → value, in document order of first appearance.
    pub series: BTreeMap<String, f64>,
}

impl Exposition {
    /// Value of the series with `name` and exactly these labels.
    #[must_use]
    pub fn get(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.series.get(&series_key(name, &canon_labels(labels))).copied()
    }

    /// Sum of every series in the family `name` (any labels), excluding
    /// histogram `_bucket`/`_sum`/`_count` expansions of other families.
    #[must_use]
    pub fn sum_family(&self, name: &str) -> f64 {
        self.series
            .iter()
            .filter(|(k, _)| k.as_str() == name || k.starts_with(&format!("{name}{{")))
            .map(|(_, v)| v)
            .sum()
    }

    /// Series of family `name` grouped by the value of `label`.
    #[must_use]
    pub fn by_label(&self, name: &str, label: &str) -> BTreeMap<String, f64> {
        let mut out = BTreeMap::new();
        let needle = format!("{label}=\"");
        for (k, v) in &self.series {
            let Some(rest) = k.strip_prefix(name) else { continue };
            if !rest.starts_with('{') {
                continue;
            }
            if let Some(pos) = rest.find(&needle) {
                let val = &rest[pos + needle.len()..];
                if let Some(end) = val.find('"') {
                    *out.entry(val[..end].to_owned()).or_insert(0.0) += v;
                }
            }
        }
        out
    }
}

fn series_key(name: &str, labels: &LabelSet) -> String {
    format!("{name}{}", render_labels(labels, None))
}

/// Strictly parse Prometheus text exposition 0.0.4, rejecting what our own
/// renderer would never produce: malformed lines, duplicate series,
/// duplicate `# TYPE` declarations, negative counters, and histogram bucket
/// series whose cumulative counts decrease or disagree with `_count`.
pub fn parse_exposition(text: &str) -> Result<Exposition, String> {
    let mut exp = Exposition::default();
    // (family, labels-minus-le) -> ordered bucket (le, cumulative) pairs.
    let mut buckets: BTreeMap<(String, String), Vec<(f64, f64)>> = BTreeMap::new();
    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let (Some(name), Some(kind), None) = (it.next(), it.next(), it.next()) else {
                return Err(format!("line {n}: malformed TYPE line"));
            };
            if !matches!(kind, "counter" | "gauge" | "histogram" | "summary" | "untyped") {
                return Err(format!("line {n}: unknown type `{kind}`"));
            }
            if exp.types.insert(name.to_owned(), kind.to_owned()).is_some() {
                return Err(format!("line {n}: duplicate TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }
        let (name, labels, value) =
            parse_sample_line(line).map_err(|e| format!("line {n}: {e}"))?;
        let key = series_key(&name, &labels);
        if exp.series.insert(key.clone(), value).is_some() {
            return Err(format!("line {n}: duplicate series `{key}`"));
        }
        // Track histogram buckets for monotonicity validation.
        if let Some(family) = name.strip_suffix("_bucket") {
            let le = labels.iter().find(|(k, _)| k == "le");
            if let Some((_, le)) = le {
                let le_val = if le == "+Inf" {
                    f64::INFINITY
                } else {
                    le.parse::<f64>().map_err(|_| format!("line {n}: bad le `{le}`"))?
                };
                let rest: LabelSet = labels.iter().filter(|(k, _)| k != "le").cloned().collect();
                buckets
                    .entry((family.to_owned(), series_key("", &rest)))
                    .or_default()
                    .push((le_val, value));
            }
        }
        // Counters must be non-negative.
        let family = histogram_family(&name, &exp.types).unwrap_or(name.clone());
        if exp.types.get(&family).map(String::as_str) == Some("counter") && value < 0.0 {
            return Err(format!("line {n}: negative counter `{key}`"));
        }
    }
    // Histogram invariants: buckets cumulative and consistent with _count.
    for ((family, label_key), mut rows) in buckets {
        rows.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut prev = -1.0;
        for (le, cum) in &rows {
            if *cum < prev {
                return Err(format!("histogram `{family}` buckets not cumulative at le={le}"));
            }
            prev = *cum;
        }
        if let Some((le, last)) = rows.last() {
            if !le.is_infinite() {
                return Err(format!("histogram `{family}` missing le=\"+Inf\""));
            }
            let count_key = format!("{family}_count{label_key}");
            if let Some(count) = exp.series.get(&count_key) {
                if (count - last).abs() > 1e-9 {
                    return Err(format!(
                        "histogram `{family}`: +Inf bucket {last} != _count {count}"
                    ));
                }
            }
        }
    }
    Ok(exp)
}

/// The histogram family a `_bucket`/`_sum`/`_count` sample belongs to, if
/// its stem is a declared histogram.
fn histogram_family(name: &str, types: &BTreeMap<String, String>) -> Option<String> {
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if types.get(stem).map(String::as_str) == Some("histogram") {
                return Some(stem.to_owned());
            }
        }
    }
    None
}

fn parse_sample_line(line: &str) -> Result<(String, LabelSet, f64), String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    if i == 0 || bytes[0].is_ascii_digit() {
        return Err("sample line does not start with a metric name".into());
    }
    let name = line[..i].to_owned();
    let mut labels: LabelSet = Vec::new();
    let rest = &line[i..];
    let rest = if let Some(inner) = rest.strip_prefix('{') {
        let end = find_label_end(inner).ok_or("unterminated label set")?;
        parse_labels(&inner[..end], &mut labels)?;
        &inner[end + 1..]
    } else {
        rest
    };
    let value_str = rest.trim();
    if value_str.is_empty() {
        return Err("missing sample value".into());
    }
    // No timestamps: our renderer never emits them.
    let value = match value_str {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        v => v.parse::<f64>().map_err(|_| format!("bad sample value `{v}`"))?,
    };
    labels.sort();
    Ok((name, labels, value))
}

/// Index of the closing `}` of a label set, skipping quoted values.
fn find_label_end(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, b) in s.bytes().enumerate() {
        if escaped {
            escaped = false;
            continue;
        }
        match b {
            b'\\' if in_quotes => escaped = true,
            b'"' => in_quotes = !in_quotes,
            b'}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn parse_labels(s: &str, out: &mut LabelSet) -> Result<(), String> {
    let mut rest = s;
    while !rest.is_empty() {
        let eq = rest.find('=').ok_or("label without `=`")?;
        let key = rest[..eq].trim().to_owned();
        if key.is_empty() {
            return Err("empty label name".into());
        }
        let after = &rest[eq + 1..];
        let after = after.strip_prefix('"').ok_or("label value not quoted")?;
        let mut value = String::new();
        let mut escaped = false;
        let mut close = None;
        for (i, c) in after.char_indices() {
            if escaped {
                value.push(match c {
                    'n' => '\n',
                    other => other,
                });
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                close = Some(i);
                break;
            } else {
                value.push(c);
            }
        }
        let close = close.ok_or("unterminated label value")?;
        out.push((key, value));
        rest = after[close + 1..].trim_start_matches(',');
    }
    Ok(())
}

/// Check that every counter (and histogram bucket/count/sum) series present
/// in `earlier` is present in `later` with a value no smaller — the
/// cross-scrape monotonicity contract.
pub fn check_monotonic(earlier: &Exposition, later: &Exposition) -> Result<(), String> {
    for (key, v0) in &earlier.series {
        let name = key.split('{').next().unwrap_or(key);
        let family = histogram_family(name, &earlier.types).unwrap_or_else(|| name.to_owned());
        let is_monotone = matches!(
            earlier.types.get(&family).map(String::as_str),
            Some("counter") | Some("histogram")
        );
        if !is_monotone {
            continue;
        }
        match later.series.get(key) {
            None => return Err(format!("series `{key}` disappeared between scrapes")),
            Some(v1) if v1 + 1e-9 < *v0 => {
                return Err(format!("series `{key}` went backwards: {v0} -> {v1}"));
            }
            Some(_) => {}
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// The /metrics HTTP listener
// ---------------------------------------------------------------------------

/// What a debug-plane route handler returns: the HTTP status line suffix
/// (e.g. `"200 OK"`), the `Content-Type`, and the body.
pub type RouteResponse = (&'static str, &'static str, String);

/// A debug-plane route handler: called per request with the (possibly
/// empty) query string, already split off the path.
pub type RouteHandler = Box<dyn Fn(&str) -> RouteResponse + Send + Sync>;

/// A tiny, dependency-free HTTP/1.1 listener serving `GET /metrics` with
/// the registry's current exposition, plus any extra routes mounted at
/// bind time (the `/healthz` + `/debug/*` introspection plane). One accept
/// thread, one request per connection, `Connection: close`.
pub struct MetricsServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl MetricsServer {
    /// Bind `addr` (e.g. `127.0.0.1:9184`; port 0 picks a free port) and
    /// start serving `registry`.
    pub fn bind(registry: Arc<Registry>, addr: &str) -> io::Result<MetricsServer> {
        MetricsServer::bind_with_routes(registry, addr, Vec::new())
    }

    /// [`MetricsServer::bind`] with extra routes: each `(path, handler)`
    /// pair serves `GET path[?query]`. `/metrics` and `/` stay reserved
    /// for the exposition; unknown paths 404.
    pub fn bind_with_routes(
        registry: Arc<Registry>,
        addr: &str,
        routes: Vec<(String, RouteHandler)>,
    ) -> io::Result<MetricsServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop2 = Arc::clone(&stop);
        let thread = std::thread::Builder::new().name("metrics-http".into()).spawn(move || {
            for stream in listener.incoming() {
                if stop2.load(Ordering::Acquire) {
                    break;
                }
                if let Ok(stream) = stream {
                    // Serve inline: scrapes are small and rare.
                    let _ = serve_one(stream, &registry, &routes);
                }
            }
        })?;
        Ok(MetricsServer { addr, stop, thread: Some(thread) })
    }

    /// The bound address (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop the accept loop and join the thread.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        self.stop.store(true, Ordering::Release);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for MetricsServer {
    fn drop(&mut self) {
        if self.thread.is_some() {
            self.stop_and_join();
        }
    }
}

fn serve_one(
    mut stream: TcpStream,
    registry: &Registry,
    routes: &[(String, RouteHandler)],
) -> io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_secs(2)))?;
    stream.set_write_timeout(Some(Duration::from_secs(2)))?;
    // Read until the end of the request head (we ignore any body).
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => {
                buf.extend_from_slice(&chunk[..n]);
                if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 16 * 1024 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let request = String::from_utf8_lossy(&buf);
    let target =
        request.lines().next().and_then(|l| l.split_whitespace().nth(1)).unwrap_or("/").to_owned();
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target.as_str(), ""),
    };
    let (status, content_type, body) = if path == "/metrics" || path == "/" {
        ("200 OK", "text/plain; version=0.0.4; charset=utf-8", registry.render())
    } else if let Some((_, handler)) = routes.iter().find(|(p, _)| p == path) {
        handler(query)
    } else {
        ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_owned())
    };
    let response = format!(
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream.write_all(response.as_bytes())
}

/// A minimal HTTP GET for `http://host:port/path` URLs — the scrape client
/// behind `cloudburst check-metrics` (no curl dependency). Returns the body
/// of a 200 response.
pub fn http_get(url: &str, timeout: Duration) -> io::Result<String> {
    let (code, body) = http_get_status(url, timeout)?;
    if code != 200 {
        return Err(io::Error::other(format!("HTTP error: status {code}")));
    }
    Ok(body)
}

/// [`http_get`] that hands back the status code instead of failing on
/// non-200 — `cloudburst health <url>` needs the body of a 503 `/healthz`
/// verdict as much as a 200 one.
pub fn http_get_status(url: &str, timeout: Duration) -> io::Result<(u16, String)> {
    let rest = url
        .strip_prefix("http://")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "only http:// URLs"))?;
    let (host, path) = match rest.find('/') {
        Some(i) => (&rest[..i], &rest[i..]),
        None => (rest, "/"),
    };
    let addr = host
        .to_socket_addrs()?
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "unresolvable host"))?;
    let mut stream = TcpStream::connect_timeout(&addr, timeout)?;
    stream.set_read_timeout(Some(timeout))?;
    stream.set_write_timeout(Some(timeout))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {host}\r\nConnection: close\r\n\r\n")?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    let (head, body) = response
        .split_once("\r\n\r\n")
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed HTTP response"))?;
    let code = head
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|c| c.parse::<u16>().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "malformed status line"))?;
    Ok((code, body.to_owned()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_and_upper_are_consistent() {
        for v in [0u64, 1, 7, 15, 16, 17, 100, 1023, 1024, 1_000_000, u64::MAX / 2, u64::MAX] {
            let i = bucket_index(v);
            assert!(i < HISTOGRAM_BUCKETS);
            assert!(bucket_upper(i) >= v, "upper({i}) < {v}");
            if i > 0 {
                assert!(bucket_upper(i - 1) < v, "v {v} should not fit bucket {}", i - 1);
            }
        }
        // Bounds are strictly increasing across the whole grid.
        for i in 1..HISTOGRAM_BUCKETS {
            assert!(bucket_upper(i) > bucket_upper(i - 1));
        }
    }

    #[test]
    fn bucket_relative_error_is_bounded() {
        for v in [20u64, 1000, 12345, 987_654_321, 5_000_000_000] {
            let ub = bucket_upper(bucket_index(v));
            assert!((ub - v) as f64 / v as f64 <= 0.125 + 1e-9, "v={v} ub={ub}");
        }
    }

    #[test]
    fn disabled_instruments_are_inert() {
        let m = Metrics::off();
        let c = m.counter("x_total", "", &[]);
        let g = m.gauge("x", "", &[]);
        let h = m.histogram("x_seconds", "", &[]);
        c.add(5);
        g.set(7);
        h.observe(9);
        assert_eq!(c.value(), 0);
        assert_eq!(g.value(), 0);
        assert_eq!(h.count(), 0);
        assert!(!m.is_enabled());
    }

    #[test]
    fn counters_shard_and_sum_across_threads() {
        let m = Metrics::on();
        let c = m.counter("jobs_total", "jobs", &[("site", "local")]);
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
        // Re-registering the same (name, labels) returns the same series.
        let again = m.counter("jobs_total", "jobs", &[("site", "local")]);
        again.add(2);
        assert_eq!(c.value(), 8002);
    }

    #[test]
    fn histogram_quantiles_and_merge() {
        let m = Metrics::on();
        let h = m.histogram("lat_seconds", "", &[]);
        for v in 1..=1000u64 {
            h.observe(v * 1000); // 1µs .. 1ms in ns
        }
        assert_eq!(h.count(), 1000);
        let p50 = h.quantile_raw(0.50) as f64;
        let p99 = h.quantile_raw(0.99) as f64;
        assert!((p50 - 500_000.0).abs() / 500_000.0 < 0.13, "p50 {p50}");
        assert!((p99 - 990_000.0).abs() / 990_000.0 < 0.13, "p99 {p99}");
        assert!(h.quantile(0.5) > 0.0);

        let whole = m.histogram("whole_seconds", "", &[]);
        let a = m.histogram("a_seconds", "", &[]);
        let b = m.histogram("b_seconds", "", &[]);
        for v in [3u64, 17, 900, 65_536, 12] {
            whole.observe(v);
            if v % 2 == 0 {
                a.observe(v)
            } else {
                b.observe(v)
            }
        }
        let merged = m.histogram("merged_seconds", "", &[]);
        merged.merge_from(&a);
        merged.merge_from(&b);
        assert_eq!(merged.count(), whole.count());
        for q in [0.0, 0.25, 0.5, 0.9, 1.0] {
            assert_eq!(merged.quantile_raw(q), whole.quantile_raw(q));
        }
    }

    #[test]
    fn render_parses_and_is_deterministic() {
        let m = Metrics::on();
        m.counter("cloudburst_jobs_granted_total", "granted", &[("site", "local")]).add(3);
        m.counter("cloudburst_jobs_granted_total", "granted", &[("site", "cloud")]).add(4);
        m.gauge("cloudburst_jobs_pending", "pending", &[]).set(11);
        let h = m.histogram("cloudburst_fetch_seconds", "fetch", &[("site", "local")]);
        h.observe_secs(0.001);
        h.observe_secs(0.004);
        m.register_collector("extra", || {
            vec![Sample {
                name: "cloudburst_store_requests_total".into(),
                help: "store reqs".into(),
                kind: MetricKind::Counter,
                labels: vec![("store".into(), "s3".into())],
                value: 9.0,
            }]
        });
        let reg = m.registry().unwrap();
        let text = reg.render();
        assert_eq!(text, reg.render(), "render must be deterministic");
        let exp = parse_exposition(&text).expect("our own exposition parses");
        assert_eq!(exp.get("cloudburst_jobs_granted_total", &[("site", "local")]), Some(3.0));
        assert_eq!(exp.sum_family("cloudburst_jobs_granted_total"), 7.0);
        assert_eq!(exp.get("cloudburst_jobs_pending", &[]), Some(11.0));
        assert_eq!(exp.get("cloudburst_store_requests_total", &[("store", "s3")]), Some(9.0));
        assert_eq!(exp.get("cloudburst_fetch_seconds_count", &[("site", "local")]), Some(2.0));
        let by = exp.by_label("cloudburst_jobs_granted_total", "site");
        assert_eq!(by.get("cloud"), Some(&4.0));
    }

    #[test]
    fn parser_rejects_duplicates_and_garbage() {
        assert!(parse_exposition("x_total 1\nx_total 2\n").is_err(), "duplicate series");
        assert!(parse_exposition("# TYPE a counter\n# TYPE a counter\n").is_err());
        assert!(parse_exposition("1bad 5\n").is_err());
        assert!(parse_exposition("ok{unterminated 5\n").is_err());
        assert!(parse_exposition("ok nope\n").is_err());
        assert!(parse_exposition("# TYPE c counter\nc -4\n").is_err(), "negative counter");
        let bad_hist = "# TYPE h histogram\nh_bucket{le=\"1\"} 5\nh_bucket{le=\"2\"} 3\n\
                        h_bucket{le=\"+Inf\"} 5\nh_count 5\nh_sum 2\n";
        assert!(parse_exposition(bad_hist).is_err(), "non-cumulative buckets");
    }

    #[test]
    fn monotonicity_check_catches_regressions() {
        let a = parse_exposition("# TYPE c_total counter\nc_total 5\n").unwrap();
        let b = parse_exposition("# TYPE c_total counter\nc_total 7\n").unwrap();
        assert!(check_monotonic(&a, &b).is_ok());
        assert!(check_monotonic(&b, &a).is_err());
    }

    #[test]
    fn http_server_serves_metrics_and_404s() {
        let m = Metrics::on();
        m.counter("cloudburst_smoke_total", "smoke", &[]).add(42);
        let server = MetricsServer::bind(m.registry().unwrap(), "127.0.0.1:0").unwrap();
        let url = format!("http://{}/metrics", server.local_addr());
        let body = http_get(&url, Duration::from_secs(2)).unwrap();
        let exp = parse_exposition(&body).unwrap();
        assert_eq!(exp.get("cloudburst_smoke_total", &[]), Some(42.0));
        let miss =
            http_get(&format!("http://{}/nope", server.local_addr()), Duration::from_secs(2));
        assert!(miss.is_err());
        server.shutdown();
    }

    #[test]
    fn http_server_mounts_extra_routes_with_queries_and_statuses() {
        let m = Metrics::on();
        let routes: Vec<(String, RouteHandler)> = vec![
            (
                "/debug/echo".to_owned(),
                Box::new(|q: &str| ("200 OK", "application/json", format!("{{\"q\":\"{q}\"}}\n"))),
            ),
            (
                "/healthz".to_owned(),
                Box::new(|_: &str| {
                    (
                        "503 Service Unavailable",
                        "application/json",
                        "{\"status\":\"degraded\"}\n".to_owned(),
                    )
                }),
            ),
        ];
        let server =
            MetricsServer::bind_with_routes(m.registry().unwrap(), "127.0.0.1:0", routes).unwrap();
        let base = format!("http://{}", server.local_addr());
        // The query string reaches the handler, stripped of the '?'.
        let body = http_get(&format!("{base}/debug/echo?last=25"), Duration::from_secs(2)).unwrap();
        assert_eq!(body, "{\"q\":\"last=25\"}\n");
        let bare = http_get(&format!("{base}/debug/echo"), Duration::from_secs(2)).unwrap();
        assert_eq!(bare, "{\"q\":\"\"}\n");
        // Non-200 routes work; http_get_status surfaces code + body while
        // plain http_get refuses.
        let (code, verdict) =
            http_get_status(&format!("{base}/healthz"), Duration::from_secs(2)).unwrap();
        assert_eq!(code, 503);
        assert!(verdict.contains("degraded"));
        assert!(http_get(&format!("{base}/healthz"), Duration::from_secs(2)).is_err());
        // /metrics is still the registry exposition.
        assert!(http_get(&format!("{base}/metrics"), Duration::from_secs(2)).is_ok());
        server.shutdown();
    }
}
